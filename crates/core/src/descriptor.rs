//! Domain descriptors `U = {U_1, …, U_K}` (paper §3.5.1).
//!
//! Each descriptor is the bundle of every encoded training hypervector of
//! its domain: `U_k = Σ_i H_i^k`. By the membership property of bundling,
//! `U_k` is cosine-similar to the samples that formed it and dissimilar to
//! samples from other distributions — exactly the signal the OOD detector
//! thresholds.

use smore_tensor::{vecops, Matrix};

use crate::{Result, SmoreError};

/// The set of per-domain descriptors.
///
/// # Example
///
/// ```
/// use smore::descriptor::DomainDescriptors;
/// use smore_tensor::{init, Matrix};
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let encoded = init::bipolar_matrix(&mut init::rng(1), 6, 256);
/// let domains = vec![0, 0, 0, 1, 1, 1];
/// let descriptors = DomainDescriptors::build(&encoded, &domains, 2)?;
/// let sims = descriptors.similarities(encoded.row(0));
/// assert_eq!(sims.len(), 2);
/// assert!(sims[0] > sims[1], "sample 0 belongs to domain 0");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DomainDescriptors {
    /// `(num_domains, dim)` — row `k` is `U_k`.
    descriptors: Matrix,
}

impl DomainDescriptors {
    /// Bundles the rows of `encoded` into one descriptor per domain tag.
    ///
    /// `domains` holds a *local* domain index (`0..num_domains`) per row.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::InvalidConfig`] when inputs are empty, lengths
    ///   disagree, or a tag is out of range.
    /// - [`SmoreError::EmptyDomain`] when some domain received no samples.
    pub fn build(encoded: &Matrix, domains: &[usize], num_domains: usize) -> Result<Self> {
        if encoded.rows() == 0 || encoded.cols() == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "cannot build descriptors from an empty matrix".into(),
            });
        }
        if encoded.rows() != domains.len() {
            return Err(SmoreError::InvalidConfig {
                what: format!("{} samples but {} domain tags", encoded.rows(), domains.len()),
            });
        }
        if num_domains == 0 {
            return Err(SmoreError::InvalidConfig { what: "num_domains must be positive".into() });
        }
        let mut descriptors = Matrix::zeros(num_domains, encoded.cols());
        let mut counts = vec![0usize; num_domains];
        for (i, &d) in domains.iter().enumerate() {
            if d >= num_domains {
                return Err(SmoreError::InvalidConfig {
                    what: format!("domain tag {d} out of range for {num_domains} domains"),
                });
            }
            vecops::axpy(1.0, encoded.row(i), descriptors.row_mut(d));
            counts[d] += 1;
        }
        if let Some(empty) = counts.iter().position(|&c| c == 0) {
            return Err(SmoreError::EmptyDomain { domain: empty });
        }
        Ok(Self { descriptors })
    }

    /// Number of domains `K`.
    pub fn len(&self) -> usize {
        self.descriptors.rows()
    }

    /// Whether there are no descriptors (never true after `build`).
    pub fn is_empty(&self) -> bool {
        self.descriptors.rows() == 0
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.descriptors.cols()
    }

    /// The raw descriptor matrix (row `k` = `U_k`).
    pub fn as_matrix(&self) -> &Matrix {
        &self.descriptors
    }

    /// Rebuilds the descriptor set around an already-bundled matrix (the
    /// artifact-load path; `build` is the fitting constructor).
    pub(crate) fn from_matrix(descriptors: Matrix) -> Self {
        Self { descriptors }
    }

    /// Cosine similarities `δ(query, U_k)` for all `k`.
    ///
    /// # Panics
    ///
    /// Panics if the query dimension differs from the descriptor dimension
    /// (model wiring guarantees agreement).
    pub fn similarities(&self, query: &[f32]) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.descriptors.rows());
        self.similarities_into(query, &mut out);
        out
    }

    /// [`similarities`](Self::similarities) into a caller-owned buffer
    /// (cleared and refilled; allocation-free once its capacity covers the
    /// domain count) — the serving-loop variant.
    ///
    /// # Panics
    ///
    /// Same conditions as [`similarities`](Self::similarities).
    pub fn similarities_into(&self, query: &[f32], out: &mut Vec<f32>) {
        out.clear();
        out.extend(
            (0..self.descriptors.rows()).map(|k| vecops::cosine(query, self.descriptors.row(k))),
        );
    }

    /// Appends a brand-new domain descriptor `U_{K+1}`: the bundle of the
    /// given encoded samples. This is the online-enrolment counterpart of
    /// [`build`](Self::build) — existing descriptors are untouched and the
    /// new domain gets the next local index (`K`).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when `encoded` is empty or its
    /// width differs from the existing descriptor dimension.
    pub fn push_domain(&mut self, encoded: &Matrix) -> Result<usize> {
        if encoded.rows() == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "cannot enrol a domain from zero samples".into(),
            });
        }
        if encoded.cols() != self.descriptors.cols() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "enrolment dimension {} differs from descriptor dimension {}",
                    encoded.cols(),
                    self.descriptors.cols()
                ),
            });
        }
        let mut bundle = vec![0.0f32; encoded.cols()];
        for i in 0..encoded.rows() {
            vecops::axpy(1.0, encoded.row(i), &mut bundle);
        }
        self.push_bundle(&bundle)
    }

    /// Appends an **already bundled** descriptor row `U_{K+1}` — the
    /// counterpart of [`push_domain`](Self::push_domain) for callers that
    /// computed the bundle elsewhere (e.g.
    /// [`Smore::prepare_domain`](crate::Smore::prepare_domain), whose
    /// output may be attached long after it was trained).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the row width differs
    /// from the existing descriptor dimension.
    pub fn push_bundle(&mut self, bundle: &[f32]) -> Result<usize> {
        if bundle.len() != self.descriptors.cols() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "enrolment dimension {} differs from descriptor dimension {}",
                    bundle.len(),
                    self.descriptors.cols()
                ),
            });
        }
        let row = Matrix::from_vec(1, bundle.len(), bundle.to_vec())?;
        self.descriptors = self.descriptors.vstack(&row)?;
        Ok(self.descriptors.rows() - 1)
    }

    /// Adds a single encoded sample into descriptor `domain` — the
    /// incremental form used by streaming updates.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the tag or dimension is
    /// out of range.
    pub fn bundle_into(&mut self, domain: usize, sample: &[f32]) -> Result<()> {
        if domain >= self.descriptors.rows() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "domain tag {domain} out of range for {} domains",
                    self.descriptors.rows()
                ),
            });
        }
        if sample.len() != self.descriptors.cols() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "sample dimension {} differs from descriptor dimension {}",
                    sample.len(),
                    self.descriptors.cols()
                ),
            });
        }
        vecops::axpy(1.0, sample, self.descriptors.row_mut(domain));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::init;

    /// Two clearly distinct domains: orthogonal random prototype directions
    /// plus noise.
    fn two_domain_fixture(seed: u64) -> (Matrix, Vec<usize>) {
        let mut rng = init::rng(seed);
        let dim = 1024;
        let protos = init::bipolar_matrix(&mut rng, 2, dim);
        let mut encoded = Matrix::zeros(40, dim);
        let mut domains = Vec::new();
        for i in 0..40 {
            let d = i % 2;
            let noise = init::normal_vec(&mut rng, dim);
            for (j, &e) in noise.iter().enumerate() {
                encoded.set(i, j, protos.get(d, j) + 0.8 * e);
            }
            domains.push(d);
        }
        (encoded, domains)
    }

    #[test]
    fn members_are_closer_to_their_descriptor() {
        let (encoded, domains) = two_domain_fixture(1);
        let desc = DomainDescriptors::build(&encoded, &domains, 2).unwrap();
        let mut correct = 0;
        for (i, &domain) in domains.iter().enumerate() {
            let sims = desc.similarities(encoded.row(i));
            let best = if sims[0] >= sims[1] { 0 } else { 1 };
            if best == domain {
                correct += 1;
            }
        }
        assert!(correct >= 36, "descriptors should identify members ({correct}/40)");
    }

    #[test]
    fn build_validates() {
        let m = Matrix::zeros(4, 8);
        assert!(DomainDescriptors::build(&Matrix::zeros(0, 8), &[], 2).is_err());
        assert!(DomainDescriptors::build(&m, &[0, 1], 2).is_err(), "length mismatch");
        assert!(DomainDescriptors::build(&m, &[0, 1, 2, 0], 2).is_err(), "tag out of range");
        assert!(DomainDescriptors::build(&m, &[0, 0, 0, 0], 2).is_err(), "domain 1 empty");
        assert!(DomainDescriptors::build(&m, &[0, 0, 0, 0], 0).is_err());
    }

    #[test]
    fn descriptor_is_exact_bundle() {
        let encoded = Matrix::from_vec(3, 2, vec![1.0, 2.0, 10.0, 20.0, 0.5, 0.5]).unwrap();
        let desc = DomainDescriptors::build(&encoded, &[0, 1, 0], 2).unwrap();
        assert_eq!(desc.as_matrix().row(0), &[1.5, 2.5]);
        assert_eq!(desc.as_matrix().row(1), &[10.0, 20.0]);
        assert_eq!(desc.len(), 2);
        assert_eq!(desc.dim(), 2);
        assert!(!desc.is_empty());
    }

    #[test]
    fn push_domain_appends_exact_bundle() {
        let encoded = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let mut desc = DomainDescriptors::build(&encoded, &[0, 1], 2).unwrap();
        let new_rows = Matrix::from_vec(2, 2, vec![0.5, 0.5, 1.5, -0.5]).unwrap();
        let local = desc.push_domain(&new_rows).unwrap();
        assert_eq!(local, 2);
        assert_eq!(desc.len(), 3);
        assert_eq!(desc.as_matrix().row(2), &[2.0, 0.0]);
        // Existing descriptors untouched.
        assert_eq!(desc.as_matrix().row(0), &[1.0, 2.0]);
        assert!(desc.push_domain(&Matrix::zeros(0, 2)).is_err());
        assert!(desc.push_domain(&Matrix::zeros(1, 5)).is_err());
    }

    #[test]
    fn bundle_into_accumulates_and_validates() {
        let encoded = Matrix::ones(2, 2);
        let mut desc = DomainDescriptors::build(&encoded, &[0, 1], 2).unwrap();
        desc.bundle_into(0, &[2.0, 3.0]).unwrap();
        assert_eq!(desc.as_matrix().row(0), &[3.0, 4.0]);
        assert!(desc.bundle_into(5, &[1.0, 1.0]).is_err());
        assert!(desc.bundle_into(0, &[1.0]).is_err());
    }
}
