//! The end-to-end SMORE model (paper Fig. 2 workflow).

use std::time::Instant;

use smore_data::Dataset;
use smore_hdc::encoder::MultiSensorEncoder;
use smore_hdc::model::{FitReport, HdcClassifier, HdcClassifierConfig};
use smore_tensor::{parallel, vecops, Matrix};

use crate::centering::Centerer;
use crate::config::{DomainInit, RangeMode, SmoreConfig};
use crate::descriptor::DomainDescriptors;
use crate::ood::{OodDetector, OodVerdict};
use crate::predictor::{Predictor, ServeScratch};
use crate::test_time::ensemble_weights_into;
use crate::{Result, SmoreError};

/// Outcome of one SMORE prediction, with its full domain context.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// Predicted class label.
    pub label: usize,
    /// Whether the query was declared out-of-distribution.
    pub is_ood: bool,
    /// Maximum descriptor similarity `δ_max`.
    pub delta_max: f32,
    /// The *external* tag of the most similar training domain.
    pub best_domain: usize,
    /// Similarity to every training-domain descriptor, ordered by the
    /// external domain tags in [`Smore::domain_tags`].
    pub domain_similarities: Vec<f32>,
}

/// Report returned by [`Smore::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Number of training samples.
    pub samples: usize,
    /// Number of source domains `K`.
    pub num_domains: usize,
    /// Wall-clock seconds spent encoding.
    pub encode_seconds: f64,
    /// Wall-clock seconds spent training domain models + descriptors.
    pub train_seconds: f64,
    /// Per-domain `(external domain tag, fit report)`.
    pub domain_reports: Vec<(usize, FitReport)>,
}

/// Report returned by [`Smore::enroll_domain`].
#[derive(Debug, Clone, PartialEq)]
pub struct EnrollReport {
    /// The external tag assigned to the enrolled domain.
    pub tag: usize,
    /// Number of windows the domain was enrolled from.
    pub samples: usize,
    /// Total number of source domains `K` after enrolment.
    pub num_domains: usize,
    /// Wall-clock seconds spent encoding + training the new domain model.
    pub seconds: f64,
    /// Fit report of the new domain-specific model.
    pub fit_report: FitReport,
}

/// A fully trained domain that has not been attached to a model yet — the
/// output of [`Smore::prepare_domain`].
///
/// Produced without mutating the source model, so many tenants can prepare
/// enrolments concurrently against one shared frozen [`Smore`] (the
/// multi-tenant architecture of `smore_stream`) and attach the result to
/// their own serving snapshot via
/// [`QuantizedSmore::enroll_domain`](crate::QuantizedSmore::enroll_domain).
#[derive(Debug, Clone)]
pub struct DomainEnrollment {
    /// The new domain-specific model `M_{K+1}`.
    pub model: HdcClassifier,
    /// The bundled domain descriptor `U_{K+1}` (encoded-and-centred
    /// hypervector space).
    pub descriptor: Vec<f32>,
    /// Fit report of the new domain-specific model.
    pub fit_report: FitReport,
    /// Number of windows the domain was trained from.
    pub samples: usize,
}

/// Report returned by [`Smore::evaluate`].
#[derive(Debug, Clone, PartialEq)]
pub struct EvalReport {
    /// Overall accuracy on the evaluation set.
    pub accuracy: f32,
    /// Number of evaluated samples.
    pub samples: usize,
    /// Fraction of samples declared OOD.
    pub ood_fraction: f32,
    /// Wall-clock seconds spent on inference (encoding included).
    pub infer_seconds: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Fitted {
    pub(crate) scaler: ChannelStats,
    pub(crate) centerer: Centerer,
    pub(crate) domain_models: Vec<HdcClassifier>,
    pub(crate) descriptors: DomainDescriptors,
    /// External domain tag for each local model index.
    pub(crate) domain_tags: Vec<usize>,
}

/// Per-channel standardisation statistics fitted on the training windows.
///
/// Real HDC time series pipelines (the OnlineHD/DOMINO lineage) z-score
/// every channel before quantisation so channels with large physical
/// scales do not monopolise the quantiser's resolution; SMORE does the
/// same. Statistics come from training data only.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct ChannelStats {
    pub(crate) mean: Vec<f32>,
    pub(crate) std: Vec<f32>,
}

impl ChannelStats {
    fn fit(windows: &[Matrix], channels: usize) -> Self {
        let mut mean = vec![0.0f64; channels];
        let mut count = 0usize;
        for w in windows {
            for t in 0..w.rows() {
                for (c, &v) in w.row(t).iter().enumerate().take(channels) {
                    if v.is_finite() {
                        mean[c] += v as f64;
                    }
                }
                count += 1;
            }
        }
        let n = count.max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; channels];
        for w in windows {
            for t in 0..w.rows() {
                for (c, &v) in w.row(t).iter().enumerate().take(channels) {
                    if v.is_finite() {
                        let d = v as f64 - mean[c];
                        var[c] += d * d;
                    }
                }
            }
        }
        let std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt() as f32;
                if s > 1e-8 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean: mean.into_iter().map(|m| m as f32).collect(), std }
    }

    fn identity(channels: usize) -> Self {
        Self { mean: vec![0.0; channels], std: vec![1.0; channels] }
    }

    pub(crate) fn storage_bytes(&self) -> usize {
        (self.mean.len() + self.std.len()) * std::mem::size_of::<f32>()
    }

    pub(crate) fn apply(&self, window: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.apply_into(window, &mut out);
        out
    }

    /// [`apply`](Self::apply) into a caller-owned buffer. When `out`
    /// already has the window's shape, the copy reuses its storage and the
    /// call is allocation-free — the serving-loop variant.
    pub(crate) fn apply_into(&self, window: &Matrix, out: &mut Matrix) {
        if out.shape() == window.shape() {
            out.as_mut_slice().copy_from_slice(window.as_slice());
        } else {
            *out = window.clone();
        }
        for t in 0..out.rows() {
            for (c, v) in out.row_mut(t).iter_mut().enumerate() {
                if c < self.mean.len() {
                    *v = (*v - self.mean[c]) / self.std[c];
                }
            }
        }
    }

    fn apply_batch(&self, windows: &[Matrix]) -> Vec<Matrix> {
        windows.iter().map(|w| self.apply(w)).collect()
    }
}

/// The SMORE model: domain-adaptive hyperdimensional classification.
///
/// See the [crate-level documentation](crate) for the full workflow and a
/// runnable example.
#[derive(Debug, Clone)]
pub struct Smore {
    pub(crate) config: SmoreConfig,
    pub(crate) encoder: MultiSensorEncoder,
    pub(crate) fitted: Option<Fitted>,
}

impl Smore {
    /// Creates an unfitted model from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the configuration is
    /// invalid (also validated by the builder).
    pub fn new(config: SmoreConfig) -> Result<Self> {
        config.validate()?;
        let encoder = MultiSensorEncoder::new(config.encoder_config(None))?;
        Ok(Self { config, encoder, fitted: None })
    }

    /// The model configuration.
    pub fn config(&self) -> &SmoreConfig {
        &self.config
    }

    /// Whether [`fit`](Self::fit) completed successfully.
    pub fn is_fitted(&self) -> bool {
        self.fitted.is_some()
    }

    /// Number of source domains `K` of the fitted model.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn num_domains(&self) -> Result<usize> {
        Ok(self.state()?.domain_models.len())
    }

    /// External domain tags, ordered by local model index.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn domain_tags(&self) -> Result<&[usize]> {
        Ok(&self.state()?.domain_tags)
    }

    /// The fitted domain-specific models `M_1..M_K`.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn domain_models(&self) -> Result<&[HdcClassifier]> {
        Ok(&self.state()?.domain_models)
    }

    /// The fitted domain descriptors `U_1..U_K`.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn descriptors(&self) -> Result<&DomainDescriptors> {
        Ok(&self.state()?.descriptors)
    }

    /// Re-tunes the OOD threshold `δ*` without refitting (used by the
    /// Figure 5 hyperparameter sweep).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for a non-cosine value.
    pub fn set_delta_star(&mut self, delta_star: f32) -> Result<()> {
        crate::config::validate_delta_star(delta_star)?;
        self.config.delta_star = delta_star;
        Ok(())
    }

    /// Encodes (and centres, if fitted with centring) a batch of windows.
    ///
    /// Before fitting, this returns the raw encoder output — useful for
    /// diagnostics and the encoding benchmarks.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn encode(&self, windows: &[Matrix]) -> Result<Matrix> {
        let mut encoded = match &self.fitted {
            Some(f) => {
                let scaled = f.scaler.apply_batch(windows);
                self.encoder.encode_batch(&scaled, self.config.threads)?
            }
            None => self.encoder.encode_batch(windows, self.config.threads)?,
        };
        if let Some(f) = &self.fitted {
            f.centerer.apply(&mut encoded);
        }
        Ok(encoded)
    }

    /// Trains on windows with class labels and (external) domain tags —
    /// steps A–D of the paper's Figure 2.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::InvalidConfig`] for length mismatches or label range
    ///   violations.
    /// - [`SmoreError::TooFewDomains`] when fewer than two distinct domain
    ///   tags are present.
    /// - Encoder errors for malformed windows.
    pub fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
    ) -> Result<TrainReport> {
        if windows.is_empty() {
            return Err(SmoreError::InvalidConfig { what: "training set is empty".into() });
        }
        if windows.len() != labels.len() || windows.len() != domains.len() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "parallel arrays disagree: {} windows, {} labels, {} domains",
                    windows.len(),
                    labels.len(),
                    domains.len()
                ),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= self.config.num_classes) {
            return Err(SmoreError::InvalidConfig {
                what: format!("label {bad} out of range for {} classes", self.config.num_classes),
            });
        }

        // Map external domain tags to contiguous local indices.
        let mut tags: Vec<usize> = domains.to_vec();
        tags.sort_unstable();
        tags.dedup();
        if tags.len() < 2 {
            return Err(SmoreError::TooFewDomains { found: tags.len() });
        }
        let local_of = |tag: usize| tags.binary_search(&tag).expect("tag registered above");

        // A: encoding. Channels are standardised with training statistics
        // first (see `ChannelStats`); under FitGlobal the per-sensor
        // quantisation ranges are then fitted on the standardised training
        // windows (5% widened so test values near the extremes are not
        // clamped flat).
        let t0 = Instant::now();
        let scaler = if self.config.standardize {
            ChannelStats::fit(windows, self.config.channels)
        } else {
            ChannelStats::identity(self.config.channels)
        };
        let scaled = scaler.apply_batch(windows);
        if matches!(self.config.range, RangeMode::FitGlobal) {
            let ranges = fit_ranges(&scaled, self.config.channels);
            self.encoder = MultiSensorEncoder::new(self.config.encoder_config(Some(ranges)))?;
        }
        let mut encoded = self.encoder.encode_batch(&scaled, self.config.threads)?;
        let centerer = if self.config.center {
            Centerer::fit(&encoded)?
        } else {
            Centerer::identity(self.config.dim)
        };
        centerer.apply(&mut encoded);
        let encode_seconds = t0.elapsed().as_secs_f64();

        // B–D: domain separation, domain-specific models, descriptors.
        let t1 = Instant::now();
        let local_domains: Vec<usize> = domains.iter().map(|&d| local_of(d)).collect();
        let descriptors = DomainDescriptors::build(&encoded, &local_domains, tags.len())?;

        let classifier_config = HdcClassifierConfig {
            dim: self.config.dim,
            num_classes: self.config.num_classes,
            learning_rate: self.config.learning_rate,
            epochs: self.config.epochs,
        };
        // Shared initialisation (see `DomainInit`): one jointly trained
        // model seeds every domain-specific model, which then specialises
        // on its own domain's samples.
        let shared = match self.config.domain_init {
            DomainInit::Shared => {
                let mut pooled = HdcClassifier::new(classifier_config.clone())?;
                pooled.fit(&encoded, labels)?;
                Some(pooled)
            }
            DomainInit::Independent => None,
        };

        let mut domain_models = Vec::with_capacity(tags.len());
        let mut domain_reports = Vec::with_capacity(tags.len());
        for (k, &tag) in tags.iter().enumerate() {
            let idx: Vec<usize> = (0..windows.len()).filter(|&i| local_domains[i] == k).collect();
            if idx.is_empty() {
                return Err(SmoreError::EmptyDomain { domain: tag });
            }
            let samples = encoded.select_rows(&idx);
            let sub_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
            let (model, report) = match &shared {
                Some(pooled) => {
                    let mut model = HdcClassifier::from_class_hypervectors_with(
                        pooled.class_hypervectors().clone(),
                        self.config.learning_rate,
                        self.config.epochs,
                    )?;
                    let report = model.fit(&samples, &sub_labels)?;
                    (model, report)
                }
                None => {
                    let mut model = HdcClassifier::new(classifier_config.clone())?;
                    let report = model.fit(&samples, &sub_labels)?;
                    (model, report)
                }
            };
            domain_models.push(model);
            domain_reports.push((tag, report));
        }
        let train_seconds = t1.elapsed().as_secs_f64();

        self.fitted =
            Some(Fitted { scaler, centerer, domain_models, descriptors, domain_tags: tags });
        Ok(TrainReport {
            samples: windows.len(),
            num_domains: self.fitted.as_ref().expect("just set").domain_models.len(),
            encode_seconds,
            train_seconds,
            domain_reports,
        })
    }

    /// Convenience wrapper: fit on the rows of `dataset` selected by
    /// `indices`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`fit`](Self::fit).
    pub fn fit_indices(&mut self, dataset: &Dataset, indices: &[usize]) -> Result<TrainReport> {
        let (windows, labels, domains) = dataset.gather(indices);
        self.fit(&windows, &labels, &domains)
    }

    /// Predicts one window with full domain context — steps E–G of
    /// Figure 2, Algorithm 1 end-to-end.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] before training.
    /// - Encoder errors for malformed windows.
    pub fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        let fitted = self.state()?;
        let mut q = self.encoder.encode_window(&fitted.scaler.apply(window))?.into_vec();
        fitted.centerer.apply_one(&mut q);
        Ok(self.predict_encoded(fitted, &q))
    }

    /// Predicts a batch of windows in parallel.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] before training.
    /// - Encoder errors for malformed windows.
    pub fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        let fitted = self.state()?;
        let mut out: Vec<Result<Prediction>> = (0..windows.len())
            .map(|_| {
                Ok(Prediction {
                    label: 0,
                    is_ood: false,
                    delta_max: 0.0,
                    best_domain: 0,
                    domain_similarities: Vec::new(),
                })
            })
            .collect();
        parallel::par_map_into(windows, &mut out, self.config.threads, |w| {
            let mut q = self.encoder.encode_window(&fitted.scaler.apply(w))?.into_vec();
            fitted.centerer.apply_one(&mut q);
            Ok(self.predict_encoded(fitted, &q))
        });
        out.into_iter().collect()
    }

    /// Predicts and scores a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_batch`](Self::predict_batch), plus
    /// [`SmoreError::InvalidConfig`] for mismatched label counts.
    pub fn evaluate(&self, windows: &[Matrix], labels: &[usize]) -> Result<EvalReport> {
        if windows.len() != labels.len() || windows.is_empty() {
            return Err(SmoreError::InvalidConfig {
                what: format!("{} windows but {} labels", windows.len(), labels.len()),
            });
        }
        let t0 = Instant::now();
        let predictions = self.predict_batch(windows)?;
        let infer_seconds = t0.elapsed().as_secs_f64();
        let correct = predictions.iter().zip(labels).filter(|(p, &l)| p.label == l).count();
        let ood = predictions.iter().filter(|p| p.is_ood).count();
        Ok(EvalReport {
            accuracy: correct as f32 / windows.len() as f32,
            samples: windows.len(),
            ood_fraction: ood as f32 / windows.len() as f32,
            infer_seconds,
        })
    }

    /// Convenience wrapper: evaluate on the rows of `dataset` selected by
    /// `indices`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`evaluate`](Self::evaluate).
    pub fn evaluate_indices(&self, dataset: &Dataset, indices: &[usize]) -> Result<EvalReport> {
        let (windows, labels, _) = dataset.gather(indices);
        self.evaluate(&windows, &labels)
    }

    /// Enrols a **new domain online** (§3.5–3.6 extended to streaming
    /// deployment): bundles a fresh descriptor `U_{K+1}` from the given
    /// windows and trains a new domain-specific model `M_{K+1}` with the
    /// paper's adaptive update rule, *without* refitting the existing `K`
    /// models. The encoder geometry (channel scaler, quantisation ranges,
    /// centring mean) stays frozen from the original [`fit`](Self::fit),
    /// so all descriptors and models remain mutually comparable.
    ///
    /// The new model is seeded from the average of the existing
    /// domain-specific models (the online analog of
    /// [`DomainInit::Shared`]) and then specialised on the enrolment
    /// windows — which may carry self- or ensemble-produced labels in a
    /// streaming deployment (see the `smore_stream` crate).
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] before training.
    /// - [`SmoreError::InvalidConfig`] for empty input, mismatched lengths,
    ///   out-of-range labels, or a `tag` that is already enrolled.
    /// - Encoder errors for malformed windows.
    pub fn enroll_domain(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        tag: usize,
    ) -> Result<EnrollReport> {
        if self.state()?.domain_tags.contains(&tag) {
            return Err(SmoreError::InvalidConfig {
                what: format!("domain tag {tag} is already enrolled"),
            });
        }
        let t0 = Instant::now();
        let prep = self.prepare_domain(windows, labels, &[])?;
        let fitted = self.fitted.as_mut().expect("checked above");
        fitted.descriptors.push_bundle(&prep.descriptor)?;
        fitted.domain_models.push(prep.model);
        fitted.domain_tags.push(tag);
        Ok(EnrollReport {
            tag,
            samples: prep.samples,
            num_domains: fitted.domain_models.len(),
            seconds: t0.elapsed().as_secs_f64(),
            fit_report: prep.fit_report,
        })
    }

    /// Trains a new domain **without mutating this model** — the shared
    /// core of [`enroll_domain`](Self::enroll_domain) and the per-tenant
    /// enrolment path of the multi-tenant `smore_stream::ServeEngine`,
    /// where many tenants prepare domains concurrently against one shared
    /// frozen base model.
    ///
    /// The new model is seeded from the average of this model's
    /// domain-specific models *plus* `extra_models` (a tenant's previously
    /// enrolled personal domains, so repeat enrolments stay mutually
    /// coherent with everything that tenant serves), then specialised on
    /// the enrolment windows with the paper's adaptive update rule. The
    /// returned [`DomainEnrollment`] carries the model and the bundled
    /// descriptor `U_{K+1}`, ready for
    /// [`QuantizedSmore::enroll_domain`](crate::QuantizedSmore::enroll_domain)
    /// or [`DomainDescriptors::push_bundle`](crate::descriptor::DomainDescriptors::push_bundle).
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] before training.
    /// - [`SmoreError::InvalidConfig`] for empty input, mismatched
    ///   lengths, out-of-range labels, or an `extra_models` shape that
    ///   disagrees with the fitted models.
    /// - Encoder errors for malformed windows.
    pub fn prepare_domain(
        &self,
        windows: &[Matrix],
        labels: &[usize],
        extra_models: &[HdcClassifier],
    ) -> Result<DomainEnrollment> {
        let fitted = self.state()?;
        if windows.is_empty() {
            return Err(SmoreError::InvalidConfig { what: "enrolment set is empty".into() });
        }
        if windows.len() != labels.len() {
            return Err(SmoreError::InvalidConfig {
                what: format!("{} windows but {} labels", windows.len(), labels.len()),
            });
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= self.config.num_classes) {
            return Err(SmoreError::InvalidConfig {
                what: format!("label {bad} out of range for {} classes", self.config.num_classes),
            });
        }
        if let Some(bad) = extra_models
            .iter()
            .find(|m| m.dim() != self.config.dim || m.num_classes() != self.config.num_classes)
        {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "extra model shape ({}, {}) disagrees with the fitted models ({}, {})",
                    bad.num_classes(),
                    bad.dim(),
                    self.config.num_classes,
                    self.config.dim
                ),
            });
        }
        let encoded = self.encode(windows)?;

        // Seed M_{K+1} from the average of the existing models so the new
        // model starts mutually coherent with the ensemble it will join.
        let (classes, dim) = fitted.domain_models[0].class_hypervectors().shape();
        let mut seed = Matrix::zeros(classes, dim);
        let scale = 1.0 / (fitted.domain_models.len() + extra_models.len()) as f32;
        for model in fitted.domain_models.iter().chain(extra_models) {
            seed.axpy(scale, model.class_hypervectors())?;
        }
        let mut model = HdcClassifier::from_class_hypervectors_with(
            seed,
            self.config.learning_rate,
            self.config.epochs,
        )?;
        let fit_report = model.fit(&encoded, labels)?;

        // Descriptor bundle U_{K+1} = Σ_i H_i over the enrolment windows.
        let mut descriptor = vec![0.0f32; dim];
        for i in 0..encoded.rows() {
            vecops::axpy(1.0, encoded.row(i), &mut descriptor);
        }
        Ok(DomainEnrollment { model, descriptor, fit_report, samples: windows.len() })
    }

    /// Freezes the fitted model into a bit-packed [`QuantizedSmore`]
    /// serving model: domain classifiers, descriptors and the encoder
    /// codebooks are sign-quantized to one bit per dimension, and every
    /// inference-time hypervector operation becomes word-level logic
    /// (XOR binding, popcount similarity). See [`crate::QuantizedSmore`]
    /// for the accuracy/latency tradeoff.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn quantize(&self) -> Result<crate::QuantizedSmore> {
        let fitted = self.state()?;
        crate::QuantizedSmore::from_fitted(&self.config, &self.encoder, fitted)
    }

    /// Algorithm 1's scoring core on an encoded-and-centred query: fills
    /// `sims` (descriptor similarities), `weights` (Eq. 3 ensemble
    /// weights) and `scores` (per-class cosine against the test-time model
    /// `M_T = Σ_k w_k M_k`, materialised class-by-class in the `ensemble`
    /// buffer); returns the OOD verdict. Every buffer is cleared and
    /// refilled, so warm callers allocate nothing.
    fn score_encoded_into(
        &self,
        fitted: &Fitted,
        q: &[f32],
        sims: &mut Vec<f32>,
        weights: &mut Vec<f32>,
        ensemble: &mut Vec<f32>,
        scores: &mut Vec<f32>,
    ) -> OodVerdict {
        fitted.descriptors.similarities_into(q, sims);
        let verdict: OodVerdict = OodDetector::new(self.config.delta_star).decide(sims);
        ensemble_weights_into(
            sims,
            verdict.is_ood,
            self.config.delta_star,
            self.config.weight_power,
            weights,
        );
        ensemble.clear();
        ensemble.resize(self.config.dim, 0.0);
        scores.clear();
        for class in 0..self.config.num_classes {
            ensemble.iter_mut().for_each(|x| *x = 0.0);
            for (model, &w) in fitted.domain_models.iter().zip(weights.iter()) {
                if w > 0.0 {
                    vecops::axpy(w, model.class_hypervectors().row(class), ensemble);
                }
            }
            scores.push(vecops::cosine(q, ensemble));
        }
        verdict
    }

    /// Algorithm 1 on an already encoded-and-centred query.
    fn predict_encoded(&self, fitted: &Fitted, q: &[f32]) -> Prediction {
        let (mut sims, mut weights) = (Vec::new(), Vec::new());
        let (mut ensemble, mut scores) = (Vec::new(), Vec::new());
        let verdict =
            self.score_encoded_into(fitted, q, &mut sims, &mut weights, &mut ensemble, &mut scores);
        Prediction {
            label: vecops::argmax(&scores).unwrap_or(0),
            is_ood: verdict.is_ood,
            delta_max: verdict.delta_max,
            best_domain: fitted.domain_tags[verdict.best_domain],
            domain_similarities: sims,
        }
    }

    /// Encodes one window into the scratch's dense query: channel
    /// standardisation (into the reusable scaled buffer), dense n-gram
    /// encoding and mean-centring.
    fn encode_query_into(
        &self,
        fitted: &Fitted,
        window: &Matrix,
        scratch: &mut ServeScratch,
    ) -> Result<()> {
        fitted.scaler.apply_into(window, &mut scratch.scaled);
        let hv = self.encoder.encode_window(&scratch.scaled)?;
        scratch.dense_query.clear();
        scratch.dense_query.extend_from_slice(hv.as_slice());
        fitted.centerer.apply_one(&mut scratch.dense_query);
        Ok(())
    }

    /// Predicts one window through caller-owned scratch — the dense
    /// backend of the unified [`Predictor`] surface. The returned
    /// reference points into `scratch`; clone it to keep the prediction
    /// past the next call. (Unlike the quantized backend, the dense
    /// encoder itself still allocates internally; the scratch removes the
    /// scoring-side allocations.)
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] before training.
    /// - Encoder errors for malformed windows.
    pub fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        let fitted = self.state()?;
        self.encode_query_into(fitted, window, scratch)?;
        let ServeScratch { dense_query, sims, weights, ensemble, scores, .. } = &mut *scratch;
        let verdict = self.score_encoded_into(fitted, dense_query, sims, weights, ensemble, scores);
        let prediction = &mut scratch.prediction;
        prediction.label = vecops::argmax(&scratch.scores).unwrap_or(0);
        prediction.is_ood = verdict.is_ood;
        prediction.delta_max = verdict.delta_max;
        prediction.best_domain = fitted.domain_tags[verdict.best_domain];
        prediction.domain_similarities.clear();
        prediction.domain_similarities.extend_from_slice(&scratch.sims);
        Ok(&scratch.prediction)
    }

    /// Per-class ensemble scores for one window (the dense
    /// [`Predictor::score_into`] surface): `scores` is cleared and
    /// refilled with `num_classes` entries; the predicted label is their
    /// argmax.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_window_with`](Self::predict_window_with).
    pub fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        let fitted = self.state()?;
        self.encode_query_into(fitted, window, scratch)?;
        let ServeScratch { dense_query, sims, weights, ensemble, .. } = &mut *scratch;
        self.score_encoded_into(fitted, dense_query, sims, weights, ensemble, scores);
        Ok(())
    }

    fn state(&self) -> Result<&Fitted> {
        self.fitted.as_ref().ok_or(SmoreError::NotFitted)
    }
}

impl Predictor for Smore {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        Smore::predict_window_with(self, window, scratch)
    }

    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        Smore::score_into(self, window, scratch, scores)
    }

    fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        Smore::predict_window(self, window)
    }

    /// Overrides the provided sequential batch with the thread-parallel
    /// implementation.
    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        Smore::predict_batch(self, windows)
    }
}

/// Per-channel `(min, max)` across all training windows, widened by 5% of
/// the span on each side (a degenerate span falls back to ±0.5 around the
/// constant value).
fn fit_ranges(windows: &[Matrix], channels: usize) -> Vec<(f32, f32)> {
    let mut lo = vec![f32::INFINITY; channels];
    let mut hi = vec![f32::NEG_INFINITY; channels];
    for w in windows {
        for t in 0..w.rows() {
            for (c, &v) in w.row(t).iter().enumerate().take(channels) {
                if v.is_finite() {
                    lo[c] = lo[c].min(v);
                    hi[c] = hi[c].max(v);
                }
            }
        }
    }
    lo.iter()
        .zip(&hi)
        .map(|(&l, &h)| {
            if !l.is_finite() || !h.is_finite() {
                (-1.0, 1.0)
            } else if h - l < 1e-6 {
                (l - 0.5, h + 0.5)
            } else {
                let margin = 0.05 * (h - l);
                (l - margin, h + margin)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn small_config(channels: usize, classes: usize) -> SmoreConfig {
        SmoreConfig::builder()
            .dim(1024)
            .channels(channels)
            .num_classes(classes)
            .epochs(10)
            .threads(2)
            .build()
            .unwrap()
    }

    fn shifted_dataset(seed: u64) -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "core-test".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 60 },
                DomainSpec { subjects: vec![2, 3], windows: 60 },
                DomainSpec { subjects: vec![4, 5], windows: 60 },
                DomainSpec { subjects: vec![6, 7], windows: 60 },
            ],
            shift_severity: 0.8,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn unfitted_model_refuses_prediction() {
        let model = Smore::new(small_config(3, 4)).unwrap();
        assert!(!model.is_fitted());
        let w = Matrix::zeros(24, 3);
        assert!(matches!(model.predict_window(&w), Err(SmoreError::NotFitted)));
        assert!(matches!(model.num_domains(), Err(SmoreError::NotFitted)));
        assert!(matches!(model.descriptors(), Err(SmoreError::NotFitted)));
    }

    #[test]
    fn fit_then_lodo_predict_beats_chance() {
        // A single unlucky held-out domain can legitimately collapse (its
        // subjects may resemble no source domain — the paper's Fig. 1a
        // failure mode), so the contract is on the *mean* LODO accuracy.
        let ds = shifted_dataset(1);
        let mut total = 0.0f32;
        for held in 0..4 {
            let (train, test) = split::lodo(&ds, held).unwrap();
            let mut model = Smore::new(small_config(3, 4)).unwrap();
            let report = model.fit_indices(&ds, &train).unwrap();
            assert_eq!(report.num_domains, 3);
            assert_eq!(report.samples, train.len());
            assert!(report.encode_seconds >= 0.0);
            let eval = model.evaluate_indices(&ds, &test).unwrap();
            assert_eq!(eval.samples, test.len());
            total += eval.accuracy;
        }
        let mean = total / 4.0;
        assert!(mean > 0.25 + 0.1, "mean LODO accuracy {mean} not above chance");
    }

    #[test]
    fn fit_validates_inputs() {
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        assert!(model.fit(&[], &[], &[]).is_err());
        let ds = shifted_dataset(2);
        let (w, l, mut d) = ds.gather(&[0, 1, 2]);
        assert!(model.fit(&w, &l[..2], &d).is_err(), "length mismatch");
        // Single domain only -> TooFewDomains.
        d.iter_mut().for_each(|x| *x = 0);
        assert!(matches!(model.fit(&w, &l, &d), Err(SmoreError::TooFewDomains { found: 1 })));
        // Bad label.
        let bad_labels = vec![99, 0, 0];
        let (w, _, d) = ds.gather(&[0, 1, 60]);
        assert!(model.fit(&w, &bad_labels, &d).is_err());
    }

    #[test]
    fn prediction_exposes_domain_context() {
        let ds = shifted_dataset(3);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        assert_eq!(model.domain_tags().unwrap(), &[1, 2, 3]);
        let p = model.predict_window(ds.window(test[0])).unwrap();
        assert_eq!(p.domain_similarities.len(), 3);
        assert!(p.label < 4);
        assert!((1..=3).contains(&p.best_domain));
        assert!((-1.0..=1.0).contains(&p.delta_max));
    }

    #[test]
    fn predict_batch_matches_predict_window() {
        let ds = shifted_dataset(4);
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let subset: Vec<Matrix> = test[..8].iter().map(|&i| ds.window(i).clone()).collect();
        let batch = model.predict_batch(&subset).unwrap();
        for (i, w) in subset.iter().enumerate() {
            assert_eq!(batch[i], model.predict_window(w).unwrap());
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let ds = shifted_dataset(5);
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let mut a = Smore::new(small_config(3, 4)).unwrap();
        let mut b = Smore::new(small_config(3, 4)).unwrap();
        a.fit_indices(&ds, &train).unwrap();
        b.fit_indices(&ds, &train).unwrap();
        let pa = a.predict_window(ds.window(test[0])).unwrap();
        let pb = b.predict_window(ds.window(test[0])).unwrap();
        assert_eq!(pa, pb);
    }

    #[test]
    fn delta_star_extremes_control_ood_fraction() {
        let ds = shifted_dataset(6);
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let subset: Vec<Matrix> = test[..20].iter().map(|&i| ds.window(i).clone()).collect();
        let labels: Vec<usize> = test[..20].iter().map(|&i| ds.label(i)).collect();

        model.set_delta_star(-1.0).unwrap();
        let never = model.evaluate(&subset, &labels).unwrap();
        assert_eq!(never.ood_fraction, 0.0, "δ* = -1 declares nothing OOD");

        model.set_delta_star(1.0).unwrap();
        let always = model.evaluate(&subset, &labels).unwrap();
        assert!(always.ood_fraction > 0.9, "δ* = 1 declares (almost) everything OOD");

        assert!(model.set_delta_star(1.5).is_err());
        assert!(model.set_delta_star(f32::NAN).is_err());
    }

    #[test]
    fn held_out_domain_looks_more_ood_than_training_domains() {
        let ds = shifted_dataset(7);
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let delta_of = |idx: &[usize]| -> f32 {
            let ws: Vec<Matrix> = idx.iter().map(|&i| ds.window(i).clone()).collect();
            let ps = model.predict_batch(&ws).unwrap();
            ps.iter().map(|p| p.delta_max).sum::<f32>() / ps.len() as f32
        };
        let train_delta = delta_of(&train[..30]);
        let test_delta = delta_of(&test[..30]);
        assert!(
            train_delta > test_delta,
            "training domains should look more in-distribution: {train_delta} vs {test_delta}"
        );
    }

    #[test]
    fn enroll_domain_adds_model_descriptor_and_tag() {
        let ds = shifted_dataset(10);
        let (train, test) = split::lodo(&ds, 3).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        assert_eq!(model.num_domains().unwrap(), 3);

        let (w, l, _) = ds.gather(&test[..40]);
        let report = model.enroll_domain(&w, &l, 3).unwrap();
        assert_eq!(report.tag, 3);
        assert_eq!(report.samples, 40);
        assert_eq!(report.num_domains, 4);
        assert!(report.seconds >= 0.0);
        assert_eq!(model.num_domains().unwrap(), 4);
        assert_eq!(model.domain_tags().unwrap(), &[0, 1, 2, 3]);
        assert_eq!(model.descriptors().unwrap().len(), 4);
        // Predictions now report four similarities and may claim the new tag.
        let p = model.predict_window(ds.window(test[0])).unwrap();
        assert_eq!(p.domain_similarities.len(), 4);
    }

    #[test]
    fn enroll_domain_improves_accuracy_on_the_enrolled_domain() {
        let ds = shifted_dataset(11);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (buf_w, buf_l, _) = ds.gather(&test[..40]);
        let (eval_w, eval_l, _) = ds.gather(&test[40..]);
        let before = model.evaluate(&eval_w, &eval_l).unwrap().accuracy;
        model.enroll_domain(&buf_w, &buf_l, 0).unwrap();
        let after = model.evaluate(&eval_w, &eval_l).unwrap().accuracy;
        assert!(
            after >= before,
            "enrolling ground-truth windows must not hurt the enrolled domain: {before} -> {after}"
        );
    }

    #[test]
    fn prepare_domain_is_non_mutating_and_validates_extra_models() {
        let ds = shifted_dataset(13);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (w, l, _) = ds.gather(&test[..24]);

        let prep = model.prepare_domain(&w, &l, &[]).unwrap();
        assert_eq!(prep.samples, 24);
        assert_eq!(prep.descriptor.len(), 1024);
        assert_eq!(model.num_domains().unwrap(), 3, "prepare_domain must not mutate");
        // enroll_domain attaches exactly what prepare_domain trains.
        let mut enrolled = model.clone();
        enrolled.enroll_domain(&w, &l, 99).unwrap();
        assert_eq!(
            enrolled.domain_models().unwrap().last().unwrap().class_hypervectors(),
            prep.model.class_hypervectors()
        );
        // A tenant's own earlier models change the seeding.
        let personal = model.prepare_domain(&w, &l, std::slice::from_ref(&prep.model)).unwrap();
        assert_ne!(personal.model.class_hypervectors(), prep.model.class_hypervectors());
        // Mis-shaped extra models are a typed up-front InvalidConfig.
        let small = HdcClassifier::new(HdcClassifierConfig {
            dim: 64,
            num_classes: 4,
            learning_rate: 0.05,
            epochs: 1,
        })
        .unwrap();
        assert!(matches!(
            model.prepare_domain(&w, &l, &[small]),
            Err(SmoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn enroll_domain_validates() {
        let ds = shifted_dataset(12);
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let mut unfitted = Smore::new(small_config(3, 4)).unwrap();
        let (w, l, _) = ds.gather(&test[..8]);
        assert!(matches!(unfitted.enroll_domain(&w, &l, 9), Err(SmoreError::NotFitted)));

        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        assert!(model.enroll_domain(&[], &[], 9).is_err(), "empty enrolment");
        assert!(model.enroll_domain(&w, &l[..4], 9).is_err(), "length mismatch");
        let bad_labels = vec![99; w.len()];
        assert!(model.enroll_domain(&w, &bad_labels, 9).is_err(), "label range");
        assert!(model.enroll_domain(&w, &l, 0).is_err(), "tag 0 already enrolled");
        // A failed enrolment leaves the model intact and usable.
        assert_eq!(model.num_domains().unwrap(), 3);
        model.predict_window(ds.window(test[0])).unwrap();
    }

    #[test]
    fn encode_is_usable_before_fit() {
        let model = Smore::new(small_config(3, 4)).unwrap();
        let ds = shifted_dataset(8);
        let encoded = model.encode(&ds.windows()[..4]).unwrap();
        assert_eq!(encoded.shape(), (4, 1024));
    }

    #[test]
    fn evaluate_validates() {
        let ds = shifted_dataset(9);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(&ds, &train).unwrap();
        assert!(model.evaluate(&[], &[]).is_err());
        let w = vec![ds.window(0).clone()];
        assert!(model.evaluate(&w, &[0, 1]).is_err());
    }
}
