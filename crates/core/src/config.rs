use smore_hdc::encoder::{EncoderConfig, ValueRange};
use smore_hdc::memory::Quantization;

use crate::{Result, SmoreError};

/// How the domain-specific models are initialised.
///
/// The paper trains "K domain-specific models" (§3.4) without prescribing
/// their initialisation. Starting every `M_k` from a *shared* model that
/// was trained jointly on all source domains, then specialising it on the
/// domain's own samples (one adaptive bootstrap pass plus mistake-driven
/// refinement) keeps the K models mutually coherent, so their
/// similarity-weighted ensemble never underperforms the pooled model —
/// while independent training (the literal reading) produces ensembles of
/// misaligned class boundaries that are strictly worse on every dataset we
/// calibrated. Both are available; the ablation bench compares them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum DomainInit {
    /// Initialise every domain model from a jointly trained shared model,
    /// then specialise per domain (calibrated default).
    #[default]
    Shared,
    /// Train every domain model independently from zero.
    Independent,
}

/// How the encoder's quantisation range is established.
///
/// The paper's Figure 3 normalises each sensor by the extremes *within the
/// current window*. That choice erases amplitude, gain and bias — which is
/// precisely where subject (domain) identity lives — so descriptors built
/// on per-window codes cannot separate domains. SMORE therefore defaults
/// to [`RangeMode::FitGlobal`]: per-sensor ranges fitted on the training
/// windows (the convention of the OnlineHD/DOMINO implementation lineage).
/// [`RangeMode::PerWindow`] remains available as the paper-literal
/// ablation.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum RangeMode {
    /// Fit per-sensor `(min, max)` ranges on the training windows at
    /// [`crate::Smore::fit`] time, widened by 5% on each side.
    #[default]
    FitGlobal,
    /// Paper-literal per-window, per-sensor normalisation.
    PerWindow,
    /// Caller-provided per-sensor `(low, high)` ranges.
    Fixed(Vec<(f32, f32)>),
}

/// Complete configuration of a [`crate::Smore`] model.
///
/// Construct through [`SmoreConfig::builder`]; every knob has a calibrated
/// default matching the paper's setup (`d = 8k`, trigram encoding,
/// `δ* = 0.3` for the centred similarity scale — see `delta_star`).
#[derive(Debug, Clone, PartialEq)]
pub struct SmoreConfig {
    /// Hypervector dimensionality `d` (paper: 8k).
    pub dim: usize,
    /// Number of sensor channels in each window.
    pub channels: usize,
    /// Number of activity classes `n`.
    pub num_classes: usize,
    /// n-gram size of the temporal encoder.
    pub ngram: usize,
    /// Quantisation levels for the `LevelFlip` codebook.
    pub levels: usize,
    /// Quantisation strategy.
    pub quantization: Quantization,
    /// Value-range handling of the encoder (see [`RangeMode`]).
    pub range: RangeMode,
    /// OOD threshold `δ*` (Algorithm 1). Applied to *centred* similarities
    /// when [`SmoreConfig::center`] is true: encoded hypervectors have the
    /// global training mean removed, which restores the wide similarity
    /// spread the paper's Figure 5 sweeps over (our calibrated optimum sits
    /// near 0.3; the paper reports 0.65 on its uncentred scale).
    pub delta_star: f32,
    /// Learning rate `η` of the domain-specific models.
    pub learning_rate: f32,
    /// Maximum training epochs per domain-specific model.
    pub epochs: usize,
    /// Whether to centre encoded hypervectors by the global training mean.
    pub center: bool,
    /// Whether to z-score every channel with training statistics before
    /// quantisation (the OnlineHD/DOMINO preprocessing convention).
    pub standardize: bool,
    /// Domain-model initialisation strategy (see [`DomainInit`]).
    pub domain_init: DomainInit,
    /// Sharpening exponent applied to the ensemble weights:
    /// `w_k = (max(δ_k, 0) / δ_max)^p`. `1.0` recovers the paper's Eq. 3
    /// up to a global scale (cosine scoring is scale-invariant).
    pub weight_power: f32,
    /// Worker threads for batch encoding/prediction.
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
}

/// Validates an OOD threshold `δ*`: finite and on the cosine scale.
///
/// Shared by [`SmoreConfig::validate`], [`crate::Smore::set_delta_star`]
/// and [`crate::QuantizedSmore::set_delta_star`] so dense and quantized
/// models can never drift apart in what they accept.
pub(crate) fn validate_delta_star(delta_star: f32) -> Result<()> {
    if !delta_star.is_finite() || !(-1.0..=1.0).contains(&delta_star) {
        return Err(SmoreError::InvalidConfig {
            what: format!("delta_star must be a cosine value in [-1, 1], got {delta_star}"),
        });
    }
    Ok(())
}

impl SmoreConfig {
    /// Starts a builder with calibrated defaults.
    pub fn builder() -> SmoreConfigBuilder {
        SmoreConfigBuilder::default()
    }

    /// Validates the assembled configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for any out-of-range knob.
    pub fn validate(&self) -> Result<()> {
        if self.dim == 0 {
            return Err(SmoreError::InvalidConfig { what: "dim must be positive".into() });
        }
        if self.channels == 0 {
            return Err(SmoreError::InvalidConfig { what: "channels must be positive".into() });
        }
        if self.num_classes == 0 {
            return Err(SmoreError::InvalidConfig { what: "num_classes must be positive".into() });
        }
        if self.ngram == 0 {
            return Err(SmoreError::InvalidConfig { what: "ngram must be positive".into() });
        }
        validate_delta_star(self.delta_star)?;
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(SmoreError::InvalidConfig {
                what: format!("learning_rate must be in (0, 1], got {}", self.learning_rate),
            });
        }
        if self.epochs == 0 {
            return Err(SmoreError::InvalidConfig { what: "epochs must be positive".into() });
        }
        if self.threads == 0 {
            return Err(SmoreError::InvalidConfig { what: "threads must be positive".into() });
        }
        if !(self.weight_power > 0.0 && self.weight_power.is_finite()) {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "weight_power must be positive and finite, got {}",
                    self.weight_power
                ),
            });
        }
        if let RangeMode::Fixed(ranges) = &self.range {
            if ranges.len() != self.channels {
                return Err(SmoreError::InvalidConfig {
                    what: format!(
                        "fixed range needs one pair per channel: got {} for {} channels",
                        ranges.len(),
                        self.channels
                    ),
                });
            }
        }
        Ok(())
    }

    /// The encoder configuration implied by this model configuration.
    ///
    /// `fitted_ranges` supplies the per-sensor ranges when the mode is
    /// [`RangeMode::FitGlobal`] and they have been fitted; before fitting
    /// (and for [`RangeMode::PerWindow`]) the encoder falls back to
    /// per-window normalisation.
    pub fn encoder_config(&self, fitted_ranges: Option<Vec<(f32, f32)>>) -> EncoderConfig {
        let range = match (&self.range, fitted_ranges) {
            (RangeMode::Fixed(r), _) => ValueRange::Global(r.clone()),
            (RangeMode::FitGlobal, Some(r)) => ValueRange::Global(r),
            (RangeMode::FitGlobal, None) | (RangeMode::PerWindow, _) => ValueRange::PerWindow,
        };
        EncoderConfig {
            dim: self.dim,
            sensors: self.channels,
            ngram: self.ngram,
            levels: self.levels,
            quantization: self.quantization,
            range,
            normalize: true,
            seed: self.seed,
        }
    }
}

/// Builder for [`SmoreConfig`] (C-BUILDER).
///
/// # Example
///
/// ```
/// use smore::SmoreConfig;
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let cfg = SmoreConfig::builder()
///     .dim(4096)
///     .channels(6)
///     .num_classes(12)
///     .delta_star(0.35)
///     .build()?;
/// assert_eq!(cfg.dim, 4096);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SmoreConfigBuilder {
    config: SmoreConfig,
}

impl Default for SmoreConfigBuilder {
    fn default() -> Self {
        Self {
            config: SmoreConfig {
                dim: 8192,
                channels: 1,
                num_classes: 2,
                ngram: 3,
                levels: 64,
                quantization: Quantization::default(),
                range: RangeMode::default(),
                delta_star: 0.3,
                learning_rate: 0.05,
                epochs: 20,
                center: true,
                standardize: true,
                domain_init: DomainInit::default(),
                weight_power: 1.0,
                threads: smore_tensor::parallel::default_threads(),
                seed: 0x5304E,
            },
        }
    }
}

impl SmoreConfigBuilder {
    /// Sets the hypervector dimensionality `d`.
    pub fn dim(mut self, dim: usize) -> Self {
        self.config.dim = dim;
        self
    }

    /// Sets the number of sensor channels.
    pub fn channels(mut self, channels: usize) -> Self {
        self.config.channels = channels;
        self
    }

    /// Sets the number of activity classes.
    pub fn num_classes(mut self, num_classes: usize) -> Self {
        self.config.num_classes = num_classes;
        self
    }

    /// Sets the temporal n-gram size.
    pub fn ngram(mut self, ngram: usize) -> Self {
        self.config.ngram = ngram;
        self
    }

    /// Sets the quantisation level count.
    pub fn levels(mut self, levels: usize) -> Self {
        self.config.levels = levels;
        self
    }

    /// Sets the quantisation strategy.
    pub fn quantization(mut self, quantization: Quantization) -> Self {
        self.config.quantization = quantization;
        self
    }

    /// Sets the encoder value-range handling.
    pub fn range(mut self, range: RangeMode) -> Self {
        self.config.range = range;
        self
    }

    /// Sets the OOD threshold `δ*`.
    pub fn delta_star(mut self, delta_star: f32) -> Self {
        self.config.delta_star = delta_star;
        self
    }

    /// Sets the learning rate `η`.
    pub fn learning_rate(mut self, learning_rate: f32) -> Self {
        self.config.learning_rate = learning_rate;
        self
    }

    /// Sets the maximum training epochs per domain model.
    pub fn epochs(mut self, epochs: usize) -> Self {
        self.config.epochs = epochs;
        self
    }

    /// Enables or disables mean-centring of encoded hypervectors.
    pub fn center(mut self, center: bool) -> Self {
        self.config.center = center;
        self
    }

    /// Enables or disables per-channel standardisation before encoding.
    pub fn standardize(mut self, standardize: bool) -> Self {
        self.config.standardize = standardize;
        self
    }

    /// Sets the domain-model initialisation strategy.
    pub fn domain_init(mut self, domain_init: DomainInit) -> Self {
        self.config.domain_init = domain_init;
        self
    }

    /// Sets the ensemble weight-sharpening exponent.
    pub fn weight_power(mut self, weight_power: f32) -> Self {
        self.config.weight_power = weight_power;
        self
    }

    /// Sets the worker thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.config.threads = threads;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for any out-of-range knob.
    pub fn build(self) -> Result<SmoreConfig> {
        self.config.validate()?;
        Ok(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_valid() {
        let cfg = SmoreConfig::builder().build().unwrap();
        assert_eq!(cfg.dim, 8192);
        assert_eq!(cfg.ngram, 3);
        assert!(cfg.center);
        assert!(cfg.threads >= 1);
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = SmoreConfig::builder()
            .dim(1024)
            .channels(7)
            .num_classes(9)
            .ngram(4)
            .levels(32)
            .quantization(Quantization::LevelFlip)
            .delta_star(0.5)
            .learning_rate(0.1)
            .epochs(5)
            .center(false)
            .domain_init(DomainInit::Independent)
            .weight_power(4.0)
            .threads(2)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(cfg.channels, 7);
        assert_eq!(cfg.num_classes, 9);
        assert_eq!(cfg.ngram, 4);
        assert_eq!(cfg.levels, 32);
        assert_eq!(cfg.quantization, Quantization::LevelFlip);
        assert_eq!(cfg.delta_star, 0.5);
        assert_eq!(cfg.learning_rate, 0.1);
        assert_eq!(cfg.epochs, 5);
        assert!(!cfg.center);
        assert_eq!(cfg.domain_init, DomainInit::Independent);
        assert_eq!(cfg.weight_power, 4.0);
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.seed, 99);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(SmoreConfig::builder().dim(0).build().is_err());
        assert!(SmoreConfig::builder().channels(0).build().is_err());
        assert!(SmoreConfig::builder().num_classes(0).build().is_err());
        assert!(SmoreConfig::builder().ngram(0).build().is_err());
        assert!(SmoreConfig::builder().delta_star(1.5).build().is_err());
        assert!(SmoreConfig::builder().delta_star(f32::NAN).build().is_err());
        assert!(SmoreConfig::builder().learning_rate(0.0).build().is_err());
        assert!(SmoreConfig::builder().learning_rate(2.0).build().is_err());
        assert!(SmoreConfig::builder().epochs(0).build().is_err());
        assert!(SmoreConfig::builder().threads(0).build().is_err());
        assert!(SmoreConfig::builder().weight_power(0.0).build().is_err());
        assert!(SmoreConfig::builder().weight_power(f32::INFINITY).build().is_err());
        // A fixed range must provide one pair per channel.
        assert!(SmoreConfig::builder()
            .channels(3)
            .range(RangeMode::Fixed(vec![(0.0, 1.0)]))
            .build()
            .is_err());
    }

    #[test]
    fn encoder_config_mirrors_model_config() {
        let cfg = SmoreConfig::builder().dim(2048).channels(5).ngram(2).seed(7).build().unwrap();
        let enc = cfg.encoder_config(None);
        assert_eq!(enc.dim, 2048);
        assert_eq!(enc.sensors, 5);
        assert_eq!(enc.ngram, 2);
        assert_eq!(enc.seed, 7);
        assert!(enc.normalize);
        // Before fitting, FitGlobal falls back to per-window normalisation.
        assert_eq!(enc.range, ValueRange::PerWindow);
        // After fitting, the ranges flow through.
        let enc = cfg.encoder_config(Some(vec![(0.0, 1.0); 5]));
        assert!(matches!(enc.range, ValueRange::Global(_)));
        // PerWindow mode ignores fitted ranges.
        let cfg = SmoreConfig::builder().channels(2).range(RangeMode::PerWindow).build().unwrap();
        let enc = cfg.encoder_config(Some(vec![(0.0, 1.0); 2]));
        assert_eq!(enc.range, ValueRange::PerWindow);
        // Fixed mode always uses the caller's ranges.
        let cfg = SmoreConfig::builder()
            .channels(1)
            .range(RangeMode::Fixed(vec![(-2.0, 2.0)]))
            .build()
            .unwrap();
        assert!(matches!(cfg.encoder_config(None).range, ValueRange::Global(_)));
    }
}
