//! Adaptive test-time modeling (paper §3.6, Eq. 3, Algorithm 1 lines 3–6).
//!
//! For every query SMORE assembles a bespoke inference model from the
//! domain-specific models:
//!
//! - **OOD query** (line 3): ensemble *all* domains weighted by their
//!   descriptor similarity — `M_T = Σ_k δ(Q, U_k) · M_k` — because no
//!   single source domain can claim the sample and breadth beats purity.
//! - **In-distribution query** (lines 5–6): ensemble only the domains with
//!   `δ(Q, U_i) ≥ δ*`; models of dissimilar domains would only inject noise
//!   and mislead the classification (§3.6.2).

use smore_hdc::model::HdcClassifier;

use crate::ood::OodDecision;
use crate::Result;

/// Assembles the test-time model `M_T` for one query.
///
/// Negative similarities are clamped to zero so a strongly dissimilar
/// domain can never *subtract* evidence (cosine values may be negative on
/// the centred scale).
///
/// # Errors
///
/// Propagates [`smore_hdc::HdcError`] when the models disagree in shape or
/// the decision's similarity vector disagrees in length (both indicate
/// internal wiring bugs rather than user errors).
///
/// # Example
///
/// ```
/// use smore::ood::OodDetector;
/// use smore::test_time::build_test_time_model;
/// use smore_hdc::model::HdcClassifier;
/// use smore_tensor::init;
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let mut rng = init::rng(5);
/// let m1 = HdcClassifier::from_class_hypervectors(init::bipolar_matrix(&mut rng, 3, 64))?;
/// let m2 = HdcClassifier::from_class_hypervectors(init::bipolar_matrix(&mut rng, 3, 64))?;
/// let decision = OodDetector::new(0.5).detect(&[0.4, 0.3]); // OOD
/// let mt = build_test_time_model(&[m1, m2], &decision, 0.5, 1.0)?;
/// assert_eq!(mt.num_classes(), 3);
/// # Ok(())
/// # }
/// ```
pub fn build_test_time_model(
    models: &[HdcClassifier],
    decision: &OodDecision,
    delta_star: f32,
    weight_power: f32,
) -> Result<HdcClassifier> {
    let refs: Vec<&HdcClassifier> = models.iter().collect();
    let weights =
        ensemble_weights_powered(&decision.similarities, decision.is_ood, delta_star, weight_power);
    Ok(HdcClassifier::ensemble(&refs, &weights)?)
}

/// The ensemble weights Algorithm 1 assigns for a query (Eq. 3 literal,
/// i.e. `weight_power = 1`).
///
/// - OOD: every domain participates with weight `max(δ_k, 0)`.
/// - In-distribution: only domains with `δ_k ≥ δ*` participate; the rest
///   get weight zero. If the filter would zero every weight (possible only
///   through floating-point edge cases), all domains are readmitted so the
///   model never degenerates to all-zeros.
pub fn ensemble_weights(similarities: &[f32], is_ood: bool, delta_star: f32) -> Vec<f32> {
    ensemble_weights_powered(similarities, is_ood, delta_star, 1.0)
}

/// [`ensemble_weights`] with an additional sharpening exponent:
/// `w_k = (max(δ_k, 0) / δ_max)^p` before the OOD/threshold logic's
/// zeroing. `p = 1` reproduces Eq. 3 up to a global scale (cosine scoring
/// is scale-invariant); larger `p` concentrates the ensemble on the most
/// similar domains.
pub fn ensemble_weights_powered(
    similarities: &[f32],
    is_ood: bool,
    delta_star: f32,
    power: f32,
) -> Vec<f32> {
    let mut out = Vec::with_capacity(similarities.len());
    ensemble_weights_into(similarities, is_ood, delta_star, power, &mut out);
    out
}

/// [`ensemble_weights_powered`] into a caller-owned buffer (cleared and
/// refilled; allocation-free once its capacity covers the domain count) —
/// the serving-loop variant.
pub fn ensemble_weights_into(
    similarities: &[f32],
    is_ood: bool,
    delta_star: f32,
    power: f32,
    out: &mut Vec<f32>,
) {
    let delta_max =
        similarities.iter().copied().filter(|s| s.is_finite()).fold(f32::NEG_INFINITY, f32::max);
    let clamp = |s: f32| if s.is_finite() && s > 0.0 { s } else { 0.0 };
    let sharpen = |s: f32| {
        let c = clamp(s);
        if power == 1.0 || c == 0.0 || delta_max <= 0.0 {
            // Eq. 3 literal: the raw (clamped) similarity.
            c
        } else {
            (c / delta_max).powf(power)
        }
    };
    out.clear();
    if is_ood {
        out.extend(similarities.iter().map(|&s| sharpen(s)));
        return;
    }
    out.extend(similarities.iter().map(|&s| if s >= delta_star { sharpen(s) } else { 0.0 }));
    if out.iter().all(|&w| w == 0.0) {
        out.clear();
        out.extend(similarities.iter().map(|&s| sharpen(s)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ood::OodDetector;
    use smore_tensor::{init, Matrix};

    fn model_filled(value: f32, classes: usize, dim: usize) -> HdcClassifier {
        HdcClassifier::from_class_hypervectors(Matrix::filled(classes, dim, value)).unwrap()
    }

    #[test]
    fn weights_into_reuses_the_buffer_and_matches_allocating_path() {
        let mut buf = vec![9.0f32; 7]; // stale contents must be cleared
        for (sims, is_ood, power) in [
            (vec![0.6f32, 0.3, -0.2], true, 1.0),
            (vec![0.6, 0.3, -0.2], false, 2.0),
            (vec![0.1, 0.2], false, 1.0), // all below δ* → readmission path
            (vec![f32::NAN, 0.5], true, 3.0),
            (Vec::new(), true, 1.0),
        ] {
            ensemble_weights_into(&sims, is_ood, 0.45, power, &mut buf);
            assert_eq!(buf, ensemble_weights_powered(&sims, is_ood, 0.45, power));
        }
    }

    #[test]
    fn ood_uses_all_domains() {
        let w = ensemble_weights(&[0.4, 0.2, 0.3], true, 0.5);
        assert_eq!(w, vec![0.4, 0.2, 0.3]);
    }

    #[test]
    fn ood_clamps_negative_similarities() {
        let w = ensemble_weights(&[0.4, -0.2, 0.3], true, 0.5);
        assert_eq!(w, vec![0.4, 0.0, 0.3]);
    }

    #[test]
    fn in_distribution_filters_below_threshold() {
        let w = ensemble_weights(&[0.8, 0.2, 0.55], false, 0.5);
        assert_eq!(w, vec![0.8, 0.0, 0.55]);
    }

    #[test]
    fn degenerate_filter_falls_back_to_all() {
        // Not OOD but nothing passes the filter (edge case): readmit all.
        let w = ensemble_weights(&[0.3, 0.2], false, 0.5);
        assert_eq!(w, vec![0.3, 0.2]);
    }

    #[test]
    fn nan_similarity_contributes_nothing() {
        let w = ensemble_weights(&[f32::NAN, 0.7], true, 0.5);
        assert_eq!(w, vec![0.0, 0.7]);
    }

    #[test]
    fn powered_weights_sharpen_toward_best_domain() {
        let w1 = ensemble_weights_powered(&[0.6, 0.3], true, 0.9, 1.0);
        assert_eq!(w1, vec![0.6, 0.3], "p = 1 is Eq. 3 literal");
        let w4 = ensemble_weights_powered(&[0.6, 0.3], true, 0.9, 4.0);
        assert_eq!(w4[0], 1.0, "best domain normalises to 1");
        assert!(w4[1] < 0.1, "dissimilar domain shrinks: {}", w4[1]);
        // Threshold filtering still applies for in-distribution queries.
        let w = ensemble_weights_powered(&[0.8, 0.2], false, 0.5, 2.0);
        assert_eq!(w[1], 0.0);
        assert_eq!(w[0], 1.0);
    }

    #[test]
    fn test_time_model_is_weighted_sum() {
        let m1 = model_filled(1.0, 2, 4);
        let m2 = model_filled(2.0, 2, 4);
        let decision = OodDetector::new(0.9).detect(&[0.5, 0.25]); // OOD
        assert!(decision.is_ood);
        let mt = build_test_time_model(&[m1, m2], &decision, 0.9, 1.0).unwrap();
        // 0.5 * 1.0 + 0.25 * 2.0 = 1.0 everywhere.
        assert!(mt.class_hypervectors().as_slice().iter().all(|&x| (x - 1.0).abs() < 1e-6));
    }

    #[test]
    fn in_distribution_model_excludes_dissimilar_domains() {
        let m1 = model_filled(1.0, 2, 4);
        let m2 = model_filled(100.0, 2, 4);
        let decision = OodDetector::new(0.5).detect(&[0.8, 0.1]);
        assert!(!decision.is_ood);
        let mt = build_test_time_model(&[m1, m2], &decision, 0.5, 1.0).unwrap();
        // Only m1 participates: 0.8 * 1.0 = 0.8.
        assert!(mt.class_hypervectors().as_slice().iter().all(|&x| (x - 0.8).abs() < 1e-6));
    }

    #[test]
    fn prediction_flows_through_ensemble() {
        let mut rng = init::rng(9);
        let a =
            HdcClassifier::from_class_hypervectors(init::bipolar_matrix(&mut rng, 2, 512)).unwrap();
        let b =
            HdcClassifier::from_class_hypervectors(init::bipolar_matrix(&mut rng, 2, 512)).unwrap();
        let query: Vec<f32> = a.class_hypervectors().row(1).to_vec();
        // Heavy weight on model a: prediction should match a's verdict.
        let decision = OodDetector::new(0.9).detect(&[0.99, 0.01]);
        let mt = build_test_time_model(&[a.clone(), b], &decision, 0.9, 1.0).unwrap();
        assert_eq!(mt.predict_one(&query).unwrap(), a.predict_one(&query).unwrap());
    }
}
