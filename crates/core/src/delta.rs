//! Compact per-tenant snapshot deltas and the chained base+delta scorer.
//!
//! Copy-on-adapt personalization (PR 5) cloned the whole shared
//! [`QuantizedSmore`] per drifting tenant — ~480 KiB each, dominated by
//! the encoder codebooks and base class planes the clone shares with
//! every other tenant anyway. At the ROADMAP's million-tenant scale that
//! is ~half a terabyte of duplicated state.
//!
//! A [`SnapshotDelta`] stores only what a tenant actually *adds* to the
//! base: per enrolled domain, the residual-binarized class planes, the
//! sign-packed descriptor, and the Gram *growth* — the new row of dots
//! each enrolment appends to every per-class Gram matrix. [`DeltaSmore`]
//! then serves base + delta chained, without ever materialising the
//! combined model:
//!
//! - descriptor similarities walk the base descriptors then the delta
//!   descriptors, in enrolment order — the exact sequence the full clone
//!   holds after the same enrolments;
//! - the Eq. 3 class score needs `dot(Q, C_k)` per domain (base planes
//!   come from the shared model, delta planes from the overlay) and the
//!   ensemble norm `Σ w_j w_m ⟨C_j, C_m⟩`, whose Gram entries route to
//!   the base matrix when both domains are base domains and to the later
//!   domain's stored growth row otherwise.
//!
//! Every floating-point operation happens in the same order on the same
//! values as the full-clone path, so chained predictions are **bit-exact**
//! with it (property-tested in `tests/proptests.rs`).
//!
//! Deltas also persist: [`SnapshotDelta::to_artifact_bytes`] writes a
//! `DeltaV1` `.smore` container (see [`crate::artifact`]) a few KiB in
//! size — including the enrolment history ([`DeltaMeta`]) a rehydrated
//! session needs to keep seeding repeat enrolments correctly — which is
//! what lets `smore_stream`'s eviction layer park an idle personalized
//! tenant for ~3 orders of magnitude less memory than a resident clone.

use std::time::Instant;

use smore_hdc::model::HdcClassifier;
use smore_packed::{PackedHypervector, ResidualPacked};
use smore_tensor::{parallel, vecops, Matrix};

use crate::ood::{OodDetector, OodVerdict};
use crate::predictor::{empty_prediction, Predictor, ServeScratch};
use crate::quantized::{clamped_nanos, recover_cosine, CLASS_PLANES};
use crate::smore_model::{EvalReport, Prediction};
use crate::test_time::ensemble_weights_into;
use crate::{QuantizedSmore, Result, SmoreError};

/// One enrolment a tenant performed, as persisted in a `DeltaV1`
/// artifact. Mirrors `smore_stream`'s `AdaptationEvent` with durations in
/// integer nanoseconds (the artifact stores no floats it does not have
/// to), so an evicted-then-rehydrated session keeps its full history.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeltaEnrollmentRecord {
    /// The domain tag this enrolment created.
    pub tag: usize,
    /// Stream step at which the enrolment fired.
    pub step: usize,
    /// Windows trained into the new domain.
    pub enrolled_windows: usize,
    /// How many of them carried oracle labels.
    pub oracle_labelled: usize,
    /// Wall time of the model build, in nanoseconds.
    pub enroll_nanos: u64,
    /// Wall time of the snapshot append/swap, in nanoseconds.
    pub swap_nanos: u64,
}

/// Session metadata carried by a delta so rehydration resumes adaptation
/// where eviction paused it: the tag counter, the step counter and the
/// enrolment history (which seeds repeat enrolments).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaMeta {
    /// The next domain tag this tenant would enrol under.
    pub next_tag: usize,
    /// Total windows the tenant had ingested at suspend time.
    pub steps: usize,
    /// Every enrolment performed so far, in stream order.
    pub records: Vec<DeltaEnrollmentRecord>,
}

/// One enrolled domain's contribution on top of the base model.
#[derive(Debug, Clone)]
pub struct DeltaDomain {
    pub(crate) tag: usize,
    /// Residual-binarized class hypervectors, one per class.
    pub(crate) classes: Vec<ResidualPacked>,
    /// The sign-packed domain descriptor `U`.
    pub(crate) descriptor: PackedHypervector,
    /// Per class, this domain's Gram growth row: `⟨C_j, C_new⟩` for every
    /// earlier domain `j` (base first, then prior delta domains, in
    /// order) followed by the self-dot — exactly the dots the full-clone
    /// `enroll_domain` computes, in the same order.
    pub(crate) gram_rows: Vec<Vec<f32>>,
}

impl DeltaDomain {
    /// The external tag this domain was enrolled under.
    pub fn tag(&self) -> usize {
        self.tag
    }
}

/// A tenant's personal state as a compact overlay on a shared base
/// [`QuantizedSmore`] (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct SnapshotDelta {
    /// Shape of the base this delta extends, pinned at creation so a
    /// delta can never be chained onto the wrong base.
    pub(crate) base_domains: usize,
    pub(crate) dim: usize,
    pub(crate) num_classes: usize,
    pub(crate) base_tags: Vec<usize>,
    pub(crate) domains: Vec<DeltaDomain>,
    /// Session metadata persisted alongside the model state.
    pub meta: DeltaMeta,
}

impl SnapshotDelta {
    /// An empty delta pinned to `base`'s shape.
    pub fn new(base: &QuantizedSmore) -> Self {
        Self {
            base_domains: base.domain_classes.len(),
            dim: base.config.dim,
            num_classes: base.config.num_classes,
            base_tags: base.domain_tags.clone(),
            domains: Vec::new(),
            meta: DeltaMeta::default(),
        }
    }

    /// Enrolled delta domains (excluding the base's).
    pub fn num_domains(&self) -> usize {
        self.domains.len()
    }

    /// Whether no domain has been enrolled yet.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }

    /// Tags of the enrolled delta domains, in enrolment order.
    pub fn tags(&self) -> impl Iterator<Item = usize> + '_ {
        self.domains.iter().map(|d| d.tag)
    }

    /// Verifies this delta extends exactly `base` (same shape and base
    /// tags) — chaining a delta onto a different base would silently
    /// misscore every window.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] on any mismatch.
    pub fn matches_base(&self, base: &QuantizedSmore) -> Result<()> {
        if self.base_domains != base.domain_classes.len()
            || self.dim != base.config.dim
            || self.num_classes != base.config.num_classes
            || self.base_tags != base.domain_tags
        {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "delta built over base (K={}, dim={}, classes={}) cannot chain onto base \
                     (K={}, dim={}, classes={})",
                    self.base_domains,
                    self.dim,
                    self.num_classes,
                    base.domain_classes.len(),
                    base.config.dim,
                    base.config.num_classes
                ),
            });
        }
        Ok(())
    }

    /// Appends a freshly enrolled domain — the delta analog of
    /// [`QuantizedSmore::enroll_domain`]. The class hypervectors are
    /// residual-binarized with the same plane count, the descriptor is
    /// sign-packed, and the Gram growth row is computed with the exact
    /// dots (in the exact order) the full-clone growth performs, so
    /// chained scoring stays bit-exact with it. On error the delta is
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the model shape or
    /// descriptor dimension disagrees with the base, the tag is already
    /// enrolled (in base or delta), or the delta does not extend `base`.
    pub fn enroll_domain(
        &mut self,
        base: &QuantizedSmore,
        model: &HdcClassifier,
        descriptor: &[f32],
        tag: usize,
    ) -> Result<()> {
        self.matches_base(base)?;
        if model.dim() != self.dim || model.num_classes() != self.num_classes {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "enrolled model shape ({}, {}) disagrees with quantized model ({}, {})",
                    model.num_classes(),
                    model.dim(),
                    self.num_classes,
                    self.dim
                ),
            });
        }
        if descriptor.len() != self.dim {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "descriptor dimension {} disagrees with quantized dim {}",
                    descriptor.len(),
                    self.dim
                ),
            });
        }
        if self.base_tags.contains(&tag) || self.domains.iter().any(|d| d.tag == tag) {
            return Err(SmoreError::InvalidConfig {
                what: format!("domain tag {tag} is already enrolled"),
            });
        }
        let new_classes = model
            .class_hypervectors()
            .iter_rows()
            .map(|row| ResidualPacked::from_dense(row, CLASS_PLANES))
            .collect::<smore_packed::Result<Vec<_>>>()?;
        let mut gram_rows = Vec::with_capacity(self.num_classes);
        for (c, new_class) in new_classes.iter().enumerate() {
            let mut row = Vec::with_capacity(self.base_domains + self.domains.len() + 1);
            for j in 0..self.base_domains {
                // smore-lint: allow(panic_path) j < base_domains and c < num_classes by the loop bounds
                row.push(base.domain_classes[j][c].dot(new_class)?);
            }
            for earlier in &self.domains {
                // smore-lint: allow(panic_path) every enrolled domain stores num_classes planes
                row.push(earlier.classes[c].dot(new_class)?);
            }
            row.push(new_class.dot(new_class)?);
            gram_rows.push(row);
        }
        self.domains.push(DeltaDomain {
            tag,
            classes: new_classes,
            descriptor: PackedHypervector::from_signs(descriptor),
            gram_rows,
        });
        Ok(())
    }

    /// Bytes this delta holds resident: packed class planes, descriptors,
    /// Gram growth rows, tags and enrolment records. This is the number
    /// the eviction layer budgets against — it excludes everything shared
    /// with the base.
    pub fn storage_bytes(&self) -> usize {
        self.domains
            .iter()
            .map(|d| {
                d.classes.iter().map(ResidualPacked::storage_bytes).sum::<usize>()
                    + d.descriptor.storage_bytes()
                    + d.gram_rows
                        .iter()
                        .map(|r| r.len() * std::mem::size_of::<f32>())
                        .sum::<usize>()
                    + std::mem::size_of::<usize>()
            })
            .sum::<usize>()
            + self.base_tags.len() * std::mem::size_of::<usize>()
            + self.meta.records.len() * std::mem::size_of::<DeltaEnrollmentRecord>()
    }

    /// Rebuilds approximate dense classifiers for the enrolled domains
    /// from their residual planes — what a rehydrated session hands to
    /// [`crate::Smore::prepare_domain`] so *repeat* enrolments keep
    /// seeding from the tenant's earlier domains. The reconstruction is
    /// the residual planes' dense sum: exact up to the quantization the
    /// planes already applied.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when a stored plane set does
    /// not reassemble into a `(num_classes, dim)` classifier.
    pub fn dense_models(&self, learning_rate: f32, epochs: usize) -> Result<Vec<HdcClassifier>> {
        self.domains
            .iter()
            .map(|domain| {
                let mut data = Vec::with_capacity(self.num_classes * self.dim);
                for class in &domain.classes {
                    data.extend_from_slice(class.to_dense().as_slice());
                }
                let hvs = Matrix::from_vec(self.num_classes, self.dim, data)
                    .map_err(|e| SmoreError::InvalidConfig { what: e.to_string() })?;
                HdcClassifier::from_class_hypervectors_with(hvs, learning_rate, epochs)
                    .map_err(|e| SmoreError::InvalidConfig { what: e.to_string() })
            })
            .collect()
    }
}

/// The chained base+delta serving view: scores exactly like the full
/// clone the delta replaces, while borrowing both halves (see the
/// [module docs](self)).
#[derive(Debug, Clone, Copy)]
pub struct DeltaSmore<'a> {
    base: &'a QuantizedSmore,
    delta: &'a SnapshotDelta,
}

impl<'a> DeltaSmore<'a> {
    /// Chains `delta` over `base`, validating that the delta was built
    /// for exactly this base.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the delta's pinned base
    /// shape or tags disagree with `base`.
    pub fn new(base: &'a QuantizedSmore, delta: &'a SnapshotDelta) -> Result<Self> {
        delta.matches_base(base)?;
        Ok(Self { base, delta })
    }

    /// Total domains served: base `K` plus the delta's.
    pub fn num_domains(&self) -> usize {
        self.base.domain_classes.len() + self.delta.domains.len()
    }

    /// External tag of the domain at chained index `index` (base domains
    /// first, then delta domains in enrolment order).
    fn domain_tag(&self, index: usize) -> usize {
        let base_k = self.delta.base_domains;
        if index < base_k {
            self.base.domain_tags[index] // smore-lint: allow(panic_path) guarded by index < base_k
        } else {
            // smore-lint: allow(panic_path) callers pass index < num_domains()
            self.delta.domains[index - base_k].tag
        }
    }

    /// Gram entry `⟨C_j, C_m⟩` for class `class` over the chained domain
    /// indexing: both-base entries come from the base matrix (copied
    /// verbatim by the full-clone growth, so the values are identical);
    /// any entry involving a delta domain comes from the *later* domain's
    /// stored growth row.
    fn gram(&self, class: usize, j: usize, m: usize) -> f32 {
        let base_k = self.delta.base_domains;
        let (lo, hi) = if j <= m { (j, m) } else { (m, j) };
        if hi < base_k {
            // smore-lint: allow(panic_path) class < num_classes and j, m < base_k index the k×k base Gram
            self.base.class_gram[class][j * base_k + m]
        } else {
            // smore-lint: allow(panic_path) hi < num_domains() and lo ≤ hi index the later domain's growth row
            self.delta.domains[hi - base_k].gram_rows[class][lo]
        }
    }

    /// Chained [`QuantizedSmore::prepare_query`] twin: one shared encode,
    /// then descriptor similarities over base descriptors followed by
    /// delta descriptors — the order the full clone holds them in.
    fn prepare_query(&self, window: &Matrix, scratch: &mut ServeScratch) -> Result<OodVerdict> {
        let encode_start = Instant::now();
        self.base.encode_query_into(window, scratch)?;
        scratch.timings.encode_nanos = clamped_nanos(encode_start.elapsed());
        scratch.sims.clear();
        let delta_descriptors = self.delta.domains.iter().map(|d| &d.descriptor);
        for u in self.base.descriptors.iter().chain(delta_descriptors) {
            let sim =
                // smore-lint: allow(panic_path) every descriptor was packed at dim set once at quantize time
                scratch.query.similarity(u).expect("descriptor dimension fixed at quantize time");
            scratch.sims.push(recover_cosine(sim));
        }
        let verdict = OodDetector::new(self.base.config.delta_star).decide(&scratch.sims);
        ensemble_weights_into(
            &scratch.sims,
            verdict.is_ood,
            self.base.config.delta_star,
            self.base.config.weight_power,
            &mut scratch.weights,
        );
        Ok(verdict)
    }

    /// Chained Eq. 3 scoring — the same accumulations in the same order
    /// as the full clone's `class_scores_into`, with class planes and
    /// Gram entries routed to whichever half owns them.
    fn class_scores_into(&self, query: &PackedHypervector, weights: &[f32], scores: &mut Vec<f32>) {
        let base_k = self.delta.base_domains;
        let k = base_k + self.delta.domains.len();
        let q_norm = (self.base.config.dim as f32).sqrt();
        scores.clear();
        for class in 0..self.base.config.num_classes {
            let mut dot_sum = 0.0f32;
            for (j, &w) in weights.iter().take(k).enumerate() {
                if w > 0.0 {
                    let plane = if j < base_k {
                        &self.base.domain_classes[j][class] // smore-lint: allow(panic_path) j < base_k, class < num_classes
                    } else {
                        // smore-lint: allow(panic_path) j < k = base_k + delta domains, class < num_classes
                        &self.delta.domains[j - base_k].classes[class]
                    };
                    let dot =
                        // smore-lint: allow(panic_path) query was packed at the quantize-time dim
                        plane.dot_packed(query).expect("query dimension fixed at quantize time");
                    dot_sum += w * dot;
                }
            }
            let mut norm_sq = 0.0f32;
            for (j, &wj) in weights.iter().take(k).enumerate() {
                if wj <= 0.0 {
                    continue;
                }
                for (m, &wm) in weights.iter().take(k).enumerate() {
                    if wm > 0.0 {
                        norm_sq += wj * wm * self.gram(class, j, m);
                    }
                }
            }
            scores.push(if norm_sq > 0.0 { dot_sum / (norm_sq.sqrt() * q_norm) } else { 0.0 });
        }
    }

    /// Per-class ensemble scores for one window — the chained analog of
    /// [`QuantizedSmore::score_into`], bit-exact with the full clone.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        self.prepare_query(window, scratch)?;
        self.class_scores_into(&scratch.query, &scratch.weights, scores);
        Ok(())
    }

    /// Predicts one window through caller-owned scratch — Algorithm 1
    /// chained over base + delta, bit-exact with the full-clone snapshot.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        let total_start = Instant::now();
        let verdict = self.prepare_query(window, scratch)?;
        let ServeScratch { query, weights, scores, .. } = &mut *scratch;
        self.class_scores_into(query, weights, scores);
        let best_label = vecops::argmax(scores).unwrap_or(0);
        scratch.timings.score_nanos =
            clamped_nanos(total_start.elapsed()).saturating_sub(scratch.timings.encode_nanos);

        let prediction = &mut scratch.prediction;
        prediction.label = best_label;
        prediction.is_ood = verdict.is_ood;
        prediction.delta_max = verdict.delta_max;
        prediction.best_domain = self.domain_tag(verdict.best_domain);
        prediction.domain_similarities.clear();
        prediction.domain_similarities.extend_from_slice(&scratch.sims);
        Ok(&scratch.prediction)
    }

    /// Predicts one window — the allocating convenience wrapper.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        let mut scratch = ServeScratch::new();
        Ok(self.predict_window_with(window, &mut scratch)?.clone())
    }

    /// Thread-parallel batch prediction, chunked exactly like
    /// [`QuantizedSmore::predict_batch`].
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        let mut out: Vec<Result<Prediction>> =
            (0..windows.len()).map(|_| Ok(empty_prediction())).collect();
        parallel::par_chunks_indexed(&mut out, self.base.config.threads, |start, chunk| {
            let mut scratch = ServeScratch::new();
            for (i, slot) in chunk.iter_mut().enumerate() {
                // smore-lint: allow(panic_path) chunks are carved from 0..windows.len()
                *slot = self.predict_window_with(&windows[start + i], &mut scratch).cloned();
            }
        });
        out.into_iter().collect()
    }

    /// Predicts and scores a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_batch`](Self::predict_batch), plus
    /// [`SmoreError::InvalidConfig`] for mismatched label counts.
    pub fn evaluate(&self, windows: &[Matrix], labels: &[usize]) -> Result<EvalReport> {
        if windows.len() != labels.len() || windows.is_empty() {
            return Err(SmoreError::InvalidConfig {
                what: format!("{} windows but {} labels", windows.len(), labels.len()),
            });
        }
        let t0 = Instant::now();
        let predictions = self.predict_batch(windows)?;
        let infer_seconds = t0.elapsed().as_secs_f64();
        let correct = predictions.iter().zip(labels).filter(|(p, &l)| p.label == l).count();
        let ood = predictions.iter().filter(|p| p.is_ood).count();
        Ok(EvalReport {
            accuracy: correct as f32 / windows.len() as f32,
            samples: windows.len(),
            ood_fraction: ood as f32 / windows.len() as f32,
            infer_seconds,
        })
    }
}

impl Predictor for DeltaSmore<'_> {
    fn num_classes(&self) -> usize {
        self.base.config.num_classes
    }

    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        DeltaSmore::predict_window_with(self, window, scratch)
    }

    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        DeltaSmore::score_into(self, window, scratch, scores)
    }

    fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        DeltaSmore::predict_window(self, window)
    }

    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        DeltaSmore::predict_batch(self, windows)
    }
}

/// What a tenant currently serves from: the shared base directly, or the
/// base chained with the tenant's personal delta. Borrowed per call, so
/// holding one never clones model state.
#[derive(Debug, Clone, Copy)]
pub enum ServingModel<'a> {
    /// The shared base snapshot (tenant never personalized).
    Base(&'a QuantizedSmore),
    /// Base + personal delta, scored chained.
    Chained(DeltaSmore<'a>),
}

impl ServingModel<'_> {
    /// Domains this view serves (base `K`, plus the delta's if chained).
    pub fn num_domains(&self) -> usize {
        match self {
            ServingModel::Base(base) => base.num_domains(),
            ServingModel::Chained(chained) => chained.num_domains(),
        }
    }

    /// Predicts and scores a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`QuantizedSmore::evaluate`].
    pub fn evaluate(&self, windows: &[Matrix], labels: &[usize]) -> Result<EvalReport> {
        match self {
            ServingModel::Base(base) => base.evaluate(windows, labels),
            ServingModel::Chained(chained) => chained.evaluate(windows, labels),
        }
    }
}

impl Predictor for ServingModel<'_> {
    fn num_classes(&self) -> usize {
        match self {
            ServingModel::Base(base) => base.config.num_classes,
            ServingModel::Chained(chained) => chained.num_classes(),
        }
    }

    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        match self {
            ServingModel::Base(base) => base.predict_window_with(window, scratch),
            ServingModel::Chained(chained) => chained.predict_window_with(window, scratch),
        }
    }

    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        match self {
            ServingModel::Base(base) => base.score_into(window, scratch, scores),
            ServingModel::Chained(chained) => chained.score_into(window, scratch, scores),
        }
    }

    fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        match self {
            ServingModel::Base(base) => base.predict_window(window),
            ServingModel::Chained(chained) => chained.predict_window(window),
        }
    }

    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        match self {
            ServingModel::Base(base) => base.predict_batch(windows),
            ServingModel::Chained(chained) => chained.predict_batch(windows),
        }
    }
}
