//! Out-of-distribution detection `Φ` (paper §3.5.2, Algorithm 1 lines 1–2).
//!
//! A query is OOD when its similarity to the *most similar* domain
//! descriptor falls below the threshold `δ*`:
//!
//! ```text
//! δ_max = max{δ(Q, U_1), …, δ(Q, U_K)}
//! OOD ⇔ δ_max < δ*
//! ```

use smore_tensor::vecops;

/// The outcome of OOD detection for one query.
#[derive(Debug, Clone, PartialEq)]
pub struct OodDecision {
    /// Whether the query was declared out-of-distribution.
    pub is_ood: bool,
    /// The maximum descriptor similarity `δ_max`.
    pub delta_max: f32,
    /// Index of the most similar domain.
    pub best_domain: usize,
    /// Similarity to every domain descriptor (length `K`).
    pub similarities: Vec<f32>,
}

/// The allocation-free core of an [`OodDecision`]: the verdict without the
/// similarity vector. This is what the hot serving loops consume — the
/// caller keeps ownership of its similarities and nothing is copied.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OodVerdict {
    /// Whether the query was declared out-of-distribution.
    pub is_ood: bool,
    /// The maximum descriptor similarity `δ_max`.
    pub delta_max: f32,
    /// Index of the most similar domain.
    pub best_domain: usize,
}

/// The binary OOD classifier `Φ` parameterised by `δ*`.
///
/// # Example
///
/// ```
/// use smore::ood::OodDetector;
///
/// let detector = OodDetector::new(0.5);
/// let decision = detector.detect(&[0.2, 0.4, 0.3]);
/// assert!(decision.is_ood, "best similarity 0.4 < δ* = 0.5");
/// assert_eq!(decision.best_domain, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OodDetector {
    delta_star: f32,
}

impl OodDetector {
    /// Creates a detector with threshold `δ*`.
    pub fn new(delta_star: f32) -> Self {
        Self { delta_star }
    }

    /// The configured threshold `δ*`.
    pub fn delta_star(&self) -> f32 {
        self.delta_star
    }

    /// Classifies a query given its descriptor similarities, without
    /// taking ownership of (or copying) them — the form the hot serving
    /// loops use: borrow the similarity slice, keep the vector yourself.
    ///
    /// An empty (or all-NaN) similarity slice is declared OOD with
    /// `δ_max = -1` (no domain can claim the sample).
    pub fn decide(&self, similarities: &[f32]) -> OodVerdict {
        match vecops::argmax(similarities) {
            Some(best) => {
                let delta_max = similarities[best];
                OodVerdict { is_ood: delta_max < self.delta_star, delta_max, best_domain: best }
            }
            None => OodVerdict { is_ood: true, delta_max: -1.0, best_domain: 0 },
        }
    }

    /// Classifies a query and returns the full diagnostic record, cloning
    /// the similarities into the [`OodDecision`]. Hot paths that already
    /// own a similarity vector should call [`decide`](Self::decide)
    /// instead and avoid the copy.
    pub fn detect(&self, similarities: &[f32]) -> OodDecision {
        let v = self.decide(similarities);
        OodDecision {
            is_ood: v.is_ood,
            delta_max: v.delta_max,
            best_domain: v.best_domain,
            similarities: similarities.to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_distribution_above_threshold() {
        let d = OodDetector::new(0.5);
        let decision = d.detect(&[0.1, 0.8, 0.3]);
        assert!(!decision.is_ood);
        assert_eq!(decision.best_domain, 1);
        assert!((decision.delta_max - 0.8).abs() < 1e-6);
        assert_eq!(decision.similarities, vec![0.1, 0.8, 0.3]);
    }

    #[test]
    fn ood_below_threshold() {
        let d = OodDetector::new(0.5);
        assert!(d.detect(&[0.49, 0.2]).is_ood);
        // Boundary: δ_max == δ* is *not* OOD (strict inequality in Alg. 1).
        assert!(!d.detect(&[0.5]).is_ood);
    }

    #[test]
    fn empty_similarities_are_ood() {
        let d = OodDetector::new(0.3);
        let decision = d.detect(&[]);
        assert!(decision.is_ood);
        assert_eq!(decision.delta_max, -1.0);
    }

    #[test]
    fn nan_similarities_are_skipped() {
        let d = OodDetector::new(0.2);
        let decision = d.detect(&[f32::NAN, 0.4]);
        assert_eq!(decision.best_domain, 1);
        assert!(!decision.is_ood);
        let all_nan = d.detect(&[f32::NAN]);
        assert!(all_nan.is_ood);
    }

    #[test]
    fn decide_matches_detect_without_allocating() {
        let d = OodDetector::new(0.4);
        for sims in [vec![0.1, 0.7, 0.3], vec![], vec![f32::NAN, -0.5]] {
            let verdict = d.decide(&sims);
            let decision = d.detect(&sims);
            assert_eq!(verdict.is_ood, decision.is_ood);
            assert_eq!(verdict.delta_max, decision.delta_max);
            assert_eq!(verdict.best_domain, decision.best_domain);
        }
    }

    #[test]
    fn threshold_accessor() {
        assert_eq!(OodDetector::new(0.65).delta_star(), 0.65);
    }
}
