use std::error::Error;
use std::fmt;

use smore_data::DataError;
use smore_hdc::HdcError;
use smore_tensor::TensorError;

/// Error type for the SMORE model and evaluation pipeline.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SmoreError {
    /// A configuration value is invalid.
    InvalidConfig {
        /// Human-readable description of the invalid configuration.
        what: String,
    },
    /// The model was asked to predict before [`crate::Smore::fit`] ran.
    NotFitted,
    /// Training data covered fewer than two domains — SMORE requires
    /// `K > 1` source domains (paper §3.2).
    TooFewDomains {
        /// Number of distinct domains found in the training data.
        found: usize,
    },
    /// A training domain had no samples.
    EmptyDomain {
        /// The offending domain tag.
        domain: usize,
    },
    /// A filesystem operation on a model artifact failed.
    Io {
        /// Path of the artifact being read or written.
        path: String,
        /// The underlying I/O error, rendered (kept as a string so the
        /// error stays `Clone + PartialEq`).
        message: String,
    },
    /// A model artifact failed structural validation: bad magic, an
    /// unsupported format version, a checksum mismatch, a truncated or
    /// unknown section, or a payload that decodes to an invalid model.
    CorruptArtifact {
        /// The section (or header field) that failed validation.
        section: String,
        /// What was wrong with it.
        reason: String,
    },
    /// The host refused an operating-system resource the serving stack
    /// needs (a worker thread, a socket) — distinct from [`Io`](Self::Io)
    /// because no artifact path is involved and the caller's recovery is
    /// capacity planning, not file repair.
    Resource {
        /// What could not be obtained, with the OS error rendered in.
        what: String,
    },
    /// Underlying HDC failure.
    Hdc(HdcError),
    /// Underlying dataset failure.
    Data(DataError),
    /// Underlying tensor failure.
    Tensor(TensorError),
}

impl fmt::Display for SmoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmoreError::InvalidConfig { what } => write!(f, "invalid SMORE configuration: {what}"),
            SmoreError::NotFitted => write!(f, "model is not fitted; call fit() first"),
            SmoreError::TooFewDomains { found } => {
                write!(f, "SMORE requires at least 2 source domains, found {found}")
            }
            SmoreError::EmptyDomain { domain } => {
                write!(f, "training domain {domain} has no samples")
            }
            SmoreError::Io { path, message } => {
                write!(f, "artifact i/o failed for {path}: {message}")
            }
            SmoreError::CorruptArtifact { section, reason } => {
                write!(f, "corrupt .smore artifact (section {section}): {reason}")
            }
            SmoreError::Resource { what } => {
                write!(f, "os resource unavailable: {what}")
            }
            SmoreError::Hdc(e) => write!(f, "hdc error: {e}"),
            SmoreError::Data(e) => write!(f, "data error: {e}"),
            SmoreError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl Error for SmoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SmoreError::Hdc(e) => Some(e),
            SmoreError::Data(e) => Some(e),
            SmoreError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl SmoreError {
    /// Wraps a [`std::io::Error`] hit while reading or writing the artifact
    /// at `path`. (A `From` impl is impossible: `std::io::Error` is neither
    /// `Clone` nor `PartialEq`, so the source is captured as rendered
    /// text.)
    pub fn io(path: impl Into<String>, error: &std::io::Error) -> Self {
        SmoreError::Io { path: path.into(), message: error.to_string() }
    }

    /// Builds a [`SmoreError::CorruptArtifact`] for `section`.
    pub fn corrupt(section: impl Into<String>, reason: impl Into<String>) -> Self {
        SmoreError::CorruptArtifact { section: section.into(), reason: reason.into() }
    }

    /// Wraps an OS refusal (thread spawn, socket) as
    /// [`SmoreError::Resource`].
    pub fn resource(what: impl Into<String>, error: &std::io::Error) -> Self {
        SmoreError::Resource { what: format!("{}: {error}", what.into()) }
    }
}

impl From<HdcError> for SmoreError {
    fn from(e: HdcError) -> Self {
        SmoreError::Hdc(e)
    }
}

impl From<DataError> for SmoreError {
    fn from(e: DataError) -> Self {
        SmoreError::Data(e)
    }
}

impl From<TensorError> for SmoreError {
    fn from(e: TensorError) -> Self {
        SmoreError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_sources() {
        assert!(SmoreError::NotFitted.to_string().contains("not fitted"));
        assert!(SmoreError::TooFewDomains { found: 1 }.to_string().contains('1'));
        assert!(SmoreError::EmptyDomain { domain: 3 }.to_string().contains('3'));
        let e: SmoreError = HdcError::EmptyInput { what: "x" }.into();
        assert!(Error::source(&e).is_some());
        let e: SmoreError = DataError::InvalidConfig { what: "y".into() }.into();
        assert!(Error::source(&e).is_some());
        let e: SmoreError = TensorError::InvalidDimension { what: "z" }.into();
        assert!(Error::source(&e).is_some());
    }

    #[test]
    fn artifact_variants_render_their_context() {
        let io = SmoreError::io(
            "/tmp/m.smore",
            &std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("/tmp/m.smore"));
        assert!(io.to_string().contains("gone"));
        assert!(Error::source(&io).is_none(), "rendered source, no chained error");
        let corrupt = SmoreError::corrupt("gram", "crc mismatch");
        assert!(corrupt.to_string().contains("gram"));
        assert!(corrupt.to_string().contains("crc mismatch"));
        assert_eq!(corrupt.clone(), corrupt);
        let res = SmoreError::resource(
            "spawning worker thread 3",
            &std::io::Error::new(std::io::ErrorKind::WouldBlock, "EAGAIN"),
        );
        assert!(res.to_string().contains("worker thread 3"));
        assert!(res.to_string().contains("EAGAIN"));
        assert!(Error::source(&res).is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SmoreError>();
    }
}
