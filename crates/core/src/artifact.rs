//! Versioned, self-describing `.smore` model artifacts.
//!
//! Everything the repo could do before this module died with its process:
//! a model trained on one machine could not be fanned out to a serving
//! fleet, resumed for adaptation, or pinned as a regression fixture. The
//! `.smore` format closes that gap for both serving surfaces:
//!
//! - [`QuantizedSmore::save`] / [`QuantizedSmore::load`] — the frozen
//!   bit-packed serving model, **bit-exact** across the round trip: every
//!   codebook word, residual plane, Gram entry and centring statistic is
//!   stored verbatim (the pre-rotated sliding-bind codebooks included), so
//!   a loaded snapshot reproduces the original's predictions to the bit.
//! - [`Smore::save`] / [`Smore::load`] — the dense model needed to *resume
//!   adaptation* (enrol new domains, re-quantize). Codebooks are not
//!   stored: dense encoding is deterministic in the configuration seed, so
//!   the encoder is rebuilt exactly from the config plus the fitted value
//!   ranges.
//!
//! # Wire format
//!
//! Everything is little-endian. A 16-byte header —
//!
//! ```text
//! magic "SMOREHDC" (8) | version u16 | kind u8 | reserved u8 | section_count u32
//! ```
//!
//! — is followed by `section_count` sections, each
//!
//! ```text
//! section_id u32 | payload_crc32 u32 | payload_len u64 | payload bytes
//! ```
//!
//! Per-section CRC-32 (IEEE) catches bit rot and truncation before any
//! payload is decoded; every length is bounds-checked against the buffer
//! before allocation, so corrupt bytes produce
//! [`SmoreError::CorruptArtifact`] — never a panic or an absurd
//! allocation. Readers reject unknown section ids and unknown format
//! versions outright (forward compatibility by refusal: a file written by
//! a newer writer is reported as such, not misparsed), and a trailing-byte
//! or duplicate-section container is likewise rejected.
//!
//! The format is hand-rolled rather than serde-derived deliberately: the
//! build environment vendors all dependencies offline, and the payloads
//! are raw `u64`/`f32` arrays for which an explicit layout is both the
//! simplest and the only bit-exactness-auditable choice.

use std::path::Path;

use smore_hdc::encoder::{EncoderConfig, MultiSensorEncoder, ValueRange};
use smore_hdc::memory::Quantization;
use smore_hdc::model::HdcClassifier;
use smore_packed::{PackedHypervector, PackedNgramEncoder, ResidualPacked};
use smore_tensor::Matrix;

use crate::centering::Centerer;
use crate::config::{DomainInit, RangeMode, SmoreConfig};
use crate::descriptor::DomainDescriptors;
use crate::smore_model::{ChannelStats, Fitted, Smore};
use crate::{QuantizedSmore, Result, SmoreError};

/// Magic bytes opening every `.smore` artifact.
pub const MAGIC: [u8; 8] = *b"SMOREHDC";

/// Current artifact format version. Bump on any layout change; readers
/// reject every version they were not built for.
pub const FORMAT_VERSION: u16 = 1;

/// Length of the fixed artifact header in bytes — the prefix
/// [`kind_of`] needs to sniff a file without reading its payload (e.g.
/// the state-dir recovery scan validating thousands of per-tenant delta
/// files with one small read each).
pub const HEADER_LEN: usize = 16;

/// What a `.smore` artifact contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A frozen [`QuantizedSmore`] serving model.
    Quantized,
    /// A fitted dense [`Smore`] (resumable for adaptation).
    Dense,
    /// A per-tenant [`SnapshotDelta`] overlay (`DeltaV1`): only the
    /// tenant's enrolled domains + session metadata, chained onto a
    /// shared base at load time.
    Delta,
}

impl ArtifactKind {
    fn to_byte(self) -> u8 {
        match self {
            ArtifactKind::Quantized => 1,
            ArtifactKind::Dense => 2,
            ArtifactKind::Delta => 3,
        }
    }

    fn from_byte(b: u8) -> Result<Self> {
        match b {
            1 => Ok(ArtifactKind::Quantized),
            2 => Ok(ArtifactKind::Dense),
            3 => Ok(ArtifactKind::Delta),
            other => Err(SmoreError::corrupt("header", format!("unknown artifact kind {other}"))),
        }
    }
}

// Section ids. Shared sections first, then kind-specific ones.
const SEC_CONFIG: u32 = 1;
const SEC_SCALER: u32 = 2;
const SEC_CENTERING: u32 = 3;
const SEC_DOMAIN_TAGS: u32 = 4;
const SEC_ENCODER_RANGE: u32 = 5;
const SEC_PACKED_DESCRIPTORS: u32 = 16;
const SEC_PACKED_CLASSES: u32 = 17;
const SEC_CLASS_GRAM: u32 = 18;
const SEC_PACKED_CODEBOOKS: u32 = 19;
const SEC_PACKED_CODEBOOKS_ROT: u32 = 20;
const SEC_PACKED_SIGNATURES: u32 = 21;
const SEC_DENSE_DESCRIPTORS: u32 = 32;
const SEC_DOMAIN_MODELS: u32 = 33;
const SEC_DELTA_META: u32 = 48;
const SEC_DELTA_DOMAINS: u32 = 49;
const SEC_DELTA_RECORDS: u32 = 50;

/// Human-readable section name for error context.
fn section_name(id: u32) -> &'static str {
    match id {
        SEC_CONFIG => "config",
        SEC_SCALER => "scaler",
        SEC_CENTERING => "centering",
        SEC_DOMAIN_TAGS => "domain_tags",
        SEC_ENCODER_RANGE => "encoder_range",
        SEC_PACKED_DESCRIPTORS => "packed_descriptors",
        SEC_PACKED_CLASSES => "packed_classes",
        SEC_CLASS_GRAM => "class_gram",
        SEC_PACKED_CODEBOOKS => "packed_codebooks",
        SEC_PACKED_CODEBOOKS_ROT => "packed_codebooks_rot",
        SEC_PACKED_SIGNATURES => "packed_signatures",
        SEC_DENSE_DESCRIPTORS => "dense_descriptors",
        SEC_DOMAIN_MODELS => "domain_models",
        SEC_DELTA_META => "delta_meta",
        SEC_DELTA_DOMAINS => "delta_domains",
        SEC_DELTA_RECORDS => "delta_records",
        _ => "unknown",
    }
}

// CRC-32 now lives in the shared wire module so the `smore_serve`
// network protocol frames and this container checksum identically.
use crate::wire::crc32;

/// Sniffs the header of artifact bytes: magic, version and kind — without
/// decoding any section. Used to route a file to the right loader (e.g.
/// `smore_stream::ServeEngine::from_artifact`) and by tooling.
///
/// # Errors
///
/// Returns [`SmoreError::CorruptArtifact`] for a short buffer, wrong
/// magic, unsupported version or unknown kind byte.
pub fn kind_of(bytes: &[u8]) -> Result<ArtifactKind> {
    let Some((&[m0, m1, m2, m3, m4, m5, m6, m7, v0, v1, kind, reserved, _, _, _, _], _)) =
        bytes.split_first_chunk::<16>()
    else {
        return Err(SmoreError::corrupt(
            "header",
            format!("{} bytes is shorter than the 16-byte header", bytes.len()),
        ));
    };
    if [m0, m1, m2, m3, m4, m5, m6, m7] != MAGIC {
        return Err(SmoreError::corrupt("header", "bad magic (not a .smore artifact)"));
    }
    let version = u16::from_le_bytes([v0, v1]);
    if version != FORMAT_VERSION {
        return Err(SmoreError::corrupt(
            "header",
            format!(
                "format version {version} is not supported (this build reads {FORMAT_VERSION})"
            ),
        ));
    }
    if reserved != 0 {
        return Err(SmoreError::corrupt("header", "reserved header byte must be zero"));
    }
    ArtifactKind::from_byte(kind)
}

// ---------------------------------------------------------------------------
// Payload writer / reader primitives
// ---------------------------------------------------------------------------

/// Little-endian payload builder for one section.
#[derive(Default)]
struct Payload {
    bytes: Vec<u8>,
}

impl Payload {
    fn u8(&mut self, v: u8) {
        self.bytes.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn len_of(&mut self, v: usize) {
        self.u64(v as u64);
    }

    fn f32(&mut self, v: f32) {
        self.bytes.extend_from_slice(&v.to_le_bytes());
    }

    fn f32s(&mut self, vs: &[f32]) {
        for &v in vs {
            self.f32(v);
        }
    }

    fn words(&mut self, ws: &[u64]) {
        for &w in ws {
            self.u64(w);
        }
    }
}

/// Bounds-checked little-endian reader over one section's payload.
struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], section: &'static str) -> Self {
        Self { bytes, pos: 0, section }
    }

    fn corrupt(&self, reason: impl Into<String>) -> SmoreError {
        SmoreError::corrupt(self.section, reason)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.corrupt(format!("payload truncated at byte {}", self.pos)))?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.corrupt(format!("payload truncated at byte {}", self.pos)))?;
        self.pos = end;
        Ok(out)
    }

    /// Takes the next `N` bytes as a fixed-size array — the panic-free
    /// backbone of the integer readers.
    fn take_array<const N: usize>(&mut self) -> Result<[u8; N]> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        let Some((chunk, _)) = rest.split_first_chunk::<N>() else {
            return Err(self.corrupt(format!("payload truncated at byte {}", self.pos)));
        };
        self.pos += N;
        Ok(*chunk)
    }

    fn u8(&mut self) -> Result<u8> {
        let [byte] = self.take_array()?;
        Ok(byte)
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a u64 count/length and checks it fits in `usize`.
    fn len(&mut self, what: &str) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("{what} count {v} overflows usize")))
    }

    /// Reads an item count and rejects it unless `count ×
    /// min_bytes_per_item` still fits in the unread payload — so a
    /// crafted count can never size an allocation beyond the artifact's
    /// own byte length (a valid CRC is no protection: whoever writes the
    /// file writes the checksum too).
    fn count(&mut self, what: &str, min_bytes_per_item: usize) -> Result<usize> {
        let n = self.len(what)?;
        let remaining = self.bytes.len() - self.pos;
        let need = n.checked_mul(min_bytes_per_item.max(1));
        if need.is_none_or(|need| need > remaining) {
            return Err(
                self.corrupt(format!("{what} count {n} exceeds the {remaining}-byte payload"))
            );
        }
        Ok(n)
    }

    fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads `n` f32 values; the byte bound is checked *before* the
    /// allocation, so corrupt counts cannot trigger huge allocations.
    fn f32s(&mut self, n: usize) -> Result<Vec<f32>> {
        let mut raw =
            self.take(n.checked_mul(4).ok_or_else(|| self.corrupt("f32 run length overflows"))?)?;
        let mut out = Vec::with_capacity(n);
        while let Some((chunk, rest)) = raw.split_first_chunk::<4>() {
            out.push(f32::from_le_bytes(*chunk));
            raw = rest;
        }
        Ok(out)
    }

    /// Reads `n` u64 storage words (bounds-checked like [`f32s`](Self::f32s)).
    fn words(&mut self, n: usize) -> Result<Vec<u64>> {
        let mut raw =
            self.take(n.checked_mul(8).ok_or_else(|| self.corrupt("word run length overflows"))?)?;
        let mut out = Vec::with_capacity(n);
        while let Some((chunk, rest)) = raw.split_first_chunk::<8>() {
            out.push(u64::from_le_bytes(*chunk));
            raw = rest;
        }
        Ok(out)
    }

    /// Requires the payload to be fully consumed.
    fn finish(self) -> Result<()> {
        if self.pos != self.bytes.len() {
            return Err(self.corrupt(format!(
                "{} unread trailing bytes in payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container
// ---------------------------------------------------------------------------

/// Assembles the header + section table around the given payloads.
fn write_container(kind: ArtifactKind, sections: &[(u32, Vec<u8>)]) -> Vec<u8> {
    let body: usize = sections.iter().map(|(_, p)| 16 + p.len()).sum();
    let mut out = Vec::with_capacity(16 + body);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.push(kind.to_byte());
    out.push(0); // reserved
    out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
    for (id, payload) in sections {
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(payload);
    }
    out
}

/// A parsed section: `(id, payload)`.
type Section<'a> = (u32, &'a [u8]);

/// Reinterprets a flat `[lo, hi, lo, hi, …]` run as `(lo, hi)` pairs;
/// a trailing odd value is dropped (callers size the run as `2 × n`).
fn pairs(flat: &[f32]) -> Vec<(f32, f32)> {
    let mut out = Vec::with_capacity(flat.len() / 2);
    let mut rest = flat;
    while let Some((&[lo, hi], r)) = rest.split_first_chunk::<2>() {
        out.push((lo, hi));
        rest = r;
    }
    out
}

/// Walks the container: validates the header, every section's bounds and
/// CRC, duplicate ids and trailing garbage. Returns `(kind, sections)`.
fn parse_container(bytes: &[u8]) -> Result<(ArtifactKind, Vec<Section<'_>>)> {
    let kind = kind_of(bytes)?;
    // kind_of validated the 16-byte header, so the chunk always exists.
    let section_count =
        bytes.get(12..16).and_then(|raw| raw.try_into().ok()).map_or(0, u32::from_le_bytes)
            as usize;
    let mut sections: Vec<(u32, &[u8])> = Vec::with_capacity(section_count.min(64));
    let mut pos = 16usize;
    for i in 0..section_count {
        let Some(&[i0, i1, i2, i3, c0, c1, c2, c3, l0, l1, l2, l3, l4, l5, l6, l7]) =
            bytes.get(pos..pos + 16)
        else {
            return Err(SmoreError::corrupt(
                "section_table",
                format!("truncated at section {i} of {section_count}"),
            ));
        };
        let id = u32::from_le_bytes([i0, i1, i2, i3]);
        let crc = u32::from_le_bytes([c0, c1, c2, c3]);
        let len = u64::from_le_bytes([l0, l1, l2, l3, l4, l5, l6, l7]);
        let len = usize::try_from(len).map_err(|_| {
            SmoreError::corrupt(section_name(id), format!("section length {len} overflows usize"))
        })?;
        pos += 16;
        let payload = bytes.get(pos..pos + len).ok_or_else(|| {
            SmoreError::corrupt(
                section_name(id),
                format!("payload of {len} bytes truncated ({} remain)", bytes.len() - pos),
            )
        })?;
        if crc32(payload) != crc {
            return Err(SmoreError::corrupt(section_name(id), "checksum mismatch"));
        }
        if sections.iter().any(|&(seen, _)| seen == id) {
            return Err(SmoreError::corrupt(section_name(id), "duplicate section"));
        }
        sections.push((id, payload));
        pos += len;
    }
    if pos != bytes.len() {
        return Err(SmoreError::corrupt(
            "container",
            format!("{} trailing bytes after the last section", bytes.len() - pos),
        ));
    }
    Ok((kind, sections))
}

/// Looks up a required section, rejecting the artifact when it is absent.
fn require<'a>(sections: &[(u32, &'a [u8])], id: u32) -> Result<Cursor<'a>> {
    sections
        .iter()
        .find(|&&(sid, _)| sid == id)
        .map(|&(_, payload)| Cursor::new(payload, section_name(id)))
        .ok_or_else(|| SmoreError::corrupt(section_name(id), "required section missing"))
}

/// Rejects any section id outside `allowed` — the forward-compatibility
/// refusal: a file carrying sections this build does not understand was
/// written by a different (likely newer) writer and must not be misparsed.
fn reject_unknown(sections: &[(u32, &[u8])], allowed: &[u32]) -> Result<()> {
    for &(id, _) in sections {
        if !allowed.contains(&id) {
            return Err(SmoreError::corrupt(
                "container",
                format!("unknown section id {id} (written by a newer format version?)"),
            ));
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Shared section codecs
// ---------------------------------------------------------------------------

fn encode_config(config: &SmoreConfig) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(config.dim);
    p.len_of(config.channels);
    p.len_of(config.num_classes);
    p.len_of(config.ngram);
    p.len_of(config.levels);
    p.len_of(config.epochs);
    p.len_of(config.threads);
    p.u64(config.seed);
    p.f32(config.delta_star);
    p.f32(config.learning_rate);
    p.f32(config.weight_power);
    p.u8(match config.quantization {
        Quantization::Interpolate => 0,
        Quantization::LevelFlip => 1,
    });
    p.u8(match config.domain_init {
        DomainInit::Shared => 0,
        DomainInit::Independent => 1,
    });
    p.u8(config.center as u8);
    p.u8(config.standardize as u8);
    match &config.range {
        RangeMode::FitGlobal => p.u8(0),
        RangeMode::PerWindow => p.u8(1),
        RangeMode::Fixed(ranges) => {
            p.u8(2);
            p.len_of(ranges.len());
            for &(lo, hi) in ranges {
                p.f32(lo);
                p.f32(hi);
            }
        }
    }
    p.bytes
}

fn decode_config(mut c: Cursor<'_>) -> Result<SmoreConfig> {
    let dim = c.len("dim")?;
    let channels = c.len("channels")?;
    let num_classes = c.len("num_classes")?;
    let ngram = c.len("ngram")?;
    let levels = c.len("levels")?;
    let epochs = c.len("epochs")?;
    let threads = c.len("threads")?;
    let seed = c.u64()?;
    let delta_star = c.f32()?;
    let learning_rate = c.f32()?;
    let weight_power = c.f32()?;
    let quantization = match c.u8()? {
        0 => Quantization::Interpolate,
        1 => Quantization::LevelFlip,
        other => return Err(c.corrupt(format!("unknown quantization tag {other}"))),
    };
    let domain_init = match c.u8()? {
        0 => DomainInit::Shared,
        1 => DomainInit::Independent,
        other => return Err(c.corrupt(format!("unknown domain_init tag {other}"))),
    };
    let center = c.u8()? != 0;
    let standardize = c.u8()? != 0;
    let range = match c.u8()? {
        0 => RangeMode::FitGlobal,
        1 => RangeMode::PerWindow,
        2 => {
            let n = c.len("fixed range")?;
            let flat =
                c.f32s(n.checked_mul(2).ok_or_else(|| c.corrupt("range count overflows"))?)?;
            RangeMode::Fixed(pairs(&flat))
        }
        other => return Err(c.corrupt(format!("unknown range mode tag {other}"))),
    };
    let config = SmoreConfig {
        dim,
        channels,
        num_classes,
        ngram,
        levels,
        quantization,
        range,
        delta_star,
        learning_rate,
        epochs,
        center,
        standardize,
        domain_init,
        weight_power,
        threads,
        seed,
    };
    c.finish()?;
    config
        .validate()
        .map_err(|e| SmoreError::corrupt("config", format!("decoded config is invalid: {e}")))?;
    Ok(config)
}

fn encode_scaler(scaler: &ChannelStats) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(scaler.mean.len());
    p.f32s(&scaler.mean);
    p.f32s(&scaler.std);
    p.bytes
}

fn decode_scaler(mut c: Cursor<'_>, channels: usize) -> Result<ChannelStats> {
    let n = c.len("channel")?;
    if n != channels {
        return Err(c.corrupt(format!("{n} channel statistics for {channels} channels")));
    }
    let mean = c.f32s(n)?;
    let std = c.f32s(n)?;
    c.finish()?;
    Ok(ChannelStats { mean, std })
}

fn encode_mean(mean: &[f32]) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(mean.len());
    p.f32s(mean);
    p.bytes
}

fn decode_mean(mut c: Cursor<'_>, dim: usize) -> Result<Vec<f32>> {
    let n = c.len("mean")?;
    if n != dim {
        return Err(c.corrupt(format!("centring mean of dim {n} for a dim-{dim} model")));
    }
    let mean = c.f32s(n)?;
    c.finish()?;
    Ok(mean)
}

fn encode_tags(tags: &[usize]) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(tags.len());
    for &t in tags {
        p.len_of(t);
    }
    p.bytes
}

fn decode_tags(mut c: Cursor<'_>, expected: usize) -> Result<Vec<usize>> {
    let n = c.len("tag")?;
    if n != expected {
        return Err(c.corrupt(format!("{n} domain tags for {expected} domains")));
    }
    let tags: Vec<usize> = (0..n).map(|_| c.len("tag value")).collect::<Result<_>>()?;
    c.finish()?;
    let mut seen = tags.clone();
    seen.sort_unstable();
    seen.dedup();
    if seen.len() != tags.len() {
        return Err(SmoreError::corrupt("domain_tags", "duplicate domain tag"));
    }
    Ok(tags)
}

fn encode_value_range(range: &ValueRange) -> Vec<u8> {
    let mut p = Payload::default();
    match range {
        ValueRange::PerWindow => p.u8(0),
        ValueRange::Global(ranges) => {
            p.u8(1);
            p.len_of(ranges.len());
            for &(lo, hi) in ranges {
                p.f32(lo);
                p.f32(hi);
            }
        }
    }
    p.bytes
}

fn decode_value_range(mut c: Cursor<'_>, sensors: usize) -> Result<ValueRange> {
    let range = match c.u8()? {
        0 => ValueRange::PerWindow,
        1 => {
            let n = c.len("range")?;
            if n != sensors {
                return Err(c.corrupt(format!("{n} value ranges for {sensors} sensors")));
            }
            let flat = c.f32s(2 * n)?;
            ValueRange::Global(pairs(&flat))
        }
        other => return Err(c.corrupt(format!("unknown value range tag {other}"))),
    };
    c.finish()?;
    Ok(range)
}

/// The exact [`EncoderConfig`] a model's encoder was built with: derived
/// from the model config the same way [`SmoreConfig::encoder_config`]
/// derives it, with the *fitted* value range substituted.
fn encoder_config_with_range(config: &SmoreConfig, range: ValueRange) -> EncoderConfig {
    EncoderConfig {
        dim: config.dim,
        sensors: config.channels,
        ngram: config.ngram,
        levels: config.levels,
        quantization: config.quantization,
        range,
        normalize: true,
        seed: config.seed,
    }
}

fn encode_packed_vectors(vectors: &[PackedHypervector]) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(vectors.len());
    for v in vectors {
        p.words(v.words());
    }
    p.bytes
}

fn decode_packed_vectors(
    c: &mut Cursor<'_>,
    count: usize,
    dim: usize,
) -> Result<Vec<PackedHypervector>> {
    let words_per = smore_packed::words_for(dim);
    // Guard the collect's pre-allocation: `count` vectors need `count ×
    // words_per × 8` payload bytes, which must already be present.
    let remaining = c.bytes.len() - c.pos;
    if count.checked_mul(words_per.max(1) * 8).is_none_or(|need| need > remaining) {
        return Err(
            c.corrupt(format!("{count} packed vectors exceed the {remaining}-byte payload"))
        );
    }
    (0..count)
        .map(|_| {
            let words = c.words(words_per)?;
            PackedHypervector::from_words(dim, words).map_err(|e| c.corrupt(e.to_string()))
        })
        .collect()
}

fn encode_codebooks(codebooks: &[Vec<PackedHypervector>]) -> Vec<u8> {
    let mut p = Payload::default();
    p.len_of(codebooks.len());
    p.len_of(codebooks.first().map_or(0, Vec::len));
    for levels in codebooks {
        for v in levels {
            p.words(v.words());
        }
    }
    p.bytes
}

fn decode_codebooks(mut c: Cursor<'_>, dim: usize) -> Result<Vec<Vec<PackedHypervector>>> {
    let sensors = c.count("sensor", 1)?;
    let levels = c.len("level")?;
    let books = (0..sensors)
        .map(|_| decode_packed_vectors(&mut c, levels, dim))
        .collect::<Result<Vec<_>>>()?;
    c.finish()?;
    Ok(books)
}

// ---------------------------------------------------------------------------
// QuantizedSmore
// ---------------------------------------------------------------------------

fn quantized_to_bytes(model: &QuantizedSmore) -> Vec<u8> {
    let mut classes_payload = Payload::default();
    classes_payload.len_of(model.domain_classes.len());
    classes_payload.len_of(model.config.num_classes);
    for domain in &model.domain_classes {
        for class in domain {
            classes_payload.u8(class.num_planes() as u8);
            for (alpha, plane) in class.planes() {
                classes_payload.f32(*alpha);
                classes_payload.words(plane.words());
            }
        }
    }
    let mut gram_payload = Payload::default();
    gram_payload.len_of(model.class_gram.len());
    gram_payload.len_of(model.domain_classes.len());
    for gram in &model.class_gram {
        gram_payload.f32s(gram);
    }
    let sections = vec![
        (SEC_CONFIG, encode_config(&model.config)),
        (SEC_SCALER, encode_scaler(&model.scaler)),
        (SEC_CENTERING, encode_mean(&model.mean)),
        (SEC_DOMAIN_TAGS, encode_tags(&model.domain_tags)),
        (SEC_ENCODER_RANGE, encode_value_range(&model.encoder.config().range)),
        (SEC_PACKED_DESCRIPTORS, encode_packed_vectors(&model.descriptors)),
        (SEC_PACKED_CLASSES, classes_payload.bytes),
        (SEC_CLASS_GRAM, gram_payload.bytes),
        (SEC_PACKED_CODEBOOKS, encode_codebooks(model.encoder.codebooks())),
        (SEC_PACKED_CODEBOOKS_ROT, encode_codebooks(model.encoder.codebooks_rot())),
        (SEC_PACKED_SIGNATURES, encode_packed_vectors(model.encoder.signatures())),
    ];
    write_container(ArtifactKind::Quantized, &sections)
}

fn quantized_from_bytes(bytes: &[u8]) -> Result<QuantizedSmore> {
    let (kind, sections) = parse_container(bytes)?;
    if kind != ArtifactKind::Quantized {
        return Err(SmoreError::corrupt(
            "header",
            "artifact holds a dense model; load it with Smore::load (and quantize)",
        ));
    }
    reject_unknown(
        &sections,
        &[
            SEC_CONFIG,
            SEC_SCALER,
            SEC_CENTERING,
            SEC_DOMAIN_TAGS,
            SEC_ENCODER_RANGE,
            SEC_PACKED_DESCRIPTORS,
            SEC_PACKED_CLASSES,
            SEC_CLASS_GRAM,
            SEC_PACKED_CODEBOOKS,
            SEC_PACKED_CODEBOOKS_ROT,
            SEC_PACKED_SIGNATURES,
        ],
    )?;

    let config = decode_config(require(&sections, SEC_CONFIG)?)?;
    let dim = config.dim;
    let scaler = decode_scaler(require(&sections, SEC_SCALER)?, config.channels)?;
    let mean = decode_mean(require(&sections, SEC_CENTERING)?, dim)?;

    // Classes: [domain][class] residual planes. Every domain carries at
    // least one plane-count byte per class, which bounds the count (and
    // therefore every allocation sized by it) by the payload length.
    let mut c = require(&sections, SEC_PACKED_CLASSES)?;
    let num_domains = c.count("domain", config.num_classes.max(1))?;
    if num_domains < 2 {
        return Err(c.corrupt(format!("{num_domains} domains; SMORE serves K >= 2")));
    }
    let num_classes = c.len("class")?;
    if num_classes != config.num_classes {
        return Err(c.corrupt(format!(
            "{num_classes} classes per domain for a {}-class config",
            config.num_classes
        )));
    }
    let words_per = smore_packed::words_for(dim);
    let mut domain_classes = Vec::with_capacity(num_domains);
    for _ in 0..num_domains {
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let planes = c.u8()? as usize;
            if planes == 0 {
                return Err(c.corrupt("class hypervector with zero residual planes"));
            }
            let planes = (0..planes)
                .map(|_| {
                    let alpha = c.f32()?;
                    let words = c.words(words_per)?;
                    let plane = PackedHypervector::from_words(dim, words)
                        .map_err(|e| c.corrupt(e.to_string()))?;
                    Ok((alpha, plane))
                })
                .collect::<Result<Vec<_>>>()?;
            classes
                .push(ResidualPacked::from_planes(planes).map_err(|e| c.corrupt(e.to_string()))?);
        }
        domain_classes.push(classes);
    }
    c.finish()?;

    // Per-class Gram matrices.
    let mut c = require(&sections, SEC_CLASS_GRAM)?;
    let gram_classes = c.len("class")?;
    let gram_k = c.len("domain")?;
    if gram_classes != num_classes || gram_k != num_domains {
        return Err(c.corrupt(format!(
            "gram shaped ({gram_classes} classes, K={gram_k}) for ({num_classes}, K={num_domains})"
        )));
    }
    let class_gram =
        (0..gram_classes).map(|_| c.f32s(gram_k * gram_k)).collect::<Result<Vec<_>>>()?;
    c.finish()?;

    // Descriptors.
    let mut c = require(&sections, SEC_PACKED_DESCRIPTORS)?;
    let n = c.len("descriptor")?;
    if n != num_domains {
        return Err(c.corrupt(format!("{n} descriptors for {num_domains} domains")));
    }
    let descriptors = decode_packed_vectors(&mut c, n, dim)?;
    c.finish()?;

    let domain_tags = decode_tags(require(&sections, SEC_DOMAIN_TAGS)?, num_domains)?;

    // Encoder: stored codebooks verbatim (bit-exactness), validated by
    // PackedNgramEncoder::from_parts.
    let range = decode_value_range(require(&sections, SEC_ENCODER_RANGE)?, config.channels)?;
    let codebooks = decode_codebooks(require(&sections, SEC_PACKED_CODEBOOKS)?, dim)?;
    let codebooks_rot = decode_codebooks(require(&sections, SEC_PACKED_CODEBOOKS_ROT)?, dim)?;
    let mut c = require(&sections, SEC_PACKED_SIGNATURES)?;
    let n = c.len("signature")?;
    let signatures = decode_packed_vectors(&mut c, n, dim)?;
    c.finish()?;
    let encoder = PackedNgramEncoder::from_parts(
        encoder_config_with_range(&config, range),
        codebooks,
        codebooks_rot,
        signatures,
    )
    .map_err(|e| SmoreError::corrupt("packed_codebooks", e.to_string()))?;

    Ok(QuantizedSmore {
        config,
        scaler,
        encoder,
        mean,
        domain_classes,
        descriptors,
        class_gram,
        domain_tags,
    })
}

impl QuantizedSmore {
    /// Serializes the complete serving state to `.smore` artifact bytes.
    /// The encoding is canonical: the same model always produces the same
    /// bytes (locked by the golden-fixture test).
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        quantized_to_bytes(self)
    }

    /// Reconstructs a serving model from `.smore` artifact bytes. The
    /// loaded model is **bit-identical** in behaviour to the one that was
    /// saved: every prediction, score and similarity reproduces exactly
    /// (property-tested in `tests/artifact.rs`).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::CorruptArtifact`] for anything other than a
    /// well-formed quantized artifact of the supported
    /// [`FORMAT_VERSION`] — wrong magic or kind, checksum mismatches,
    /// truncation, unknown sections, or payloads that decode to an
    /// inconsistent model.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self> {
        quantized_from_bytes(bytes)
    }

    /// Saves the model as a `.smore` artifact file.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::Io`] when writing fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_artifact_bytes())
            .map_err(|e| SmoreError::io(path.display().to_string(), &e))
    }

    /// Loads a model from a `.smore` artifact file.
    ///
    /// # Errors
    ///
    /// [`SmoreError::Io`] when reading fails; otherwise the conditions of
    /// [`from_artifact_bytes`](Self::from_artifact_bytes).
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| SmoreError::io(path.display().to_string(), &e))?;
        Self::from_artifact_bytes(&bytes)
    }
}

// ---------------------------------------------------------------------------
// Dense Smore
// ---------------------------------------------------------------------------

fn dense_to_bytes(model: &Smore, fitted: &Fitted) -> Vec<u8> {
    let mut models_payload = Payload::default();
    models_payload.len_of(fitted.domain_models.len());
    for m in fitted.domain_models.iter() {
        models_payload.f32(m.config().learning_rate);
        models_payload.len_of(m.config().epochs);
        let hvs = m.class_hypervectors();
        models_payload.len_of(hvs.rows());
        models_payload.len_of(hvs.cols());
        models_payload.f32s(hvs.as_slice());
    }
    let descriptors = fitted.descriptors.as_matrix();
    let mut desc_payload = Payload::default();
    desc_payload.len_of(descriptors.rows());
    desc_payload.len_of(descriptors.cols());
    desc_payload.f32s(descriptors.as_slice());

    let sections = vec![
        (SEC_CONFIG, encode_config(&model.config)),
        (SEC_SCALER, encode_scaler(&fitted.scaler)),
        (SEC_CENTERING, encode_mean(fitted.centerer.mean())),
        (SEC_DOMAIN_TAGS, encode_tags(&fitted.domain_tags)),
        (SEC_ENCODER_RANGE, encode_value_range(&model.encoder.config().range)),
        (SEC_DENSE_DESCRIPTORS, desc_payload.bytes),
        (SEC_DOMAIN_MODELS, models_payload.bytes),
    ];
    write_container(ArtifactKind::Dense, &sections)
}

fn dense_from_bytes(bytes: &[u8]) -> Result<Smore> {
    let (kind, sections) = parse_container(bytes)?;
    if kind != ArtifactKind::Dense {
        return Err(SmoreError::corrupt(
            "header",
            "artifact holds a quantized model; load it with QuantizedSmore::load",
        ));
    }
    reject_unknown(
        &sections,
        &[
            SEC_CONFIG,
            SEC_SCALER,
            SEC_CENTERING,
            SEC_DOMAIN_TAGS,
            SEC_ENCODER_RANGE,
            SEC_DENSE_DESCRIPTORS,
            SEC_DOMAIN_MODELS,
        ],
    )?;

    let config = decode_config(require(&sections, SEC_CONFIG)?)?;
    let scaler = decode_scaler(require(&sections, SEC_SCALER)?, config.channels)?;
    let mean = decode_mean(require(&sections, SEC_CENTERING)?, config.dim)?;

    // Every model carries at least its 28-byte fixed header (lr, epochs,
    // rows, cols), bounding the count before any allocation.
    let mut c = require(&sections, SEC_DOMAIN_MODELS)?;
    let num_domains = c.count("model", 28)?;
    if num_domains < 2 {
        return Err(c.corrupt(format!("{num_domains} domain models; SMORE serves K >= 2")));
    }
    let mut domain_models = Vec::with_capacity(num_domains);
    for _ in 0..num_domains {
        let learning_rate = c.f32()?;
        let epochs = c.len("epochs")?;
        let rows = c.len("class")?;
        let cols = c.len("dim")?;
        if rows != config.num_classes || cols != config.dim {
            return Err(c.corrupt(format!(
                "domain model shaped ({rows}, {cols}) for a ({}, {}) config",
                config.num_classes, config.dim
            )));
        }
        let data =
            c.f32s(rows.checked_mul(cols).ok_or_else(|| c.corrupt("model size overflows"))?)?;
        let hvs = Matrix::from_vec(rows, cols, data).map_err(|e| c.corrupt(e.to_string()))?;
        let model = HdcClassifier::from_class_hypervectors_with(hvs, learning_rate, epochs)
            .map_err(|e| c.corrupt(e.to_string()))?;
        domain_models.push(model);
    }
    c.finish()?;

    let mut c = require(&sections, SEC_DENSE_DESCRIPTORS)?;
    let rows = c.len("descriptor")?;
    let cols = c.len("dim")?;
    if rows != num_domains || cols != config.dim {
        return Err(c.corrupt(format!(
            "descriptors shaped ({rows}, {cols}) for K={num_domains}, dim {}",
            config.dim
        )));
    }
    let data = c.f32s(rows.checked_mul(cols).ok_or_else(|| c.corrupt("size overflows"))?)?;
    let descriptors = DomainDescriptors::from_matrix(
        Matrix::from_vec(rows, cols, data).map_err(|e| c.corrupt(e.to_string()))?,
    );
    c.finish()?;

    let domain_tags = decode_tags(require(&sections, SEC_DOMAIN_TAGS)?, num_domains)?;
    let range = decode_value_range(require(&sections, SEC_ENCODER_RANGE)?, config.channels)?;

    // Dense codebooks are not stored: construction is deterministic in the
    // configuration seed, so rebuilding with the fitted range reproduces
    // the original encoder exactly.
    let encoder = MultiSensorEncoder::new(encoder_config_with_range(&config, range))
        .map_err(|e| SmoreError::corrupt("encoder_range", e.to_string()))?;

    Ok(Smore {
        config,
        encoder,
        fitted: Some(Fitted {
            scaler,
            centerer: Centerer::from_mean(mean),
            domain_models,
            descriptors,
            domain_tags,
        }),
    })
}

// ---------------------------------------------------------------------------
// SnapshotDelta (DeltaV1)
// ---------------------------------------------------------------------------

use crate::delta::{DeltaDomain, DeltaEnrollmentRecord, DeltaMeta, SnapshotDelta};

fn delta_to_bytes(delta: &SnapshotDelta) -> Vec<u8> {
    let mut meta = Payload::default();
    meta.len_of(delta.dim);
    meta.len_of(delta.num_classes);
    meta.len_of(delta.base_domains);
    meta.len_of(delta.base_tags.len());
    for &t in &delta.base_tags {
        meta.len_of(t);
    }
    meta.len_of(delta.meta.next_tag);
    meta.len_of(delta.meta.steps);

    let mut domains = Payload::default();
    domains.len_of(delta.domains.len());
    for domain in &delta.domains {
        domains.len_of(domain.tag);
        domains.words(domain.descriptor.words());
        for class in &domain.classes {
            domains.u8(class.num_planes() as u8);
            for (alpha, plane) in class.planes() {
                domains.f32(*alpha);
                domains.words(plane.words());
            }
        }
        for row in &domain.gram_rows {
            domains.f32s(row);
        }
    }

    let mut records = Payload::default();
    records.len_of(delta.meta.records.len());
    for r in &delta.meta.records {
        records.len_of(r.tag);
        records.len_of(r.step);
        records.len_of(r.enrolled_windows);
        records.len_of(r.oracle_labelled);
        records.u64(r.enroll_nanos);
        records.u64(r.swap_nanos);
    }

    let sections = vec![
        (SEC_DELTA_META, meta.bytes),
        (SEC_DELTA_DOMAINS, domains.bytes),
        (SEC_DELTA_RECORDS, records.bytes),
    ];
    write_container(ArtifactKind::Delta, &sections)
}

fn delta_from_bytes(bytes: &[u8]) -> Result<SnapshotDelta> {
    let (kind, sections) = parse_container(bytes)?;
    if kind != ArtifactKind::Delta {
        return Err(SmoreError::corrupt(
            "header",
            "artifact is not a tenant delta; quantized models load with QuantizedSmore::load, \
             dense models with Smore::load",
        ));
    }
    reject_unknown(&sections, &[SEC_DELTA_META, SEC_DELTA_DOMAINS, SEC_DELTA_RECORDS])?;

    let mut c = require(&sections, SEC_DELTA_META)?;
    let dim = c.len("dim")?;
    let num_classes = c.len("num_classes")?;
    let base_domains = c.len("base_domains")?;
    if dim == 0 || num_classes == 0 || base_domains < 2 {
        return Err(c.corrupt(format!(
            "delta over dim={dim}, classes={num_classes}, K={base_domains}; SMORE serves \
             dim >= 1, classes >= 1, K >= 2"
        )));
    }
    let n_tags = c.count("base tag", 8)?;
    if n_tags != base_domains {
        return Err(c.corrupt(format!("{n_tags} base tags for {base_domains} base domains")));
    }
    let base_tags: Vec<usize> =
        (0..n_tags).map(|_| c.len("base tag value")).collect::<Result<_>>()?;
    let next_tag = c.len("next_tag")?;
    let steps = c.len("steps")?;
    c.finish()?;

    // Delta domains: each carries at least its tag, its packed descriptor
    // and one plane-count byte per class — bounding the count (and every
    // allocation sized by it) by the payload length.
    let words_per = smore_packed::words_for(dim);
    let mut c = require(&sections, SEC_DELTA_DOMAINS)?;
    let num_domains = c.count("delta domain", 8 + words_per * 8 + num_classes)?;
    let mut domains: Vec<DeltaDomain> = Vec::with_capacity(num_domains);
    for i in 0..num_domains {
        let tag = c.len("tag")?;
        if base_tags.contains(&tag) || domains.iter().any(|d| d.tag == tag) {
            return Err(c.corrupt(format!("duplicate domain tag {tag}")));
        }
        let descriptor = PackedHypervector::from_words(dim, c.words(words_per)?)
            .map_err(|e| c.corrupt(e.to_string()))?;
        let mut classes = Vec::with_capacity(num_classes);
        for _ in 0..num_classes {
            let planes = c.u8()? as usize;
            if planes == 0 {
                return Err(c.corrupt("class hypervector with zero residual planes"));
            }
            let planes = (0..planes)
                .map(|_| {
                    let alpha = c.f32()?;
                    let words = c.words(words_per)?;
                    let plane = PackedHypervector::from_words(dim, words)
                        .map_err(|e| c.corrupt(e.to_string()))?;
                    Ok((alpha, plane))
                })
                .collect::<Result<Vec<_>>>()?;
            classes
                .push(ResidualPacked::from_planes(planes).map_err(|e| c.corrupt(e.to_string()))?);
        }
        // Growth row `i` holds one dot per earlier domain (base + prior
        // deltas) plus the self-dot.
        let row_len = base_domains + i + 1;
        let gram_rows =
            (0..num_classes).map(|_| c.f32s(row_len)).collect::<Result<Vec<Vec<f32>>>>()?;
        domains.push(DeltaDomain { tag, classes, descriptor, gram_rows });
    }
    c.finish()?;

    let mut c = require(&sections, SEC_DELTA_RECORDS)?;
    let n_records = c.count("enrolment record", 48)?;
    let records = (0..n_records)
        .map(|_| {
            Ok(DeltaEnrollmentRecord {
                tag: c.len("record tag")?,
                step: c.len("record step")?,
                enrolled_windows: c.len("record windows")?,
                oracle_labelled: c.len("record oracle count")?,
                enroll_nanos: c.u64()?,
                swap_nanos: c.u64()?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    c.finish()?;

    Ok(SnapshotDelta {
        base_domains,
        dim,
        num_classes,
        base_tags,
        domains,
        meta: DeltaMeta { next_tag, steps, records },
    })
}

impl SnapshotDelta {
    /// Serializes the delta to `DeltaV1` `.smore` artifact bytes — the
    /// tiny per-tenant artifact the eviction layer archives. The encoding
    /// is canonical: the same delta always produces the same bytes.
    pub fn to_artifact_bytes(&self) -> Vec<u8> {
        delta_to_bytes(self)
    }

    /// Reconstructs a delta from `DeltaV1` artifact bytes. Chaining the
    /// result onto the base it was built over (validated by
    /// [`SnapshotDelta::matches_base`] /
    /// [`crate::DeltaSmore::new`]) serves **bit-identically** to the
    /// delta that was saved.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::CorruptArtifact`] for anything other than a
    /// well-formed delta artifact of the supported [`FORMAT_VERSION`] —
    /// wrong magic or kind, checksum mismatches, truncation, unknown or
    /// duplicate sections, or payloads that decode inconsistently.
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self> {
        delta_from_bytes(bytes)
    }
}

impl Smore {
    /// Serializes the fitted dense model to `.smore` artifact bytes — the
    /// form that can *resume adaptation* after loading (enrol new domains,
    /// re-quantize, keep training).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::NotFitted`] before training.
    pub fn to_artifact_bytes(&self) -> Result<Vec<u8>> {
        let fitted = self.fitted.as_ref().ok_or(SmoreError::NotFitted)?;
        Ok(dense_to_bytes(self, fitted))
    }

    /// Reconstructs a fitted dense model from `.smore` artifact bytes.
    /// The encoder is rebuilt deterministically from the stored
    /// configuration, so the loaded model's predictions equal the saved
    /// model's exactly.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::CorruptArtifact`] for anything other than a
    /// well-formed dense artifact of the supported [`FORMAT_VERSION`].
    pub fn from_artifact_bytes(bytes: &[u8]) -> Result<Self> {
        dense_from_bytes(bytes)
    }

    /// Saves the fitted model as a `.smore` artifact file.
    ///
    /// # Errors
    ///
    /// [`SmoreError::NotFitted`] before training; [`SmoreError::Io`] when
    /// writing fails.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let path = path.as_ref();
        std::fs::write(path, self.to_artifact_bytes()?)
            .map_err(|e| SmoreError::io(path.display().to_string(), &e))
    }

    /// Loads a fitted model from a `.smore` artifact file.
    ///
    /// # Errors
    ///
    /// [`SmoreError::Io`] when reading fails; otherwise the conditions of
    /// [`from_artifact_bytes`](Self::from_artifact_bytes).
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| SmoreError::io(path.display().to_string(), &e))?;
        Self::from_artifact_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_of_validates_the_header() {
        assert!(matches!(kind_of(b"short"), Err(SmoreError::CorruptArtifact { .. })));
        let mut bytes = write_container(ArtifactKind::Quantized, &[]);
        assert_eq!(kind_of(&bytes).unwrap(), ArtifactKind::Quantized);
        bytes[0] ^= 0xFF;
        assert!(kind_of(&bytes).is_err(), "bad magic");
        let mut bytes = write_container(ArtifactKind::Dense, &[]);
        bytes[8] = 99; // future version
        let err = kind_of(&bytes).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let mut bytes = write_container(ArtifactKind::Dense, &[]);
        bytes[10] = 7; // unknown kind
        assert!(kind_of(&bytes).is_err());
    }

    #[test]
    fn container_rejects_tampering() {
        let sections = vec![(SEC_CONFIG, vec![1u8, 2, 3]), (SEC_SCALER, vec![9u8; 40])];
        let bytes = write_container(ArtifactKind::Dense, &sections);
        let (kind, parsed) = parse_container(&bytes).unwrap();
        assert_eq!(kind, ArtifactKind::Dense);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], (SEC_CONFIG, &[1u8, 2, 3][..]));

        // Truncation anywhere in the body fails cleanly.
        for cut in [bytes.len() - 1, bytes.len() - 20, 17, 16] {
            assert!(
                matches!(parse_container(&bytes[..cut]), Err(SmoreError::CorruptArtifact { .. })),
                "cut at {cut}"
            );
        }
        // A payload bit flip trips the section checksum.
        let mut flipped = bytes.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0x10;
        let err = parse_container(&flipped).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");
        // Trailing garbage is rejected.
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(parse_container(&padded).is_err());
        // Duplicate sections are rejected.
        let dup = write_container(
            ArtifactKind::Dense,
            &[(SEC_CONFIG, vec![1u8]), (SEC_CONFIG, vec![2u8])],
        );
        let err = parse_container(&dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn unknown_sections_are_refused() {
        let bytes = write_container(ArtifactKind::Quantized, &[(999, vec![0u8; 4])]);
        let (_, sections) = parse_container(&bytes).unwrap();
        let err = reject_unknown(&sections, &[SEC_CONFIG]).unwrap_err();
        assert!(err.to_string().contains("unknown section id 999"), "{err}");
    }

    #[test]
    fn cursor_bounds_and_trailing_checks() {
        let mut c = Cursor::new(&[1, 0, 0, 0, 0, 0, 0, 0, 5], "test");
        assert_eq!(c.u64().unwrap(), 1);
        assert!(c.f32().is_err(), "only one byte left");
        assert_eq!(c.u8().unwrap(), 5);
        c.finish().unwrap();
        let mut c = Cursor::new(&[0xFF; 8], "test");
        // A huge count cannot allocate: the byte bound fails first.
        let n = c.len("x").err();
        assert!(n.is_some() || c.f32s(usize::MAX / 8).is_err());
        let c = Cursor::new(&[1, 2], "test");
        assert!(c.finish().is_err(), "unread bytes");
    }
}
