//! The unified serving interface: one trait over every inference backend.
//!
//! Before this module existed the repo exposed three incompatible
//! prediction surfaces — [`Smore`](crate::Smore) (dense f32),
//! [`QuantizedSmore`](crate::QuantizedSmore) (bit-packed) and
//! `smore_stream::SnapshotHandle` (hot-swappable packed snapshots) — and
//! every bench, example and test matched on the backend it happened to
//! hold. [`Predictor`] collapses them into one contract: encode a raw
//! window, run Algorithm 1, report a [`Prediction`], all through a shared
//! caller-owned [`ServeScratch`] so the hot path stays allocation-free
//! regardless of backend.

use smore_packed::{EncoderScratch, PackedHypervector};
use smore_tensor::Matrix;

use crate::smore_model::Prediction;
use crate::Result;

/// Caller-owned scratch for the serving hot path, shared by every
/// [`Predictor`] backend.
///
/// Bundles every buffer one prediction needs — the scaled window, the
/// packed encoder's [`EncoderScratch`] and query, the dense query vector,
/// the similarity / ensemble-weight / per-class-score vectors and the
/// output [`Prediction`] — so `predict_window_with` performs no heap
/// allocation in steady state. Buffers size themselves lazily on first use
/// and survive snapshot hot-swaps (an enrolled domain merely grows the
/// similarity vectors once). One scratch can serve different backends (and
/// different models) interleaved; it just re-sizes on the first call of
/// each shape.
///
/// # Example
///
/// ```no_run
/// # fn main() -> Result<(), smore::SmoreError> {
/// # let quantized: smore::QuantizedSmore = unimplemented!();
/// # let windows: Vec<smore_tensor::Matrix> = vec![];
/// let mut scratch = smore::ServeScratch::new();
/// for w in &windows {
///     let p = quantized.predict_window_with(w, &mut scratch)?; // no allocation
///     println!("label {}", p.label);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ServeScratch {
    /// Packed-encoder scratch (ring, product, SWAR planes, counters).
    pub(crate) encoder: EncoderScratch,
    /// The channel-standardised window.
    pub(crate) scaled: Matrix,
    /// The packed query hypervector (quantized backends).
    pub(crate) query: PackedHypervector,
    /// The encoded-and-centred dense query (dense backend).
    pub(crate) dense_query: Vec<f32>,
    /// Descriptor similarities `δ(Q, U_k)`.
    pub(crate) sims: Vec<f32>,
    /// Eq. 3 ensemble weights.
    pub(crate) weights: Vec<f32>,
    /// Materialised ensembled class hypervector (dense backend).
    pub(crate) ensemble: Vec<f32>,
    /// Per-class ensemble scores of the last prediction.
    pub(crate) scores: Vec<f32>,
    /// The last prediction, exposed through [`prediction`](Self::prediction).
    pub(crate) prediction: Prediction,
    /// Per-stage wall time of the last prediction, exposed through
    /// [`timings`](Self::timings).
    pub(crate) timings: PredictTimings,
}

/// Per-stage wall time of one prediction, split at the encode/score
/// boundary of Algorithm 1.
///
/// Populated by [`QuantizedSmore`](crate::QuantizedSmore)'s
/// `predict_window_with` (the serving backend); the dense reference
/// pipeline leaves it zeroed. Telemetry layers read it from
/// [`ServeScratch::timings`] after each call — three `Instant::now()`
/// reads per prediction, negligible against the tens of microseconds a
/// packed predict costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictTimings {
    /// Nanoseconds spent standardising + encoding the window into a packed
    /// query (including the SWAR bundling and sign threshold).
    pub encode_nanos: u64,
    /// Nanoseconds spent on descriptor similarities, ensemble weighting and
    /// per-class scoring.
    pub score_nanos: u64,
}

impl PredictTimings {
    /// Sums another timing sample into this one (for batch accumulation).
    pub fn accumulate(&mut self, other: PredictTimings) {
        self.encode_nanos += other.encode_nanos;
        self.score_nanos += other.score_nanos;
    }
}

impl ServeScratch {
    /// An empty scratch; buffers are sized by the first prediction.
    pub fn new() -> Self {
        Self {
            encoder: EncoderScratch::new(),
            scaled: Matrix::default(),
            query: PackedHypervector::zeros(0),
            dense_query: Vec::new(),
            sims: Vec::new(),
            weights: Vec::new(),
            ensemble: Vec::new(),
            scores: Vec::new(),
            prediction: empty_prediction(),
            timings: PredictTimings::default(),
        }
    }

    /// The prediction produced by the most recent `predict_window_with`
    /// call through this scratch.
    pub fn prediction(&self) -> &Prediction {
        &self.prediction
    }

    /// Per-class ensemble scores of the most recent prediction (empty
    /// before the first call).
    pub fn scores(&self) -> &[f32] {
        &self.scores
    }

    /// Encode/score wall time of the most recent quantized prediction
    /// (zeroed for backends that do not instrument their stages).
    pub fn timings(&self) -> PredictTimings {
        self.timings
    }
}

impl Default for ServeScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// A structurally valid placeholder [`Prediction`] (overwritten before any
/// caller observes it).
pub(crate) fn empty_prediction() -> Prediction {
    Prediction {
        label: 0,
        is_ood: false,
        delta_max: 0.0,
        best_domain: 0,
        domain_similarities: Vec::new(),
    }
}

/// One inference surface over every SMORE serving backend.
///
/// Implemented by [`Smore`](crate::Smore) (dense reference pipeline),
/// [`QuantizedSmore`](crate::QuantizedSmore) (bit-packed serving) and
/// `smore_stream::SnapshotHandle` (atomically hot-swappable snapshots), so
/// benches, examples and tests can hold a `&dyn Predictor` instead of
/// matching on the backend.
///
/// The two required entry points reuse a caller-owned [`ServeScratch`];
/// the provided wrappers allocate per call and exist for convenience
/// paths. Implementations with a faster batch strategy (thread-parallel
/// chunking) override [`predict_batch`](Self::predict_batch).
///
/// # Example
///
/// ```
/// use smore::{Predictor, Smore, SmoreConfig};
/// use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let ds = generate(&GeneratorConfig {
///     domains: vec![
///         DomainSpec { subjects: vec![0], windows: 20 },
///         DomainSpec { subjects: vec![1], windows: 20 },
///     ],
///     ..GeneratorConfig::default()
/// })
/// .map_err(smore::SmoreError::from)?;
/// let mut model = Smore::new(
///     SmoreConfig::builder()
///         .dim(256)
///         .channels(ds.meta().channels)
///         .num_classes(ds.meta().num_classes)
///         .epochs(3)
///         .build()?,
/// )?;
/// let all: Vec<usize> = (0..ds.len()).collect();
/// model.fit_indices(&ds, &all)?;
/// let quantized = model.quantize()?;
///
/// // Dense and packed backends behind the same interface.
/// let backends: Vec<&dyn Predictor> = vec![&model, &quantized];
/// let mut scratch = smore::ServeScratch::new();
/// for backend in backends {
///     let p = backend.predict_window_with(ds.window(0), &mut scratch)?;
///     assert!(p.label < backend.num_classes());
/// }
/// # Ok(())
/// # }
/// ```
pub trait Predictor {
    /// Number of activity classes `n` this model scores.
    fn num_classes(&self) -> usize;

    /// Predicts one window through caller-owned scratch — the
    /// allocation-free hot path. The returned reference points into
    /// `scratch` (also readable later through [`ServeScratch::prediction`]);
    /// clone it to keep the prediction past the next call.
    ///
    /// # Errors
    ///
    /// Backend-specific: encoder errors for malformed windows, and
    /// [`crate::SmoreError::NotFitted`] for an untrained dense model.
    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction>;

    /// Computes the per-class ensemble scores (Algorithm 1's similarity to
    /// the per-query test-time model `M_T`) for one window into `scores`
    /// (cleared and refilled to [`num_classes`](Self::num_classes)
    /// entries). The prediction label is the argmax of these scores;
    /// callers that need calibrated margins, top-k, or score-level fusion
    /// read them directly.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_window_with`](Self::predict_window_with).
    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()>;

    /// Predicts one window — the allocating convenience wrapper.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_window_with`](Self::predict_window_with).
    fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        let mut scratch = ServeScratch::new();
        Ok(self.predict_window_with(window, &mut scratch)?.clone())
    }

    /// Predicts a batch of windows. The provided implementation serves
    /// them sequentially through one scratch; backends with a parallel
    /// batch path override it.
    ///
    /// # Errors
    ///
    /// Stops at (and propagates) the first failing window.
    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        let mut scratch = ServeScratch::new();
        windows.iter().map(|w| Ok(self.predict_window_with(w, &mut scratch)?.clone())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Smore, SmoreConfig};
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};

    fn fitted_pair() -> (smore_data::Dataset, Smore, crate::QuantizedSmore) {
        let ds = generate(&GeneratorConfig {
            name: "predictor-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 16,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 30 },
                DomainSpec { subjects: vec![1], windows: 30 },
            ],
            shift_severity: 0.6,
            seed: 11,
        })
        .unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(512)
                .channels(2)
                .num_classes(3)
                .epochs(5)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let all: Vec<usize> = (0..ds.len()).collect();
        model.fit_indices(&ds, &all).unwrap();
        let q = model.quantize().unwrap();
        (ds, model, q)
    }

    #[test]
    fn trait_and_inherent_paths_agree_per_backend() {
        let (ds, dense, quantized) = fitted_pair();
        let mut scratch = ServeScratch::new();
        for i in 0..6 {
            let w = ds.window(i);
            // Through the trait object...
            for backend in [&dense as &dyn Predictor, &quantized as &dyn Predictor] {
                let via_trait = backend.predict_window_with(w, &mut scratch).unwrap().clone();
                assert_eq!(via_trait, backend.predict_window(w).unwrap());
                assert_eq!(scratch.prediction(), &via_trait);
                assert_eq!(
                    via_trait.label,
                    smore_tensor::vecops::argmax(scratch.scores()).unwrap()
                );
            }
            // ...equals the backend's own inherent surface.
            assert_eq!(
                Predictor::predict_window(&dense, w).unwrap(),
                dense.predict_window(w).unwrap()
            );
            assert_eq!(
                Predictor::predict_window(&quantized, w).unwrap(),
                quantized.predict_window(w).unwrap()
            );
        }
    }

    #[test]
    fn score_into_matches_prediction_argmax_and_num_classes() {
        let (ds, dense, quantized) = fitted_pair();
        let mut scratch = ServeScratch::new();
        let mut scores = Vec::new();
        for backend in [&dense as &dyn Predictor, &quantized as &dyn Predictor] {
            assert_eq!(backend.num_classes(), 3);
            for i in [0usize, 7, 31] {
                let w = ds.window(i);
                backend.score_into(w, &mut scratch, &mut scores).unwrap();
                assert_eq!(scores.len(), 3);
                assert!(scores.iter().all(|s| s.is_finite()));
                let p = backend.predict_window(w).unwrap();
                assert_eq!(p.label, smore_tensor::vecops::argmax(&scores).unwrap());
            }
        }
    }

    #[test]
    fn trait_batch_agrees_with_parallel_override() {
        let (ds, dense, quantized) = fitted_pair();
        let windows: Vec<Matrix> = (0..10).map(|i| ds.window(i).clone()).collect();
        for backend in [&dense as &dyn Predictor, &quantized as &dyn Predictor] {
            let batch = backend.predict_batch(&windows).unwrap();
            assert_eq!(batch.len(), windows.len());
            for (i, w) in windows.iter().enumerate() {
                assert_eq!(batch[i], backend.predict_window(w).unwrap());
            }
        }
    }

    #[test]
    fn unfitted_dense_model_reports_through_the_trait() {
        let model =
            Smore::new(SmoreConfig::builder().dim(128).channels(2).num_classes(3).build().unwrap())
                .unwrap();
        let backend: &dyn Predictor = &model;
        let mut scratch = ServeScratch::new();
        assert!(matches!(
            backend.predict_window_with(&Matrix::zeros(16, 2), &mut scratch),
            Err(crate::SmoreError::NotFitted)
        ));
    }
}
