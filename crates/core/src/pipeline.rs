//! Evaluation pipeline: a uniform protocol for every algorithm in the
//! paper's comparison, plus leave-one-domain-out and k-fold drivers.
//!
//! SMORE, BaselineHD, DOMINO, TENT and MDANs all implement
//! [`WindowClassifier`], so the benchmark harness can evaluate each table
//! and figure with identical data handling and timing methodology.

use std::time::Instant;

use smore_data::{split, Dataset};
use smore_tensor::Matrix;

use crate::config::SmoreConfig;
use crate::smore_model::Smore;

/// Boxed error used at the pipeline boundary so algorithms from different
/// crates can flow through one trait.
pub type BoxError = Box<dyn std::error::Error + Send + Sync + 'static>;

/// Task description handed to classifiers at fit time.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskMeta {
    /// Number of activity classes.
    pub num_classes: usize,
    /// Number of *training* domains (after holding one out).
    pub num_domains: usize,
    /// Sensor channels per window.
    pub channels: usize,
    /// Time steps per window.
    pub window_len: usize,
}

/// A trainable multi-sensor window classifier under the shared evaluation
/// protocol.
///
/// `fit_with_target` additionally receives the *unlabelled* target-domain
/// windows, which domain-adaptation algorithms (TENT, MDANs) are entitled
/// to use; the default implementation ignores them, which is the honest
/// behaviour for source-only methods (BaselineHD, DOMINO, SMORE).
pub trait WindowClassifier {
    /// Short display name used in benchmark tables.
    fn name(&self) -> &str;

    /// Trains on labelled, domain-tagged windows.
    ///
    /// # Errors
    ///
    /// Implementations surface their own configuration/shape errors.
    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        meta: &TaskMeta,
    ) -> std::result::Result<(), BoxError>;

    /// Trains with access to unlabelled target windows (DA privilege).
    ///
    /// # Errors
    ///
    /// Implementations surface their own configuration/shape errors.
    fn fit_with_target(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        meta: &TaskMeta,
        _target_windows: &[Matrix],
    ) -> std::result::Result<(), BoxError> {
        self.fit(windows, labels, domains, meta)
    }

    /// Predicts class labels for a batch of windows.
    ///
    /// Takes `&mut self` because test-time-adapting algorithms (TENT)
    /// update their parameters while predicting, and network layers cache
    /// activations.
    ///
    /// # Errors
    ///
    /// Implementations surface their own prediction errors.
    fn predict(&mut self, windows: &[Matrix]) -> std::result::Result<Vec<usize>, BoxError>;
}

impl WindowClassifier for Smore {
    fn name(&self) -> &str {
        "SMORE"
    }

    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        _meta: &TaskMeta,
    ) -> std::result::Result<(), BoxError> {
        Smore::fit(self, windows, labels, domains)?;
        Ok(())
    }

    fn predict(&mut self, windows: &[Matrix]) -> std::result::Result<Vec<usize>, BoxError> {
        Ok(self.predict_batch(windows)?.into_iter().map(|p| p.label).collect())
    }
}

/// Builds a SMORE classifier for a dataset's task shape — the convenience
/// entry point the harness uses.
///
/// # Errors
///
/// Propagates configuration validation errors.
pub fn smore_for(dataset: &Dataset, dim: usize, delta_star: f32) -> crate::Result<Smore> {
    Smore::new(
        SmoreConfig::builder()
            .dim(dim)
            .channels(dataset.meta().channels)
            .num_classes(dataset.meta().num_classes)
            .delta_star(delta_star)
            .build()?,
    )
}

/// Outcome of one leave-one-domain-out run.
#[derive(Debug, Clone, PartialEq)]
pub struct LodoOutcome {
    /// The held-out (target) domain.
    pub held_out: usize,
    /// Accuracy on the held-out domain.
    pub accuracy: f32,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
    /// Wall-clock inference seconds over the whole held-out domain.
    pub infer_seconds: f64,
    /// Number of training windows.
    pub n_train: usize,
    /// Number of evaluated windows.
    pub n_test: usize,
}

/// Trains `classifier` on all domains except `held_out` and evaluates on
/// the held-out domain (paper §4.2: the accuracy of "Domain k").
///
/// # Errors
///
/// Propagates split errors and classifier errors.
pub fn run_lodo(
    dataset: &Dataset,
    classifier: &mut dyn WindowClassifier,
    held_out: usize,
) -> std::result::Result<LodoOutcome, BoxError> {
    let (train_idx, test_idx) = split::lodo(dataset, held_out)?;
    let (train_w, train_l, train_d) = dataset.gather(&train_idx);
    let (test_w, test_l, _) = dataset.gather(&test_idx);
    let meta = TaskMeta {
        num_classes: dataset.meta().num_classes,
        num_domains: dataset.meta().num_domains - 1,
        channels: dataset.meta().channels,
        window_len: dataset.meta().window_len,
    };

    let t0 = Instant::now();
    classifier.fit_with_target(&train_w, &train_l, &train_d, &meta, &test_w)?;
    let train_seconds = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let predictions = classifier.predict(&test_w)?;
    let infer_seconds = t1.elapsed().as_secs_f64();

    let accuracy = crate::metrics::accuracy(&predictions, &test_l)?;
    Ok(LodoOutcome {
        held_out,
        accuracy,
        train_seconds,
        infer_seconds,
        n_train: train_idx.len(),
        n_test: test_idx.len(),
    })
}

/// Runs [`run_lodo`] for every domain, constructing a fresh classifier per
/// run via `make` (models must not leak state across folds).
///
/// # Errors
///
/// Propagates the first failing run.
pub fn run_lodo_all(
    dataset: &Dataset,
    mut make: impl FnMut() -> std::result::Result<Box<dyn WindowClassifier>, BoxError>,
) -> std::result::Result<Vec<LodoOutcome>, BoxError> {
    (0..dataset.meta().num_domains)
        .map(|held_out| {
            let mut classifier = make()?;
            run_lodo(dataset, classifier.as_mut(), held_out)
        })
        .collect()
}

/// Mean accuracy across LODO outcomes.
pub fn mean_accuracy(outcomes: &[LodoOutcome]) -> f32 {
    if outcomes.is_empty() {
        return 0.0;
    }
    outcomes.iter().map(|o| o.accuracy).sum::<f32>() / outcomes.len() as f32
}

/// Runs standard shuffled k-fold cross-validation (the leaky protocol of
/// Figure 1b) and returns the per-fold accuracies.
///
/// # Errors
///
/// Propagates split and classifier errors.
pub fn run_kfold(
    dataset: &Dataset,
    mut make: impl FnMut() -> std::result::Result<Box<dyn WindowClassifier>, BoxError>,
    k: usize,
    seed: u64,
) -> std::result::Result<Vec<f32>, BoxError> {
    let meta = TaskMeta {
        num_classes: dataset.meta().num_classes,
        num_domains: dataset.meta().num_domains,
        channels: dataset.meta().channels,
        window_len: dataset.meta().window_len,
    };
    let mut accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let (train_idx, test_idx) = split::kfold(dataset, k, fold, seed)?;
        let (train_w, train_l, train_d) = dataset.gather(&train_idx);
        let (test_w, test_l, _) = dataset.gather(&test_idx);
        let mut classifier = make()?;
        classifier.fit(&train_w, &train_l, &train_d, &meta)?;
        let predictions = classifier.predict(&test_w)?;
        accuracies.push(crate::metrics::accuracy(&predictions, &test_l)?);
    }
    Ok(accuracies)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};

    fn dataset() -> Dataset {
        generate(&GeneratorConfig {
            name: "pipeline-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 20,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 45 },
                DomainSpec { subjects: vec![2, 3], windows: 45 },
                DomainSpec { subjects: vec![4, 5], windows: 45 },
            ],
            shift_severity: 1.0,
            seed: 31,
        })
        .unwrap()
    }

    fn small_smore(ds: &Dataset) -> Smore {
        Smore::new(
            SmoreConfig::builder()
                .dim(512)
                .channels(ds.meta().channels)
                .num_classes(ds.meta().num_classes)
                .epochs(8)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    #[test]
    fn run_lodo_produces_sane_outcome() {
        let ds = dataset();
        let mut model = small_smore(&ds);
        let outcome = run_lodo(&ds, &mut model, 1).unwrap();
        assert_eq!(outcome.held_out, 1);
        assert_eq!(outcome.n_test, 45);
        assert_eq!(outcome.n_train, 90);
        assert!(outcome.accuracy > 1.0 / 3.0, "accuracy {} at chance", outcome.accuracy);
        assert!(outcome.train_seconds > 0.0);
        assert!(outcome.infer_seconds > 0.0);
    }

    #[test]
    fn run_lodo_all_covers_every_domain() {
        let ds = dataset();
        let outcomes = run_lodo_all(&ds, || Ok(Box::new(small_smore(&dataset())))).unwrap();
        assert_eq!(outcomes.len(), 3);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.held_out, i);
        }
        let mean = mean_accuracy(&outcomes);
        assert!(mean > 1.0 / 3.0);
        assert_eq!(mean_accuracy(&[]), 0.0);
    }

    #[test]
    fn run_kfold_returns_k_scores() {
        let ds = dataset();
        let accs = run_kfold(&ds, || Ok(Box::new(small_smore(&dataset()))), 3, 7).unwrap();
        assert_eq!(accs.len(), 3);
        assert!(accs.iter().all(|&a| (0.0..=1.0).contains(&a)));
    }

    #[test]
    fn kfold_beats_lodo_on_shifted_data() {
        // The paper's Figure 1(b) premise: shuffled k-fold leaks domains
        // into training and scores higher than honest LODO.
        let ds = dataset();
        let lodo_mean =
            mean_accuracy(&run_lodo_all(&ds, || Ok(Box::new(small_smore(&dataset())))).unwrap());
        let kfold_accs = run_kfold(&ds, || Ok(Box::new(small_smore(&dataset()))), 3, 7).unwrap();
        let kfold_mean: f32 = kfold_accs.iter().sum::<f32>() / kfold_accs.len() as f32;
        assert!(
            kfold_mean >= lodo_mean - 0.02,
            "k-fold ({kfold_mean}) should not trail LODO ({lodo_mean}) materially"
        );
    }

    #[test]
    fn smore_window_classifier_name() {
        let ds = dataset();
        let model = small_smore(&ds);
        assert_eq!(WindowClassifier::name(&model), "SMORE");
    }

    #[test]
    fn smore_for_builds_matching_shape() {
        let ds = dataset();
        let model = smore_for(&ds, 256, 0.3).unwrap();
        assert_eq!(model.config().channels, ds.meta().channels);
        assert_eq!(model.config().num_classes, ds.meta().num_classes);
        assert_eq!(model.config().dim, 256);
    }
}
