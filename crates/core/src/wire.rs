//! Shared little-endian framing primitives for every SMORE container.
//!
//! Two subsystems serialize binary payloads: the `.smore` model
//! [`artifact`](crate::artifact) container and the `smore_serve` network
//! protocol. Both follow the same discipline — little-endian fields,
//! CRC-32 integrity, and *bounds-checked* reads where every declared
//! count is validated against the bytes actually present **before** any
//! allocation happens (a hostile or corrupt length prefix must never size
//! a buffer the input itself cannot back). This module holds the shared
//! primitives; the artifact keeps its section-table layout on top, the
//! wire protocol its frame layout.
//!
//! [`WireReader`] deliberately mirrors the artifact cursor: `take` is the
//! only primitive that touches the byte range, every typed read goes
//! through it, and [`finish`](WireReader::finish) rejects trailing bytes
//! so a payload is either consumed exactly or refused loudly.

use std::fmt;
use std::sync::OnceLock;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the checksum
/// of gzip/PNG, hand-rolled because no checksum crate is vendored.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 == 1 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8); // smore-lint: allow(panic_path) index is masked to 0..256 over the 256-entry table
    }
    crc ^ 0xFFFF_FFFF
}

/// A structural decode failure: what was being decoded and why it failed.
///
/// Deliberately *not* a [`crate::SmoreError`] variant — the artifact maps
/// wire failures into `CorruptArtifact` and the network protocol maps
/// them into an on-wire error response; neither wants the other's
/// vocabulary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// The payload or field being decoded (static context label).
    pub context: &'static str,
    /// Human-readable description of the failure.
    pub reason: String,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed {} payload: {}", self.context, self.reason)
    }
}

impl std::error::Error for WireError {}

/// Result alias for wire-level decoding.
pub type WireResult<T> = std::result::Result<T, WireError>;

/// Little-endian payload builder.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: Vec<u8>,
}

impl WireWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty writer with `capacity` bytes pre-reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: Vec::with_capacity(capacity) }
    }

    /// Appends one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a run of little-endian `f32` values (no length prefix —
    /// write the count yourself first).
    pub fn f32s(&mut self, vs: &[f32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.f32(v);
        }
    }

    /// Appends raw bytes verbatim.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends a `u32` length prefix followed by the UTF-8 bytes of `s`.
    pub fn str_lp(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.bytes(s.as_bytes());
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer, returning the assembled payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian reader over one payload.
#[derive(Debug)]
pub struct WireReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    context: &'static str,
}

impl<'a> WireReader<'a> {
    /// Wraps `bytes`; `context` labels decode errors.
    pub fn new(bytes: &'a [u8], context: &'static str) -> Self {
        Self { bytes, pos: 0, context }
    }

    /// Builds a [`WireError`] in this reader's context.
    pub fn malformed(&self, reason: impl Into<String>) -> WireError {
        WireError { context: self.context, reason: reason.into() }
    }

    /// Unread bytes remaining.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Takes the next `n` bytes, or fails if fewer remain.
    pub fn take(&mut self, n: usize) -> WireResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| self.malformed(format!("payload truncated at byte {}", self.pos)))?;
        let out = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.malformed(format!("payload truncated at byte {}", self.pos)))?;
        self.pos = end;
        Ok(out)
    }

    /// Takes the next `N` bytes as a fixed-size array, or fails if fewer
    /// remain — the panic-free backbone of the integer readers.
    fn take_array<const N: usize>(&mut self) -> WireResult<[u8; N]> {
        let rest = self.bytes.get(self.pos..).unwrap_or_default();
        let Some((chunk, _)) = rest.split_first_chunk::<N>() else {
            return Err(self.malformed(format!("payload truncated at byte {}", self.pos)));
        };
        self.pos += N;
        Ok(*chunk)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> WireResult<u8> {
        let [byte] = self.take_array()?;
        Ok(byte)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> WireResult<u16> {
        Ok(u16::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> WireResult<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> WireResult<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Reads a little-endian `f32`.
    pub fn f32(&mut self) -> WireResult<f32> {
        Ok(f32::from_le_bytes(self.take_array()?))
    }

    /// Reads an item count declared as a `u32` and rejects it unless
    /// `count × min_bytes_per_item` still fits in the unread payload — so
    /// a crafted count can never size an allocation beyond the input's
    /// own byte length (a valid CRC is no protection: whoever writes the
    /// frame writes the checksum too).
    pub fn count(&mut self, what: &str, min_bytes_per_item: usize) -> WireResult<usize> {
        let n = self.u32()? as usize;
        let remaining = self.remaining();
        let need = n.checked_mul(min_bytes_per_item.max(1));
        if need.is_none_or(|need| need > remaining) {
            return Err(
                self.malformed(format!("{what} count {n} exceeds the {remaining}-byte payload"))
            );
        }
        Ok(n)
    }

    /// Reads `n` f32 values; the byte bound is checked *before* the
    /// allocation.
    pub fn f32s(&mut self, n: usize) -> WireResult<Vec<f32>> {
        let mut raw =
            self.take(n.checked_mul(4).ok_or_else(|| self.malformed("f32 run length overflows"))?)?;
        let mut out = Vec::with_capacity(n);
        while let Some((chunk, rest)) = raw.split_first_chunk::<4>() {
            out.push(f32::from_le_bytes(*chunk));
            raw = rest;
        }
        Ok(out)
    }

    /// Reads a `u32`-length-prefixed UTF-8 string (bounds-checked,
    /// invalid UTF-8 rejected).
    pub fn str_lp(&mut self) -> WireResult<String> {
        let n = self.count("string byte", 1)?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec()).map_err(|_| self.malformed("string is not valid UTF-8"))
    }

    /// Requires the payload to be fully consumed.
    pub fn finish(self) -> WireResult<()> {
        if self.pos != self.bytes.len() {
            return Err(self.malformed(format!(
                "{} unread trailing bytes in payload",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The classic IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_all_field_types() {
        let mut w = WireWriter::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f32(1.25);
        w.u32(3);
        w.f32s(&[1.0, -2.0, 3.5]);
        w.str_lp("hello");
        let bytes = w.into_bytes();

        let mut r = WireReader::new(&bytes, "test");
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f32().unwrap(), 1.25);
        let n = r.count("f32", 4).unwrap();
        assert_eq!(r.f32s(n).unwrap(), vec![1.0, -2.0, 3.5]);
        assert_eq!(r.str_lp().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn truncation_and_trailing_bytes_are_rejected() {
        let mut w = WireWriter::new();
        w.u64(42);
        let bytes = w.into_bytes();

        let mut short = WireReader::new(&bytes[..5], "test");
        assert!(short.u64().is_err());

        let mut r = WireReader::new(&bytes, "test");
        assert_eq!(r.u32().unwrap(), 42);
        let err = r.finish().unwrap_err();
        assert!(err.reason.contains("trailing"), "{err}");
    }

    #[test]
    fn hostile_counts_cannot_oversize_allocations() {
        // A count of u32::MAX over a 12-byte payload must be refused
        // before any allocation is attempted.
        let mut w = WireWriter::new();
        w.u32(u32::MAX);
        w.f32s(&[0.0, 0.0]);
        let bytes = w.into_bytes();
        let mut r = WireReader::new(&bytes, "test");
        let err = r.count("values", 4).unwrap_err();
        assert!(err.reason.contains("exceeds"), "{err}");
    }

    #[test]
    fn strings_reject_bad_utf8_and_bad_lengths() {
        let mut w = WireWriter::new();
        w.u32(2);
        w.bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert!(WireReader::new(&bytes, "test").str_lp().is_err());

        let mut w = WireWriter::new();
        w.str_lp("ok");
        let bytes = w.into_bytes();
        // Truncate mid-string.
        assert!(WireReader::new(&bytes[..5], "test").str_lp().is_err());
    }
}
