//! The quantized serving path: frozen SMORE models on bit-packed binary
//! hypervectors.
//!
//! [`QuantizedSmore`] is produced by [`crate::Smore::quantize`] from a
//! fitted dense model. Descriptors and encoder codebooks are sign-quantized
//! to one bit per dimension; the domain class hypervectors keep three
//! scaled sign planes ([`ResidualPacked`]) because their per-dimension
//! magnitudes carry the ensemble vote margins. The whole of Algorithm 1
//! then runs on word-level logic:
//!
//! - **Encoding** uses the packed n-gram encoder's *integer accumulator*,
//!   which reproduces the dense accumulator exactly (every bipolar product
//!   is `±1`); mean-centring folds into the threshold: the query bit is
//!   `sign(acc_i − μ_i·‖acc‖)`, i.e. the exact sign the dense pipeline
//!   would compute after centring and normalisation — no dense encode ever
//!   runs.
//! - **Descriptor similarity and OOD detection** are XOR+popcount. Sign
//!   quantization distorts the cosine scale as `δ ↦ (2/π)·asin(δ)` (the
//!   Gaussian sign-correlation identity); each measured similarity is put
//!   back on the dense scale through the inverse map `sin(π/2 · s)`, so
//!   the OOD threshold `δ*` and the Eq. 3 ensemble weights keep their
//!   dense calibration.
//! - **Test-time ensembling** (§3.6, Eq. 3) never materialises the
//!   ensembled model: `dot(Q, Σ_k w_k C_k) = Σ_k w_k·dot(Q, C_k)`, so each
//!   class score is a weighted sum of integer-accumulated popcount dots
//!   (one per residual plane), normalised by the ensemble norm from a
//!   precomputed `K × K` Gram matrix per class — the packed analog of the
//!   dense per-query cosine.
//!
//! Model memory drops >10× (descriptors 32×) and similarity scoring
//! replaces `3d` FLOPs with `d/64` XOR+popcount words per comparison.

use std::f32::consts::FRAC_PI_2;
use std::time::Instant;

use smore_data::Dataset;
use smore_hdc::encoder::MultiSensorEncoder;
use smore_packed::{PackedHypervector, PackedNgramEncoder, ResidualPacked};
use smore_tensor::{parallel, vecops, Matrix};

use crate::config::SmoreConfig;
use crate::ood::{OodDetector, OodVerdict};
use crate::predictor::{empty_prediction, PredictTimings, Predictor, ServeScratch};
use crate::smore_model::{ChannelStats, EvalReport, Fitted, Prediction};
use crate::test_time::ensemble_weights_into;
use crate::{Result, SmoreError};

/// Recovers a dense-cosine estimate from a sign-quantized similarity.
///
/// For jointly Gaussian components, `E[cos(sign x, sign y)] =
/// (2/π)·asin(cos(x, y))` — sign quantization compresses similarities
/// toward zero. Inverting the identity (`sin(π/2 · s)`) puts every
/// measured packed similarity back on the dense cosine scale, so the OOD
/// threshold `δ*` and the ensemble weights of Eq. 3 operate on the same
/// numbers the dense pipeline would see.
///
/// Out-of-range inputs are clamped to `[-1, 1]` first, so the output is
/// always a valid cosine. The map is strictly monotone on the clamped
/// domain (property-tested in `tests/proptests.rs`).
pub fn recover_cosine(packed_sim: f32) -> f32 {
    (FRAC_PI_2 * packed_sim.clamp(-1.0, 1.0)).sin()
}

/// Duration → whole nanoseconds, saturating at `u64::MAX` (584 years).
pub(crate) fn clamped_nanos(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// A frozen, bit-packed SMORE model for quantized serving.
///
/// Produced by [`Smore::quantize`](crate::Smore::quantize); exposes the
/// same prediction surface ([`predict_window`](Self::predict_window),
/// [`predict_batch`](Self::predict_batch), [`evaluate`](Self::evaluate))
/// and returns the same [`Prediction`] type. `delta_max` and
/// `domain_similarities` are reported on the recovered dense-cosine scale
/// (see [`recover_cosine`]), so `δ*` keeps its dense calibration.
///
/// # Example
///
/// ```
/// use smore::{Smore, SmoreConfig};
/// use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let dataset = generate(&GeneratorConfig {
///     domains: vec![
///         DomainSpec { subjects: vec![0, 1], windows: 30 },
///         DomainSpec { subjects: vec![2, 3], windows: 30 },
///     ],
///     ..GeneratorConfig::default()
/// })
/// .map_err(smore::SmoreError::from)?;
/// let mut model = Smore::new(
///     SmoreConfig::builder()
///         .dim(512)
///         .channels(dataset.meta().channels)
///         .num_classes(dataset.meta().num_classes)
///         .epochs(5)
///         .build()?,
/// )?;
/// let all: Vec<usize> = (0..dataset.len()).collect();
/// model.fit_indices(&dataset, &all)?;
///
/// let quantized = model.quantize()?;
/// let p = quantized.predict_window(dataset.window(0))?;
/// assert!(p.label < dataset.meta().num_classes);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct QuantizedSmore {
    pub(crate) config: SmoreConfig,
    pub(crate) scaler: ChannelStats,
    pub(crate) encoder: PackedNgramEncoder,
    /// Global training mean of the dense pipeline (`Centerer`), folded into
    /// the packing threshold.
    pub(crate) mean: Vec<f32>,
    /// `[domain][class]` residual-binarized class hypervectors — a few
    /// scaled sign planes each, so magnitudes survive quantization.
    pub(crate) domain_classes: Vec<Vec<ResidualPacked>>,
    pub(crate) descriptors: Vec<PackedHypervector>,
    /// Per class `c`, the `K × K` Gram matrix `dot(C_j^c, C_k^c)` of the
    /// quantized domain class hypervectors (row-major, `j·K + k`).
    pub(crate) class_gram: Vec<Vec<f32>>,
    pub(crate) domain_tags: Vec<usize>,
}

/// Sign planes per class hypervector: 3 bits/dim keeps the ensemble vote
/// margins that pure sign quantization discards, while staying >10× below
/// the dense `f32` footprint and fully inside popcount arithmetic.
pub(crate) const CLASS_PLANES: usize = 3;

impl QuantizedSmore {
    pub(crate) fn from_fitted(
        config: &SmoreConfig,
        dense_encoder: &MultiSensorEncoder,
        fitted: &Fitted,
    ) -> Result<Self> {
        let encoder = PackedNgramEncoder::from_dense(dense_encoder)?;
        let domain_classes = fitted
            .domain_models
            .iter()
            .map(|model| {
                model
                    .class_hypervectors()
                    .iter_rows()
                    .map(|row| ResidualPacked::from_dense(row, CLASS_PLANES))
                    .collect::<smore_packed::Result<Vec<_>>>()
            })
            .collect::<smore_packed::Result<Vec<_>>>()?;
        let descriptors: Vec<PackedHypervector> =
            fitted.descriptors.as_matrix().iter_rows().map(PackedHypervector::from_signs).collect();
        let k = domain_classes.len();
        let class_gram = (0..config.num_classes)
            .map(|c| {
                let mut gram = vec![0.0f32; k * k];
                for j in 0..k {
                    for m in j..k {
                        let dot = domain_classes[j][c].dot(&domain_classes[m][c])?;
                        gram[j * k + m] = dot;
                        gram[m * k + j] = dot;
                    }
                }
                Ok(gram)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            config: config.clone(),
            scaler: fitted.scaler.clone(),
            encoder,
            mean: fitted.centerer.mean().to_vec(),
            descriptors,
            class_gram,
            domain_classes,
            domain_tags: fitted.domain_tags.clone(),
        })
    }

    /// Appends a freshly enrolled domain to the frozen serving model
    /// *without* re-quantizing the shared state: the new model's class
    /// hypervectors are residual-binarized, the new descriptor is
    /// sign-packed, and every per-class Gram matrix grows from `K × K` to
    /// `(K+1) × (K+1)` by computing only the new row/column of dots. The
    /// packed encoder codebooks, channel scaler and centring mean are
    /// untouched — they were frozen by the original quantize and stay
    /// valid because online enrolment never moves the encoder geometry.
    ///
    /// This is the cheap path behind streaming hot-swap: cloning the
    /// snapshot and appending one domain costs `O(n·d)` instead of the
    /// full-model re-quantization (which re-derives the encoder
    /// codebooks).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when the model shape or
    /// descriptor dimension disagrees with the frozen configuration, or
    /// the tag is already enrolled.
    pub fn enroll_domain(
        &mut self,
        model: &smore_hdc::model::HdcClassifier,
        descriptor: &[f32],
        tag: usize,
    ) -> Result<()> {
        if model.dim() != self.config.dim || model.num_classes() != self.config.num_classes {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "enrolled model shape ({}, {}) disagrees with quantized model ({}, {})",
                    model.num_classes(),
                    model.dim(),
                    self.config.num_classes,
                    self.config.dim
                ),
            });
        }
        if descriptor.len() != self.config.dim {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "descriptor dimension {} disagrees with quantized dim {}",
                    descriptor.len(),
                    self.config.dim
                ),
            });
        }
        if self.domain_tags.contains(&tag) {
            return Err(SmoreError::InvalidConfig {
                what: format!("domain tag {tag} is already enrolled"),
            });
        }
        let new_classes = model
            .class_hypervectors()
            .iter_rows()
            .map(|row| ResidualPacked::from_dense(row, CLASS_PLANES))
            .collect::<smore_packed::Result<Vec<_>>>()?;
        let k = self.domain_classes.len();
        for (c, gram) in self.class_gram.iter_mut().enumerate() {
            let mut grown = vec![0.0f32; (k + 1) * (k + 1)];
            for j in 0..k {
                for m in 0..k {
                    grown[j * (k + 1) + m] = gram[j * k + m];
                }
            }
            for j in 0..k {
                let dot = self.domain_classes[j][c].dot(&new_classes[c])?;
                grown[j * (k + 1) + k] = dot;
                grown[k * (k + 1) + j] = dot;
            }
            grown[k * (k + 1) + k] = new_classes[c].dot(&new_classes[c])?;
            *gram = grown;
        }
        self.descriptors.push(PackedHypervector::from_signs(descriptor));
        self.domain_classes.push(new_classes);
        self.domain_tags.push(tag);
        Ok(())
    }

    /// The dense configuration the model was quantized from.
    pub fn config(&self) -> &SmoreConfig {
        &self.config
    }

    /// Hypervector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of source domains `K`.
    pub fn num_domains(&self) -> usize {
        self.domain_classes.len()
    }

    /// External domain tags, ordered by local model index.
    pub fn domain_tags(&self) -> &[usize] {
        &self.domain_tags
    }

    /// Re-tunes the OOD threshold `δ*` without re-quantizing. The value is
    /// on the dense cosine scale — the same scale
    /// [`crate::Smore::set_delta_star`] accepts — because packed
    /// similarities are recovered onto it before thresholding.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for a non-cosine value.
    pub fn set_delta_star(&mut self, delta_star: f32) -> Result<()> {
        crate::config::validate_delta_star(delta_star)?;
        self.config.delta_star = delta_star;
        Ok(())
    }

    /// Bytes held by the complete serving state: packed class hypervectors,
    /// descriptors and encoder codebooks, plus the small dense epilogue
    /// state the model cannot serve without (the `f32` centring mean, the
    /// per-class Gram matrices and the channel scaler).
    pub fn storage_bytes(&self) -> usize {
        self.domain_classes
            .iter()
            .flat_map(|classes| classes.iter().map(ResidualPacked::storage_bytes))
            .sum::<usize>()
            + self.descriptors.iter().map(PackedHypervector::storage_bytes).sum::<usize>()
            + self.encoder.storage_bytes()
            + self.mean.len() * std::mem::size_of::<f32>()
            + self.class_gram.iter().map(|g| g.len() * std::mem::size_of::<f32>()).sum::<usize>()
            + self.scaler.storage_bytes()
    }

    /// Encodes one raw window into the packed query held in `scratch` —
    /// the allocation-free serving encode.
    ///
    /// The bit at dimension `i` is the sign of `acc_i − μ_i·‖acc‖` — the
    /// exact sign the dense pipeline computes after scaling, encoding,
    /// centring and normalising, obtained without any dense encode.
    pub(crate) fn encode_query_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
    ) -> Result<()> {
        self.scaler.apply_into(window, &mut scratch.scaled);
        self.encoder.encode_counts_into(&scratch.scaled, &mut scratch.encoder)?;
        let counts = scratch.encoder.counts();
        let norm = counts.iter().map(|&c| c as f64 * c as f64).sum::<f64>().sqrt() as f32;
        if scratch.query.dim() != self.config.dim {
            scratch.query = PackedHypervector::zeros(self.config.dim);
        }
        let mean = &self.mean;
        scratch.query.fill_with(|i| (counts[i] as f32) - mean[i] * norm < 0.0);
        Ok(())
    }

    /// Encodes one raw window straight into a packed query hypervector.
    ///
    /// See [`encode_query_into`](Self::encode_query_into) for the
    /// threshold semantics; this wrapper allocates — serving loops should
    /// go through [`predict_window_with`](Self::predict_window_with).
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn encode_packed(&self, window: &Matrix) -> Result<PackedHypervector> {
        let mut scratch = ServeScratch::new();
        self.encode_query_into(window, &mut scratch)?;
        Ok(scratch.query)
    }

    /// Encodes `window` into the packed query and computes the descriptor
    /// similarities (recovered onto the dense cosine scale, so δ* and the
    /// Eq. 3 weights keep their dense calibration) and ensemble weights
    /// into `scratch`; returns the OOD verdict. Shared by the predict and
    /// score entry points.
    fn prepare_query(&self, window: &Matrix, scratch: &mut ServeScratch) -> Result<OodVerdict> {
        let encode_start = Instant::now();
        self.encode_query_into(window, scratch)?;
        scratch.timings.encode_nanos = clamped_nanos(encode_start.elapsed());
        scratch.sims.clear();
        for u in &self.descriptors {
            let sim =
                scratch.query.similarity(u).expect("descriptor dimension fixed at quantize time");
            scratch.sims.push(recover_cosine(sim));
        }
        let verdict: OodVerdict = OodDetector::new(self.config.delta_star).decide(&scratch.sims);
        ensemble_weights_into(
            &scratch.sims,
            verdict.is_ood,
            self.config.delta_star,
            self.config.weight_power,
            &mut scratch.weights,
        );
        Ok(verdict)
    }

    /// Scores a prepared packed query against `M_T = Σ_k w_k M_k` without
    /// materialising it: `dot(Q, Σ_k w_k C_k) = Σ_k w_k dot(Q, C_k)`,
    /// every dot a handful of popcount sweeps (one per residual plane);
    /// the per-class ensemble norm comes from the precomputed Gram.
    /// `scores` is cleared and refilled with one entry per class.
    fn class_scores_into(&self, query: &PackedHypervector, weights: &[f32], scores: &mut Vec<f32>) {
        let k = self.domain_classes.len();
        let q_norm = (self.config.dim as f32).sqrt();
        scores.clear();
        for class in 0..self.config.num_classes {
            let mut dot_sum = 0.0f32;
            for (classes, &w) in self.domain_classes.iter().zip(weights) {
                if w > 0.0 {
                    let dot = classes[class]
                        .dot_packed(query)
                        .expect("query dimension fixed at quantize time");
                    dot_sum += w * dot;
                }
            }
            let gram = &self.class_gram[class];
            let mut norm_sq = 0.0f32;
            for (j, &wj) in weights.iter().enumerate() {
                if wj <= 0.0 {
                    continue;
                }
                for (m, &wm) in weights.iter().enumerate() {
                    if wm > 0.0 {
                        norm_sq += wj * wm * gram[j * k + m];
                    }
                }
            }
            scores.push(if norm_sq > 0.0 { dot_sum / (norm_sq.sqrt() * q_norm) } else { 0.0 });
        }
    }

    /// Per-class ensemble scores for one window (the quantized
    /// [`Predictor::score_into`] surface): `scores` is cleared and
    /// refilled with `num_classes` entries; the predicted label is their
    /// argmax.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        self.prepare_query(window, scratch)?;
        self.class_scores_into(&scratch.query, &scratch.weights, scores);
        Ok(())
    }

    /// Predicts one window — Algorithm 1 entirely on packed operations,
    /// reusing caller-owned scratch so the steady-state hot path performs
    /// no heap allocation. The returned reference points into `scratch`
    /// (also readable later through [`ServeScratch::prediction`]); clone
    /// it to keep the prediction past the next call.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        let total_start = Instant::now();
        let verdict = self.prepare_query(window, scratch)?;
        let ServeScratch { query, weights, scores, .. } = &mut *scratch;
        self.class_scores_into(query, weights, scores);
        let best_label = vecops::argmax(scores).unwrap_or(0);
        // Everything past the encode — descriptor similarity, OOD verdict,
        // Eq. 3 weights, per-class scoring — is the "score" stage.
        scratch.timings.score_nanos =
            clamped_nanos(total_start.elapsed()).saturating_sub(scratch.timings.encode_nanos);

        let prediction = &mut scratch.prediction;
        prediction.label = best_label;
        prediction.is_ood = verdict.is_ood;
        prediction.delta_max = verdict.delta_max;
        prediction.best_domain = self.domain_tags[verdict.best_domain];
        prediction.domain_similarities.clear();
        prediction.domain_similarities.extend_from_slice(&scratch.sims);
        Ok(&scratch.prediction)
    }

    /// Predicts one window — the allocating convenience wrapper around
    /// [`predict_window_with`](Self::predict_window_with).
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        let mut scratch = ServeScratch::new();
        Ok(self.predict_window_with(window, &mut scratch)?.clone())
    }

    /// Predicts a batch of windows in parallel; every worker thread reuses
    /// one [`ServeScratch`] across its whole chunk, so the per-window cost
    /// is allocation-free encoding plus one output clone.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        let mut out: Vec<Result<Prediction>> =
            (0..windows.len()).map(|_| Ok(empty_prediction())).collect();
        parallel::par_chunks_indexed(&mut out, self.config.threads, |start, chunk| {
            let mut scratch = ServeScratch::new();
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = self.predict_window_with(&windows[start + i], &mut scratch).cloned();
            }
        });
        out.into_iter().collect()
    }

    /// [`predict_batch`](Self::predict_batch) plus the summed per-stage
    /// wall time across every window in the batch (each worker thread
    /// accumulates its own scratch timings; the totals are merged with two
    /// relaxed atomic adds per thread). Telemetry layers divide by
    /// `windows.len()` to charge a batch-mean encode/score cost per window.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_batch_timed(
        &self,
        windows: &[Matrix],
    ) -> Result<(Vec<Prediction>, PredictTimings)> {
        use std::sync::atomic::{AtomicU64, Ordering};
        let mut out: Vec<Result<Prediction>> =
            (0..windows.len()).map(|_| Ok(empty_prediction())).collect();
        let encode_total = AtomicU64::new(0);
        let score_total = AtomicU64::new(0);
        parallel::par_chunks_indexed(&mut out, self.config.threads, |start, chunk| {
            let mut scratch = ServeScratch::new();
            let mut local = PredictTimings::default();
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = self.predict_window_with(&windows[start + i], &mut scratch).cloned();
                local.accumulate(scratch.timings());
            }
            // ordering: Relaxed — per-thread timing totals; par_chunks
            // joins every worker before into_inner reads them back.
            encode_total.fetch_add(local.encode_nanos, Ordering::Relaxed);
            score_total.fetch_add(local.score_nanos, Ordering::Relaxed);
        });
        let predictions: Result<Vec<Prediction>> = out.into_iter().collect();
        Ok((
            predictions?,
            PredictTimings {
                encode_nanos: encode_total.into_inner(),
                score_nanos: score_total.into_inner(),
            },
        ))
    }

    /// Predicts and scores a labelled evaluation set.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict_batch`](Self::predict_batch), plus
    /// [`SmoreError::InvalidConfig`] for mismatched label counts.
    pub fn evaluate(&self, windows: &[Matrix], labels: &[usize]) -> Result<EvalReport> {
        if windows.len() != labels.len() || windows.is_empty() {
            return Err(SmoreError::InvalidConfig {
                what: format!("{} windows but {} labels", windows.len(), labels.len()),
            });
        }
        let t0 = Instant::now();
        let predictions = self.predict_batch(windows)?;
        let infer_seconds = t0.elapsed().as_secs_f64();
        let correct = predictions.iter().zip(labels).filter(|(p, &l)| p.label == l).count();
        let ood = predictions.iter().filter(|p| p.is_ood).count();
        Ok(EvalReport {
            accuracy: correct as f32 / windows.len() as f32,
            samples: windows.len(),
            ood_fraction: ood as f32 / windows.len() as f32,
            infer_seconds,
        })
    }

    /// Convenience wrapper: evaluate on the rows of `dataset` selected by
    /// `indices`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`evaluate`](Self::evaluate).
    pub fn evaluate_indices(&self, dataset: &Dataset, indices: &[usize]) -> Result<EvalReport> {
        let (windows, labels, _) = dataset.gather(indices);
        self.evaluate(&windows, &labels)
    }
}

impl Predictor for QuantizedSmore {
    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        QuantizedSmore::predict_window_with(self, window, scratch)
    }

    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        QuantizedSmore::score_into(self, window, scratch, scores)
    }

    fn predict_window(&self, window: &Matrix) -> Result<Prediction> {
        QuantizedSmore::predict_window(self, window)
    }

    /// Overrides the provided sequential batch with the thread-parallel
    /// per-chunk-scratch implementation.
    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        QuantizedSmore::predict_batch(self, windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Smore;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn small_config(channels: usize, classes: usize) -> SmoreConfig {
        SmoreConfig::builder()
            .dim(1024)
            .channels(channels)
            .num_classes(classes)
            .epochs(10)
            .threads(2)
            .build()
            .unwrap()
    }

    fn shifted_dataset(seed: u64) -> Dataset {
        generate(&GeneratorConfig {
            name: "quantized-test".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 60 },
                DomainSpec { subjects: vec![2, 3], windows: 60 },
                DomainSpec { subjects: vec![4, 5], windows: 60 },
                DomainSpec { subjects: vec![6, 7], windows: 60 },
            ],
            shift_severity: 0.8,
            seed,
        })
        .unwrap()
    }

    fn fitted_model(ds: &Dataset, train: &[usize]) -> Smore {
        let mut model = Smore::new(small_config(3, 4)).unwrap();
        model.fit_indices(ds, train).unwrap();
        model
    }

    #[test]
    fn quantize_requires_a_fitted_model() {
        let model = Smore::new(small_config(3, 4)).unwrap();
        assert!(matches!(model.quantize(), Err(SmoreError::NotFitted)));
    }

    #[test]
    fn quantized_model_reports_structure_and_footprint() {
        let ds = shifted_dataset(1);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let dense = fitted_model(&ds, &train);
        let q = dense.quantize().unwrap();
        assert_eq!(q.num_domains(), 3);
        assert_eq!(q.domain_tags(), &[1, 2, 3]);
        assert_eq!(q.dim(), 1024);
        // 3 domains × 4 classes of 3-plane residuals + 3 one-bit
        // descriptors (1024 bits = 128 bytes per plane), plus the shared
        // encoder codebooks.
        assert!(q.storage_bytes() >= (3 * 4 * 3 + 3) * 128);
        // The dense equivalent of just the models+descriptors is 15 × 4 KiB;
        // the packed model including all codebooks must still be smaller.
        assert!(q.storage_bytes() < 15 * 1024 * 4);
    }

    #[test]
    fn quantized_predictions_agree_with_dense() {
        let ds = shifted_dataset(2);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let dense = fitted_model(&ds, &train);
        let quantized = dense.quantize().unwrap();
        let windows: Vec<Matrix> = test[..60].iter().map(|&i| ds.window(i).clone()).collect();
        let dp = dense.predict_batch(&windows).unwrap();
        let qp = quantized.predict_batch(&windows).unwrap();
        let agree = dp.iter().zip(&qp).filter(|(a, b)| a.label == b.label).count();
        assert!(
            agree as f32 / windows.len() as f32 >= 0.8,
            "dense/quantized agreement {agree}/{} too low",
            windows.len()
        );
    }

    #[test]
    fn quantized_accuracy_tracks_dense_on_source_domains() {
        let ds = shifted_dataset(3);
        let all: Vec<usize> = (0..ds.len()).collect();
        let dense = fitted_model(&ds, &all);
        let quantized = dense.quantize().unwrap();
        let dense_eval = dense.evaluate_indices(&ds, &all).unwrap();
        let quant_eval = quantized.evaluate_indices(&ds, &all).unwrap();
        assert!(
            quant_eval.accuracy >= dense_eval.accuracy - 0.1,
            "quantized {} vs dense {}",
            quant_eval.accuracy,
            dense_eval.accuracy
        );
    }

    #[test]
    fn predict_batch_matches_predict_window() {
        let ds = shifted_dataset(4);
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let quantized = fitted_model(&ds, &train).quantize().unwrap();
        let windows: Vec<Matrix> = test[..8].iter().map(|&i| ds.window(i).clone()).collect();
        let batch = quantized.predict_batch(&windows).unwrap();
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(batch[i], quantized.predict_window(w).unwrap());
        }
    }

    #[test]
    fn scratch_serving_matches_allocating_path_across_hot_swap() {
        let ds = shifted_dataset(10);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut dense = fitted_model(&ds, &train);
        let mut quantized = dense.quantize().unwrap();
        let mut scratch = ServeScratch::new();
        for &i in &test[..10] {
            let w = ds.window(i);
            let with = quantized.predict_window_with(w, &mut scratch).unwrap().clone();
            assert_eq!(with, quantized.predict_window(w).unwrap());
            assert_eq!(scratch.prediction(), &with, "scratch retains the last prediction");
        }
        // Enrolment grows the similarity vectors; the same scratch keeps
        // serving the swapped-in model.
        let (w, l, _) = ds.gather(&test[..40]);
        dense.enroll_domain(&w, &l, 0).unwrap();
        let new_model = dense.domain_models().unwrap().last().unwrap().clone();
        let descriptors = dense.descriptors().unwrap().as_matrix().clone();
        quantized.enroll_domain(&new_model, descriptors.row(3), 0).unwrap();
        for &i in &test[..10] {
            let w = ds.window(i);
            let p = quantized.predict_window_with(w, &mut scratch).unwrap().clone();
            assert_eq!(p.domain_similarities.len(), 4);
            assert_eq!(p, quantized.predict_window(w).unwrap());
        }
        // A malformed window reports through the scratch path too.
        assert!(quantized.predict_window_with(&Matrix::zeros(24, 9), &mut scratch).is_err());
    }

    #[test]
    fn delta_star_extremes_control_ood_fraction() {
        let ds = shifted_dataset(5);
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let mut quantized = fitted_model(&ds, &train).quantize().unwrap();
        let windows: Vec<Matrix> = test[..20].iter().map(|&i| ds.window(i).clone()).collect();
        let labels: Vec<usize> = test[..20].iter().map(|&i| ds.label(i)).collect();

        quantized.set_delta_star(-1.0).unwrap();
        assert_eq!(quantized.evaluate(&windows, &labels).unwrap().ood_fraction, 0.0);
        quantized.set_delta_star(1.0).unwrap();
        assert!(quantized.evaluate(&windows, &labels).unwrap().ood_fraction > 0.9);
        assert!(quantized.set_delta_star(1.5).is_err());
        assert!(quantized.set_delta_star(f32::NAN).is_err());
    }

    #[test]
    fn enroll_domain_appends_and_matches_full_requantize() {
        let ds = shifted_dataset(8);
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut dense = fitted_model(&ds, &train);
        let mut appended = dense.quantize().unwrap();

        // Enrol the held-out domain online, then quantize both ways.
        let (w, l, _) = ds.gather(&test[..40]);
        dense.enroll_domain(&w, &l, 0).unwrap();
        let new_model = dense.domain_models().unwrap().last().unwrap().clone();
        let descriptors = dense.descriptors().unwrap().as_matrix().clone();
        appended.enroll_domain(&new_model, descriptors.row(3), 0).unwrap();
        let refrozen = dense.quantize().unwrap();

        assert_eq!(appended.num_domains(), 4);
        assert_eq!(appended.domain_tags(), refrozen.domain_tags());
        // The appended snapshot and the full re-quantize agree exactly.
        let windows: Vec<Matrix> = test[40..].iter().map(|&i| ds.window(i).clone()).collect();
        let pa = appended.predict_batch(&windows).unwrap();
        let pr = refrozen.predict_batch(&windows).unwrap();
        assert_eq!(pa, pr, "incremental append must equal full re-quantization");
    }

    #[test]
    fn enroll_domain_validates() {
        let ds = shifted_dataset(9);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let dense = fitted_model(&ds, &train);
        let mut quantized = dense.quantize().unwrap();
        let model = dense.domain_models().unwrap()[0].clone();
        let descriptor = dense.descriptors().unwrap().as_matrix().row(0).to_vec();
        // Duplicate tag.
        assert!(quantized.enroll_domain(&model, &descriptor, 1).is_err());
        // Wrong descriptor dimension.
        assert!(quantized.enroll_domain(&model, &descriptor[..100], 77).is_err());
        // Wrong model shape.
        let small = smore_hdc::model::HdcClassifier::new(smore_hdc::model::HdcClassifierConfig {
            dim: 64,
            num_classes: 4,
            learning_rate: 0.05,
            epochs: 1,
        })
        .unwrap();
        assert!(quantized.enroll_domain(&small, &descriptor, 77).is_err());
        // Valid append works and keeps serving.
        quantized.enroll_domain(&model, &descriptor, 77).unwrap();
        assert_eq!(quantized.num_domains(), 4);
        quantized.predict_window(ds.window(0)).unwrap();
    }

    #[test]
    fn recover_cosine_inverts_the_sign_distortion() {
        assert!((recover_cosine(0.0)).abs() < 1e-6);
        assert!((recover_cosine(1.0) - 1.0).abs() < 1e-6);
        assert!((recover_cosine(-1.0) + 1.0).abs() < 1e-6);
        // Sign quantization compresses mid-range similarities toward zero;
        // the recovery expands them back: sin(π/2·s) > s on (0, 1).
        assert!(recover_cosine(0.5) > 0.5);
        assert!(recover_cosine(0.5) < 0.8);
        // Round trip with the forward map (2/π)·asin(δ).
        let forward = |delta: f32| (2.0 / std::f32::consts::PI) * delta.asin();
        for delta in [-0.9f32, -0.3, 0.1, 0.65, 0.99] {
            assert!((recover_cosine(forward(delta)) - delta).abs() < 1e-5);
        }
    }

    #[test]
    fn reported_similarities_are_on_the_dense_scale() {
        // A training-domain query's recovered δ_max should sit in the high
        // dense-cosine range rather than the compressed packed range.
        let ds = shifted_dataset(6);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let dense = fitted_model(&ds, &train);
        let quantized = dense.quantize().unwrap();
        let w = ds.window(train[0]);
        let dp = dense.predict_window(w).unwrap();
        let qp = quantized.predict_window(w).unwrap();
        assert!(
            (dp.delta_max - qp.delta_max).abs() < 0.2,
            "recovered δ_max {} should track dense δ_max {}",
            qp.delta_max,
            dp.delta_max
        );
    }

    #[test]
    fn evaluate_validates() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let quantized = fitted_model(&ds, &train).quantize().unwrap();
        assert!(quantized.evaluate(&[], &[]).is_err());
        let w = vec![ds.window(0).clone()];
        assert!(quantized.evaluate(&w, &[0, 1]).is_err());
        // Malformed window (wrong sensor count) propagates an encoder error.
        assert!(quantized.predict_window(&Matrix::zeros(24, 5)).is_err());
    }
}
