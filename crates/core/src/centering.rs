use smore_tensor::{stats, vecops, Matrix};

use crate::{Result, SmoreError};

/// Mean-centring of encoded hypervectors.
///
/// Bundled n-gram codes share a large common-mode component (the average of
/// all quantiser products), which compresses every cosine similarity toward
/// 1 and collapses the dynamic range the OOD threshold `δ*` operates on.
/// `Centerer` removes the *global training mean* from every hypervector and
/// re-normalises, restoring a wide, discriminative similarity spectrum.
/// The mean is fitted on training data only, so no information flows from
/// the evaluation domain.
///
/// # Example
///
/// ```
/// use smore::Centerer;
/// use smore_tensor::Matrix;
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// let train = Matrix::from_vec(2, 3, vec![1.0, 1.0, 0.0, 1.0, 0.0, 1.0])?;
/// let centerer = Centerer::fit(&train)?;
/// let mut rows = train.clone();
/// centerer.apply(&mut rows);
/// // Centred rows have (near-)zero mean along each column direction.
/// let sum0: f32 = (0..2).map(|i| rows.get(i, 0)).sum();
/// assert!(sum0.abs() < 1e-5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Centerer {
    mean: Vec<f32>,
}

impl Centerer {
    /// Fits the global mean hypervector on a `(samples, dim)` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for an empty matrix.
    pub fn fit(encoded: &Matrix) -> Result<Self> {
        if encoded.rows() == 0 || encoded.cols() == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "cannot fit a centerer on an empty matrix".into(),
            });
        }
        Ok(Self { mean: stats::col_mean(encoded) })
    }

    /// A no-op centerer (used when centring is disabled).
    pub fn identity(dim: usize) -> Self {
        Self { mean: vec![0.0; dim] }
    }

    /// Rebuilds a centerer around an already-fitted mean (the
    /// artifact-load path).
    pub(crate) fn from_mean(mean: Vec<f32>) -> Self {
        Self { mean }
    }

    /// Dimensionality of the fitted mean.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// The fitted mean hypervector.
    pub fn mean(&self) -> &[f32] {
        &self.mean
    }

    /// Centres and re-normalises every row of `encoded` in place.
    ///
    /// # Panics
    ///
    /// Panics if `encoded.cols() != self.dim()` — the model wires these
    /// structurally.
    pub fn apply(&self, encoded: &mut Matrix) {
        assert_eq!(encoded.cols(), self.mean.len(), "centerer dimension mismatch");
        for i in 0..encoded.rows() {
            let row = encoded.row_mut(i);
            for (x, &m) in row.iter_mut().zip(&self.mean) {
                *x -= m;
            }
            vecops::normalize(row);
        }
    }

    /// Centres and re-normalises a single hypervector in place.
    ///
    /// # Panics
    ///
    /// Panics if `hv.len() != self.dim()`.
    pub fn apply_one(&self, hv: &mut [f32]) {
        assert_eq!(hv.len(), self.mean.len(), "centerer dimension mismatch");
        for (x, &m) in hv.iter_mut().zip(&self.mean) {
            *x -= m;
        }
        vecops::normalize(hv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::init;

    #[test]
    fn fit_rejects_empty() {
        assert!(Centerer::fit(&Matrix::zeros(0, 4)).is_err());
        assert!(Centerer::fit(&Matrix::zeros(4, 0)).is_err());
    }

    #[test]
    fn identity_is_normalising_noop() {
        let c = Centerer::identity(3);
        let mut m = Matrix::from_vec(1, 3, vec![3.0, 0.0, 4.0]).unwrap();
        c.apply(&mut m);
        // Direction preserved, norm 1.
        assert!((m.get(0, 0) - 0.6).abs() < 1e-6);
        assert!((m.get(0, 2) - 0.8).abs() < 1e-6);
    }

    #[test]
    fn centering_widens_similarity_spread() {
        // Rows = common direction + small individual variation.
        let mut rng = init::rng(5);
        let dim = 512;
        let common = init::bipolar_vec(&mut rng, dim);
        let mut m = Matrix::zeros(20, dim);
        for i in 0..20 {
            let noise = init::normal_vec(&mut rng, dim);
            for j in 0..dim {
                m.set(i, j, common[j] + 0.3 * noise[j]);
            }
        }
        let raw_sim = vecops::cosine(m.row(0), m.row(1));
        let centerer = Centerer::fit(&m).unwrap();
        let mut centred = m.clone();
        centerer.apply(&mut centred);
        let centred_sim = vecops::cosine(centred.row(0), centred.row(1));
        assert!(raw_sim > 0.8, "raw rows dominated by common mode, sim={raw_sim}");
        assert!(
            centred_sim.abs() < 0.4,
            "centred rows should be nearly independent, sim={centred_sim}"
        );
    }

    #[test]
    fn apply_one_matches_apply() {
        let mut rng = init::rng(6);
        let m = init::normal_matrix(&mut rng, 5, 16);
        let centerer = Centerer::fit(&m).unwrap();
        let mut batch = m.clone();
        centerer.apply(&mut batch);
        for i in 0..5 {
            let mut single = m.row(i).to_vec();
            centerer.apply_one(&mut single);
            assert_eq!(batch.row(i), single.as_slice());
        }
    }

    #[test]
    fn mean_accessor_has_fitted_values() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 3.0, 3.0, 5.0]).unwrap();
        let c = Centerer::fit(&m).unwrap();
        assert_eq!(c.mean(), &[2.0, 4.0]);
        assert_eq!(c.dim(), 2);
    }
}
