//! # SMORE — Similarity-Based Hyperdimensional Domain Adaptation
//!
//! A from-scratch Rust reproduction of *SMORE: Similarity-Based
//! Hyperdimensional Domain Adaptation for Multi-Sensor Time Series
//! Classification* (Wang & Al Faruque, DAC 2024).
//!
//! SMORE mitigates *distribution shift* — the accuracy collapse a model
//! suffers when deployed on data from subjects it never trained on — with
//! four lightweight hyperdimensional mechanisms:
//!
//! 1. **Encoding** (`Ω`, [`smore_hdc::encoder`]): multi-sensor windows are
//!    mapped to hypervectors that preserve spatial and temporal structure.
//! 2. **Domain-specific modeling** (§3.4, [`Smore::fit`]): one adaptive HDC
//!    classifier `M_k` per source domain.
//! 3. **Domain descriptors + OOD detection** (§3.5, [`descriptor`],
//!    [`ood`]): each domain is summarised by a bundled descriptor `U_k`; a
//!    query whose best descriptor similarity falls below the threshold `δ*`
//!    is declared out-of-distribution.
//! 4. **Adaptive test-time modeling** (§3.6, [`test_time`]): the inference
//!    model is assembled *per query* as a similarity-weighted ensemble of
//!    the domain-specific models — all of them for OOD queries, only the
//!    sufficiently similar ones otherwise (Algorithm 1, Eq. 3).
//!
//! A fitted model can additionally be frozen into a bit-packed serving
//! model with [`Smore::quantize`]: [`QuantizedSmore`] runs the whole of
//! Algorithm 1 on one-bit-per-dimension hypervectors (XOR binding,
//! popcount similarity) for a ~32× smaller footprint and an
//! order-of-magnitude cheaper similarity kernel.
//!
//! Both models also adapt *online*: [`Smore::enroll_domain`] adds a new
//! domain (descriptor + specialised model) to a fitted model without
//! refitting ([`Smore::prepare_domain`] is the non-mutating variant used
//! by multi-tenant serving), and [`QuantizedSmore::enroll_domain`] appends
//! it to a frozen snapshot without re-quantizing. The `smore_stream`
//! crate builds the full streaming deployment on these: OOD buffering,
//! drift detection, atomic hot-swap of the serving snapshot, and the
//! multi-tenant `ServeEngine`.
//!
//! Every serving backend implements the unified [`Predictor`] trait, and
//! both model forms persist as versioned `.smore` binary artifacts
//! ([`artifact`]): [`QuantizedSmore::save`]/[`QuantizedSmore::load`] are
//! bit-exact, [`Smore::save`]/[`Smore::load`] resume adaptation in a new
//! process.
//!
//! # Quickstart
//!
//! ```
//! use smore::{Smore, SmoreConfig};
//! use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
//! use smore_data::split;
//!
//! # fn main() -> Result<(), smore::SmoreError> {
//! // A small synthetic multi-sensor dataset with three domains: training
//! // keeps two source domains (SMORE needs K > 1) and holds one out.
//! let dataset = generate(&GeneratorConfig {
//!     domains: vec![
//!         DomainSpec { subjects: vec![0, 1], windows: 60 },
//!         DomainSpec { subjects: vec![2, 3], windows: 60 },
//!         DomainSpec { subjects: vec![4, 5], windows: 60 },
//!     ],
//!     ..GeneratorConfig::default()
//! })
//! .map_err(smore::SmoreError::from)?;
//! let (train, test) = split::lodo(&dataset, 1)?;
//!
//! let mut model = Smore::new(
//!     SmoreConfig::builder()
//!         .dim(2048)
//!         .channels(dataset.meta().channels)
//!         .num_classes(dataset.meta().num_classes)
//!         .build()?,
//! )?;
//! model.fit_indices(&dataset, &train)?;
//! let report = model.evaluate_indices(&dataset, &test)?;
//! assert!(report.accuracy > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
mod centering;
mod config;
pub mod delta;
pub mod descriptor;
mod error;
pub mod metrics;
pub mod ood;
pub mod pipeline;
pub mod predictor;
pub mod quantized;
mod smore_model;
pub mod test_time;
pub mod wire;

pub use centering::Centerer;
pub use config::{DomainInit, RangeMode, SmoreConfig, SmoreConfigBuilder};
pub use delta::{DeltaEnrollmentRecord, DeltaMeta, DeltaSmore, ServingModel, SnapshotDelta};
pub use error::SmoreError;
pub use predictor::{PredictTimings, Predictor, ServeScratch};
pub use quantized::QuantizedSmore;
pub use smore_model::{DomainEnrollment, EnrollReport, EvalReport, Prediction, Smore, TrainReport};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, SmoreError>;
