//! Classification metrics: accuracy, confusion matrices, macro-F1, and the
//! shared nearest-rank quantile index.

use crate::{Result, SmoreError};

/// Index of the nearest-rank `quantile` in a sorted sample of `n` items.
///
/// Computes `ceil((n - 1) * q)` clamped to `n - 1`, so `q = 0.5` over ten
/// samples picks index 5 (not 4) and any `q > 0` over two samples picks the
/// larger one. Every quantile consumer in the workspace — drift-delta
/// calibration, the load generator, and histogram snapshots — routes through
/// this one function so the old truncation bias (`as usize` flooring the
/// rank) cannot silently return in any caller.
///
/// `n == 0` returns 0; callers must not index an empty slice with it.
///
/// # Example
///
/// ```
/// assert_eq!(smore::metrics::nearest_rank_index(10, 0.9), 9);
/// assert_eq!(smore::metrics::nearest_rank_index(10, 0.5), 5);
/// assert_eq!(smore::metrics::nearest_rank_index(2, 0.99), 1);
/// ```
#[must_use]
pub fn nearest_rank_index(n: usize, quantile: f64) -> usize {
    if n == 0 {
        return 0;
    }
    let rank = ((n - 1) as f64 * quantile).ceil();
    if rank <= 0.0 {
        return 0;
    }
    (rank as usize).min(n - 1)
}

/// Fraction of predictions equal to the ground truth.
///
/// # Errors
///
/// Returns [`SmoreError::InvalidConfig`] when the slices disagree in length
/// or are empty.
///
/// # Example
///
/// ```
/// let acc = smore::metrics::accuracy(&[0, 1, 1], &[0, 1, 0])?;
/// assert!((acc - 2.0 / 3.0).abs() < 1e-6);
/// # Ok::<(), smore::SmoreError>(())
/// ```
pub fn accuracy(predictions: &[usize], truth: &[usize]) -> Result<f32> {
    if predictions.len() != truth.len() {
        return Err(SmoreError::InvalidConfig {
            what: format!("{} predictions but {} labels", predictions.len(), truth.len()),
        });
    }
    if predictions.is_empty() {
        return Err(SmoreError::InvalidConfig {
            what: "cannot score an empty prediction set".into(),
        });
    }
    let correct = predictions.iter().zip(truth).filter(|(p, t)| p == t).count();
    Ok(correct as f32 / predictions.len() as f32)
}

/// A `(true class, predicted class)` contingency table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    num_classes: usize,
    /// Row-major counts: `counts[truth * num_classes + predicted]`.
    counts: Vec<usize>,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when lengths disagree, inputs
    /// are empty, `num_classes` is zero, or any label is out of range.
    pub fn from_predictions(
        predictions: &[usize],
        truth: &[usize],
        num_classes: usize,
    ) -> Result<Self> {
        if num_classes == 0 {
            return Err(SmoreError::InvalidConfig { what: "num_classes must be positive".into() });
        }
        if predictions.len() != truth.len() || predictions.is_empty() {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "need equal, non-empty prediction/label sets ({} vs {})",
                    predictions.len(),
                    truth.len()
                ),
            });
        }
        let mut counts = vec![0usize; num_classes * num_classes];
        for (&p, &t) in predictions.iter().zip(truth) {
            if p >= num_classes || t >= num_classes {
                return Err(SmoreError::InvalidConfig {
                    what: format!("label pair ({t}, {p}) out of range for {num_classes} classes"),
                });
            }
            counts[t * num_classes + p] += 1;
        }
        Ok(Self { num_classes, counts })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Count of samples with true class `t` predicted as `p`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn count(&self, t: usize, p: usize) -> usize {
        assert!(t < self.num_classes && p < self.num_classes, "class index out of range");
        self.counts[t * self.num_classes + p]
    }

    /// Total number of scored samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass over total).
    pub fn accuracy(&self) -> f32 {
        let diag: usize = (0..self.num_classes).map(|c| self.count(c, c)).sum();
        diag as f32 / self.total().max(1) as f32
    }

    /// Precision for one class (0 when the class was never predicted).
    pub fn precision(&self, class: usize) -> f32 {
        let tp = self.count(class, class);
        let predicted: usize = (0..self.num_classes).map(|t| self.count(t, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f32 / predicted as f32
        }
    }

    /// Recall for one class (0 when the class never occurred).
    pub fn recall(&self, class: usize) -> f32 {
        let tp = self.count(class, class);
        let actual: usize = (0..self.num_classes).map(|p| self.count(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f32 / actual as f32
        }
    }

    /// Macro-averaged F1 score across all classes.
    pub fn macro_f1(&self) -> f32 {
        let mut sum = 0.0f32;
        for c in 0..self.num_classes {
            let p = self.precision(c);
            let r = self.recall(c);
            if p + r > 0.0 {
                sum += 2.0 * p * r / (p + r);
            }
        }
        sum / self.num_classes as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic_and_errors() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]).unwrap(), 1.0);
        assert_eq!(accuracy(&[0, 0], &[1, 1]).unwrap(), 0.0);
        assert!(accuracy(&[0], &[0, 1]).is_err());
        assert!(accuracy(&[], &[]).is_err());
    }

    #[test]
    fn quantile_index_uses_nearest_rank_not_truncation() {
        // ceil((n-1)*q), not floor — the PR 6 fix, now shared.
        assert_eq!(nearest_rank_index(10, 0.9), 9);
        assert_eq!(nearest_rank_index(10, 0.5), 5);
        assert_eq!(nearest_rank_index(10, 0.25), 3);
        assert_eq!(nearest_rank_index(9, 0.25), 2);
        assert_eq!(nearest_rank_index(5, 0.5), 2);
        assert_eq!(nearest_rank_index(1, 0.9), 0);
        assert_eq!(nearest_rank_index(2, 0.99), 1);
        assert_eq!(nearest_rank_index(0, 0.5), 0);
        assert_eq!(nearest_rank_index(100, 0.0), 0);
        assert_eq!(nearest_rank_index(100, 1.0), 99);
        // Negative quantiles clamp to 0 instead of wrapping.
        assert_eq!(nearest_rank_index(10, -0.5), 0);
    }

    #[test]
    fn confusion_counts() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 1, 0], &[0, 1, 0, 0], 2).unwrap();
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(0, 1), 1);
        assert_eq!(cm.count(1, 1), 1);
        assert_eq!(cm.count(1, 0), 0);
        assert_eq!(cm.total(), 4);
        assert!((cm.accuracy() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn confusion_validates() {
        assert!(ConfusionMatrix::from_predictions(&[0], &[0], 0).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[0, 1], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[], &[], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[5], &[0], 2).is_err());
        assert!(ConfusionMatrix::from_predictions(&[0], &[5], 2).is_err());
    }

    #[test]
    fn precision_recall_f1() {
        // truth:      0 0 0 1 1 2
        // predicted:  0 0 1 1 1 0
        let cm =
            ConfusionMatrix::from_predictions(&[0, 0, 1, 1, 1, 0], &[0, 0, 0, 1, 1, 2], 3).unwrap();
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-6);
        assert!((cm.recall(1) - 1.0).abs() < 1e-6);
        assert_eq!(cm.precision(2), 0.0, "class 2 never predicted");
        assert_eq!(cm.recall(2), 0.0);
        let f1 = cm.macro_f1();
        assert!(f1 > 0.4 && f1 < 0.6, "macro F1 {f1}");
    }

    #[test]
    fn perfect_predictions_have_unit_scores() {
        let cm = ConfusionMatrix::from_predictions(&[0, 1, 2], &[0, 1, 2], 3).unwrap();
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
    }
}
