//! Integration tests for per-tenant delta overlays: chained base+delta
//! scoring must be **bit-exact** with enrolling the same domains into a
//! full clone of the base (property-tested over random windows and a
//! ragged dimension), and `DeltaV1` artifact bytes must round-trip
//! exactly and fail typed — never panic — under truncation, bit flips and
//! duplicate sections.

use std::sync::OnceLock;

use proptest::prelude::*;
use smore::{
    DeltaSmore, Predictor, QuantizedSmore, ServeScratch, Smore, SmoreConfig, SmoreError,
    SnapshotDelta,
};
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::Dataset;
use smore_tensor::{init, Matrix};

fn dataset(channels: usize, window_len: usize, seed: u64) -> Dataset {
    generate(&GeneratorConfig {
        name: "delta-test".into(),
        num_classes: 3,
        channels,
        window_len,
        sample_rate_hz: 20.0,
        domains: vec![
            DomainSpec { subjects: vec![0], windows: 24 },
            DomainSpec { subjects: vec![1], windows: 24 },
            DomainSpec { subjects: vec![2], windows: 24 },
        ],
        shift_severity: 0.8,
        seed,
    })
    .unwrap()
}

fn fitted(ds: &Dataset, dim: usize) -> Smore {
    let mut model = Smore::new(
        SmoreConfig::builder()
            .dim(dim)
            .channels(ds.meta().channels)
            .num_classes(ds.meta().num_classes)
            .epochs(5)
            .threads(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    let all: Vec<usize> = (0..ds.len()).collect();
    model.fit_indices(ds, &all).unwrap();
    model
}

/// A sensor-shaped window never seen by training.
fn perturbed_window(ds: &Dataset, index: usize, gain: f32, noise_seed: u64) -> Matrix {
    let mut rng = init::rng(noise_seed);
    let base = ds.window(index % ds.len());
    let noise = init::normal_matrix(&mut rng, base.rows(), base.cols());
    let mut w = base.scale(gain);
    w.axpy(0.05, &noise).unwrap();
    w
}

/// Enrols the same two post-training domains both ways: into a delta
/// overlay over `base` and into a full clone of `base`. Repeat enrolment
/// seeds the second domain from the first, like the serving engine does.
fn enroll_both(
    ds: &Dataset,
    dense: &Smore,
    base: &QuantizedSmore,
) -> (SnapshotDelta, QuantizedSmore) {
    let mut delta = SnapshotDelta::new(base);
    let mut clone = base.clone();
    let mut extra = Vec::new();
    for (round, (gain, tag)) in [(1.6f32, 7usize), (0.55, 11)].into_iter().enumerate() {
        let windows: Vec<Matrix> = (0..24)
            .map(|i| perturbed_window(ds, 48 + i, gain, 1000 + (round * 100 + i) as u64))
            .collect();
        let labels: Vec<usize> = (0..24).map(|i| ds.label((48 + i) % ds.len())).collect();
        let prep = dense.prepare_domain(&windows, &labels, &extra).unwrap();
        delta.enroll_domain(base, &prep.model, &prep.descriptor, tag).unwrap();
        clone.enroll_domain(&prep.model, &prep.descriptor, tag).unwrap();
        extra.push(prep.model);
    }
    (delta, clone)
}

/// `(dataset, base, delta-with-2-domains, full-clone-with-same-2-domains)`
/// built once — proptest cases only pay for scoring.
fn chained_fixture() -> &'static (Dataset, QuantizedSmore, SnapshotDelta, QuantizedSmore) {
    static FIXTURE: OnceLock<(Dataset, QuantizedSmore, SnapshotDelta, QuantizedSmore)> =
        OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = dataset(3, 16, 33);
        let dense = fitted(&ds, 512);
        let base = dense.quantize().unwrap();
        let (delta, clone) = enroll_both(&ds, &dense, &base);
        (ds, base, delta, clone)
    })
}

/// Exact f32 bit-pattern equality of two score vectors.
fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: score {i} differs: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: chaining base + delta performs the exact
    /// same float operations in the exact same order as a full clone that
    /// enrolled the same domains — per-class scores and predictions agree
    /// to the bit on arbitrary sensor-shaped windows.
    #[test]
    fn chained_scoring_is_bit_exact_with_a_full_clone(
        index in 0usize..72,
        gain in 0.25f32..2.0,
        noise_seed in any::<u64>(),
    ) {
        let (ds, base, delta, clone) = chained_fixture();
        let chained = DeltaSmore::new(base, delta).unwrap();
        let w = perturbed_window(ds, index, gain, noise_seed);
        let mut scratch = ServeScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        chained.score_into(&w, &mut scratch, &mut a).unwrap();
        clone.score_into(&w, &mut scratch, &mut b).unwrap();
        assert_bits_equal(&a, &b, "chained vs full clone");
        let pa = chained.predict_window_with(&w, &mut scratch).unwrap().clone();
        let pb = clone.predict_window(&w).unwrap();
        prop_assert_eq!(pa, pb);
    }

    /// `DeltaV1` bytes round-trip to a delta that serves bit-identically
    /// and re-saves canonically.
    #[test]
    fn delta_artifact_round_trip_is_bit_exact(
        index in 0usize..72,
        gain in 0.5f32..1.6,
        noise_seed in any::<u64>(),
    ) {
        let (ds, base, delta, _) = chained_fixture();
        static LOADED: OnceLock<SnapshotDelta> = OnceLock::new();
        let loaded = LOADED.get_or_init(|| {
            let (_, _, delta, _) = chained_fixture();
            let bytes = delta.to_artifact_bytes();
            let loaded = SnapshotDelta::from_artifact_bytes(&bytes).unwrap();
            assert_eq!(loaded.to_artifact_bytes(), bytes, "re-save must be canonical");
            loaded
        });
        prop_assert_eq!(loaded.tags().collect::<Vec<_>>(), delta.tags().collect::<Vec<_>>());
        prop_assert_eq!(&loaded.meta, &delta.meta);
        let w = perturbed_window(ds, index, gain, noise_seed);
        let mut scratch = ServeScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        DeltaSmore::new(base, delta).unwrap().score_into(&w, &mut scratch, &mut a).unwrap();
        DeltaSmore::new(base, loaded).unwrap().score_into(&w, &mut scratch, &mut b).unwrap();
        assert_bits_equal(&a, &b, "delta artifact round trip");
    }
}

/// The ragged case: dim 200 leaves a 56-bit padded tail in every fourth
/// word — chained popcounts and Gram borders must still match the full
/// clone bit for bit.
#[test]
fn chained_scoring_survives_ragged_dims() {
    let ds = dataset(2, 12, 91);
    let dense = fitted(&ds, 200);
    let base = dense.quantize().unwrap();
    let (delta, clone) = enroll_both(&ds, &dense, &base);

    let chained = DeltaSmore::new(&base, &delta).unwrap();
    let windows: Vec<Matrix> = (0..24)
        .map(|i| perturbed_window(&ds, i * 3, 1.0 + 0.02 * i as f32, 7 + i as u64))
        .collect();
    assert_eq!(
        chained.predict_batch(&windows).unwrap(),
        clone.predict_batch(&windows).unwrap(),
        "ragged-dim chained serving must equal the full clone bit for bit"
    );
    assert_eq!(chained.num_classes(), clone.num_classes());

    // And the ragged delta round-trips through its artifact.
    let loaded = SnapshotDelta::from_artifact_bytes(&delta.to_artifact_bytes()).unwrap();
    let rechained = DeltaSmore::new(&base, &loaded).unwrap();
    assert_eq!(
        rechained.predict_batch(&windows).unwrap(),
        clone.predict_batch(&windows).unwrap(),
        "ragged-dim delta artifact round trip must stay bit-exact"
    );
}

/// The overlay is three orders of magnitude smaller than what it
/// replaces: a full resident clone of the base.
#[test]
fn delta_storage_is_a_small_fraction_of_a_clone() {
    let (_, base, delta, _) = chained_fixture();
    // The clone pays at least the base's packed class planes + Gram again;
    // the delta pays only its two enrolled domains.
    let base_bytes = base.to_artifact_bytes().len();
    let delta_bytes = delta.storage_bytes();
    assert!(
        delta_bytes * 4 < base_bytes,
        "2-domain delta ({delta_bytes} B) must be well under the base artifact ({base_bytes} B)"
    );
    assert_eq!(delta.num_domains(), 2);
    assert!(!delta.is_empty());
}

/// Every truncation of a valid delta artifact is a typed corruption
/// error, never a panic or a silent partial overlay.
#[test]
fn delta_truncation_always_returns_corrupt_artifact() {
    let (_, _, delta, _) = chained_fixture();
    let bytes = delta.to_artifact_bytes();
    let cuts = (0..64).chain((64..bytes.len()).step_by(53)).chain([bytes.len() - 1]);
    for cut in cuts {
        match SnapshotDelta::from_artifact_bytes(&bytes[..cut]) {
            Err(SmoreError::CorruptArtifact { .. }) => {}
            other => panic!("cut at {cut}: expected CorruptArtifact, got {other:?}"),
        }
    }
}

/// Flipping any single bit of the delta artifact is detected by the
/// header checks or the per-section CRCs.
#[test]
fn delta_single_bit_flips_always_return_corrupt_artifact() {
    let (_, _, delta, _) = chained_fixture();
    let bytes = delta.to_artifact_bytes();
    let positions: Vec<usize> = (0..64).chain((64..bytes.len()).step_by(61)).collect();
    for pos in positions {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            match SnapshotDelta::from_artifact_bytes(&flipped) {
                Err(SmoreError::CorruptArtifact { .. }) => {}
                other => panic!("flip {pos}:{bit}: expected CorruptArtifact, got {other:?}"),
            }
        }
    }
}

/// A crafted container that repeats a section (count bumped, copy
/// appended) must be rejected as a duplicate, and kind confusion between
/// delta and model artifacts is a typed refusal in both directions.
#[test]
fn delta_duplicate_sections_and_kind_confusion_are_refused() {
    let (_, base, delta, _) = chained_fixture();
    let bytes = delta.to_artifact_bytes();

    // Locate the first section block (16-byte container header, then
    // `id | crc | len` + payload) and append a verbatim copy of it.
    let len = u64::from_le_bytes(bytes[24..32].try_into().unwrap()) as usize;
    let block = bytes[16..16 + 16 + len].to_vec();
    let mut dup = bytes.clone();
    dup.extend_from_slice(&block);
    let count = u32::from_le_bytes(dup[12..16].try_into().unwrap()) + 1;
    dup[12..16].copy_from_slice(&count.to_le_bytes());
    let err = SnapshotDelta::from_artifact_bytes(&dup).unwrap_err();
    assert!(matches!(&err, SmoreError::CorruptArtifact { .. }), "{err}");
    assert!(err.to_string().contains("duplicate"), "{err}");

    // A copy appended *without* bumping the count is trailing garbage.
    let mut trailing = bytes.clone();
    trailing.extend_from_slice(&block);
    let err = SnapshotDelta::from_artifact_bytes(&trailing).unwrap_err();
    assert!(err.to_string().contains("trailing"), "{err}");

    // Kind confusion: a quantized model is not a delta, and a delta is
    // not a quantized model — both refusals point at the right loader.
    let err = SnapshotDelta::from_artifact_bytes(&base.to_artifact_bytes()).unwrap_err();
    assert!(err.to_string().contains("not a tenant delta"), "{err}");
    assert!(QuantizedSmore::from_artifact_bytes(&bytes).is_err());
    assert!(Smore::from_artifact_bytes(&bytes).is_err());
}
