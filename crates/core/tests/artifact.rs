//! Integration tests for the versioned `.smore` artifact format: bit-exact
//! round trips (property-tested over random windows, ragged dimensions and
//! enrolled domains), a committed golden fixture that fails the suite on
//! silent format drift, and corruption coverage (truncation and bit flips
//! must produce [`SmoreError::CorruptArtifact`], never a panic).

use std::sync::OnceLock;

use proptest::prelude::*;
use smore::artifact::{self, ArtifactKind, FORMAT_VERSION, MAGIC};
use smore::{QuantizedSmore, ServeScratch, Smore, SmoreConfig, SmoreError};
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::Dataset;
use smore_tensor::{init, Matrix};

fn dataset(channels: usize, window_len: usize, seed: u64) -> Dataset {
    generate(&GeneratorConfig {
        name: "artifact-test".into(),
        num_classes: 3,
        channels,
        window_len,
        sample_rate_hz: 20.0,
        domains: vec![
            DomainSpec { subjects: vec![0], windows: 24 },
            DomainSpec { subjects: vec![1], windows: 24 },
            DomainSpec { subjects: vec![2], windows: 24 },
        ],
        shift_severity: 0.8,
        seed,
    })
    .unwrap()
}

fn fitted(ds: &Dataset, dim: usize) -> Smore {
    let mut model = Smore::new(
        SmoreConfig::builder()
            .dim(dim)
            .channels(ds.meta().channels)
            .num_classes(ds.meta().num_classes)
            .epochs(5)
            .threads(2)
            .build()
            .unwrap(),
    )
    .unwrap();
    let all: Vec<usize> = (0..ds.len()).collect();
    model.fit_indices(ds, &all).unwrap();
    model
}

/// `(dataset, dense, quantized, quantized-after-round-trip)` — built once;
/// proptest cases only pay for scoring. `dim = 512` is word-aligned; the
/// ragged fixture below covers the padded-tail bit paths.
fn roundtrip_fixture() -> &'static (Dataset, Smore, QuantizedSmore, QuantizedSmore) {
    static FIXTURE: OnceLock<(Dataset, Smore, QuantizedSmore, QuantizedSmore)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = dataset(3, 16, 33);
        let dense = fitted(&ds, 512);
        let quantized = dense.quantize().unwrap();
        let loaded = QuantizedSmore::from_artifact_bytes(&quantized.to_artifact_bytes()).unwrap();
        (ds, dense, quantized, loaded)
    })
}

/// A sensor-shaped window never seen by training.
fn perturbed_window(ds: &Dataset, index: usize, gain: f32, noise_seed: u64) -> Matrix {
    let mut rng = init::rng(noise_seed);
    let base = ds.window(index % ds.len());
    let noise = init::normal_matrix(&mut rng, base.rows(), base.cols());
    let mut w = base.scale(gain);
    w.axpy(0.05, &noise).unwrap();
    w
}

/// Exact f32 bit-pattern equality of two score vectors.
fn assert_bits_equal(a: &[f32], b: &[f32], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: score {i} differs: {x} vs {y}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn loaded_quantized_scores_are_bit_exact_on_random_windows(
        index in 0usize..72,
        gain in 0.25f32..2.0,
        noise_seed in any::<u64>(),
    ) {
        let (ds, _, original, loaded) = roundtrip_fixture();
        let w = perturbed_window(ds, index, gain, noise_seed);
        let mut scratch = ServeScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        original.score_into(&w, &mut scratch, &mut a).unwrap();
        loaded.score_into(&w, &mut scratch, &mut b).unwrap();
        assert_bits_equal(&a, &b, "quantized round trip");
        let pa = original.predict_window(&w).unwrap();
        let pb = loaded.predict_window(&w).unwrap();
        prop_assert_eq!(pa, pb);
    }

    #[test]
    fn loaded_dense_model_is_bit_exact_on_random_windows(
        index in 0usize..72,
        gain in 0.5f32..1.6,
        noise_seed in any::<u64>(),
    ) {
        let (ds, dense, _, _) = roundtrip_fixture();
        static LOADED: OnceLock<Smore> = OnceLock::new();
        let loaded = LOADED.get_or_init(|| {
            let (_, dense, _, _) = roundtrip_fixture();
            Smore::from_artifact_bytes(&dense.to_artifact_bytes().unwrap()).unwrap()
        });
        let w = perturbed_window(ds, index, gain, noise_seed);
        prop_assert_eq!(dense.predict_window(&w).unwrap(), loaded.predict_window(&w).unwrap());
    }
}

#[test]
fn quantized_round_trip_survives_ragged_dims_and_enrolment() {
    // dim 200 leaves a 56-bit padded tail in every fourth word — the
    // ragged paths of packing, rotation and artifact validation.
    let ds = dataset(2, 12, 91);
    let mut dense = fitted(&ds, 200);
    let mut quantized = dense.quantize().unwrap();

    let round = |q: &QuantizedSmore| QuantizedSmore::from_artifact_bytes(&q.to_artifact_bytes());
    let windows: Vec<Matrix> = (0..24).map(|i| ds.window(i * 3).clone()).collect();
    let loaded = round(&quantized).unwrap();
    assert_eq!(
        quantized.predict_batch(&windows).unwrap(),
        loaded.predict_batch(&windows).unwrap(),
        "ragged-dim round trip must be bit-exact"
    );

    // Enrol a domain online, then round-trip the grown model.
    let idx: Vec<usize> = (48..72).collect();
    let (w, l, _) = ds.gather(&idx);
    dense.enroll_domain(&w, &l, 9).unwrap();
    let models = dense.domain_models().unwrap();
    let descriptors = dense.descriptors().unwrap().as_matrix().clone();
    quantized.enroll_domain(models.last().unwrap(), descriptors.row(3), 9).unwrap();

    let loaded = round(&quantized).unwrap();
    assert_eq!(loaded.num_domains(), 4);
    assert_eq!(loaded.domain_tags(), quantized.domain_tags());
    assert_eq!(
        quantized.predict_batch(&windows).unwrap(),
        loaded.predict_batch(&windows).unwrap(),
        "round trip with an enrolled domain must be bit-exact"
    );
    // And the loaded model accepts further enrolment (tags validated).
    let mut grown = loaded;
    assert!(grown.enroll_domain(models.last().unwrap(), descriptors.row(3), 9).is_err());
}

#[test]
fn loaded_dense_model_resumes_adaptation() {
    let ds = dataset(3, 16, 57);
    let dense = fitted(&ds, 256);
    let bytes = dense.to_artifact_bytes().unwrap();
    let mut loaded = Smore::from_artifact_bytes(&bytes).unwrap();

    // The canonical encoding makes "same model" checkable as byte equality.
    assert_eq!(loaded.to_artifact_bytes().unwrap(), bytes, "re-save must be canonical");
    assert_eq!(
        dense.quantize().unwrap().to_artifact_bytes(),
        loaded.quantize().unwrap().to_artifact_bytes(),
        "quantizing the loaded model must equal quantizing the original"
    );

    // Resume adaptation: enrol on the loaded model.
    let idx: Vec<usize> = (0..24).collect();
    let (w, l, _) = ds.gather(&idx);
    let report = loaded.enroll_domain(&w, &l, 42).unwrap();
    assert_eq!(report.num_domains, 4);
    assert!(loaded.predict_window(ds.window(0)).unwrap().domain_similarities.len() == 4);
}

#[test]
fn unfitted_dense_model_refuses_to_save() {
    let model =
        Smore::new(SmoreConfig::builder().dim(128).channels(2).num_classes(3).build().unwrap())
            .unwrap();
    assert!(matches!(model.to_artifact_bytes(), Err(SmoreError::NotFitted)));
    assert!(matches!(model.save("/tmp/never-written.smore"), Err(SmoreError::NotFitted)));
}

#[test]
fn save_load_through_the_filesystem_and_io_errors() {
    let ds = dataset(2, 12, 15);
    let dense = fitted(&ds, 128);
    let quantized = dense.quantize().unwrap();
    let dir = std::env::temp_dir().join("smore_artifact_test");
    std::fs::create_dir_all(&dir).unwrap();

    let qpath = dir.join("model.smore");
    quantized.save(&qpath).unwrap();
    let loaded = QuantizedSmore::load(&qpath).unwrap();
    let w = ds.window(5);
    assert_eq!(quantized.predict_window(w).unwrap(), loaded.predict_window(w).unwrap());

    let dpath = dir.join("dense.smore");
    dense.save(&dpath).unwrap();
    assert_eq!(Smore::load(&dpath).unwrap().domain_tags().unwrap(), dense.domain_tags().unwrap());

    // Typed Io errors, with the offending path in the message.
    let missing = dir.join("missing.smore");
    for err in [
        QuantizedSmore::load(&missing).unwrap_err(),
        Smore::load(&missing).unwrap_err(),
        quantized.save(dir.join("no-such-dir").join("x.smore")).unwrap_err(),
    ] {
        match err {
            SmoreError::Io { path, .. } => assert!(path.contains("smore_artifact_test")),
            other => panic!("expected Io, got {other:?}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn kind_mismatch_is_a_typed_refusal() {
    let (_, dense, quantized, _) = roundtrip_fixture();
    let dense_bytes = dense.to_artifact_bytes().unwrap();
    let quant_bytes = quantized.to_artifact_bytes();
    assert_eq!(artifact::kind_of(&dense_bytes).unwrap(), ArtifactKind::Dense);
    assert_eq!(artifact::kind_of(&quant_bytes).unwrap(), ArtifactKind::Quantized);
    let err = QuantizedSmore::from_artifact_bytes(&dense_bytes).unwrap_err();
    assert!(
        matches!(&err, SmoreError::CorruptArtifact { .. })
            && err.to_string().contains("Smore::load"),
        "{err}"
    );
    let err = Smore::from_artifact_bytes(&quant_bytes).unwrap_err();
    assert!(
        matches!(&err, SmoreError::CorruptArtifact { .. })
            && err.to_string().contains("QuantizedSmore::load"),
        "{err}"
    );
}

/// Every truncation of a valid artifact must fail with a typed error —
/// never a panic, never a silent partial model.
#[test]
fn truncation_always_returns_corrupt_artifact() {
    let (_, dense, quantized, _) = roundtrip_fixture();
    for (bytes, is_dense) in
        [(quantized.to_artifact_bytes(), false), (dense.to_artifact_bytes().unwrap(), true)]
    {
        // Dense cuts through the whole range plus every boundary-ish cut
        // near the start where the header/section table lives.
        let cuts = (0..64).chain((64..bytes.len()).step_by(97)).chain([bytes.len() - 1]);
        for cut in cuts {
            let r_quant = QuantizedSmore::from_artifact_bytes(&bytes[..cut]);
            let r_dense = Smore::from_artifact_bytes(&bytes[..cut]);
            let err = if is_dense { r_dense.err() } else { r_quant.err() };
            match err {
                Some(SmoreError::CorruptArtifact { .. }) => {}
                other => panic!("cut at {cut}: expected CorruptArtifact, got {other:?}"),
            }
        }
    }
}

/// Flipping any single bit of the artifact must be detected (section CRCs
/// plus validated header/table fields) and reported as CorruptArtifact.
#[test]
fn single_bit_flips_always_return_corrupt_artifact() {
    let (ds, _, quantized, _) = roundtrip_fixture();
    let bytes = quantized.to_artifact_bytes();
    let reference = quantized.predict_window(ds.window(0)).unwrap();
    // Every byte of the 16-byte header + section table regions, then a
    // stride through the payloads (every bit of every 131st byte).
    let positions: Vec<usize> = (0..64).chain((64..bytes.len()).step_by(131)).collect();
    for pos in positions {
        for bit in 0..8 {
            let mut flipped = bytes.clone();
            flipped[pos] ^= 1 << bit;
            match QuantizedSmore::from_artifact_bytes(&flipped) {
                Err(SmoreError::CorruptArtifact { .. }) => {}
                Err(other) => panic!("flip {pos}:{bit}: expected CorruptArtifact, got {other:?}"),
                Ok(model) => panic!(
                    "flip {pos}:{bit} loaded silently (prediction {:?} vs {:?})",
                    model.predict_window(ds.window(0)),
                    reference
                ),
            }
        }
    }
}

/// A crafted artifact whose section-internal *count* fields are huge must
/// be rejected before any allocation is sized by them: a valid CRC is no
/// protection (whoever writes the file writes the checksum too), so the
/// tamper here recomputes the section checksum like an attacker would.
#[test]
fn huge_internal_counts_are_rejected_without_allocation() {
    fn crc32(bytes: &[u8]) -> u32 {
        let mut crc = 0xFFFF_FFFFu32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 == 1 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
            }
        }
        crc ^ 0xFFFF_FFFF
    }
    /// Overwrites the leading u64 count of section `id` and re-stamps its
    /// CRC (container layout: 16-byte header, then per section a 16-byte
    /// `id | crc | len` header followed by the payload).
    fn patch_section_count(bytes: &[u8], id: u32, new_count: u64) -> Vec<u8> {
        let mut out = bytes.to_vec();
        let mut pos = 16usize;
        while pos + 16 <= out.len() {
            let sid = u32::from_le_bytes(out[pos..pos + 4].try_into().unwrap());
            let len = u64::from_le_bytes(out[pos + 8..pos + 16].try_into().unwrap()) as usize;
            let start = pos + 16;
            if sid == id {
                out[start..start + 8].copy_from_slice(&new_count.to_le_bytes());
                let crc = crc32(&out[start..start + len]);
                out[pos + 4..pos + 8].copy_from_slice(&crc.to_le_bytes());
                return out;
            }
            pos = start + len;
        }
        panic!("section {id} not found");
    }

    let (_, dense, quantized, _) = roundtrip_fixture();
    // Packed descriptors (16), classes (17) and codebooks (19).
    for id in [16u32, 17, 19] {
        let patched = patch_section_count(&quantized.to_artifact_bytes(), id, 1 << 62);
        assert!(
            matches!(
                QuantizedSmore::from_artifact_bytes(&patched),
                Err(SmoreError::CorruptArtifact { .. })
            ),
            "huge count in section {id} must be a typed corruption error"
        );
    }
    // Dense domain models (33).
    let patched = patch_section_count(&dense.to_artifact_bytes().unwrap(), 33, 1 << 62);
    assert!(matches!(
        Smore::from_artifact_bytes(&patched),
        Err(SmoreError::CorruptArtifact { .. })
    ));
}

/// The committed golden fixture: regenerating the artifact from the same
/// deterministic training run must reproduce the committed bytes exactly,
/// and the committed bytes must load into a model that predicts exactly
/// like the freshly trained one. Any silent format drift — layout, CRC,
/// section set, canonical encoding, or a behavioural change in
/// training/quantization — fails here first.
///
/// Regenerate (after an *intentional* format bump) with:
/// `SMORE_REGEN_GOLDEN=1 cargo test -p smore --test artifact golden`.
#[test]
fn golden_fixture_locks_the_format() {
    let ds = dataset(2, 12, 77);
    let dense = fitted(&ds, 128);
    let quantized = dense.quantize().unwrap();
    let bytes = quantized.to_artifact_bytes();

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures/quantized_v1.smore");
    if std::env::var_os("SMORE_REGEN_GOLDEN").is_some() {
        std::fs::write(path, &bytes).unwrap();
    }
    let committed = std::fs::read(path).expect("golden fixture tests/fixtures/quantized_v1.smore");
    assert_eq!(&committed[..8], MAGIC.as_slice());
    assert_eq!(u16::from_le_bytes([committed[8], committed[9]]), FORMAT_VERSION);
    assert_eq!(
        committed, bytes,
        "freshly written artifact differs from the committed golden fixture — the format (or \
         deterministic training) drifted; if intentional, bump FORMAT_VERSION and regenerate \
         with SMORE_REGEN_GOLDEN=1"
    );

    let loaded = QuantizedSmore::from_artifact_bytes(&committed).unwrap();
    let windows: Vec<Matrix> = (0..12).map(|i| ds.window(i * 6).clone()).collect();
    assert_eq!(
        loaded.predict_batch(&windows).unwrap(),
        quantized.predict_batch(&windows).unwrap(),
        "the committed fixture must serve bit-identically to the in-memory model"
    );
}
