//! Property-based tests for SMORE's model-level invariants.

use proptest::prelude::*;
use smore::ood::OodDetector;
use smore::test_time::{ensemble_weights, ensemble_weights_powered};
use smore::{Centerer, Smore, SmoreConfig};
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::split;
use smore_tensor::{init, Matrix};

fn sims(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ood_decision_is_consistent(s in sims(5), delta_star in -1.0f32..1.0) {
        let decision = OodDetector::new(delta_star).detect(s.clone());
        // δ_max is the max of the (finite) similarities.
        let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!((decision.delta_max - max).abs() < 1e-6);
        prop_assert_eq!(decision.is_ood, max < delta_star);
        prop_assert!((decision.similarities[decision.best_domain] - max).abs() < 1e-6);
    }

    #[test]
    fn ensemble_weights_are_nonnegative_and_zero_only_when_filtered(
        s in sims(6),
        delta_star in -1.0f32..1.0,
        ood in prop::bool::ANY,
    ) {
        let w = ensemble_weights(&s, ood, delta_star);
        prop_assert_eq!(w.len(), s.len());
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        if ood {
            // OOD: every positive similarity contributes.
            for (wi, &si) in w.iter().zip(&s) {
                prop_assert_eq!(*wi, si.max(0.0));
            }
        }
        // Never all-zero when some similarity is positive.
        if s.iter().any(|&x| x > 0.0) {
            prop_assert!(w.iter().any(|&x| x > 0.0));
        }
    }

    #[test]
    fn powered_weights_preserve_ranking(s in sims(4), power in 1.0f32..8.0) {
        let w = ensemble_weights_powered(&s, true, 0.0, power);
        for i in 0..s.len() {
            for j in 0..s.len() {
                if s[i].max(0.0) > s[j].max(0.0) {
                    prop_assert!(w[i] >= w[j], "sharpening must not reorder domains");
                }
            }
        }
    }

    #[test]
    fn centerer_output_rows_are_unit_or_zero(rows in 2usize..10, seed in any::<u64>()) {
        let m = init::normal_matrix(&mut init::rng(seed), rows, 32);
        let centerer = Centerer::fit(&m).unwrap();
        let mut z = m.clone();
        centerer.apply(&mut z);
        for i in 0..rows {
            let n = smore_tensor::vecops::norm(z.row(i));
            prop_assert!(n < 1e-6 || (n - 1.0).abs() < 1e-4, "row norm {n}");
        }
    }
}

// Heavier end-to-end properties run with few cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn smore_predictions_always_in_label_range(seed in 0u64..1000) {
        let ds = generate(&GeneratorConfig {
            name: "prop".into(),
            num_classes: 3,
            channels: 2,
            window_len: 12,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 18 },
                DomainSpec { subjects: vec![1], windows: 18 },
                DomainSpec { subjects: vec![2], windows: 18 },
            ],
            shift_severity: 1.5,
            seed,
        })
        .unwrap();
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder().dim(256).channels(2).num_classes(3).epochs(3).build().unwrap(),
        )
        .unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (w, _, _) = ds.gather(&test);
        for p in model.predict_batch(&w).unwrap() {
            prop_assert!(p.label < 3);
            prop_assert!(p.domain_similarities.len() == 2);
            prop_assert!((-1.0..=1.0).contains(&p.delta_max));
            prop_assert!(p.best_domain == 0 || p.best_domain == 1);
        }
    }

    #[test]
    fn delta_star_monotonically_increases_ood_fraction(seed in 0u64..100) {
        let ds = generate(&GeneratorConfig {
            name: "prop2".into(),
            num_classes: 2,
            channels: 2,
            window_len: 12,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 16 },
                DomainSpec { subjects: vec![1], windows: 16 },
                DomainSpec { subjects: vec![2], windows: 16 },
            ],
            shift_severity: 1.0,
            seed,
        })
        .unwrap();
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder().dim(256).channels(2).num_classes(2).epochs(3).build().unwrap(),
        )
        .unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (w, l, _) = ds.gather(&test);
        let mut last = 0.0f32;
        for delta in [-1.0f32, 0.0, 0.5, 1.0] {
            model.set_delta_star(delta).unwrap();
            let eval = model.evaluate(&w, &l).unwrap();
            prop_assert!(
                eval.ood_fraction >= last - 1e-6,
                "raising δ* must not reduce the OOD fraction"
            );
            last = eval.ood_fraction;
        }
    }

    #[test]
    fn matrix_windows_roundtrip_through_dataset(seed in any::<u64>()) {
        let ds = generate(&GeneratorConfig {
            name: "prop3".into(),
            num_classes: 2,
            channels: 3,
            window_len: 8,
            sample_rate_hz: 10.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 6 },
                DomainSpec { subjects: vec![1], windows: 6 },
            ],
            shift_severity: 0.5,
            seed,
        })
        .unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let (w, l, d) = ds.gather(&idx);
        prop_assert_eq!(w.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(&w[i], ds.window(i));
            prop_assert_eq!(l[i], ds.label(i));
            prop_assert_eq!(d[i], ds.domain(i));
        }
        let _ = Matrix::zeros(1, 1);
    }
}
