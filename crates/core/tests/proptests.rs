//! Property-based tests for SMORE's model-level invariants.

use std::sync::OnceLock;

use proptest::prelude::*;
use smore::ood::OodDetector;
use smore::quantized::recover_cosine;
use smore::test_time::{ensemble_weights, ensemble_weights_powered};
use smore::{Centerer, QuantizedSmore, Smore, SmoreConfig};
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::split;
use smore_tensor::{init, Matrix};

/// A fitted dense model + its quantized twin, built once: proptest cases
/// only pay for prediction, not training.
fn quantized_fixture() -> &'static (smore_data::Dataset, Smore, QuantizedSmore) {
    static FIXTURE: OnceLock<(smore_data::Dataset, Smore, QuantizedSmore)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let ds = generate(&GeneratorConfig {
            name: "quantized-prop".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 60 },
                DomainSpec { subjects: vec![2, 3], windows: 60 },
                DomainSpec { subjects: vec![4, 5], windows: 60 },
            ],
            shift_severity: 0.8,
            seed: 41,
        })
        .unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(2048)
                .channels(3)
                .num_classes(4)
                .epochs(10)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let all: Vec<usize> = (0..ds.len()).collect();
        model.fit_indices(&ds, &all).unwrap();
        let quantized = model.quantize().unwrap();
        (ds, model, quantized)
    })
}

/// A dataset window perturbed by a gain factor and additive noise — still
/// sensor-shaped, but never seen verbatim by training.
fn perturbed_window(ds: &smore_data::Dataset, index: usize, gain: f32, noise_seed: u64) -> Matrix {
    let mut rng = init::rng(noise_seed);
    let base = ds.window(index % ds.len());
    let noise = init::normal_matrix(&mut rng, base.rows(), base.cols());
    let mut w = base.scale(gain);
    w.axpy(0.05, &noise).unwrap();
    w
}

fn sims(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1.0f32..1.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ood_decision_is_consistent(s in sims(5), delta_star in -1.0f32..1.0) {
        let decision = OodDetector::new(delta_star).detect(&s);
        // δ_max is the max of the (finite) similarities.
        let max = s.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        prop_assert!((decision.delta_max - max).abs() < 1e-6);
        prop_assert_eq!(decision.is_ood, max < delta_star);
        prop_assert!((decision.similarities[decision.best_domain] - max).abs() < 1e-6);
    }

    #[test]
    fn ensemble_weights_are_nonnegative_and_zero_only_when_filtered(
        s in sims(6),
        delta_star in -1.0f32..1.0,
        ood in prop::bool::ANY,
    ) {
        let w = ensemble_weights(&s, ood, delta_star);
        prop_assert_eq!(w.len(), s.len());
        prop_assert!(w.iter().all(|&x| x >= 0.0));
        if ood {
            // OOD: every positive similarity contributes.
            for (wi, &si) in w.iter().zip(&s) {
                prop_assert_eq!(*wi, si.max(0.0));
            }
        }
        // Never all-zero when some similarity is positive.
        if s.iter().any(|&x| x > 0.0) {
            prop_assert!(w.iter().any(|&x| x > 0.0));
        }
    }

    #[test]
    fn powered_weights_preserve_ranking(s in sims(4), power in 1.0f32..8.0) {
        let w = ensemble_weights_powered(&s, true, 0.0, power);
        for i in 0..s.len() {
            for j in 0..s.len() {
                if s[i].max(0.0) > s[j].max(0.0) {
                    prop_assert!(w[i] >= w[j], "sharpening must not reorder domains");
                }
            }
        }
    }

    #[test]
    fn centerer_output_rows_are_unit_or_zero(rows in 2usize..10, seed in any::<u64>()) {
        let m = init::normal_matrix(&mut init::rng(seed), rows, 32);
        let centerer = Centerer::fit(&m).unwrap();
        let mut z = m.clone();
        centerer.apply(&mut z);
        for i in 0..rows {
            let n = smore_tensor::vecops::norm(z.row(i));
            prop_assert!(n < 1e-6 || (n - 1.0).abs() < 1e-4, "row norm {n}");
        }
    }
}

// Heavier end-to-end properties run with few cases.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn smore_predictions_always_in_label_range(seed in 0u64..1000) {
        let ds = generate(&GeneratorConfig {
            name: "prop".into(),
            num_classes: 3,
            channels: 2,
            window_len: 12,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 18 },
                DomainSpec { subjects: vec![1], windows: 18 },
                DomainSpec { subjects: vec![2], windows: 18 },
            ],
            shift_severity: 1.5,
            seed,
        })
        .unwrap();
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder().dim(256).channels(2).num_classes(3).epochs(3).build().unwrap(),
        )
        .unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (w, _, _) = ds.gather(&test);
        for p in model.predict_batch(&w).unwrap() {
            prop_assert!(p.label < 3);
            prop_assert!(p.domain_similarities.len() == 2);
            prop_assert!((-1.0..=1.0).contains(&p.delta_max));
            prop_assert!(p.best_domain == 0 || p.best_domain == 1);
        }
    }

    #[test]
    fn delta_star_monotonically_increases_ood_fraction(seed in 0u64..100) {
        let ds = generate(&GeneratorConfig {
            name: "prop2".into(),
            num_classes: 2,
            channels: 2,
            window_len: 12,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 16 },
                DomainSpec { subjects: vec![1], windows: 16 },
                DomainSpec { subjects: vec![2], windows: 16 },
            ],
            shift_severity: 1.0,
            seed,
        })
        .unwrap();
        let (train, test) = split::lodo(&ds, 0).unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder().dim(256).channels(2).num_classes(2).epochs(3).build().unwrap(),
        )
        .unwrap();
        model.fit_indices(&ds, &train).unwrap();
        let (w, l, _) = ds.gather(&test);
        let mut last = 0.0f32;
        for delta in [-1.0f32, 0.0, 0.5, 1.0] {
            model.set_delta_star(delta).unwrap();
            let eval = model.evaluate(&w, &l).unwrap();
            prop_assert!(
                eval.ood_fraction >= last - 1e-6,
                "raising δ* must not reduce the OOD fraction"
            );
            last = eval.ood_fraction;
        }
    }

    #[test]
    fn quantized_scores_stay_finite_on_perturbed_windows(
        index in 0usize..180,
        gain in 0.25f32..2.0,
        noise_seed in any::<u64>(),
    ) {
        // Gram-normalised popcount scoring must never emit NaN/∞, whatever
        // sensor-shaped input arrives.
        let (ds, _, quantized) = quantized_fixture();
        let w = perturbed_window(ds, index, gain, noise_seed);
        let p = quantized.predict_window(&w).unwrap();
        prop_assert!(p.label < 4);
        prop_assert!(p.delta_max.is_finite());
        prop_assert!((-1.0..=1.0).contains(&p.delta_max), "recovered δ_max {}", p.delta_max);
        prop_assert_eq!(p.domain_similarities.len(), 3);
        for &s in &p.domain_similarities {
            prop_assert!(s.is_finite() && (-1.0..=1.0).contains(&s), "similarity {}", s);
        }
    }

    #[test]
    fn matrix_windows_roundtrip_through_dataset(seed in any::<u64>()) {
        let ds = generate(&GeneratorConfig {
            name: "prop3".into(),
            num_classes: 2,
            channels: 3,
            window_len: 8,
            sample_rate_hz: 10.0,
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 6 },
                DomainSpec { subjects: vec![1], windows: 6 },
            ],
            shift_severity: 0.5,
            seed,
        })
        .unwrap();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let (w, l, d) = ds.gather(&idx);
        prop_assert_eq!(w.len(), ds.len());
        for i in 0..ds.len() {
            prop_assert_eq!(&w[i], ds.window(i));
            prop_assert_eq!(l[i], ds.label(i));
            prop_assert_eq!(d[i], ds.domain(i));
        }
        let _ = Matrix::zeros(1, 1);
    }
}

// `recover_cosine` invariants (the sin(π/2·s) sign-distortion inverse the
// quantized serving path leans on).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn recover_cosine_is_bounded(s in -3.0f32..3.0) {
        let r = recover_cosine(s);
        prop_assert!((-1.0..=1.0).contains(&r), "recover_cosine({s}) = {r}");
    }

    #[test]
    fn recover_cosine_is_monotone(a in -1.5f32..1.5, b in -1.5f32..1.5) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            recover_cosine(lo) <= recover_cosine(hi) + 1e-6,
            "recover_cosine must be non-decreasing: f({lo}) > f({hi})"
        );
    }

    #[test]
    fn recover_cosine_fixes_sign_and_endpoints(s in 0.0f32..1.0) {
        // Odd map: f(-s) = -f(s); expansion on (0, 1): f(s) ≥ s.
        prop_assert!((recover_cosine(-s) + recover_cosine(s)).abs() < 1e-6);
        prop_assert!(recover_cosine(s) >= s - 1e-6);
    }
}

// Dense/quantized agreement — a handful of cases, each scoring a batch.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn quantized_predictions_agree_with_dense_on_random_windows(
        gain in 0.7f32..1.4,
        noise_seed in any::<u64>(),
        offset in 0usize..60,
    ) {
        let (ds, dense, quantized) = quantized_fixture();
        let windows: Vec<Matrix> = (0..40)
            .map(|i| perturbed_window(ds, offset + i * 4, gain, noise_seed.wrapping_add(i as u64)))
            .collect();
        let dp = dense.predict_batch(&windows).unwrap();
        let qp = quantized.predict_batch(&windows).unwrap();
        let agree = dp.iter().zip(&qp).filter(|(a, b)| a.label == b.label).count();
        prop_assert!(
            agree as f32 / windows.len() as f32 >= 0.9,
            "quantized agreed with dense on only {agree}/{} random windows",
            windows.len()
        );
    }
}
