//! Device specifications for the paper's three platforms (§4.1.1).

/// A compute platform's envelope: effective throughput, bandwidth, power.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human-readable platform name.
    pub name: String,
    /// Physical cores used by the workload.
    pub cores: usize,
    /// Sustained clock in GHz.
    pub clock_ghz: f64,
    /// Peak f32 FLOPs per cycle per core (SIMD width × FMA).
    pub flops_per_cycle: f64,
    /// Fraction of peak the workload achieves (scalar-ish Rust kernels and
    /// interpreter-driven Python both land far below peak; 0.15–0.3 is the
    /// realistic band for streaming numeric loops).
    pub efficiency: f64,
    /// Sustained memory bandwidth in GB/s.
    pub mem_bandwidth_gbs: f64,
    /// Sustained board/package power in watts (≈ TDP under load).
    pub power_watts: f64,
}

impl DeviceSpec {
    /// Effective FLOP/s the workload can sustain.
    pub fn effective_flops(&self) -> f64 {
        (self.cores as f64) * self.clock_ghz * 1e9 * self.flops_per_cycle * self.efficiency
    }

    /// Effective bytes/s of memory traffic.
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth_gbs * 1e9
    }
}

/// The paper's server: Intel Xeon Silver 4310 (12 cores, 2.10 GHz,
/// AVX-512, 6-channel DDR4), TDP 120 W.
pub fn xeon_silver_4310() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon Silver 4310".into(),
        cores: 12,
        clock_ghz: 2.1,
        flops_per_cycle: 32.0, // AVX-512 FMA on one port sustained
        efficiency: 0.25,
        mem_bandwidth_gbs: 100.0,
        power_watts: 120.0,
    }
}

/// Raspberry Pi 3 Model B+: 4× Cortex-A53 @ 1.4 GHz, NEON, LPDDR2,
/// TDP ≈ 5 W.
pub fn raspberry_pi_3b() -> DeviceSpec {
    DeviceSpec {
        name: "Raspberry Pi 3B+".into(),
        cores: 4,
        clock_ghz: 1.4,
        flops_per_cycle: 8.0, // 128-bit NEON FMA
        efficiency: 0.2,
        mem_bandwidth_gbs: 2.5,
        power_watts: 5.0,
    }
}

/// NVIDIA Jetson Nano: 4× Cortex-A57 @ 1.43 GHz plus a 128-core Maxwell
/// GPU, LPDDR4, TDP ≈ 10 W. The spec folds the GPU into a higher
/// effective throughput, as the paper's baselines run with CUDA.
pub fn jetson_nano() -> DeviceSpec {
    DeviceSpec {
        name: "Jetson Nano".into(),
        cores: 4,
        clock_ghz: 1.43,
        // CPU NEON (8) + GPU contribution folded in: 128 CUDA cores
        // @ ~0.92 GHz ≈ 235 GFLOP/s peak ≈ 10× the CPU's 45 GFLOP/s —
        // modelled as a 5× effective multiplier at our efficiency band.
        flops_per_cycle: 40.0,
        efficiency: 0.2,
        mem_bandwidth_gbs: 25.6,
        power_watts: 10.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_sane_envelopes() {
        for device in [xeon_silver_4310(), raspberry_pi_3b(), jetson_nano()] {
            assert!(device.effective_flops() > 1e9, "{}: flops", device.name);
            assert!(device.effective_bandwidth() > 1e9, "{}: bandwidth", device.name);
            assert!(device.power_watts > 0.0);
        }
    }

    #[test]
    fn relative_ordering_matches_reality() {
        let xeon = xeon_silver_4310();
        let pi = raspberry_pi_3b();
        let nano = jetson_nano();
        assert!(xeon.effective_flops() > 10.0 * pi.effective_flops());
        assert!(nano.effective_flops() > pi.effective_flops());
        assert!(pi.power_watts < nano.power_watts && nano.power_watts < xeon.power_watts);
    }
}
