//! Operation profiles of every algorithm in the evaluation.
//!
//! Each function counts the dominant floating-point work and memory
//! traffic of one phase of one algorithm, parameterised by the workload
//! shape. A multiply-accumulate counts as 2 FLOPs; traffic assumes
//! streaming access with `f32` elements.

use crate::OpProfile;

const F32: f64 = 4.0;

/// Relative kernel efficiency of HDC streaming loops (long contiguous
/// vector multiply-adds vectorise nearly perfectly).
pub const HDC_EFFICIENCY: f64 = 2.0;
/// Relative kernel efficiency of training-style passes (strided backward
/// access, optimizer state updates) — also what TENT runs per test batch.
pub const TRAIN_EFFICIENCY: f64 = 0.6;

/// Relative kernel efficiency of bit-packed binary loops: wide integer
/// word operations (XOR, popcount, counter adds) sustain the same
/// near-perfect vectorisation as the dense HDC streaming loops.
pub const PACKED_EFFICIENCY: f64 = 2.0;

/// Dimensions carried per machine word by the bit-packed backend.
const WORD_DIMS: f64 = 64.0;

/// Residual sign planes per class hypervector in the quantized serving
/// path (mirrors `CLASS_PLANES` in `smore::QuantizedSmore`): each ensemble
/// class dot costs one popcount sweep per plane, and class parameters
/// stream at `CLASS_PLANES` bits per dimension.
const CLASS_PLANES: f64 = 3.0;

/// Bit-packed HDC encoding of `n` windows (`smore_packed`): per window,
/// per channel, per time step — a codebook lookup (free), `ngram − 1`
/// rotate+XOR word sweeps (4 word-ops per word each) and the integer
/// counter bundling (2 ops/dim: bit extract + add); then the signature
/// sign-merge (2 ops/dim per channel) and the centring threshold
/// (3 ops/dim per window, including the accumulator norm).
pub fn packed_encode(
    n: usize,
    time: usize,
    channels: usize,
    dim: usize,
    ngram: usize,
) -> OpProfile {
    let words = dim as f64 / WORD_DIMS;
    let per_step = 2.0 * dim as f64 + 4.0 * (ngram as f64 - 1.0) * words;
    let per_channel = time as f64 * per_step + 2.0 * dim as f64;
    let ops = n as f64 * (channels as f64 * per_channel + 3.0 * dim as f64);
    // Traffic: packed codebooks stay cache-resident; per window the raw
    // samples stream in, the i32 counter vector streams through once and
    // a packed (dim/8-byte) hypervector streams out.
    let bytes = n as f64 * ((time * channels) as f64 * F32 + dim as f64 * F32 + dim as f64 / 8.0);
    OpProfile::new(ops, bytes).with_efficiency(PACKED_EFFICIENCY)
}

/// Quantized SMORE inference on `n` queries (Algorithm 1 entirely on
/// packed operations): packed encode, `K` descriptor XOR+popcount
/// similarities (2 word-ops per word), `K × classes` residual-plane
/// popcount dots for the per-query test-time ensemble (one sweep per
/// [`CLASS_PLANES`] plane) and the tiny `K²·classes` Gram epilogue — the
/// word-level arithmetic behind the quantized serving savings.
pub fn packed_smore_infer(
    n: usize,
    time: usize,
    channels: usize,
    dim: usize,
    ngram: usize,
    domains: usize,
    classes: usize,
) -> OpProfile {
    let encode = packed_encode(n, time, channels, dim, ngram);
    let words = dim as f64 / WORD_DIMS;
    let descriptor = 2.0 * words * domains as f64;
    let ensemble = 2.0 * words * domains as f64 * classes as f64 * CLASS_PLANES;
    let epilogue = (domains * domains * classes) as f64;
    let per_query = descriptor + ensemble + epilogue;
    // Descriptors and the query stream at one bit per dimension; class
    // parameters at CLASS_PLANES bits.
    let bytes_per_query =
        (domains as f64 + (domains * classes) as f64 * CLASS_PLANES + 1.0) * dim as f64 / 8.0;
    encode
        + OpProfile::new(n as f64 * per_query, n as f64 * bytes_per_query)
            .with_efficiency(PACKED_EFFICIENCY)
}

/// HDC multi-sensor encoding of `n` windows (paper §3.3): per window, per
/// channel, per time step — one quantiser interpolation (2 FLOPs/dim) and
/// `ngram` shifted multiplies plus the bundle add (ngram + 1 FLOPs/dim),
/// then the signature bind-and-accumulate (2 FLOPs/dim per channel).
pub fn hdc_encode(n: usize, time: usize, channels: usize, dim: usize, ngram: usize) -> OpProfile {
    let per_step = (2.0 + ngram as f64 + 1.0) * dim as f64;
    let per_channel = time as f64 * per_step + 2.0 * dim as f64;
    let flops = n as f64 * channels as f64 * per_channel;
    // DRAM traffic: codebook anchors and ring buffers stay cache-resident
    // (tens of KB), so per window only the raw samples stream in and the
    // final hypervector streams out.
    let bytes = n as f64 * (2.0 * dim as f64 + (time * channels) as f64) * F32;
    OpProfile::new(flops, bytes).with_efficiency(HDC_EFFICIENCY)
}

/// Adaptive HDC classifier training (Eq. 1–2): one bootstrap pass plus
/// `epochs` corrective passes; each pass scores every sample against all
/// classes (2 FLOPs/dim/class) and updates two class vectors on a mistake
/// (counted at the observed mistake rate, conservatively 0.3).
pub fn hdc_train(n: usize, dim: usize, classes: usize, epochs: usize) -> OpProfile {
    let score = 2.0 * dim as f64 * classes as f64;
    let update = 2.0 * 2.0 * dim as f64;
    let per_pass = n as f64 * (score + 0.3 * update);
    let passes = 1.0 + epochs as f64;
    OpProfile::new(per_pass * passes, per_pass * passes / 2.0 * F32).with_efficiency(HDC_EFFICIENCY)
}

/// SMORE inference on `n` queries (Algorithm 1): encode, `K` descriptor
/// similarities, the weighted test-time ensemble (`K × classes` vector
/// scaled adds) and `classes` final similarities.
pub fn smore_infer(
    n: usize,
    time: usize,
    channels: usize,
    dim: usize,
    ngram: usize,
    domains: usize,
    classes: usize,
) -> OpProfile {
    let encode = hdc_encode(n, time, channels, dim, ngram);
    let descriptor = 2.0 * dim as f64 * domains as f64;
    let ensemble = 2.0 * dim as f64 * domains as f64 * classes as f64;
    let scoring = 2.0 * dim as f64 * classes as f64;
    let per_query = descriptor + ensemble + scoring;
    encode
        + OpProfile::new(n as f64 * per_query, n as f64 * per_query / 2.0 * F32)
            .with_efficiency(HDC_EFFICIENCY)
}

/// BaselineHD inference on `n` queries: random projection
/// (`features × dim` MACs), the nonlinearity and `classes` similarities.
pub fn baseline_hd_infer(n: usize, features: usize, dim: usize, classes: usize) -> OpProfile {
    let project = 2.0 * features as f64 * dim as f64;
    let nonlinearity = 4.0 * dim as f64;
    let scoring = 2.0 * dim as f64 * classes as f64;
    let per_query = project + nonlinearity + scoring;
    OpProfile::new(n as f64 * per_query, n as f64 * (features as f64 + dim as f64) * F32)
        .with_efficiency(HDC_EFFICIENCY)
}

/// DOMINO training: `rounds + 1` rounds of full re-encode + global train +
/// per-domain trains — the cost structure behind its slow training.
#[allow(clippy::too_many_arguments)]
pub fn domino_train(
    n: usize,
    time: usize,
    channels: usize,
    dim: usize,
    ngram: usize,
    domains: usize,
    classes: usize,
    epochs: usize,
    rounds: usize,
) -> OpProfile {
    let per_round = hdc_encode(n, time, channels, dim, ngram)
        + hdc_train(n, dim, classes, epochs)
        + hdc_train(n / domains.max(1), dim, classes, epochs).scaled(domains as f64);
    per_round.scaled((rounds + 1) as f64)
}

/// One CNN forward pass over `n` windows of the backbone used by the DNN
/// baselines (two conv blocks + BN + pooling + dense head).
#[allow(clippy::too_many_arguments)]
pub fn cnn_forward(
    n: usize,
    time: usize,
    channels: usize,
    conv1: usize,
    conv2: usize,
    kernel: usize,
    feature_width: usize,
    classes: usize,
) -> OpProfile {
    let t1 = time.saturating_sub(kernel - 1).max(1);
    let t2 = t1.saturating_sub(kernel - 1).max(1);
    let conv1_flops = 2.0 * t1 as f64 * conv1 as f64 * kernel as f64 * channels as f64;
    let conv2_flops = 2.0 * t2 as f64 * conv2 as f64 * kernel as f64 * conv1 as f64;
    let bn_relu = 6.0 * (t1 as f64 * conv1 as f64 + t2 as f64 * conv2 as f64);
    let pool = t2 as f64 * conv2 as f64;
    let dense = 2.0 * (conv2 as f64 * feature_width as f64 + feature_width as f64 * classes as f64);
    let per_window = conv1_flops + conv2_flops + bn_relu + pool + dense;
    OpProfile::new(n as f64 * per_window, n as f64 * per_window / 4.0 * F32)
}

/// CNN supervised training: `epochs` passes of forward + backward
/// (backward ≈ 2× forward).
#[allow(clippy::too_many_arguments)]
pub fn cnn_train(
    n: usize,
    time: usize,
    channels: usize,
    conv1: usize,
    conv2: usize,
    kernel: usize,
    feature_width: usize,
    classes: usize,
    epochs: usize,
) -> OpProfile {
    cnn_forward(n, time, channels, conv1, conv2, kernel, feature_width, classes)
        .scaled(3.0 * epochs as f64)
        .with_efficiency(TRAIN_EFFICIENCY)
}

/// TENT inference: per test batch, `steps` entropy-minimisation iterations
/// (forward + backward ≈ 3× forward) plus the final forward — the
/// multiplicative overhead visible in the paper's Figure 6.
#[allow(clippy::too_many_arguments)]
pub fn tent_infer(
    n: usize,
    time: usize,
    channels: usize,
    conv1: usize,
    conv2: usize,
    kernel: usize,
    feature_width: usize,
    classes: usize,
    steps: usize,
) -> OpProfile {
    cnn_forward(n, time, channels, conv1, conv2, kernel, feature_width, classes)
        .scaled(3.0 * steps as f64 + 1.0)
        .with_efficiency(TRAIN_EFFICIENCY)
}

/// MDANs training: the supervised pass plus one adversarial pass per
/// source domain per epoch (discriminators are small; the feature
/// extractor dominates, hence ≈ `1 + domains/2` forward+backward sets).
#[allow(clippy::too_many_arguments)]
pub fn mdan_train(
    n: usize,
    time: usize,
    channels: usize,
    conv1: usize,
    conv2: usize,
    kernel: usize,
    feature_width: usize,
    classes: usize,
    epochs: usize,
    domains: usize,
) -> OpProfile {
    let supervised =
        cnn_train(n, time, channels, conv1, conv2, kernel, feature_width, classes, epochs);
    supervised.scaled(1.0 + domains as f64 * 0.5)
}

/// MDANs inference: a single plain forward pass.
#[allow(clippy::too_many_arguments)]
pub fn mdan_infer(
    n: usize,
    time: usize,
    channels: usize,
    conv1: usize,
    conv2: usize,
    kernel: usize,
    feature_width: usize,
    classes: usize,
) -> OpProfile {
    cnn_forward(n, time, channels, conv1, conv2, kernel, feature_width, classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    const USC: (usize, usize) = (126, 6); // time, channels

    #[test]
    fn encode_scales_linearly_in_batch_and_dim() {
        let one = hdc_encode(1, USC.0, USC.1, 8192, 3);
        let ten = hdc_encode(10, USC.0, USC.1, 8192, 3);
        assert!((ten.flops / one.flops - 10.0).abs() < 1e-9);
        let half_dim = hdc_encode(1, USC.0, USC.1, 4096, 3);
        assert!((one.flops / half_dim.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn smore_inference_is_encode_dominated() {
        let total = smore_infer(1, USC.0, USC.1, 8192, 3, 4, 12);
        let encode = hdc_encode(1, USC.0, USC.1, 8192, 3);
        assert!(encode.flops > 0.5 * total.flops, "encoding dominates SMORE inference");
        assert!(total.flops > encode.flops);
    }

    #[test]
    fn tent_pays_multiplicative_adaptation_overhead() {
        let plain = mdan_infer(1, USC.0, USC.1, 16, 32, 5, 64, 12);
        let tent = tent_infer(1, USC.0, USC.1, 16, 32, 5, 64, 12, 10);
        let ratio = tent.flops / plain.flops;
        assert!((ratio - 31.0).abs() < 1e-6, "10 steps => 31x forward cost, got {ratio}");
    }

    #[test]
    fn domino_training_exceeds_plain_hdc_training() {
        let plain = hdc_encode(100, USC.0, USC.1, 1024, 3).plus(hdc_train(100, 1024, 12, 10));
        let domino = domino_train(100, USC.0, USC.1, 1024, 3, 4, 12, 10, 14);
        assert!(
            domino.flops > 10.0 * plain.flops,
            "14 regeneration rounds re-encode every time: {} vs {}",
            domino.flops,
            plain.flops
        );
    }

    #[test]
    fn paper_shape_hdc_beats_cnn_da_on_edge_inference() {
        // Figure 6b's qualitative claim: on a Raspberry Pi, SMORE inference
        // is an order of magnitude cheaper than TENT/MDANs once TENT's
        // adaptation steps are priced in.
        let pi = crate::device::raspberry_pi_3b();
        let n = 100;
        let smore = crate::roofline_latency(&smore_infer(n, USC.0, USC.1, 8192, 3, 4, 12), &pi);
        let tent =
            crate::roofline_latency(&tent_infer(n, USC.0, USC.1, 16, 32, 5, 64, 12, 10), &pi);
        assert!(tent > smore, "TENT ({tent:.3}s) should be slower than SMORE ({smore:.3}s)");
    }

    #[test]
    fn packed_encode_is_cheaper_than_dense_encode() {
        let dense = hdc_encode(100, USC.0, USC.1, 8192, 3);
        let packed = packed_encode(100, USC.0, USC.1, 8192, 3);
        assert!(
            packed.flops < 0.5 * dense.flops,
            "packed encode {} should be well under dense {}",
            packed.flops,
            dense.flops
        );
        assert!(packed.bytes < dense.bytes);
    }

    #[test]
    fn packed_similarity_scoring_is_an_order_of_magnitude_cheaper() {
        // Isolate the post-encode scoring work (descriptors + ensemble):
        // word-level popcounts must undercut the dense f32 kernels by far
        // more than the ≥5× acceptance bar.
        let n = 100;
        let dense_score = smore_infer(n, USC.0, USC.1, 8192, 3, 4, 12).flops
            - hdc_encode(n, USC.0, USC.1, 8192, 3).flops;
        let packed_score = packed_smore_infer(n, USC.0, USC.1, 8192, 3, 4, 12).flops
            - packed_encode(n, USC.0, USC.1, 8192, 3).flops;
        let ratio = dense_score / packed_score;
        assert!(ratio > 5.0, "packed scoring speedup {ratio:.1}x below the 5x bar");
    }

    #[test]
    fn packed_inference_wins_the_edge_roofline() {
        // The fig6b-style claim: on a Raspberry Pi the quantized serving
        // path is strictly faster than dense SMORE inference.
        let pi = crate::device::raspberry_pi_3b();
        let n = 100;
        let dense = crate::roofline_latency(&smore_infer(n, USC.0, USC.1, 8192, 3, 4, 12), &pi);
        let packed =
            crate::roofline_latency(&packed_smore_infer(n, USC.0, USC.1, 8192, 3, 4, 12), &pi);
        assert!(packed < dense, "packed {packed:.4}s should beat dense {dense:.4}s");
    }

    #[test]
    fn cnn_training_cost_grows_with_epochs() {
        let e5 = cnn_train(50, USC.0, USC.1, 16, 32, 5, 64, 12, 5);
        let e10 = cnn_train(50, USC.0, USC.1, 16, 32, 5, 64, 12, 10);
        assert!((e10.flops / e5.flops - 2.0).abs() < 1e-9);
    }

    #[test]
    fn mdan_training_scales_with_domains() {
        let d2 = mdan_train(50, USC.0, USC.1, 16, 32, 5, 64, 12, 5, 2);
        let d4 = mdan_train(50, USC.0, USC.1, 16, 32, 5, 64, 12, 5, 4);
        assert!(d4.flops > d2.flops);
    }

    #[test]
    fn baseline_hd_inference_cheaper_than_smore() {
        // The projection encoder is one matmul: cheaper than the structured
        // temporal encoder at the same dimensionality.
        let b = baseline_hd_infer(10, USC.0 * USC.1, 8192, 12);
        let s = smore_infer(10, USC.0, USC.1, 8192, 3, 4, 12);
        assert!(b.flops < s.flops);
    }
}
