//! Edge-platform cost models for the SMORE efficiency experiments.
//!
//! The paper measures inference latency and energy on a Raspberry Pi 3B+
//! and an NVIDIA Jetson Nano (§4.1.1, Figure 6b). Those boards are not
//! available here, so this crate substitutes *analytic device models*
//! (DESIGN.md substitution #2): each algorithm exposes an operation
//! profile (floating-point work + memory traffic) and each device a
//! compute/bandwidth/power envelope; latency follows the roofline model
//! and energy is latency × sustained power.
//!
//! Absolute numbers are estimates; the *relative* ordering the paper
//! reports (HDC inference ≫ CNN-DA inference on-device, TENT paying a
//! multiplicative adaptation overhead) derives from the op counts, which
//! are modelled faithfully.
//!
//! # Example
//!
//! ```
//! use smore_platform::{device, profiles, roofline_latency, energy};
//!
//! let pi = device::raspberry_pi_3b();
//! // One SMORE inference on a USC-HAD-like window (8k dims, 4 domains).
//! let profile = profiles::smore_infer(1, 126, 6, 8192, 3, 4, 12);
//! let latency = roofline_latency(&profile, &pi);
//! let joules = energy(latency, &pi);
//! assert!(latency > 0.0 && joules > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod device;
pub mod profiles;

pub use device::DeviceSpec;

/// An algorithm's resource demand: floating-point operations and bytes of
/// memory traffic (a multiply-accumulate counts as two FLOPs).
///
/// `efficiency_mult` captures how well the workload's kernels exploit the
/// device relative to its baseline efficiency: HDC's long contiguous
/// vector loops vectorise nearly perfectly (`2.0`), plain CNN inference is
/// the baseline (`1.0`), and training-style passes (backward strided
/// access, optimizer bookkeeping — what TENT runs at test time) fall below
/// it (`0.6`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpProfile {
    /// Floating-point operations.
    pub flops: f64,
    /// Bytes moved to/from memory (streaming estimate).
    pub bytes: f64,
    /// Relative kernel efficiency (see type docs).
    pub efficiency_mult: f64,
}

impl Default for OpProfile {
    fn default() -> Self {
        Self { flops: 0.0, bytes: 0.0, efficiency_mult: 1.0 }
    }
}

impl OpProfile {
    /// A profile with the given FLOPs and bytes at baseline efficiency.
    pub fn new(flops: f64, bytes: f64) -> Self {
        Self { flops, bytes, efficiency_mult: 1.0 }
    }

    /// Sets the relative kernel efficiency.
    pub fn with_efficiency(mut self, efficiency_mult: f64) -> Self {
        self.efficiency_mult = efficiency_mult;
        self
    }

    /// Component-wise sum; the combined efficiency is the FLOP-weighted
    /// average so mixing a fast and a slow phase stays meaningful.
    pub fn plus(self, other: Self) -> Self {
        let flops = self.flops + other.flops;
        let efficiency_mult = if flops > 0.0 {
            (self.flops * self.efficiency_mult + other.flops * other.efficiency_mult) / flops
        } else {
            1.0
        };
        Self { flops, bytes: self.bytes + other.bytes, efficiency_mult }
    }

    /// Scales the workload size (e.g. by a batch size or epoch count).
    pub fn scaled(self, factor: f64) -> Self {
        Self { flops: self.flops * factor, bytes: self.bytes * factor, ..self }
    }
}

impl std::ops::Add for OpProfile {
    type Output = OpProfile;

    fn add(self, rhs: OpProfile) -> OpProfile {
        self.plus(rhs)
    }
}

/// Roofline latency estimate in seconds: the work is bound either by the
/// device's effective compute throughput (scaled by the workload's kernel
/// efficiency) or by its memory bandwidth, whichever is slower.
pub fn roofline_latency(profile: &OpProfile, device: &DeviceSpec) -> f64 {
    let compute_s = profile.flops / (device.effective_flops() * profile.efficiency_mult.max(1e-6));
    let memory_s = profile.bytes / device.effective_bandwidth();
    compute_s.max(memory_s)
}

/// Energy estimate in joules: latency × sustained board power.
pub fn energy(latency_seconds: f64, device: &DeviceSpec) -> f64 {
    latency_seconds * device.power_watts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_arithmetic() {
        let a = OpProfile::new(10.0, 4.0);
        let b = OpProfile::new(5.0, 1.0);
        let sum = a + b;
        assert_eq!(sum.flops, 15.0);
        assert_eq!(sum.bytes, 5.0);
        let scaled = a.scaled(3.0);
        assert_eq!(scaled.flops, 30.0);
        assert_eq!(scaled.bytes, 12.0);
        assert_eq!(OpProfile::default().flops, 0.0);
    }

    #[test]
    fn roofline_picks_the_binding_resource() {
        let device = device::raspberry_pi_3b();
        // Compute-bound: enormous flops, no memory.
        let compute = OpProfile::new(1e12, 0.0);
        // Memory-bound: no flops, enormous traffic.
        let memory = OpProfile::new(0.0, 1e12);
        let tc = roofline_latency(&compute, &device);
        let tm = roofline_latency(&memory, &device);
        assert!(tc > 0.0 && tm > 0.0);
        // Mixed work takes the max of the two bounds, not their sum.
        let mixed = roofline_latency(&OpProfile::new(1e12, 1e12), &device);
        assert!((mixed - tc.max(tm)).abs() < 1e-9);
    }

    #[test]
    fn energy_scales_with_power() {
        let pi = device::raspberry_pi_3b();
        let xeon = device::xeon_silver_4310();
        assert!(energy(1.0, &xeon) > energy(1.0, &pi), "120 W server burns more than 5 W board");
        assert_eq!(energy(0.0, &pi), 0.0);
    }

    #[test]
    fn faster_device_has_lower_latency() {
        let profile = OpProfile::new(1e9, 1e6);
        let pi = roofline_latency(&profile, &device::raspberry_pi_3b());
        let nano = roofline_latency(&profile, &device::jetson_nano());
        let xeon = roofline_latency(&profile, &device::xeon_silver_4310());
        assert!(xeon < nano && nano < pi, "xeon {xeon} < nano {nano} < pi {pi}");
    }
}
