//! Bit-packed binary inference engine for the SMORE reproduction.
//!
//! The dense pipeline carries every hypervector as `d` `f32` values; this
//! crate carries the *sign* of each dimension as one bit, 64 dimensions per
//! `u64` word (paper Fig. 6's efficiency pitch: hypervector ops are
//! word-level logic). The translation table:
//!
//! | dense (`smore_hdc`)            | packed (this crate)                |
//! |--------------------------------|------------------------------------|
//! | bind = element-wise `×`        | XOR (`bit 1 ⇔ −1`, parity of signs)|
//! | permute `ρ^k` = circular shift | 64-bit word/bit rotation           |
//! | similarity = cosine            | `1 − 2·hamming/d` via popcount     |
//! | bundle = `f32` sum             | integer counters + majority        |
//!
//! The result is a ~32× memory reduction and an order-of-magnitude cheaper
//! similarity (`d/64` XOR+popcount words vs `3d` FLOPs). Training stays
//! dense; this crate is the *serving* backend that frozen models are
//! quantized into (see `smore::QuantizedSmore`).
//!
//! - [`PackedHypervector`] — the packed representation with XOR binding,
//!   rotation and popcount Hamming similarity.
//! - [`PackedAccumulator`] — counter-based majority bundling.
//! - [`BitSliceAccumulator`] — word-parallel (SWAR) majority bundling
//!   through carry-save-adder bit planes, ~64× less bundling work than the
//!   per-bit counters.
//! - [`PackedNgramEncoder`] — the multi-sensor temporal encoder of §3.3 on
//!   packed codewords, exposing its integer accumulator for exact
//!   sign-of-dense thresholding; [`EncoderScratch`] makes the hot encode
//!   path allocation-free.
//! - [`PackedClassifier`] — popcount scoring with the same contract as the
//!   dense `HdcClassifier`.
//! - [`ResidualPacked`] — scaled multi-plane binarization (XNOR-Net-style)
//!   for parameters whose per-dimension magnitudes matter, at 2–3 bits per
//!   dimension and still pure popcount arithmetic.
//!
//! Errors reuse [`smore_hdc::HdcError`]: the packed backend is an HDC
//! backend and shares the dense substrate's error vocabulary.
//!
//! # Example
//!
//! ```
//! use smore_packed::{PackedClassifier, PackedHypervector, PackedNgramEncoder};
//! use smore_hdc::encoder::EncoderConfig;
//! use smore_tensor::Matrix;
//!
//! # fn main() -> Result<(), smore_hdc::HdcError> {
//! let encoder = PackedNgramEncoder::new(EncoderConfig {
//!     dim: 1024,
//!     sensors: 3,
//!     ..EncoderConfig::default()
//! })?;
//! let window = Matrix::from_fn(16, 3, |t, s| ((t + s) as f32 * 0.4).sin());
//! let query = encoder.encode_window(&window)?;
//! assert_eq!(query.dim(), 1024);
//! assert_eq!(query.storage_bytes(), 1024 / 8); // vs 4096 bytes dense
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classifier;
mod encoder;
mod hypervector;
mod residual;

pub use classifier::PackedClassifier;
pub use encoder::{EncoderScratch, PackedNgramEncoder};
pub use hypervector::{
    words_for, BitSliceAccumulator, PackedAccumulator, PackedHypervector, WORD_BITS,
};
pub use residual::ResidualPacked;

/// Result alias; the packed backend shares the dense HDC error vocabulary.
pub type Result<T> = std::result::Result<T, smore_hdc::HdcError>;
