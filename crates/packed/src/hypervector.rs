//! Bit-packed binary hypervectors: one `u64` word carries 64 dimensions.
//!
//! A [`PackedHypervector`] is the sign quantization of a dense bipolar
//! hypervector. The bit convention is **bit = 1 ⇔ −1, bit = 0 ⇔ +1**, so
//! element-wise multiplication of signs (binding) becomes XOR — the parity
//! of negative factors — and the dot product of two sign vectors follows
//! from the Hamming distance `h` as `d − 2h`. Relative to the dense `f32`
//! representation this is a 32× memory reduction, and similarity drops from
//! `3d` floating-point operations to `d/64` XOR+popcount word operations.

// smore-lint: allow-file(panic_path) word indices are all bounded by words_for(dim); the kernels are property-tested bit-for-bit against dense arithmetic

use smore_hdc::{HdcError, Hypervector};

use crate::Result;

/// Dimensions carried per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `dim` dimensions.
#[inline]
pub fn words_for(dim: usize) -> usize {
    dim.div_ceil(WORD_BITS)
}

/// A sign-quantized hypervector stored as packed bits (64 dims per word).
///
/// Unused padding bits in the final word are always zero, which every
/// operation preserves; Hamming distances therefore never count padding.
///
/// # Example
///
/// ```
/// use smore_packed::PackedHypervector;
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let a = PackedHypervector::from_signs(&[1.0, -1.0, 1.0, 1.0]);
/// let b = PackedHypervector::from_signs(&[-1.0, -1.0, 1.0, -1.0]);
/// assert_eq!(a.hamming(&b)?, 2);
/// // Binding is XOR and self-inverse: (a ⊕ b) ⊕ a = b.
/// let bound = a.xor(&b)?;
/// assert_eq!(bound.xor(&a)?, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedHypervector {
    words: Vec<u64>,
    dim: usize,
}

impl PackedHypervector {
    /// The all-`+1` hypervector (every bit zero) of dimension `dim`.
    pub fn zeros(dim: usize) -> Self {
        Self { words: vec![0u64; words_for(dim)], dim }
    }

    /// Sign-quantizes a dense slice: strictly negative values set the bit
    /// (−1), everything else — positive, zero and non-finite — clears it
    /// (+1).
    pub fn from_signs(values: &[f32]) -> Self {
        let mut out = Self::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            if v < 0.0 {
                out.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        out
    }

    /// Sign-quantizes a dense [`Hypervector`].
    pub fn from_dense(hv: &Hypervector) -> Self {
        Self::from_signs(hv.as_slice())
    }

    /// Reconstructs a packed hypervector from its raw storage words — the
    /// artifact-load path, the inverse of [`words`](Self::words).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when the word count does not
    /// match `dim` or the final word violates the zero-padding invariant
    /// (both indicate corrupted or foreign bytes, not a usable vector).
    pub fn from_words(dim: usize, words: Vec<u64>) -> Result<Self> {
        if words.len() != words_for(dim) {
            return Err(HdcError::InvalidConfig {
                what: format!(
                    "{} storage words cannot carry {dim} dimensions (need {})",
                    words.len(),
                    words_for(dim)
                ),
            });
        }
        let tail_bits = dim % WORD_BITS;
        if tail_bits != 0 && words[words.len() - 1] >> tail_bits != 0 {
            return Err(HdcError::InvalidConfig {
                what: format!("padding bits beyond dimension {dim} must be zero"),
            });
        }
        Ok(Self { words, dim })
    }

    /// Expands back to a dense bipolar hypervector (`bit → ∓1`).
    pub fn to_dense(&self) -> Hypervector {
        Hypervector::from_vec((0..self.dim).map(|i| if self.get(i) { -1.0 } else { 1.0 }).collect())
    }

    /// Dimensionality (bits in use, not storage capacity).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether the hypervector has zero dimensions.
    pub fn is_empty(&self) -> bool {
        self.dim == 0
    }

    /// The packed storage words (LSB-first within each word).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable storage words — crate-internal so the zero-padding invariant
    /// of the final word cannot be violated from outside.
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Bytes of storage held by the packed representation.
    pub fn storage_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// Reads bit `i` (`true` ⇔ −1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.dim, "bit {i} out of range for dim {}", self.dim);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Overwrites every bit from a per-dimension predicate (`true` ⇔ −1),
    /// building each storage word in a register before one store — the
    /// allocation-free way to re-threshold an existing hypervector (e.g.
    /// from an accumulator's counters) without per-bit
    /// [`set`](Self::set) bounds checks. Padding bits stay zero.
    pub fn fill_with(&mut self, mut neg: impl FnMut(usize) -> bool) {
        let dim = self.dim;
        for (w, word) in self.words.iter_mut().enumerate() {
            let base = w * WORD_BITS;
            let bits = WORD_BITS.min(dim - base);
            let mut acc = 0u64;
            for b in 0..bits {
                acc |= u64::from(neg(base + b)) << b;
            }
            *word = acc;
        }
    }

    /// Writes bit `i` (`true` ⇔ −1).
    ///
    /// # Panics
    ///
    /// Panics if `i >= dim`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.dim, "bit {i} out of range for dim {}", self.dim);
        let mask = 1u64 << (i % WORD_BITS);
        if value {
            self.words[i / WORD_BITS] |= mask;
        } else {
            self.words[i / WORD_BITS] &= !mask;
        }
    }

    /// Number of −1 components (population count).
    pub fn count_negatives(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Binding: element-wise sign multiplication, i.e. word-wise XOR.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn xor(&self, other: &Self) -> Result<Self> {
        self.check_dim(other)?;
        let words = self.words.iter().zip(&other.words).map(|(&a, &b)| a ^ b).collect();
        Ok(Self { words, dim: self.dim })
    }

    /// In-place binding `self ⊕= other`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn xor_assign(&mut self, other: &Self) -> Result<()> {
        self.check_dim(other)?;
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
        Ok(())
    }

    /// Hamming distance: number of disagreeing dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    #[inline]
    pub fn hamming(&self, other: &Self) -> Result<usize> {
        self.check_dim(other)?;
        Ok(self.words.iter().zip(&other.words).map(|(&a, &b)| (a ^ b).count_ones() as usize).sum())
    }

    /// Dot product of the underlying sign vectors: `d − 2·hamming`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    #[inline]
    pub fn dot(&self, other: &Self) -> Result<i64> {
        Ok(self.dim as i64 - 2 * self.hamming(other)? as i64)
    }

    /// Cosine-equivalent similarity `1 − 2h/d ∈ [−1, 1]`.
    ///
    /// For sign vectors (equal norm `√d`) this *is* their exact cosine, so
    /// packed similarities obey the same contract as
    /// [`Hypervector::cosine`]. Zero-dimensional inputs return `0.0` (the
    /// neutral value, matching the dense convention for zero vectors).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    #[inline]
    pub fn similarity(&self, other: &Self) -> Result<f32> {
        self.check_dim(other)?;
        if self.dim == 0 {
            return Ok(0.0);
        }
        Ok(1.0 - 2.0 * self.hamming(other)? as f32 / self.dim as f32)
    }

    /// Permutation `ρ^k`: circular shift of the `d`-bit ring so that bit
    /// `i` moves to `(i + k) mod d` — the exact analog of
    /// [`Hypervector::permute`] (the value of the final dimension moves to
    /// the first position for `k = 1`).
    pub fn rotate(&self, k: usize) -> Self {
        let mut out = Self::zeros(self.dim);
        self.rotate_into(k, &mut out);
        out
    }

    /// [`rotate`](Self::rotate) into an existing buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `out.dim() != self.dim()`.
    pub fn rotate_into(&self, k: usize, out: &mut Self) {
        assert_eq!(out.dim, self.dim, "rotate_into: dimension mismatch");
        rotate_words_into(&self.words, self.dim, k, &mut out.words);
    }

    /// Inverse permutation: `unrotate(k)` undoes `rotate(k)`.
    pub fn unrotate(&self, k: usize) -> Self {
        if self.dim == 0 {
            return self.clone();
        }
        self.rotate(self.dim - (k % self.dim))
    }

    fn check_dim(&self, other: &Self) -> Result<()> {
        if self.dim != other.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: other.dim });
        }
        Ok(())
    }
}

/// Rotates the `dim`-bit ring held in `src` by `k` positions into `out`
/// (bit `i` moves to `(i + k) mod dim`), preserving the zero-padding
/// invariant of the final word. Operates on raw word buffers so encoder
/// scratch space can rotate without materialising [`PackedHypervector`]s.
///
/// # Panics
///
/// Panics if `src` and `out` are not both `words_for(dim)` long.
pub(crate) fn rotate_words_into(src: &[u64], dim: usize, k: usize, out: &mut [u64]) {
    assert_eq!(src.len(), words_for(dim), "rotate_words_into: bad source length");
    assert_eq!(out.len(), src.len(), "rotate_words_into: bad output length");
    if dim == 0 {
        return;
    }
    let k = k % dim;
    if k == 0 {
        out.copy_from_slice(src);
        return;
    }
    if dim.is_multiple_of(WORD_BITS) {
        let nw = src.len();
        let wshift = k / WORD_BITS;
        let bshift = k % WORD_BITS;
        if wshift == 0 {
            // Sub-word rotation (the sliding-bind hot case, k = 1): each
            // output word is its own word shifted up, topped up from the
            // previous word — no index arithmetic in the loop.
            let mut prev = src[nw - 1];
            for (o, &cur) in out.iter_mut().zip(src) {
                *o = (cur << bshift) | (prev >> (WORD_BITS - bshift));
                prev = cur;
            }
        } else {
            // Word-rotate fast path: output word w takes its high bits from
            // source word (w − k/64) and its low bits from the word before.
            for (w, o) in out.iter_mut().enumerate() {
                let hi = src[(w + nw - wshift) % nw];
                *o = if bshift == 0 {
                    hi
                } else {
                    let lo = src[(w + nw - wshift - 1) % nw];
                    (hi << bshift) | (lo >> (WORD_BITS - bshift))
                };
            }
        }
    } else {
        // Ragged dimensions: bit-by-bit fallback (correctness over
        // speed; every production dimensionality is word-aligned).
        out.iter_mut().for_each(|w| *w = 0);
        for i in 0..dim {
            if (src[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1 {
                let j = (i + k) % dim;
                out[j / WORD_BITS] |= 1u64 << (j % WORD_BITS);
            }
        }
    }
}

/// Bit-plane counters per position: `planes[w * CSA_PLANES + j]` holds bit
/// `j` of the running 1-bit count for every dimension in word `w`. Eight
/// planes absorb up to `2^8 − 1` words between flushes.
const CSA_PLANES: usize = 8;

/// Words absorbable before the plane counters would overflow.
const CSA_CAPACITY: u32 = (1 << CSA_PLANES) - 1;

/// Word-parallel (SWAR) majority bundling through a carry-save-adder plane
/// stack.
///
/// [`PackedAccumulator`] adds a hypervector by walking its 64 bits per word
/// and bumping one `i32` counter each — `d` sequential adds per bundled
/// vector. `BitSliceAccumulator` instead keeps the per-dimension count of
/// absorbed 1-bits *bit-sliced* across [`CSA_PLANES`] planes: absorbing a
/// word is a binary increment of 64 independent counters at once (`XOR` for
/// the sum bit, `AND` for the carry), touching on average two plane words
/// per absorbed word — ~64× less work than per-bit counting. Once the
/// planes near capacity (or at the end), [`flush`](Self::flush) folds them
/// into ordinary integer counters, so arbitrarily many vectors can be
/// bundled.
///
/// The counter convention matches [`PackedAccumulator`]: a `+1` bit (0)
/// contributes `+1`, a `−1` bit (1) contributes `−1`, and ties threshold to
/// `+1`.
///
/// # Example
///
/// ```
/// use smore_packed::{BitSliceAccumulator, PackedAccumulator, PackedHypervector};
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let a = PackedHypervector::from_signs(&[1.0, 1.0, -1.0]);
/// let b = PackedHypervector::from_signs(&[1.0, -1.0, -1.0]);
/// let mut swar = BitSliceAccumulator::new(3);
/// let mut reference = PackedAccumulator::new(3);
/// for hv in [&a, &b] {
///     swar.absorb(hv)?;
///     reference.accumulate(hv)?;
/// }
/// let mut counts = vec![0i32; 3];
/// swar.counts_into(&mut counts);
/// assert_eq!(&counts, reference.counts());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSliceAccumulator {
    /// Word-major plane stack: `CSA_PLANES` counter bits per storage word.
    planes: Vec<u64>,
    /// Flushed per-dimension totals of absorbed 1-bits.
    ones: Vec<i32>,
    /// Words absorbed since the last flush (bounded by [`CSA_CAPACITY`]).
    pending: u32,
    /// Total words absorbed since the last reset.
    absorbed: i32,
    dim: usize,
}

impl BitSliceAccumulator {
    /// A zeroed accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            planes: vec![0u64; words_for(dim) * CSA_PLANES],
            ones: vec![0i32; dim],
            pending: 0,
            absorbed: 0,
            dim,
        }
    }

    /// Dimensionality of the accumulator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of hypervectors absorbed since the last reset.
    pub fn absorbed(&self) -> i32 {
        self.absorbed
    }

    /// Clears all state for reuse without reallocating.
    pub fn reset(&mut self) {
        self.planes.iter_mut().for_each(|w| *w = 0);
        self.ones.iter_mut().for_each(|c| *c = 0);
        self.pending = 0;
        self.absorbed = 0;
    }

    /// Absorbs one packed hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn absorb(&mut self, hv: &PackedHypervector) -> Result<()> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: hv.dim() });
        }
        self.absorb_stream(hv.words().iter().copied());
        Ok(())
    }

    /// Absorbs the *binding* `a ⊕ b` of two word buffers without
    /// materialising it — the fused signature-integration primitive: binding
    /// a ±1 bundle element with a ±1 signature is a per-dimension sign
    /// flip, i.e. one XOR folded into the bundling read.
    ///
    /// # Panics
    ///
    /// Panics if `a` and `b` are not both `words_for(dim)` long.
    pub fn absorb_bound(&mut self, a: &[u64], b: &[u64]) {
        let nw = words_for(self.dim);
        assert_eq!(a.len(), nw, "absorb_bound: bad operand length");
        assert_eq!(b.len(), nw, "absorb_bound: bad operand length");
        self.absorb_stream(a.iter().zip(b).map(|(&x, &y)| x ^ y));
    }

    /// The shared absorb core: one binary increment of 64 bit-sliced
    /// counters per word — XOR is the sum bit, AND the carry into the next
    /// plane; the carry chain dies after ~2 planes on average.
    fn absorb_stream(&mut self, words: impl Iterator<Item = u64>) {
        if self.pending == CSA_CAPACITY {
            self.flush();
        }
        for (w, word) in words.enumerate() {
            let mut carry = word;
            let base = w * CSA_PLANES;
            let mut j = 0usize;
            while carry != 0 {
                debug_assert!(j < CSA_PLANES, "plane overflow despite capacity flush");
                let slot = &mut self.planes[base + j];
                let next = *slot & carry;
                *slot ^= carry;
                carry = next;
                j += 1;
            }
        }
        self.pending += 1;
        self.absorbed += 1;
    }

    /// Folds the pending plane counters into the integer `ones` totals and
    /// zeroes the planes. Called automatically at capacity and by
    /// [`counts_into`](Self::counts_into)/[`finish`](Self::finish); callers
    /// never need it for correctness.
    pub fn flush(&mut self) {
        if self.pending == 0 {
            return;
        }
        // Only planes that can be non-zero for `pending` absorbed words.
        let used = (u32::BITS - self.pending.leading_zeros()) as usize;
        let nw = words_for(self.dim);
        for w in 0..nw {
            let base_bit = w * WORD_BITS;
            for (j, plane) in
                self.planes[w * CSA_PLANES..w * CSA_PLANES + used].iter_mut().enumerate()
            {
                let mut word = *plane;
                *plane = 0;
                let weight = 1i32 << j;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    self.ones[base_bit + b] += weight;
                    word &= word - 1;
                }
            }
        }
        self.pending = 0;
    }

    /// Writes the signed majority counters (`absorbed − 2·ones`, matching
    /// [`PackedAccumulator::counts`]) into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() != dim`.
    pub fn counts_into(&mut self, out: &mut [i32]) {
        assert_eq!(out.len(), self.dim, "counts_into: bad output length");
        self.flush();
        for (o, &ones) in out.iter_mut().zip(&self.ones) {
            *o = self.absorbed - 2 * ones;
        }
    }

    /// Majority threshold, identical to [`PackedAccumulator::finish`]:
    /// positive counters → `+1`, negative → `−1`, ties → `+1`.
    pub fn finish(&mut self) -> PackedHypervector {
        self.flush();
        let mut out = PackedHypervector::zeros(self.dim);
        let absorbed = self.absorbed;
        let ones = &self.ones;
        out.fill_with(|i| absorbed - 2 * ones[i] < 0);
        out
    }
}

/// Integer counter accumulator for counter-based majority bundling.
///
/// Binary HDC cannot bundle by addition — the sum of sign bits is not a
/// sign bit — so bundling accumulates per-dimension counts (`+1` for a
/// `+1` bit, `−1` for a `−1` bit) and thresholds at zero: the majority
/// sign wins, with ties resolving to `+1` deterministically.
///
/// # Example
///
/// ```
/// use smore_packed::{PackedAccumulator, PackedHypervector};
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let a = PackedHypervector::from_signs(&[1.0, 1.0, -1.0]);
/// let b = PackedHypervector::from_signs(&[1.0, -1.0, -1.0]);
/// let c = PackedHypervector::from_signs(&[-1.0, 1.0, 1.0]);
/// let mut acc = PackedAccumulator::new(3);
/// for hv in [&a, &b, &c] {
///     acc.accumulate(hv)?;
/// }
/// assert_eq!(acc.finish(), PackedHypervector::from_signs(&[1.0, 1.0, -1.0]));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedAccumulator {
    counts: Vec<i32>,
    dim: usize,
}

impl PackedAccumulator {
    /// A zeroed accumulator of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self { counts: vec![0i32; dim], dim }
    }

    /// Dimensionality of the accumulator.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The per-dimension signed counts (positive ⇔ `+1` majority so far).
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// Adds one packed hypervector: `counts[i] += ±1` by bit sign.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn accumulate(&mut self, hv: &PackedHypervector) -> Result<()> {
        self.accumulate_signed(hv, 1)
    }

    /// Adds one packed hypervector scaled by an integer sign/weight —
    /// `counts[i] += weight · sign_i` — the primitive behind signature
    /// binding of integer counters.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn accumulate_signed(&mut self, hv: &PackedHypervector, weight: i32) -> Result<()> {
        if hv.dim() != self.dim {
            return Err(HdcError::DimensionMismatch { expected: self.dim, actual: hv.dim() });
        }
        for (w, &word) in hv.words().iter().enumerate() {
            let base = w * WORD_BITS;
            let bits = WORD_BITS.min(self.dim - base);
            for b in 0..bits {
                // bit 1 ⇔ −1: subtract the weight when the bit is set.
                let sign = 1 - 2 * ((word >> b) & 1) as i32;
                self.counts[base + b] += weight * sign;
            }
        }
        Ok(())
    }

    /// Majority threshold: positive counts → `+1`, negative → `−1`, ties →
    /// `+1` (deterministic).
    pub fn finish(&self) -> PackedHypervector {
        let mut out = PackedHypervector::zeros(self.dim);
        for (i, &c) in self.counts.iter().enumerate() {
            if c < 0 {
                out.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::init;

    fn random_packed(seed: u64, dim: usize) -> PackedHypervector {
        PackedHypervector::from_signs(&init::bipolar_vec(&mut init::rng(seed), dim))
    }

    #[test]
    fn round_trip_preserves_signs() {
        let dense = init::normal_vec(&mut init::rng(1), 300);
        let packed = PackedHypervector::from_signs(&dense);
        let back = packed.to_dense();
        for (i, (&v, &b)) in dense.iter().zip(back.as_slice()).enumerate() {
            if v < 0.0 {
                assert_eq!(b, -1.0, "dim {i}");
            } else {
                assert_eq!(b, 1.0, "dim {i}");
            }
        }
    }

    #[test]
    fn padding_bits_stay_zero() {
        // 70 dims → 2 words, 58 padding bits in the second word.
        let a = random_packed(2, 70);
        let b = random_packed(3, 70);
        let bound = a.xor(&b).unwrap();
        assert_eq!(bound.words()[1] >> 6, 0, "padding must stay clear");
        assert!(bound.hamming(&a).unwrap() <= 70);
    }

    #[test]
    fn xor_bind_is_self_inverse_and_commutative() {
        let a = random_packed(4, 512);
        let b = random_packed(5, 512);
        let ab = a.xor(&b).unwrap();
        assert_eq!(ab, b.xor(&a).unwrap());
        assert_eq!(ab.xor(&a).unwrap(), b);
        let mut c = a.clone();
        c.xor_assign(&b).unwrap();
        assert_eq!(c, ab);
    }

    #[test]
    fn similarity_matches_dense_cosine_of_signs() {
        let a = random_packed(6, 4096);
        let b = random_packed(7, 4096);
        let dense_sim = a.to_dense().cosine(&b.to_dense()).unwrap();
        let packed_sim = a.similarity(&b).unwrap();
        assert!((dense_sim - packed_sim).abs() < 1e-5);
        assert_eq!(a.similarity(&a).unwrap(), 1.0);
        assert_eq!(a.dot(&a).unwrap(), 4096);
    }

    #[test]
    fn rotate_matches_dense_permute() {
        for dim in [64usize, 128, 192, 70, 5] {
            let a = random_packed(8, dim);
            for k in [0usize, 1, 3, 63, 64, 65, dim - 1, dim, dim + 2] {
                let packed_rot = a.rotate(k);
                let dense_rot = PackedHypervector::from_dense(&a.to_dense().permute(k));
                assert_eq!(packed_rot, dense_rot, "dim {dim}, k {k}");
                assert_eq!(packed_rot.unrotate(k), a, "dim {dim}, k {k} inverse");
            }
        }
    }

    #[test]
    fn rotate_into_avoids_allocation_and_matches() {
        let a = random_packed(9, 256);
        let mut out = PackedHypervector::zeros(256);
        a.rotate_into(5, &mut out);
        assert_eq!(out, a.rotate(5));
        a.rotate_into(0, &mut out);
        assert_eq!(out, a);
    }

    #[test]
    fn rotate_is_near_orthogonal_for_random_vectors() {
        let a = random_packed(10, 4096);
        let sim = a.rotate(1).similarity(&a).unwrap();
        assert!(sim.abs() < 0.1, "ρH should be nearly orthogonal to H, got {sim}");
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = PackedHypervector::zeros(64);
        let b = PackedHypervector::zeros(128);
        assert!(matches!(
            a.xor(&b),
            Err(HdcError::DimensionMismatch { expected: 64, actual: 128 })
        ));
        assert!(a.hamming(&b).is_err());
        assert!(a.similarity(&b).is_err());
        let mut acc = PackedAccumulator::new(64);
        assert!(acc.accumulate(&b).is_err());
    }

    #[test]
    fn majority_bundle_is_similar_to_members() {
        let a = random_packed(11, 4096);
        let b = random_packed(12, 4096);
        let c = random_packed(13, 4096);
        let outsider = random_packed(14, 4096);
        let mut acc = PackedAccumulator::new(4096);
        for hv in [&a, &b, &c] {
            acc.accumulate(hv).unwrap();
        }
        let bundle = acc.finish();
        for hv in [&a, &b, &c] {
            assert!(bundle.similarity(hv).unwrap() > 0.3);
        }
        assert!(bundle.similarity(&outsider).unwrap().abs() < 0.1);
    }

    #[test]
    fn accumulate_signed_flips_contribution() {
        let a = random_packed(15, 128);
        let mut plus = PackedAccumulator::new(128);
        plus.accumulate_signed(&a, 3).unwrap();
        let mut minus = PackedAccumulator::new(128);
        minus.accumulate_signed(&a, -3).unwrap();
        for (p, m) in plus.counts().iter().zip(minus.counts()) {
            assert_eq!(*p, -*m);
        }
    }

    #[test]
    fn ties_resolve_to_plus_one() {
        let acc = PackedAccumulator::new(4);
        assert_eq!(acc.finish(), PackedHypervector::zeros(4));
    }

    #[test]
    fn bit_accessors_and_storage() {
        let mut a = PackedHypervector::zeros(70);
        a.set(69, true);
        assert!(a.get(69));
        assert!(!a.get(0));
        a.set(69, false);
        assert_eq!(a.count_negatives(), 0);
        assert_eq!(a.storage_bytes(), 16);
        assert_eq!(words_for(0), 0);
        assert_eq!(words_for(64), 1);
        assert_eq!(words_for(65), 2);
        assert!(PackedHypervector::zeros(0).is_empty());
    }

    #[test]
    fn bit_slice_accumulator_matches_packed_accumulator() {
        for dim in [64usize, 256, 70, 5, 192] {
            let mut swar = BitSliceAccumulator::new(dim);
            let mut reference = PackedAccumulator::new(dim);
            for seed in 0..10 {
                let hv = random_packed(seed, dim);
                swar.absorb(&hv).unwrap();
                reference.accumulate(&hv).unwrap();
            }
            assert_eq!(swar.absorbed(), 10);
            let mut counts = vec![0i32; dim];
            swar.counts_into(&mut counts);
            assert_eq!(counts.as_slice(), reference.counts(), "dim {dim}");
            assert_eq!(swar.finish(), reference.finish(), "dim {dim}");
        }
    }

    #[test]
    fn bit_slice_accumulator_flushes_past_capacity() {
        // 600 absorbs force two automatic capacity flushes (capacity 255).
        let dim = 128;
        let mut swar = BitSliceAccumulator::new(dim);
        let mut reference = PackedAccumulator::new(dim);
        for seed in 0..600 {
            let hv = random_packed(seed, dim);
            swar.absorb(&hv).unwrap();
            reference.accumulate(&hv).unwrap();
        }
        let mut counts = vec![0i32; dim];
        swar.counts_into(&mut counts);
        assert_eq!(counts.as_slice(), reference.counts());
    }

    #[test]
    fn bit_slice_accumulator_bound_absorb_folds_signature() {
        let dim = 256;
        let a = random_packed(30, dim);
        let sig = random_packed(31, dim);
        let mut swar = BitSliceAccumulator::new(dim);
        swar.absorb_bound(a.words(), sig.words());
        let mut reference = PackedAccumulator::new(dim);
        reference.accumulate(&a.xor(&sig).unwrap()).unwrap();
        let mut counts = vec![0i32; dim];
        swar.counts_into(&mut counts);
        assert_eq!(counts.as_slice(), reference.counts());
    }

    #[test]
    fn bit_slice_accumulator_reset_reuses_storage() {
        let dim = 192;
        let mut swar = BitSliceAccumulator::new(dim);
        swar.absorb(&random_packed(40, dim)).unwrap();
        swar.reset();
        assert_eq!(swar.absorbed(), 0);
        assert_eq!(swar.dim(), dim);
        let mut counts = vec![1i32; dim];
        swar.counts_into(&mut counts);
        assert!(counts.iter().all(|&c| c == 0), "reset clears all counters");
        // Ties after reset threshold to +1, like a fresh accumulator.
        assert_eq!(swar.finish(), PackedHypervector::zeros(dim));
        assert!(swar.absorb(&random_packed(41, 64)).is_err(), "dim mismatch still reported");
    }

    #[test]
    fn fill_with_packs_words_and_preserves_padding() {
        let mut a = PackedHypervector::zeros(70);
        a.fill_with(|i| i % 3 == 0);
        for i in 0..70 {
            assert_eq!(a.get(i), i % 3 == 0, "bit {i}");
        }
        assert_eq!(a.words()[1] >> 6, 0, "padding must stay clear");
        a.fill_with(|_| false);
        assert_eq!(a.count_negatives(), 0);
    }

    #[test]
    fn empty_vectors_are_neutral() {
        let a = PackedHypervector::zeros(0);
        assert_eq!(a.similarity(&a).unwrap(), 0.0);
        assert_eq!(a.rotate(3), a);
        assert_eq!(a.unrotate(3), a);
        assert_eq!(a.to_dense().dim(), 0);
    }
}
