//! The bit-packed multi-sensor n-gram encoder.
//!
//! [`PackedNgramEncoder`] mirrors [`smore_hdc::encoder::MultiSensorEncoder`]
//! (paper §3.3, Fig. 3) in the binary domain:
//!
//! 1. **Vector quantisation** looks up a *packed* codeword from a
//!    discretized level grid. The codewords are the sign-packed images of
//!    the dense encoder's own `LevelMemory` codewords (which are bipolar,
//!    so packing is lossless) — the only approximation relative to the
//!    dense encoder is snapping the continuous `α` to the grid.
//! 2. **Temporal n-gram binding** is XOR under bit-rotation.
//! 3. **Bundling** accumulates integer per-dimension counters — the exact
//!    value the dense encoder accumulates in `f32`, since every product of
//!    bipolar codewords is `±1`.
//! 4. **Spatial integration** multiplies each sensor's counter vector by
//!    its signature sign and sums across sensors — again exactly the dense
//!    arithmetic, in integers.
//!
//! Because the integer accumulator reproduces the dense accumulator
//! exactly (up to `α` discretization), thresholding it at zero yields the
//! *sign of the dense encoding* — which is what every downstream packed
//! similarity needs. [`encode_counts`](PackedNgramEncoder::encode_counts)
//! exposes the raw counters so callers can apply an affine offset (e.g.
//! mean-centring) before thresholding.
//!
//! # The word-parallel hot path
//!
//! The serving encode path performs the four stages above at 64 dimensions
//! per instruction with zero steady-state allocations:
//!
//! - **Incremental sliding n-gram binding.** The bound product of the
//!   window ending at step `t` is `P_t = c_t ⊕ ρ(c_{t−1}) ⊕ … ⊕
//!   ρ^{n−1}(c_{t−n+1})`. Because the rotation `ρ` distributes over XOR,
//!   the next window's product follows from the previous one as
//!
//!   ```text
//!   P_{t+1} = ρ(P_t ⊕ ρ^{n−1}(c_{t−n+1})) ⊕ c_{t+1}
//!   ```
//!
//!   — retire the oldest codeword (already at its final rotation, looked
//!   up from a precomputed ρ^{n−1}-rotated codebook), advance every
//!   surviving element one rotation in a single word-level shift, and fold
//!   in the newest codeword: 2 XOR sweeps + 1 rotate per step, instead of
//!   the `n−1` rotates + `n−1` XORs of a from-scratch fold.
//!
//! - **SWAR bit-sliced bundling.** Counter bundling goes through a
//!   [`BitSliceAccumulator`]: a carry-save-adder plane stack that counts
//!   all 64 bits of a word simultaneously (XOR = sum bit, AND = carry),
//!   flushed into `i32` counters once per ~255 steps rather than
//!   per-bit per step. Signature integration rides along for free — the
//!   per-dimension sign flip `G_s[i] · P[i]` is one XOR fused into the
//!   accumulator read ([`BitSliceAccumulator::absorb_bound`]), so no
//!   per-sensor counter pass or post-hoc signature multiply remains.
//!
//! - **Caller-owned scratch.** [`EncoderScratch`] owns the ring, product,
//!   rotation and counter buffers; the `*_into` entry points
//!   ([`encode_counts_into`](PackedNgramEncoder::encode_counts_into),
//!   [`encode_window_into`](PackedNgramEncoder::encode_window_into)) reuse
//!   it across calls so steady-state encoding never touches the heap.
//!
//! The pre-optimisation recompute path is retained as
//! [`encode_counts_reference`](PackedNgramEncoder::encode_counts_reference);
//! the two are bit-exactly equal (property-tested in
//! `tests/proptests.rs`).

// smore-lint: allow-file(panic_path) bit-kernel indices are all derived from words_for(dim) and exhaustively property-tested against the dense encoder

use smore_hdc::encoder::{EncoderConfig, MultiSensorEncoder, ValueRange};
use smore_hdc::HdcError;
use smore_tensor::{parallel, Matrix};

use crate::hypervector::{rotate_words_into, words_for, BitSliceAccumulator, PackedHypervector};
use crate::Result;

/// Caller-owned scratch space for the allocation-free encode path.
///
/// Holds the sliding-window ring, the running n-gram product, a rotation
/// buffer, the SWAR bundling planes and the output counters. Buffers are
/// (re)sized lazily on each encode, so one scratch can serve encoders of
/// different dimensionalities; in steady state (same encoder, repeated
/// calls) no resize — and therefore no allocation — occurs.
///
/// # Example
///
/// ```
/// use smore_hdc::encoder::EncoderConfig;
/// use smore_packed::{EncoderScratch, PackedHypervector, PackedNgramEncoder};
/// use smore_tensor::Matrix;
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let cfg = EncoderConfig { dim: 256, sensors: 2, ..EncoderConfig::default() };
/// let encoder = PackedNgramEncoder::new(cfg)?;
/// let mut scratch = EncoderScratch::new();
/// let mut query = PackedHypervector::zeros(256);
/// for phase in 0..4 {
///     let w = Matrix::from_fn(16, 2, |t, s| ((t + s) as f32 * 0.4 + phase as f32).sin());
///     encoder.encode_window_into(&w, &mut scratch, &mut query)?; // no allocation
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct EncoderScratch {
    /// Level indices of the last `n` time steps.
    ring: Vec<usize>,
    /// Running n-gram product `P_t` (packed words).
    prod: Vec<u64>,
    /// Rotation double-buffer for the sliding advance.
    rot: Vec<u64>,
    /// SWAR carry-save bundling planes (signature folded in).
    acc: BitSliceAccumulator,
    /// Signed output counters (the packed mirror of the dense accumulator).
    counts: Vec<i32>,
}

impl EncoderScratch {
    /// An empty scratch; buffers are sized by the first encode call.
    pub fn new() -> Self {
        Self {
            ring: Vec::new(),
            prod: Vec::new(),
            rot: Vec::new(),
            acc: BitSliceAccumulator::new(0),
            counts: Vec::new(),
        }
    }

    /// The counters produced by the most recent
    /// [`encode_counts_into`](PackedNgramEncoder::encode_counts_into).
    pub fn counts(&self) -> &[i32] {
        &self.counts
    }

    /// Sizes every buffer for one encode; a no-op (and allocation-free)
    /// when the shape already matches.
    fn prepare(&mut self, dim: usize, ngram: usize) {
        let nw = words_for(dim);
        self.ring.clear();
        self.ring.resize(ngram, 0);
        self.prod.clear();
        self.prod.resize(nw, 0);
        self.rot.clear();
        self.rot.resize(nw, 0);
        if self.acc.dim() == dim {
            self.acc.reset();
        } else {
            self.acc = BitSliceAccumulator::new(dim);
        }
        self.counts.clear();
        self.counts.resize(dim, 0);
    }
}

impl Default for EncoderScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Bit-packed mirror of the dense multi-sensor encoder.
///
/// # Example
///
/// ```
/// use smore_hdc::encoder::EncoderConfig;
/// use smore_packed::PackedNgramEncoder;
/// use smore_tensor::Matrix;
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let cfg = EncoderConfig { dim: 512, sensors: 2, ..EncoderConfig::default() };
/// let encoder = PackedNgramEncoder::new(cfg)?;
/// let window = Matrix::from_fn(16, 2, |t, s| ((t + s) as f32 * 0.4).sin());
/// let hv = encoder.encode_window(&window)?;
/// assert_eq!(hv.dim(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedNgramEncoder {
    config: EncoderConfig,
    /// `[sensor][level]` packed codewords on the discretized `α` grid.
    codebooks: Vec<Vec<PackedHypervector>>,
    /// The same codewords pre-rotated by `ρ^{n−1}` — the retirement
    /// operand of the sliding-bind recurrence. Empty for unigrams.
    codebooks_rot: Vec<Vec<PackedHypervector>>,
    /// Packed sensor signatures `G_i`.
    signatures: Vec<PackedHypervector>,
}

impl PackedNgramEncoder {
    /// Builds the packed encoder by constructing (and discarding) the dense
    /// encoder for the same configuration, then packing its codebooks.
    ///
    /// # Errors
    ///
    /// Propagates the dense encoder's configuration validation.
    pub fn new(config: EncoderConfig) -> Result<Self> {
        let dense = MultiSensorEncoder::new(config)?;
        Self::from_dense(&dense)
    }

    /// Packs the codebooks of an existing dense encoder, guaranteeing that
    /// both encoders draw from identical random anchors (and therefore
    /// agree wherever `α` lands exactly on the level grid).
    ///
    /// # Errors
    ///
    /// Propagates codebook access errors (internal wiring only).
    pub fn from_dense(dense: &MultiSensorEncoder) -> Result<Self> {
        let config = dense.config();
        let grid = config.levels.max(2);
        let mut codebooks = Vec::with_capacity(config.sensors);
        for s in 0..config.sensors {
            let memory = dense.level_memory(s)?;
            let levels: Vec<PackedHypervector> = (0..grid)
                .map(|l| {
                    let alpha = l as f32 / (grid - 1) as f32;
                    PackedHypervector::from_dense(&memory.encode(alpha))
                })
                .collect();
            codebooks.push(levels);
        }
        let signatures = (0..config.sensors)
            .map(|s| Ok(PackedHypervector::from_dense(dense.signature_memory().signature(s)?)))
            .collect::<Result<Vec<_>>>()?;
        // ρ^{n−1}-rotated copies feed the sliding-bind retirement step
        // without a per-step rotate; unigrams never retire anything.
        let codebooks_rot = if config.ngram > 1 {
            codebooks
                .iter()
                .map(|levels| levels.iter().map(|c| c.rotate(config.ngram - 1)).collect())
                .collect()
        } else {
            Vec::new()
        };
        Ok(Self { config: config.clone(), codebooks, codebooks_rot, signatures })
    }

    /// Reassembles an encoder from raw parts — the artifact-load path, the
    /// inverse of the [`codebooks`](Self::codebooks) /
    /// [`codebooks_rot`](Self::codebooks_rot) /
    /// [`signatures`](Self::signatures) accessors. No codebook is derived
    /// or re-rotated: the caller-provided words are served verbatim, which
    /// is what makes artifact loading bit-exact (and fast — no dense
    /// encoder is ever built).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when any shape disagrees with
    /// `config`: codebook/signature count vs `sensors`, level count vs the
    /// `levels` grid, per-vector dimensionality vs `dim`, a missing (or
    /// spurious) pre-rotated codebook for the configured `ngram`, or a
    /// [`ValueRange::Global`] range list of the wrong length.
    pub fn from_parts(
        config: EncoderConfig,
        codebooks: Vec<Vec<PackedHypervector>>,
        codebooks_rot: Vec<Vec<PackedHypervector>>,
        signatures: Vec<PackedHypervector>,
    ) -> Result<Self> {
        if config.dim == 0 || config.sensors == 0 || config.ngram == 0 {
            return Err(HdcError::InvalidConfig {
                what: "encoder dim, sensors and ngram must all be positive".into(),
            });
        }
        if let ValueRange::Global(ranges) = &config.range {
            if ranges.len() != config.sensors {
                return Err(HdcError::InvalidConfig {
                    what: format!(
                        "global range has {} pairs for {} sensors",
                        ranges.len(),
                        config.sensors
                    ),
                });
            }
        }
        let grid = config.levels.max(2);
        let check_books = |books: &[Vec<PackedHypervector>], what: &str| -> Result<()> {
            if books.len() != config.sensors {
                return Err(HdcError::InvalidConfig {
                    what: format!(
                        "{what}: {} codebooks for {} sensors",
                        books.len(),
                        config.sensors
                    ),
                });
            }
            for levels in books {
                if levels.len() != grid {
                    return Err(HdcError::InvalidConfig {
                        what: format!("{what}: {} levels on a {grid}-level grid", levels.len()),
                    });
                }
                if let Some(bad) = levels.iter().find(|c| c.dim() != config.dim) {
                    return Err(HdcError::InvalidConfig {
                        what: format!("{what}: codeword dim {} != {}", bad.dim(), config.dim),
                    });
                }
            }
            Ok(())
        };
        check_books(&codebooks, "codebooks")?;
        if config.ngram > 1 {
            check_books(&codebooks_rot, "pre-rotated codebooks")?;
        } else if !codebooks_rot.is_empty() {
            return Err(HdcError::InvalidConfig {
                what: "unigram encoders carry no pre-rotated codebooks".into(),
            });
        }
        if signatures.len() != config.sensors || signatures.iter().any(|s| s.dim() != config.dim) {
            return Err(HdcError::InvalidConfig {
                what: format!(
                    "{} signatures (dim {:?}) for {} sensors of dim {}",
                    signatures.len(),
                    signatures.first().map(PackedHypervector::dim),
                    config.sensors,
                    config.dim
                ),
            });
        }
        Ok(Self { config, codebooks, codebooks_rot, signatures })
    }

    /// The encoder configuration (shared with the dense encoder).
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The packed per-sensor quantisation codebooks (`[sensor][level]`) —
    /// raw access for model artifacts; see [`from_parts`](Self::from_parts).
    pub fn codebooks(&self) -> &[Vec<PackedHypervector>] {
        &self.codebooks
    }

    /// The ρ^{n−1}-pre-rotated codebooks feeding the sliding-bind
    /// retirement step (empty for unigram encoders).
    pub fn codebooks_rot(&self) -> &[Vec<PackedHypervector>] {
        &self.codebooks_rot
    }

    /// The packed per-sensor signatures `G_i`.
    pub fn signatures(&self) -> &[PackedHypervector] {
        &self.signatures
    }

    /// Hyperdimensional dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of sensors `m`.
    pub fn sensors(&self) -> usize {
        self.config.sensors
    }

    /// Number of discrete quantisation levels on the packed grid.
    pub fn grid_levels(&self) -> usize {
        self.codebooks.first().map_or(0, Vec::len)
    }

    /// Bytes held by all packed codebooks (including the ρ^{n−1}-rotated
    /// sliding-bind copies) and signatures.
    pub fn storage_bytes(&self) -> usize {
        self.codebooks
            .iter()
            .chain(&self.codebooks_rot)
            .flat_map(|levels| levels.iter().map(PackedHypervector::storage_bytes))
            .sum::<usize>()
            + self.signatures.iter().map(PackedHypervector::storage_bytes).sum::<usize>()
    }

    /// Validates the window shape shared by every encode entry point,
    /// returning the number of time steps.
    fn check_window(&self, window: &Matrix) -> Result<usize> {
        let (t_total, cols) = window.shape();
        if cols != self.config.sensors {
            return Err(HdcError::DimensionMismatch {
                expected: self.config.sensors,
                actual: cols,
            });
        }
        if t_total < self.config.ngram {
            return Err(HdcError::InvalidConfig {
                what: format!(
                    "window of {t_total} steps is shorter than the n-gram size {}",
                    self.config.ngram
                ),
            });
        }
        Ok(t_total)
    }

    /// Encodes one window into the raw integer accumulator held in
    /// `scratch` (read it back through [`EncoderScratch::counts`]) — the
    /// packed mirror of the dense encoder's pre-normalisation sum.
    /// `counts[i]` equals the dense accumulator value at dimension `i`
    /// exactly, up to the `α` grid snap.
    ///
    /// This is the word-parallel hot path (sliding n-gram binding + SWAR
    /// bundling, see the module docs); with a warm `scratch` it performs
    /// no allocation.
    ///
    /// # Errors
    ///
    /// Same conditions as the dense
    /// [`encode_window`](MultiSensorEncoder::encode_window): one column per
    /// sensor, at least `ngram` time steps.
    pub fn encode_counts_into(&self, window: &Matrix, scratch: &mut EncoderScratch) -> Result<()> {
        self.check_window(window)?;
        let d = self.config.dim;
        let n = self.config.ngram;
        let grid = self.grid_levels();
        scratch.prepare(d, n);

        for (s, codebook) in self.codebooks.iter().enumerate() {
            let (lo, hi) = self.sensor_range(window, s);
            let span = hi - lo;
            let sig = self.signatures[s].words();
            for (t, y) in window.col(s).enumerate() {
                let level = quantize_level(y, lo, span, grid);
                let slot = t % n;
                // The codeword retiring from the previous product (only
                // meaningful once the ring has wrapped, t ≥ n).
                let outgoing = scratch.ring[slot];
                scratch.ring[slot] = level;
                if t + 1 < n {
                    continue;
                }
                if n == 1 {
                    // Unigrams: the product *is* the codeword; bundle it
                    // with the signature folded in.
                    scratch.acc.absorb_bound(codebook[level].words(), sig);
                    continue;
                }
                if t + 1 == n {
                    // Seed the first product with a from-scratch fold:
                    // element at step t−j gets rotation ρ^j.
                    scratch.prod.copy_from_slice(codebook[level].words());
                    for j in 1..n {
                        rotate_words_into(
                            codebook[scratch.ring[(t - j) % n]].words(),
                            d,
                            j % d,
                            &mut scratch.rot,
                        );
                        xor_words(&mut scratch.prod, &scratch.rot);
                    }
                } else {
                    // Slide: P ← ρ(P ⊕ ρ^{n−1}(c_out)) ⊕ c_in.
                    xor_words(&mut scratch.prod, self.codebooks_rot[s][outgoing].words());
                    rotate_words_into(&scratch.prod, d, 1, &mut scratch.rot);
                    std::mem::swap(&mut scratch.prod, &mut scratch.rot);
                    xor_words(&mut scratch.prod, codebook[level].words());
                }
                scratch.acc.absorb_bound(&scratch.prod, sig);
            }
        }
        scratch.acc.counts_into(&mut scratch.counts);
        Ok(())
    }

    /// Allocating wrapper around
    /// [`encode_counts_into`](Self::encode_counts_into).
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode_counts_into`](Self::encode_counts_into).
    pub fn encode_counts(&self, window: &Matrix) -> Result<Vec<i32>> {
        let mut scratch = EncoderScratch::new();
        self.encode_counts_into(window, &mut scratch)?;
        Ok(std::mem::take(&mut scratch.counts))
    }

    /// The pre-optimisation reference encoder: recomputes every n-gram
    /// product from scratch (`n−1` rotates + XORs per step) and bundles
    /// bit by bit. Kept as the ground truth the word-parallel path is
    /// property-tested against; serving code should never call it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode_counts`](Self::encode_counts).
    pub fn encode_counts_reference(&self, window: &Matrix) -> Result<Vec<i32>> {
        let t_total = self.check_window(window)?;
        let d = self.config.dim;
        let n = self.config.ngram;
        let grid = self.grid_levels();
        let mut acc = vec![0i32; d];
        let mut sensor_counts = vec![0i32; d];
        // Ring buffer of the last n level indices; scratch packed buffers
        // for the n-gram product and the rotated operand.
        let mut ring = vec![0usize; n];
        let mut prod = PackedHypervector::zeros(d);
        let mut rot = PackedHypervector::zeros(d);

        for (s, codebook) in self.codebooks.iter().enumerate() {
            let (lo, hi) = self.sensor_range(window, s);
            let span = hi - lo;
            sensor_counts.iter_mut().for_each(|c| *c = 0);
            for t in 0..t_total {
                ring[t % n] = quantize_level(window.get(t, s), lo, span, grid);
                if t + 1 >= n {
                    // n-gram ending at step t: element at step t-j gets
                    // rotation j (ρ^j), folded in by XOR binding.
                    prod.words_mut().copy_from_slice(codebook[ring[t % n]].words());
                    for j in 1..n {
                        codebook[ring[(t - j) % n]].rotate_into(j % d.max(1), &mut rot);
                        prod.xor_assign(&rot)?;
                    }
                    // Counter bundling: +1 for a +1 bit, −1 for a −1 bit.
                    accumulate_words(&mut sensor_counts, prod.words(), d);
                }
            }
            // Spatial integration: acc += G_s ∗ counts_s, where binding a
            // signed counter with a ±1 signature is sign multiplication.
            let signature = &self.signatures[s];
            for (w, &word) in signature.words().iter().enumerate() {
                let base = w * crate::hypervector::WORD_BITS;
                let bits = crate::hypervector::WORD_BITS.min(d - base);
                for b in 0..bits {
                    let sign = 1 - 2 * ((word >> b) & 1) as i32;
                    acc[base + b] += sign * sensor_counts[base + b];
                }
            }
        }
        Ok(acc)
    }

    /// Encodes one window into a packed hypervector by majority threshold
    /// (positive accumulator → `+1`, ties → `+1`), reusing caller-owned
    /// scratch and output buffers — the zero-allocation serving encode.
    ///
    /// `out` is resized (once) if its dimensionality disagrees.
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode_counts_into`](Self::encode_counts_into).
    pub fn encode_window_into(
        &self,
        window: &Matrix,
        scratch: &mut EncoderScratch,
        out: &mut PackedHypervector,
    ) -> Result<()> {
        self.encode_counts_into(window, scratch)?;
        if out.dim() != self.config.dim {
            *out = PackedHypervector::zeros(self.config.dim);
        }
        let counts = &scratch.counts;
        out.fill_with(|i| counts[i] < 0);
        Ok(())
    }

    /// Allocating wrapper around
    /// [`encode_window_into`](Self::encode_window_into).
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode_counts`](Self::encode_counts).
    pub fn encode_window(&self, window: &Matrix) -> Result<PackedHypervector> {
        let mut scratch = EncoderScratch::new();
        let mut out = PackedHypervector::zeros(self.config.dim);
        self.encode_window_into(window, &mut scratch, &mut out)?;
        Ok(out)
    }

    /// Encodes a batch of windows in parallel. Outputs are pre-sized and
    /// written in place; each worker thread reuses one [`EncoderScratch`]
    /// across its whole chunk.
    ///
    /// # Errors
    ///
    /// Propagates the first [`encode_window_into`](Self::encode_window_into)
    /// error.
    pub fn encode_batch(
        &self,
        windows: &[Matrix],
        threads: usize,
    ) -> Result<Vec<PackedHypervector>> {
        let dim = self.config.dim;
        let mut results: Vec<Result<PackedHypervector>> =
            windows.iter().map(|_| Ok(PackedHypervector::zeros(dim))).collect();
        parallel::par_chunks_indexed(&mut results, threads, |start, chunk| {
            let mut scratch = EncoderScratch::new();
            for (k, slot) in chunk.iter_mut().enumerate() {
                if let Ok(out) = slot.as_mut() {
                    if let Err(e) = self.encode_window_into(&windows[start + k], &mut scratch, out)
                    {
                        *slot = Err(e);
                    }
                }
            }
        });
        results.into_iter().collect()
    }

    fn sensor_range(&self, window: &Matrix, sensor: usize) -> (f32, f32) {
        match &self.config.range {
            ValueRange::PerWindow => {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for v in window.col(sensor) {
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if !lo.is_finite() || !hi.is_finite() {
                    (0.0, 0.0)
                } else {
                    (lo, hi)
                }
            }
            ValueRange::Global(ranges) => ranges[sensor],
        }
    }
}

/// Snaps a raw sample onto the discretized `α` level grid (NaN and
/// zero-span windows land mid-grid, matching the dense encoder).
#[inline]
fn quantize_level(y: f32, lo: f32, span: f32, grid: usize) -> usize {
    let alpha = if span > 1e-12 { (y - lo) / span } else { 0.5 };
    let alpha = if alpha.is_finite() { alpha.clamp(0.0, 1.0) } else { 0.5 };
    ((alpha * (grid - 1) as f32).round() as usize).min(grid - 1)
}

/// `dst[w] ^= src[w]` — the word-level XOR bind over raw buffers.
#[inline]
fn xor_words(dst: &mut [u64], src: &[u64]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d ^= s;
    }
}

/// `counts[i] += ±1` from packed sign bits (bit 1 ⇔ −1), bit by bit —
/// reference-path bundling only.
#[inline]
fn accumulate_words(counts: &mut [i32], words: &[u64], dim: usize) {
    for (w, &word) in words.iter().enumerate() {
        let base = w * crate::hypervector::WORD_BITS;
        let bits = crate::hypervector::WORD_BITS.min(dim - base);
        for b in 0..bits {
            counts[base + b] += 1 - 2 * ((word >> b) & 1) as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_hdc::memory::Quantization;

    fn test_config(dim: usize, sensors: usize) -> EncoderConfig {
        EncoderConfig { dim, sensors, ..EncoderConfig::default() }
    }

    fn sine_window(t_total: usize, sensors: usize, phase: f32) -> Matrix {
        Matrix::from_fn(t_total, sensors, |t, s| (t as f32 * 0.37 + s as f32 * 1.3 + phase).sin())
    }

    #[test]
    fn construction_mirrors_dense_validation() {
        assert!(PackedNgramEncoder::new(test_config(0, 1)).is_err());
        assert!(PackedNgramEncoder::new(test_config(64, 0)).is_err());
        let enc = PackedNgramEncoder::new(test_config(256, 2)).unwrap();
        assert_eq!(enc.dim(), 256);
        assert_eq!(enc.sensors(), 2);
        assert_eq!(enc.grid_levels(), enc.config().levels);
        assert!(enc.storage_bytes() > 0);
    }

    #[test]
    fn encode_validates_window_shape() {
        let enc = PackedNgramEncoder::new(test_config(128, 2)).unwrap();
        assert!(enc.encode_window(&sine_window(10, 3, 0.0)).is_err());
        assert!(enc.encode_window(&sine_window(2, 2, 0.0)).is_err());
    }

    #[test]
    fn packed_signs_match_dense_encoding_with_levelflip() {
        // Under LevelFlip quantisation the dense encoder reads the same
        // discrete codewords as the packed one, so the packed counters must
        // reproduce the dense accumulator signs *exactly*.
        let mut cfg = test_config(512, 2);
        cfg.quantization = Quantization::LevelFlip;
        cfg.normalize = false;
        let dense = MultiSensorEncoder::new(cfg).unwrap();
        let packed = PackedNgramEncoder::from_dense(&dense).unwrap();
        let w = sine_window(24, 2, 0.3);
        let dense_hv = dense.encode_window(&w).unwrap();
        let counts = packed.encode_counts(&w).unwrap();
        for (i, (&dv, &c)) in dense_hv.as_slice().iter().zip(&counts).enumerate() {
            assert_eq!(dv, c as f32, "accumulator mismatch at dim {i}");
        }
    }

    #[test]
    fn packed_signs_track_dense_encoding_with_interpolate() {
        // Continuous α snaps to the 64-level grid, so a small fraction of
        // dims may disagree — but the overwhelming majority must match.
        let cfg = test_config(2048, 2);
        let dense = MultiSensorEncoder::new(cfg).unwrap();
        let packed = PackedNgramEncoder::from_dense(&dense).unwrap();
        let w = sine_window(30, 2, 0.0);
        let dense_hv = dense.encode_window(&w).unwrap();
        let packed_hv = packed.encode_window(&w).unwrap();
        let dense_signs = PackedHypervector::from_dense(&dense_hv);
        let agreement = 1.0 - dense_signs.hamming(&packed_hv).unwrap() as f32 / 2048.0;
        assert!(agreement > 0.9, "sign agreement {agreement} too low");
    }

    #[test]
    fn sliding_swar_path_matches_reference_recompute() {
        // The word-parallel serving path and the retained reference path
        // must agree bit-exactly: same counters, every configuration.
        for (dim, sensors, ngram) in
            [(512, 2, 3), (192, 1, 1), (70, 2, 2), (130, 3, 5), (64, 1, 4), (256, 2, 6)]
        {
            let mut cfg = test_config(dim, sensors);
            cfg.ngram = ngram;
            let enc = PackedNgramEncoder::new(cfg).unwrap();
            let w = sine_window(ngram + 17, sensors, 0.2);
            assert_eq!(
                enc.encode_counts(&w).unwrap(),
                enc.encode_counts_reference(&w).unwrap(),
                "dim {dim}, sensors {sensors}, ngram {ngram}"
            );
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_encodes() {
        // One scratch across many windows — and across encoders of
        // different shapes — produces the same hypervectors as fresh
        // allocations.
        let enc_a = PackedNgramEncoder::new(test_config(256, 2)).unwrap();
        let enc_b = PackedNgramEncoder::new(test_config(192, 1)).unwrap();
        let mut scratch = EncoderScratch::new();
        let mut out_a = PackedHypervector::zeros(256);
        let mut out_b = PackedHypervector::zeros(1);
        for i in 0..5 {
            let wa = sine_window(20, 2, i as f32 * 0.4);
            enc_a.encode_window_into(&wa, &mut scratch, &mut out_a).unwrap();
            assert_eq!(out_a, enc_a.encode_window(&wa).unwrap(), "window {i}");
            let wb = sine_window(12, 1, i as f32 * 0.7);
            enc_b.encode_window_into(&wb, &mut scratch, &mut out_b).unwrap();
            assert_eq!(out_b, enc_b.encode_window(&wb).unwrap(), "window {i}");
            assert_eq!(out_b.dim(), 192, "output resized to the encoder's dim");
        }
        assert_eq!(scratch.counts().len(), 192);
    }

    #[test]
    fn encoding_is_deterministic_and_seed_sensitive() {
        let a = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let b = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let w = sine_window(12, 1, 0.5);
        assert_eq!(a.encode_window(&w).unwrap(), b.encode_window(&w).unwrap());
        let mut cfg = test_config(256, 1);
        cfg.seed = 999;
        let c = PackedNgramEncoder::new(cfg).unwrap();
        assert_ne!(a.encode_window(&w).unwrap(), c.encode_window(&w).unwrap());
    }

    #[test]
    fn similar_windows_encode_closer_than_distinct_ones() {
        let enc = PackedNgramEncoder::new(test_config(4096, 2)).unwrap();
        let h = enc.encode_window(&sine_window(30, 2, 0.0)).unwrap();
        let h_close = enc.encode_window(&sine_window(30, 2, 0.02)).unwrap();
        let far = Matrix::from_fn(30, 2, |t, s| if (t / 3 + s) % 2 == 0 { 1.0 } else { -1.0 });
        let h_far = enc.encode_window(&far).unwrap();
        let sim_close = h.similarity(&h_close).unwrap();
        let sim_far = h.similarity(&h_far).unwrap();
        assert!(sim_close > sim_far + 0.1, "close={sim_close}, far={sim_far}");
    }

    #[test]
    fn nan_and_constant_windows_encode_finitely() {
        let enc = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let mut w = sine_window(10, 1, 0.0);
        w.set(4, 0, f32::NAN);
        enc.encode_window(&w).unwrap();
        let constant = Matrix::filled(10, 1, 3.5);
        enc.encode_window(&constant).unwrap();
    }

    #[test]
    fn encode_batch_matches_single_and_parallel_agree() {
        let enc = PackedNgramEncoder::new(test_config(256, 2)).unwrap();
        let windows: Vec<Matrix> = (0..9).map(|i| sine_window(15, 2, i as f32 * 0.3)).collect();
        let batch1 = enc.encode_batch(&windows, 1).unwrap();
        let batch4 = enc.encode_batch(&windows, 4).unwrap();
        assert_eq!(batch1, batch4);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(batch1[i], enc.encode_window(w).unwrap());
        }
        assert!(enc.encode_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn encode_batch_reports_bad_windows() {
        let enc = PackedNgramEncoder::new(test_config(128, 2)).unwrap();
        let good = sine_window(15, 2, 0.0);
        let bad = sine_window(15, 3, 0.0);
        assert!(enc.encode_batch(&[good, bad], 2).is_err());
    }

    #[test]
    fn global_range_mode_is_respected() {
        let mut cfg = test_config(512, 1);
        cfg.range = ValueRange::Global(vec![(-1.0, 1.0)]);
        let enc = PackedNgramEncoder::new(cfg).unwrap();
        let small = Matrix::from_fn(12, 1, |t, _| 0.1 * (t as f32 * 0.5).sin());
        let large = Matrix::from_fn(12, 1, |t, _| 0.9 * (t as f32 * 0.5).sin());
        let hs = enc.encode_window(&small).unwrap();
        let hl = enc.encode_window(&large).unwrap();
        assert!(hs.similarity(&hl).unwrap() < 0.995, "amplitude must matter under global range");
    }
}
