//! The bit-packed multi-sensor n-gram encoder.
//!
//! [`PackedNgramEncoder`] mirrors [`smore_hdc::encoder::MultiSensorEncoder`]
//! (paper §3.3, Fig. 3) in the binary domain:
//!
//! 1. **Vector quantisation** looks up a *packed* codeword from a
//!    discretized level grid. The codewords are the sign-packed images of
//!    the dense encoder's own `LevelMemory` codewords (which are bipolar,
//!    so packing is lossless) — the only approximation relative to the
//!    dense encoder is snapping the continuous `α` to the grid.
//! 2. **Temporal n-gram binding** is XOR under bit-rotation
//!    ([`PackedHypervector::rotate_into`]).
//! 3. **Bundling** accumulates integer per-dimension counters — the exact
//!    value the dense encoder accumulates in `f32`, since every product of
//!    bipolar codewords is `±1`.
//! 4. **Spatial integration** multiplies each sensor's counter vector by
//!    its signature sign and sums across sensors — again exactly the dense
//!    arithmetic, in integers.
//!
//! Because the integer accumulator reproduces the dense accumulator
//! exactly (up to `α` discretization), thresholding it at zero yields the
//! *sign of the dense encoding* — which is what every downstream packed
//! similarity needs. [`encode_counts`](PackedNgramEncoder::encode_counts)
//! exposes the raw counters so callers can apply an affine offset (e.g.
//! mean-centring) before thresholding.

use smore_hdc::encoder::{EncoderConfig, MultiSensorEncoder, ValueRange};
use smore_hdc::HdcError;
use smore_tensor::{parallel, Matrix};

use crate::hypervector::PackedHypervector;
use crate::Result;

/// Bit-packed mirror of the dense multi-sensor encoder.
///
/// # Example
///
/// ```
/// use smore_hdc::encoder::EncoderConfig;
/// use smore_packed::PackedNgramEncoder;
/// use smore_tensor::Matrix;
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let cfg = EncoderConfig { dim: 512, sensors: 2, ..EncoderConfig::default() };
/// let encoder = PackedNgramEncoder::new(cfg)?;
/// let window = Matrix::from_fn(16, 2, |t, s| ((t + s) as f32 * 0.4).sin());
/// let hv = encoder.encode_window(&window)?;
/// assert_eq!(hv.dim(), 512);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PackedNgramEncoder {
    config: EncoderConfig,
    /// `[sensor][level]` packed codewords on the discretized `α` grid.
    codebooks: Vec<Vec<PackedHypervector>>,
    /// Packed sensor signatures `G_i`.
    signatures: Vec<PackedHypervector>,
}

impl PackedNgramEncoder {
    /// Builds the packed encoder by constructing (and discarding) the dense
    /// encoder for the same configuration, then packing its codebooks.
    ///
    /// # Errors
    ///
    /// Propagates the dense encoder's configuration validation.
    pub fn new(config: EncoderConfig) -> Result<Self> {
        let dense = MultiSensorEncoder::new(config)?;
        Self::from_dense(&dense)
    }

    /// Packs the codebooks of an existing dense encoder, guaranteeing that
    /// both encoders draw from identical random anchors (and therefore
    /// agree wherever `α` lands exactly on the level grid).
    ///
    /// # Errors
    ///
    /// Propagates codebook access errors (internal wiring only).
    pub fn from_dense(dense: &MultiSensorEncoder) -> Result<Self> {
        let config = dense.config().clone();
        let grid = config.levels.max(2);
        let mut codebooks = Vec::with_capacity(config.sensors);
        for s in 0..config.sensors {
            let memory = dense.level_memory(s)?;
            let levels = (0..grid)
                .map(|l| {
                    let alpha = l as f32 / (grid - 1) as f32;
                    PackedHypervector::from_dense(&memory.encode(alpha))
                })
                .collect();
            codebooks.push(levels);
        }
        let signatures = (0..config.sensors)
            .map(|s| Ok(PackedHypervector::from_dense(dense.signature_memory().signature(s)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self { config, codebooks, signatures })
    }

    /// The encoder configuration (shared with the dense encoder).
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Hyperdimensional dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Number of sensors `m`.
    pub fn sensors(&self) -> usize {
        self.config.sensors
    }

    /// Number of discrete quantisation levels on the packed grid.
    pub fn grid_levels(&self) -> usize {
        self.codebooks.first().map_or(0, Vec::len)
    }

    /// Bytes held by all packed codebooks and signatures.
    pub fn storage_bytes(&self) -> usize {
        self.codebooks
            .iter()
            .flat_map(|levels| levels.iter().map(PackedHypervector::storage_bytes))
            .sum::<usize>()
            + self.signatures.iter().map(PackedHypervector::storage_bytes).sum::<usize>()
    }

    /// Encodes one window into the raw integer accumulator — the packed
    /// mirror of the dense encoder's pre-normalisation sum. `counts[i]`
    /// equals the dense accumulator value at dimension `i` exactly, up to
    /// the `α` grid snap.
    ///
    /// # Errors
    ///
    /// Same conditions as the dense
    /// [`encode_window`](MultiSensorEncoder::encode_window): one column per
    /// sensor, at least `ngram` time steps.
    pub fn encode_counts(&self, window: &Matrix) -> Result<Vec<i32>> {
        let (t_total, cols) = window.shape();
        if cols != self.config.sensors {
            return Err(HdcError::DimensionMismatch {
                expected: self.config.sensors,
                actual: cols,
            });
        }
        let n = self.config.ngram;
        if t_total < n {
            return Err(HdcError::InvalidConfig {
                what: format!("window of {t_total} steps is shorter than the n-gram size {n}"),
            });
        }
        let d = self.config.dim;
        let grid = self.grid_levels();
        let mut acc = vec![0i32; d];
        let mut sensor_counts = vec![0i32; d];
        // Ring buffer of the last n level indices; scratch packed buffers
        // for the n-gram product and the rotated operand.
        let mut ring = vec![0usize; n];
        let mut prod = PackedHypervector::zeros(d);
        let mut rot = PackedHypervector::zeros(d);

        for (s, codebook) in self.codebooks.iter().enumerate() {
            let (lo, hi) = self.sensor_range(window, s);
            let span = hi - lo;
            sensor_counts.iter_mut().for_each(|c| *c = 0);
            for t in 0..t_total {
                let y = window.get(t, s);
                let alpha = if span > 1e-12 { (y - lo) / span } else { 0.5 };
                let alpha = if alpha.is_finite() { alpha.clamp(0.0, 1.0) } else { 0.5 };
                ring[t % n] = ((alpha * (grid - 1) as f32).round() as usize).min(grid - 1);
                if t + 1 >= n {
                    // n-gram ending at step t: element at step t-j gets
                    // rotation j (ρ^j), folded in by XOR binding.
                    prod.words_mut().copy_from_slice(codebook[ring[t % n]].words());
                    for j in 1..n {
                        codebook[ring[(t - j) % n]].rotate_into(j % d.max(1), &mut rot);
                        prod.xor_assign(&rot)?;
                    }
                    // Counter bundling: +1 for a +1 bit, −1 for a −1 bit.
                    accumulate_words(&mut sensor_counts, prod.words(), d);
                }
            }
            // Spatial integration: acc += G_s ∗ counts_s, where binding a
            // signed counter with a ±1 signature is sign multiplication.
            let signature = &self.signatures[s];
            for (w, &word) in signature.words().iter().enumerate() {
                let base = w * crate::hypervector::WORD_BITS;
                let bits = crate::hypervector::WORD_BITS.min(d - base);
                for b in 0..bits {
                    let sign = 1 - 2 * ((word >> b) & 1) as i32;
                    acc[base + b] += sign * sensor_counts[base + b];
                }
            }
        }
        Ok(acc)
    }

    /// Encodes one window into a packed hypervector by majority threshold
    /// (positive accumulator → `+1`, ties → `+1`).
    ///
    /// # Errors
    ///
    /// Same conditions as [`encode_counts`](Self::encode_counts).
    pub fn encode_window(&self, window: &Matrix) -> Result<PackedHypervector> {
        let counts = self.encode_counts(window)?;
        let mut out = PackedHypervector::zeros(self.config.dim);
        for (i, &c) in counts.iter().enumerate() {
            if c < 0 {
                out.set(i, true);
            }
        }
        Ok(out)
    }

    /// Encodes a batch of windows in parallel.
    ///
    /// # Errors
    ///
    /// Propagates the first [`encode_window`](Self::encode_window) error.
    pub fn encode_batch(
        &self,
        windows: &[Matrix],
        threads: usize,
    ) -> Result<Vec<PackedHypervector>> {
        let mut results: Vec<Result<PackedHypervector>> =
            (0..windows.len()).map(|_| Ok(PackedHypervector::zeros(0))).collect();
        parallel::par_map_into(windows, &mut results, threads, |w| self.encode_window(w));
        results.into_iter().collect()
    }

    fn sensor_range(&self, window: &Matrix, sensor: usize) -> (f32, f32) {
        match &self.config.range {
            ValueRange::PerWindow => {
                let mut lo = f32::INFINITY;
                let mut hi = f32::NEG_INFINITY;
                for t in 0..window.rows() {
                    let v = window.get(t, sensor);
                    if v.is_finite() {
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                }
                if !lo.is_finite() || !hi.is_finite() {
                    (0.0, 0.0)
                } else {
                    (lo, hi)
                }
            }
            ValueRange::Global(ranges) => ranges[sensor],
        }
    }
}

/// `counts[i] += ±1` from packed sign bits (bit 1 ⇔ −1), word at a time.
#[inline]
fn accumulate_words(counts: &mut [i32], words: &[u64], dim: usize) {
    for (w, &word) in words.iter().enumerate() {
        let base = w * crate::hypervector::WORD_BITS;
        let bits = crate::hypervector::WORD_BITS.min(dim - base);
        for b in 0..bits {
            counts[base + b] += 1 - 2 * ((word >> b) & 1) as i32;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_hdc::memory::Quantization;

    fn test_config(dim: usize, sensors: usize) -> EncoderConfig {
        EncoderConfig { dim, sensors, ..EncoderConfig::default() }
    }

    fn sine_window(t_total: usize, sensors: usize, phase: f32) -> Matrix {
        Matrix::from_fn(t_total, sensors, |t, s| (t as f32 * 0.37 + s as f32 * 1.3 + phase).sin())
    }

    #[test]
    fn construction_mirrors_dense_validation() {
        assert!(PackedNgramEncoder::new(test_config(0, 1)).is_err());
        assert!(PackedNgramEncoder::new(test_config(64, 0)).is_err());
        let enc = PackedNgramEncoder::new(test_config(256, 2)).unwrap();
        assert_eq!(enc.dim(), 256);
        assert_eq!(enc.sensors(), 2);
        assert_eq!(enc.grid_levels(), enc.config().levels);
        assert!(enc.storage_bytes() > 0);
    }

    #[test]
    fn encode_validates_window_shape() {
        let enc = PackedNgramEncoder::new(test_config(128, 2)).unwrap();
        assert!(enc.encode_window(&sine_window(10, 3, 0.0)).is_err());
        assert!(enc.encode_window(&sine_window(2, 2, 0.0)).is_err());
    }

    #[test]
    fn packed_signs_match_dense_encoding_with_levelflip() {
        // Under LevelFlip quantisation the dense encoder reads the same
        // discrete codewords as the packed one, so the packed counters must
        // reproduce the dense accumulator signs *exactly*.
        let mut cfg = test_config(512, 2);
        cfg.quantization = Quantization::LevelFlip;
        cfg.normalize = false;
        let dense = MultiSensorEncoder::new(cfg).unwrap();
        let packed = PackedNgramEncoder::from_dense(&dense).unwrap();
        let w = sine_window(24, 2, 0.3);
        let dense_hv = dense.encode_window(&w).unwrap();
        let counts = packed.encode_counts(&w).unwrap();
        for (i, (&dv, &c)) in dense_hv.as_slice().iter().zip(&counts).enumerate() {
            assert_eq!(dv, c as f32, "accumulator mismatch at dim {i}");
        }
    }

    #[test]
    fn packed_signs_track_dense_encoding_with_interpolate() {
        // Continuous α snaps to the 64-level grid, so a small fraction of
        // dims may disagree — but the overwhelming majority must match.
        let cfg = test_config(2048, 2);
        let dense = MultiSensorEncoder::new(cfg).unwrap();
        let packed = PackedNgramEncoder::from_dense(&dense).unwrap();
        let w = sine_window(30, 2, 0.0);
        let dense_hv = dense.encode_window(&w).unwrap();
        let packed_hv = packed.encode_window(&w).unwrap();
        let dense_signs = PackedHypervector::from_dense(&dense_hv);
        let agreement = 1.0 - dense_signs.hamming(&packed_hv).unwrap() as f32 / 2048.0;
        assert!(agreement > 0.9, "sign agreement {agreement} too low");
    }

    #[test]
    fn encoding_is_deterministic_and_seed_sensitive() {
        let a = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let b = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let w = sine_window(12, 1, 0.5);
        assert_eq!(a.encode_window(&w).unwrap(), b.encode_window(&w).unwrap());
        let mut cfg = test_config(256, 1);
        cfg.seed = 999;
        let c = PackedNgramEncoder::new(cfg).unwrap();
        assert_ne!(a.encode_window(&w).unwrap(), c.encode_window(&w).unwrap());
    }

    #[test]
    fn similar_windows_encode_closer_than_distinct_ones() {
        let enc = PackedNgramEncoder::new(test_config(4096, 2)).unwrap();
        let h = enc.encode_window(&sine_window(30, 2, 0.0)).unwrap();
        let h_close = enc.encode_window(&sine_window(30, 2, 0.02)).unwrap();
        let far = Matrix::from_fn(30, 2, |t, s| if (t / 3 + s) % 2 == 0 { 1.0 } else { -1.0 });
        let h_far = enc.encode_window(&far).unwrap();
        let sim_close = h.similarity(&h_close).unwrap();
        let sim_far = h.similarity(&h_far).unwrap();
        assert!(sim_close > sim_far + 0.1, "close={sim_close}, far={sim_far}");
    }

    #[test]
    fn nan_and_constant_windows_encode_finitely() {
        let enc = PackedNgramEncoder::new(test_config(256, 1)).unwrap();
        let mut w = sine_window(10, 1, 0.0);
        w.set(4, 0, f32::NAN);
        enc.encode_window(&w).unwrap();
        let constant = Matrix::filled(10, 1, 3.5);
        enc.encode_window(&constant).unwrap();
    }

    #[test]
    fn encode_batch_matches_single_and_parallel_agree() {
        let enc = PackedNgramEncoder::new(test_config(256, 2)).unwrap();
        let windows: Vec<Matrix> = (0..9).map(|i| sine_window(15, 2, i as f32 * 0.3)).collect();
        let batch1 = enc.encode_batch(&windows, 1).unwrap();
        let batch4 = enc.encode_batch(&windows, 4).unwrap();
        assert_eq!(batch1, batch4);
        for (i, w) in windows.iter().enumerate() {
            assert_eq!(batch1[i], enc.encode_window(w).unwrap());
        }
        assert!(enc.encode_batch(&[], 4).unwrap().is_empty());
    }

    #[test]
    fn global_range_mode_is_respected() {
        let mut cfg = test_config(512, 1);
        cfg.range = ValueRange::Global(vec![(-1.0, 1.0)]);
        let enc = PackedNgramEncoder::new(cfg).unwrap();
        let small = Matrix::from_fn(12, 1, |t, _| 0.1 * (t as f32 * 0.5).sin());
        let large = Matrix::from_fn(12, 1, |t, _| 0.9 * (t as f32 * 0.5).sin());
        let hs = enc.encode_window(&small).unwrap();
        let hl = enc.encode_window(&large).unwrap();
        assert!(hs.similarity(&hl).unwrap() < 0.995, "amplitude must matter under global range");
    }
}
