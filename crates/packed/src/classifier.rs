//! The bit-packed HDC classifier: popcount scoring against packed class
//! hypervectors.
//!
//! [`PackedClassifier`] keeps the scoring contract of
//! [`smore_hdc::model::HdcClassifier`] — [`scores`](PackedClassifier::scores)
//! returns one cosine-scale similarity in `[−1, 1]` per class and
//! prediction takes the argmax — but each score is a single XOR+popcount
//! sweep over `d/64` words instead of a `3d`-FLOP cosine. Training stays in
//! the dense domain; a packed classifier is *frozen* from a trained dense
//! model via [`from_dense`](PackedClassifier::from_dense).

use smore_hdc::model::HdcClassifier;
use smore_hdc::HdcError;
use smore_tensor::{parallel, Matrix};

use crate::hypervector::PackedHypervector;
use crate::Result;

/// A frozen binary classifier: one packed hypervector per class.
///
/// # Example
///
/// ```
/// use smore_packed::{PackedClassifier, PackedHypervector};
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let c0 = PackedHypervector::from_signs(&[1.0, 1.0, -1.0, -1.0]);
/// let c1 = PackedHypervector::from_signs(&[-1.0, -1.0, 1.0, 1.0]);
/// let model = PackedClassifier::new(vec![c0.clone(), c1])?;
/// assert_eq!(model.predict_one(&c0)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedClassifier {
    classes: Vec<PackedHypervector>,
    dim: usize,
}

impl PackedClassifier {
    /// Wraps packed class hypervectors (all must agree in dimension).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty class list and
    /// [`HdcError::DimensionMismatch`] for disagreeing dimensions.
    pub fn new(classes: Vec<PackedHypervector>) -> Result<Self> {
        let first = classes.first().ok_or(HdcError::EmptyInput { what: "packed classes" })?;
        let dim = first.dim();
        if dim == 0 {
            return Err(HdcError::InvalidConfig {
                what: "packed classifier dim must be positive".into(),
            });
        }
        if let Some(bad) = classes.iter().find(|c| c.dim() != dim) {
            return Err(HdcError::DimensionMismatch { expected: dim, actual: bad.dim() });
        }
        Ok(Self { classes, dim })
    }

    /// Sign-quantizes every class hypervector of a trained dense model.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for a zero-dimensional model
    /// (unreachable through [`HdcClassifier`]'s own validation).
    pub fn from_dense(model: &HdcClassifier) -> Result<Self> {
        Self::from_rows(model.class_hypervectors())
    }

    /// Sign-quantizes the rows of a `(num_classes, dim)` matrix.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::EmptyInput`] for an empty matrix.
    pub fn from_rows(rows: &Matrix) -> Result<Self> {
        if rows.rows() == 0 {
            return Err(HdcError::EmptyInput { what: "packed classes" });
        }
        Self::new(rows.iter_rows().map(PackedHypervector::from_signs).collect())
    }

    /// Hypervector dimensionality `d`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes `n`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The packed class hypervectors.
    pub fn classes(&self) -> &[PackedHypervector] {
        &self.classes
    }

    /// The packed hypervector of class `c`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::LabelOutOfRange`] for an unknown class.
    pub fn class(&self, c: usize) -> Result<&PackedHypervector> {
        self.classes
            .get(c)
            .ok_or(HdcError::LabelOutOfRange { label: c, num_classes: self.classes.len() })
    }

    /// Bytes held by the packed class hypervectors — `32×` smaller than the
    /// dense `f32` class matrix.
    pub fn storage_bytes(&self) -> usize {
        self.classes.iter().map(PackedHypervector::storage_bytes).sum()
    }

    /// Raw Hamming distances of a query against every class.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a dimension mismatch.
    pub fn hamming_scores(&self, query: &PackedHypervector) -> Result<Vec<usize>> {
        self.classes.iter().map(|c| query.hamming(c)).collect()
    }

    /// Cosine-scale similarity scores `1 − 2h/d` — the same contract as
    /// [`HdcClassifier::scores`].
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a dimension mismatch.
    pub fn scores(&self, query: &PackedHypervector) -> Result<Vec<f32>> {
        let mut out = Vec::with_capacity(self.classes.len());
        self.score_into(query, &mut out)?;
        Ok(out)
    }

    /// [`scores`](Self::scores) into a caller-owned buffer (cleared and
    /// refilled; allocation-free once its capacity covers the class
    /// count) — the serving-loop variant.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a dimension mismatch;
    /// `out` is left cleared or partially filled on error.
    pub fn score_into(&self, query: &PackedHypervector, out: &mut Vec<f32>) -> Result<()> {
        out.clear();
        for c in &self.classes {
            out.push(query.similarity(c)?);
        }
        Ok(())
    }

    /// Predicts the class with the highest similarity (lowest Hamming
    /// distance; ties resolve to the lowest class index). Runs directly on
    /// raw Hamming distances — no score buffer is materialised.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] on a dimension mismatch.
    pub fn predict_one(&self, query: &PackedHypervector) -> Result<usize> {
        let mut best = 0usize;
        let mut best_hamming = usize::MAX;
        for (c, class) in self.classes.iter().enumerate() {
            let h = query.hamming(class)?;
            if h < best_hamming {
                best_hamming = h;
                best = c;
            }
        }
        Ok(best)
    }

    /// Predicts a batch of packed queries in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when any query disagrees in
    /// dimension.
    pub fn predict_batch(
        &self,
        queries: &[PackedHypervector],
        threads: usize,
    ) -> Result<Vec<usize>> {
        let mut out: Vec<Result<usize>> = (0..queries.len()).map(|_| Ok(0)).collect();
        parallel::par_map_into(queries, &mut out, threads, |q| self.predict_one(q));
        out.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::init;

    fn random_packed(seed: u64, dim: usize) -> PackedHypervector {
        PackedHypervector::from_signs(&init::bipolar_vec(&mut init::rng(seed), dim))
    }

    #[test]
    fn validation() {
        assert!(matches!(PackedClassifier::new(vec![]), Err(HdcError::EmptyInput { .. })));
        assert!(PackedClassifier::new(vec![PackedHypervector::zeros(0)]).is_err());
        let a = PackedHypervector::zeros(64);
        let b = PackedHypervector::zeros(128);
        assert!(PackedClassifier::new(vec![a, b]).is_err());
        assert!(PackedClassifier::from_rows(&Matrix::zeros(0, 8)).is_err());
    }

    #[test]
    fn predicts_nearest_class() {
        let protos: Vec<PackedHypervector> = (0..4).map(|c| random_packed(c, 2048)).collect();
        let model = PackedClassifier::new(protos.clone()).unwrap();
        assert_eq!(model.num_classes(), 4);
        assert_eq!(model.dim(), 2048);
        for (c, p) in protos.iter().enumerate() {
            assert_eq!(model.predict_one(p).unwrap(), c);
            let scores = model.scores(p).unwrap();
            assert_eq!(scores[c], 1.0);
            assert_eq!(model.hamming_scores(p).unwrap()[c], 0);
        }
        assert_eq!(model.class(0).unwrap(), &protos[0]);
        assert!(model.class(9).is_err());
        assert_eq!(model.storage_bytes(), 4 * 2048 / 8);
    }

    #[test]
    fn from_dense_agrees_with_dense_on_bipolar_data() {
        // On bipolar inputs sign quantization is lossless, so packed and
        // dense scoring must pick identical classes.
        let mut rng = init::rng(7);
        let class_hvs = init::bipolar_matrix(&mut rng, 3, 1024);
        let dense = HdcClassifier::from_class_hypervectors(class_hvs.clone()).unwrap();
        let packed = PackedClassifier::from_dense(&dense).unwrap();
        for i in 0..30 {
            let q = init::bipolar_vec(&mut rng, 1024);
            let dense_pred = dense.predict_one(&q).unwrap();
            let packed_pred = packed.predict_one(&PackedHypervector::from_signs(&q)).unwrap();
            assert_eq!(dense_pred, packed_pred, "query {i}");
        }
    }

    #[test]
    fn packed_scores_match_dense_cosine_on_bipolar_data() {
        let mut rng = init::rng(8);
        let class_hvs = init::bipolar_matrix(&mut rng, 2, 512);
        let dense = HdcClassifier::from_class_hypervectors(class_hvs.clone()).unwrap();
        let packed = PackedClassifier::from_dense(&dense).unwrap();
        let q = init::bipolar_vec(&mut rng, 512);
        let ds = dense.scores(&q).unwrap();
        let ps = packed.scores(&PackedHypervector::from_signs(&q)).unwrap();
        for (d, p) in ds.iter().zip(&ps) {
            assert!((d - p).abs() < 1e-5, "dense {d} vs packed {p}");
        }
    }

    #[test]
    fn score_into_reuses_the_buffer_and_matches_scores() {
        let model = PackedClassifier::new((0..5).map(|c| random_packed(c, 512)).collect()).unwrap();
        let mut buf = Vec::new();
        for seed in 20..24 {
            let q = random_packed(seed, 512);
            model.score_into(&q, &mut buf).unwrap();
            assert_eq!(buf, model.scores(&q).unwrap(), "seed {seed}");
            assert_eq!(buf.len(), 5);
        }
        // Mismatched query reports the error through the `_into` path too.
        assert!(model.score_into(&random_packed(9, 64), &mut buf).is_err());
    }

    #[test]
    fn predict_batch_matches_predict_one() {
        let model = PackedClassifier::new((0..3).map(|c| random_packed(c, 256)).collect()).unwrap();
        let queries: Vec<PackedHypervector> =
            (10..25).map(|seed| random_packed(seed, 256)).collect();
        let batch = model.predict_batch(&queries, 4).unwrap();
        for (i, q) in queries.iter().enumerate() {
            assert_eq!(batch[i], model.predict_one(q).unwrap());
        }
        assert!(model.predict_batch(&[], 2).unwrap().is_empty());
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let model = PackedClassifier::new(vec![random_packed(1, 64)]).unwrap();
        let q = random_packed(2, 128);
        assert!(model.scores(&q).is_err());
        assert!(model.predict_one(&q).is_err());
        assert!(model.predict_batch(&[q], 2).is_err());
    }
}
