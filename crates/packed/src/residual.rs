//! Residual multi-plane binarization: dense vectors as a few scaled sign
//! planes.
//!
//! One sign bit per dimension keeps a hypervector's *direction* but
//! discards every per-dimension magnitude. For class prototypes — bundles
//! of thousands of samples whose per-dimension magnitudes carry the vote
//! margins — that costs real accuracy. [`ResidualPacked`] closes most of
//! the gap while staying inside the packed op vocabulary: a vector is
//! approximated greedily as
//!
//! ```text
//! v ≈ Σ_b α_b · sign(r_b),   r_1 = v,  r_{b+1} = r_b − α_b·sign(r_b),
//! α_b = mean(|r_b|)
//! ```
//!
//! (the XNOR-Net scaling-factor construction, iterated on the residual).
//! Every dot product against a packed query then expands into `B` popcount
//! dots: `dot(q, v) ≈ Σ_b α_b · dot(q, sign(r_b))` — still word-level
//! logic, at `B×` the cost of a single plane. Two or three planes recover
//! most of the magnitude information at 2–3 bits per dimension (vs 32 for
//! `f32`).

use smore_hdc::{HdcError, Hypervector};

use crate::hypervector::PackedHypervector;
use crate::Result;

/// A dense vector approximated by scaled packed sign planes.
///
/// # Example
///
/// ```
/// use smore_packed::{PackedHypervector, ResidualPacked};
///
/// # fn main() -> Result<(), smore_hdc::HdcError> {
/// let v = vec![0.9f32, -0.1, 2.0, -1.5];
/// let packed = ResidualPacked::from_dense(&v, 3)?;
/// let q = PackedHypervector::from_signs(&[1.0, 1.0, 1.0, -1.0]);
/// // dot(q, v) = 0.9 − 0.1 + 2.0 + 1.5 = 4.3; three planes get close.
/// let exact = 4.3f32;
/// assert!((packed.dot_packed(&q)? - exact).abs() < 1.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualPacked {
    /// `(scale α_b, sign plane)` pairs, in construction order.
    planes: Vec<(f32, PackedHypervector)>,
    dim: usize,
}

impl ResidualPacked {
    /// Greedily binarizes `values` into `planes` scaled sign planes.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when `planes` is zero or
    /// `values` is empty.
    pub fn from_dense(values: &[f32], planes: usize) -> Result<Self> {
        if planes == 0 {
            return Err(HdcError::InvalidConfig {
                what: "residual binarization needs at least one plane".into(),
            });
        }
        if values.is_empty() {
            return Err(HdcError::InvalidConfig { what: "cannot binarize an empty vector".into() });
        }
        let dim = values.len();
        let mut residual: Vec<f32> =
            values.iter().map(|&v| if v.is_finite() { v } else { 0.0 }).collect();
        let mut out = Vec::with_capacity(planes);
        for _ in 0..planes {
            let alpha = residual.iter().map(|&r| r.abs() as f64).sum::<f64>() as f32 / dim as f32;
            if alpha <= 0.0 {
                break; // perfectly represented; further planes add nothing
            }
            let signs = PackedHypervector::from_signs(&residual);
            for (r, s) in residual.iter_mut().zip(0..dim) {
                *r -= if signs.get(s) { -alpha } else { alpha };
            }
            out.push((alpha, signs));
        }
        if out.is_empty() {
            // All-zero input: one zero-scale plane keeps the shape valid.
            out.push((0.0, PackedHypervector::zeros(dim)));
        }
        Ok(Self { planes: out, dim })
    }

    /// Reassembles a residual-binarized vector from its `(scale, sign
    /// plane)` pairs — the artifact-load path, the inverse of
    /// [`planes`](Self::planes).
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] for an empty plane list,
    /// zero-dimensional or mismatched planes, or a non-finite scale.
    pub fn from_planes(planes: Vec<(f32, PackedHypervector)>) -> Result<Self> {
        let Some((_, first)) = planes.first() else {
            return Err(HdcError::InvalidConfig {
                what: "residual vector needs at least one plane".into(),
            });
        };
        let dim = first.dim();
        if dim == 0 {
            return Err(HdcError::InvalidConfig {
                what: "residual planes must be non-empty".into(),
            });
        }
        if let Some((alpha, plane)) =
            planes.iter().find(|(alpha, plane)| plane.dim() != dim || !alpha.is_finite())
        {
            return Err(HdcError::InvalidConfig {
                what: format!(
                    "invalid residual plane: scale {alpha}, dim {} (expected {dim})",
                    plane.dim()
                ),
            });
        }
        Ok(Self { planes, dim })
    }

    /// Dimensionality of the approximated vector.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sign planes actually stored.
    pub fn num_planes(&self) -> usize {
        self.planes.len()
    }

    /// The `(scale, sign plane)` pairs.
    pub fn planes(&self) -> &[(f32, PackedHypervector)] {
        &self.planes
    }

    /// Bytes of packed storage (sign planes + scales).
    pub fn storage_bytes(&self) -> usize {
        self.planes.iter().map(|(_, p)| p.storage_bytes() + std::mem::size_of::<f32>()).sum()
    }

    /// Approximate dot product with a packed sign query:
    /// `Σ_b α_b · (d − 2·hamming(q, plane_b))` — `B` popcount sweeps.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn dot_packed(&self, query: &PackedHypervector) -> Result<f32> {
        let mut acc = 0.0f32;
        for (alpha, plane) in &self.planes {
            acc += alpha * query.dot(plane)? as f32;
        }
        Ok(acc)
    }

    /// Approximate dot product with another residual-packed vector:
    /// `Σ_{a,b} α_a β_b · dot(plane_a, plane_b)`.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] when dimensions differ.
    pub fn dot(&self, other: &Self) -> Result<f32> {
        let mut acc = 0.0f32;
        for (alpha, pa) in &self.planes {
            for (beta, pb) in &other.planes {
                acc += alpha * beta * pa.dot(pb)? as f32;
            }
        }
        Ok(acc)
    }

    /// Norm of the approximation `√(dot(self, self))`.
    pub fn norm(&self) -> f32 {
        // smore-lint: allow(panic_path) dot() only errors on a dim mismatch; self vs. self cannot mismatch
        self.dot(self).expect("self-dot never mismatches").max(0.0).sqrt()
    }

    /// Reconstructs the dense approximation `Σ_b α_b · sign(r_b)`.
    pub fn to_dense(&self) -> Hypervector {
        let mut out = vec![0.0f32; self.dim];
        for &(alpha, ref plane) in &self.planes {
            for (i, o) in out.iter_mut().enumerate() {
                *o += if plane.get(i) { -alpha } else { alpha };
            }
        }
        Hypervector::from_vec(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::{init, vecops};

    #[test]
    fn validation() {
        assert!(ResidualPacked::from_dense(&[1.0], 0).is_err());
        assert!(ResidualPacked::from_dense(&[], 2).is_err());
    }

    #[test]
    fn single_plane_matches_sign_packing() {
        let v = init::normal_vec(&mut init::rng(1), 256);
        let r = ResidualPacked::from_dense(&v, 1).unwrap();
        assert_eq!(r.num_planes(), 1);
        let q = PackedHypervector::from_signs(&init::bipolar_vec(&mut init::rng(2), 256));
        let plane = &r.planes()[0];
        let expected = plane.0 * q.dot(&plane.1).unwrap() as f32;
        assert!((r.dot_packed(&q).unwrap() - expected).abs() < 1e-4);
        // The sign plane is exactly the sign packing of v.
        assert_eq!(plane.1, PackedHypervector::from_signs(&v));
    }

    #[test]
    fn more_planes_reduce_reconstruction_error() {
        let v = init::normal_vec(&mut init::rng(3), 1024);
        let err = |planes: usize| {
            let r = ResidualPacked::from_dense(&v, planes).unwrap();
            let approx = r.to_dense();
            let diff: Vec<f32> = v.iter().zip(approx.as_slice()).map(|(a, b)| a - b).collect();
            vecops::norm(&diff)
        };
        let e1 = err(1);
        let e2 = err(2);
        let e3 = err(3);
        assert!(e2 < e1, "two planes must beat one: {e2} vs {e1}");
        assert!(e3 < e2, "three planes must beat two: {e3} vs {e2}");
    }

    #[test]
    fn dot_tracks_dense_dot() {
        let v = init::normal_vec(&mut init::rng(4), 2048);
        let qs = init::bipolar_vec(&mut init::rng(5), 2048);
        let q = PackedHypervector::from_signs(&qs);
        let exact = vecops::dot(&v, &qs);
        let coarse = ResidualPacked::from_dense(&v, 1).unwrap().dot_packed(&q).unwrap();
        let fine = ResidualPacked::from_dense(&v, 3).unwrap().dot_packed(&q).unwrap();
        assert!(
            (fine - exact).abs() <= (coarse - exact).abs() + 1e-3,
            "3 planes ({fine}) should track the exact dot ({exact}) at least as well as 1 ({coarse})"
        );
    }

    #[test]
    fn residual_dot_between_vectors_tracks_dense() {
        let a = init::normal_vec(&mut init::rng(6), 2048);
        let b = init::normal_vec(&mut init::rng(7), 2048);
        let ra = ResidualPacked::from_dense(&a, 3).unwrap();
        let rb = ResidualPacked::from_dense(&b, 3).unwrap();
        let exact = vecops::dot(&a, &b);
        let approx = ra.dot(&rb).unwrap();
        // On the cosine scale the approximation error must stay small.
        let scale = vecops::norm(&a) * vecops::norm(&b);
        assert!(
            ((approx - exact) / scale).abs() < 0.1,
            "cosine-scale error {} too large",
            ((approx - exact) / scale).abs()
        );
        // Norms track closely.
        assert!((ra.norm() - vecops::norm(&a)).abs() < 0.1 * vecops::norm(&a));
    }

    #[test]
    fn zero_and_nonfinite_inputs_are_safe() {
        let r = ResidualPacked::from_dense(&[0.0; 16], 3).unwrap();
        assert_eq!(r.num_planes(), 1);
        assert_eq!(r.norm(), 0.0);
        let v = [f32::NAN, 1.0, f32::INFINITY, -2.0];
        let r = ResidualPacked::from_dense(&v, 2).unwrap();
        assert!(r.to_dense().is_finite());
    }

    #[test]
    fn storage_is_a_few_bits_per_dimension() {
        let v = init::normal_vec(&mut init::rng(8), 1024);
        let r = ResidualPacked::from_dense(&v, 2).unwrap();
        // 2 planes × 128 bytes + 2 scales ≪ 4096 bytes dense.
        assert!(r.storage_bytes() < 300);
        assert_eq!(r.dim(), 1024);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let r = ResidualPacked::from_dense(&[1.0; 64], 2).unwrap();
        let q = PackedHypervector::zeros(128);
        assert!(r.dot_packed(&q).is_err());
        let other = ResidualPacked::from_dense(&[1.0; 128], 2).unwrap();
        assert!(r.dot(&other).is_err());
    }
}
