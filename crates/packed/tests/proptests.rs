//! Property-based tests for the bit-packed binary backend: round-trip sign
//! agreement, XOR-bind reversibility, rotation/permutation equivalence with
//! the dense substrate, and dense-vs-packed classifier agreement.

use proptest::prelude::*;
use smore_hdc::encoder::EncoderConfig;
use smore_hdc::model::HdcClassifier;
use smore_hdc::Hypervector;
use smore_packed::{
    EncoderScratch, PackedAccumulator, PackedClassifier, PackedHypervector, PackedNgramEncoder,
};
use smore_tensor::{init, Matrix};

fn bipolar_hv(seed: u64, dim: usize) -> Vec<f32> {
    init::bipolar_vec(&mut init::rng(seed), dim)
}

proptest! {
    #[test]
    fn round_trip_preserves_signs(seed in any::<u64>(), dim in 1usize..400) {
        // Dense → packed → dense must agree with the sign of every
        // component (zero / non-finite map to the +1 side by convention).
        let dense = init::normal_vec(&mut init::rng(seed), dim);
        let packed = PackedHypervector::from_dense(&Hypervector::from_slice(&dense));
        let back = packed.to_dense();
        for (&v, &b) in dense.iter().zip(back.as_slice()) {
            let expected = if v < 0.0 { -1.0 } else { 1.0 };
            prop_assert_eq!(b, expected);
        }
    }

    #[test]
    fn bipolar_round_trip_is_lossless(seed in any::<u64>(), dim in 1usize..300) {
        let dense = bipolar_hv(seed, dim);
        let packed = PackedHypervector::from_signs(&dense);
        let back = packed.to_dense();
        prop_assert_eq!(back.as_slice(), dense.as_slice());
    }

    #[test]
    fn xor_bind_is_reversible(sa in any::<u64>(), sb in any::<u64>(), dim in 1usize..300) {
        let a = PackedHypervector::from_signs(&bipolar_hv(sa, dim));
        let b = PackedHypervector::from_signs(&bipolar_hv(sb, dim));
        let bound = a.xor(&b).unwrap();
        // XOR binding is its own inverse, exactly — no tolerance needed.
        prop_assert_eq!(&bound.xor(&a).unwrap(), &b);
        prop_assert_eq!(&bound.xor(&b).unwrap(), &a);
        // And commutative.
        prop_assert_eq!(bound, b.xor(&a).unwrap());
    }

    #[test]
    fn xor_bind_matches_dense_multiplication(sa in any::<u64>(), sb in any::<u64>()) {
        // bit 1 ⇔ −1 makes XOR the parity of negative factors — exactly
        // element-wise sign multiplication in the dense domain.
        let dim = 192;
        let da = Hypervector::from_vec(bipolar_hv(sa, dim));
        let db = Hypervector::from_vec(bipolar_hv(sb, dim));
        let dense_bound = da.bind(&db).unwrap();
        let packed_bound =
            PackedHypervector::from_dense(&da).xor(&PackedHypervector::from_dense(&db)).unwrap();
        prop_assert_eq!(packed_bound.to_dense(), dense_bound);
    }

    #[test]
    fn rotation_matches_dense_permute(seed in any::<u64>(), dim in 1usize..200, k in 0usize..500) {
        let dense = Hypervector::from_vec(bipolar_hv(seed, dim));
        let packed = PackedHypervector::from_dense(&dense);
        prop_assert_eq!(packed.rotate(k), PackedHypervector::from_dense(&dense.permute(k)));
        prop_assert_eq!(packed.rotate(k).unrotate(k), packed);
    }

    #[test]
    fn similarity_is_exact_cosine_of_signs(sa in any::<u64>(), sb in any::<u64>()) {
        let dim = 1024;
        let a = PackedHypervector::from_signs(&bipolar_hv(sa, dim));
        let b = PackedHypervector::from_signs(&bipolar_hv(sb, dim));
        let packed_sim = a.similarity(&b).unwrap();
        let dense_sim = a.to_dense().cosine(&b.to_dense()).unwrap();
        prop_assert!((packed_sim - dense_sim).abs() < 1e-5);
        prop_assert!((-1.0..=1.0).contains(&packed_sim));
    }

    #[test]
    fn majority_bundle_stays_similar_to_members(seeds in prop::collection::vec(any::<u64>(), 3..8)) {
        let dim = 2048;
        let members: Vec<PackedHypervector> =
            seeds.iter().map(|&s| PackedHypervector::from_signs(&bipolar_hv(s, dim))).collect();
        let mut acc = PackedAccumulator::new(dim);
        for m in &members {
            acc.accumulate(m).unwrap();
        }
        let bundle = acc.finish();
        for m in &members {
            // Membership property of bundling (§3.1), binary edition.
            prop_assert!(bundle.similarity(m).unwrap() > 0.1);
        }
    }

    #[test]
    fn dense_and_packed_classifiers_agree_on_bipolar_data(seed in any::<u64>()) {
        // Exactly bipolar class hypervectors and queries: sign quantization
        // is lossless, so dense cosine and packed popcount scoring must
        // agree on (nearly) every argmax — the ≥95% contract with margin.
        let dim = 1024;
        let classes = 4;
        let mut rng = init::rng(seed);
        let class_hvs = init::bipolar_matrix(&mut rng, classes, dim);
        let dense = HdcClassifier::from_class_hypervectors(class_hvs).unwrap();
        let packed = PackedClassifier::from_dense(&dense).unwrap();
        let queries = 40;
        let mut agree = 0usize;
        for _ in 0..queries {
            let q = init::bipolar_vec(&mut rng, dim);
            let dp = dense.predict_one(&q).unwrap();
            let pp = packed.predict_one(&PackedHypervector::from_signs(&q)).unwrap();
            if dp == pp {
                agree += 1;
            }
        }
        prop_assert!(
            agree as f32 / queries as f32 >= 0.95,
            "agreement {}/{} below 95%", agree, queries
        );
    }

    #[test]
    fn dense_and_packed_classifiers_agree_on_trained_prototypes(seed in any::<u64>()) {
        // Non-bipolar dense class hypervectors (bundles of noisy samples,
        // as training produces) still quantize into agreeing classifiers on
        // random bipolar probes near the prototypes.
        let dim = 1024;
        let classes = 3;
        let mut rng = init::rng(seed);
        let protos = init::bipolar_matrix(&mut rng, classes, dim);
        // Class hypervectors = prototype + Gaussian perturbation (what
        // adaptive bundling leaves behind).
        let mut class_hvs = Matrix::zeros(classes, dim);
        for c in 0..classes {
            let noise = init::normal_vec(&mut rng, dim);
            for (j, &e) in noise.iter().enumerate() {
                class_hvs.set(c, j, 3.0 * protos.get(c, j) + e);
            }
        }
        let dense = HdcClassifier::from_class_hypervectors(class_hvs).unwrap();
        let packed = PackedClassifier::from_dense(&dense).unwrap();
        let queries = 40;
        let mut agree = 0usize;
        for i in 0..queries {
            // Probes: noisy copies of a prototype, cycling classes.
            let c = i % classes;
            let noise = init::normal_vec(&mut rng, dim);
            let q: Vec<f32> =
                (0..dim).map(|j| protos.get(c, j) + 0.8 * noise[j]).collect();
            let dp = dense.predict_one(&q).unwrap();
            let pp = packed.predict_one(&PackedHypervector::from_signs(&q)).unwrap();
            if dp == pp {
                agree += 1;
            }
        }
        prop_assert!(
            agree as f32 / queries as f32 >= 0.95,
            "agreement {}/{} below 95%", agree, queries
        );
    }

    #[test]
    fn sliding_swar_encode_is_bit_exact_to_reference(
        seed in any::<u64>(),
        dim in 1usize..200,
        sensors in 1usize..4,
        ngram in 1usize..=6,
        extra in 0usize..16,
    ) {
        // The incremental sliding-bind + SWAR-bundled serving path must
        // reproduce the retained recompute path counter for counter —
        // ragged (non-multiple-of-64) dims and every n-gram size included.
        let cfg = EncoderConfig { dim, sensors, ngram, ..EncoderConfig::default() };
        let enc = PackedNgramEncoder::new(cfg).unwrap();
        let t_total = ngram + extra;
        let mut rng = init::rng(seed);
        let data = init::normal_vec(&mut rng, t_total * sensors);
        let w = Matrix::from_vec(t_total, sensors, data).unwrap();
        prop_assert_eq!(
            enc.encode_counts(&w).unwrap(),
            enc.encode_counts_reference(&w).unwrap()
        );
    }

    #[test]
    fn sliding_swar_encode_matches_reference_on_degenerate_windows(
        seed in any::<u64>(),
        dim in 1usize..150,
        ngram in 1usize..=4,
    ) {
        let cfg = EncoderConfig { dim, sensors: 2, ngram, ..EncoderConfig::default() };
        let enc = PackedNgramEncoder::new(cfg).unwrap();
        let t_total = ngram + 9;

        // Constant windows (zero span → mid-grid codeword everywhere).
        let constant = Matrix::filled(t_total, 2, 2.5);
        prop_assert_eq!(
            enc.encode_counts(&constant).unwrap(),
            enc.encode_counts_reference(&constant).unwrap()
        );

        // NaN-poisoned windows (non-finite samples snap mid-grid).
        let mut rng = init::rng(seed);
        let data = init::normal_vec(&mut rng, t_total * 2);
        let mut w = Matrix::from_vec(t_total, 2, data).unwrap();
        w.set((seed as usize) % t_total, (seed as usize) % 2, f32::NAN);
        w.set((seed as usize / 7) % t_total, (seed as usize / 3) % 2, f32::INFINITY);
        prop_assert_eq!(
            enc.encode_counts(&w).unwrap(),
            enc.encode_counts_reference(&w).unwrap()
        );
    }

    #[test]
    fn scratch_encode_window_matches_allocating_encode(
        seed in any::<u64>(),
        dim in 1usize..300,
    ) {
        // encode_window_into through a reused scratch ≡ fresh encode_window.
        let cfg = EncoderConfig { dim, sensors: 2, ..EncoderConfig::default() };
        let enc = PackedNgramEncoder::new(cfg).unwrap();
        let mut scratch = EncoderScratch::new();
        let mut out = PackedHypervector::zeros(dim);
        let mut rng = init::rng(seed);
        for _ in 0..3 {
            let data = init::normal_vec(&mut rng, 24);
            let w = Matrix::from_vec(12, 2, data).unwrap();
            enc.encode_window_into(&w, &mut scratch, &mut out).unwrap();
            prop_assert_eq!(&out, &enc.encode_window(&w).unwrap());
        }
    }
}
