//! The streaming adaptation session.

use std::sync::Arc;
use std::time::Instant;

use smore::{Prediction, QuantizedSmore, ServeScratch, Smore, SmoreError};
use smore_obs::{Event, EventJournal, EventKind};
use smore_tensor::Matrix;

use crate::adapt::{AdaptationState, EnrollmentPlan};
use crate::engine::seconds_to_nanos;
use crate::snapshot::SnapshotHandle;
use crate::Result;

/// Where enrolment labels come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LabelStrategy {
    /// Self-labelling: train on the serving ensemble's own predictions at
    /// ingest time (§3.6's test-time ensemble as the labeller). Fully
    /// unsupervised — the honest streaming default.
    #[default]
    SelfLabel,
    /// Delayed ground truth: use true labels supplied through
    /// [`StreamingSmore::ingest_labelled`] when available (user
    /// confirmation, annotation backfill), falling back to the self-label
    /// for unlabelled queries.
    Oracle,
}

/// Configuration of a [`StreamingSmore`] session.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamingConfig {
    /// Capacity of the OOD ring buffer (oldest evicted first).
    pub buffer_capacity: usize,
    /// Sliding-window length of the drift detector.
    pub drift_window: usize,
    /// OOD fraction within the window at which drift fires.
    pub drift_threshold: f32,
    /// Minimum buffered OOD queries before enrolment may run.
    pub min_enroll: usize,
    /// Detector observations suppressed after each enrolment, so the
    /// detector re-arms on the post-swap distribution.
    pub cooldown: usize,
    /// Upper bound on *online-enrolled* domains (guards unbounded model
    /// growth under adversarial streams); further drift is still detected
    /// and counted but no longer enrols.
    pub max_enrolled_domains: usize,
    /// Where enrolment labels come from.
    pub label_strategy: LabelStrategy,
    /// Recency horizon (in stream steps) for enrolment: when drift fires
    /// at step `t`, only buffered queries with `step > t − enroll_horizon`
    /// are enrolled (and counted toward [`min_enroll`](Self::min_enroll));
    /// older entries are the low-`δ` tail of ordinary in-distribution
    /// traffic, and training on them would duplicate existing domains
    /// rather than capture the drift. Must be at least
    /// [`drift_window`](Self::drift_window) so the evidence that fired the
    /// detector is always enrollable.
    pub enroll_horizon: usize,
    /// Similarity threshold for *drift* purposes: a query with
    /// `δ_max < drift_delta` counts toward the drift mass and enters the
    /// enrolment buffer. `None` reuses the model's serving `δ*`. Set it
    /// explicitly — or better, through
    /// [`StreamingSmore::calibrate_drift_delta`] — when the serving
    /// threshold is tuned for accuracy rather than drift sensitivity.
    pub drift_delta: Option<f32>,
}

impl Default for StreamingConfig {
    /// Buffer 256, drift window 48 at 70% OOD mass, ≥ 32 queries to enrol,
    /// cooldown one window, a 192-step enrolment horizon, at most 8 online
    /// domains, self-labelling.
    fn default() -> Self {
        Self {
            buffer_capacity: 256,
            drift_window: 48,
            drift_threshold: 0.7,
            min_enroll: 32,
            cooldown: 48,
            max_enrolled_domains: 8,
            label_strategy: LabelStrategy::SelfLabel,
            enroll_horizon: 192,
            drift_delta: None,
        }
    }
}

impl StreamingConfig {
    pub(crate) fn validate(&self) -> Result<()> {
        if self.buffer_capacity == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "buffer_capacity must be positive".into(),
            });
        }
        if self.drift_window == 0 {
            return Err(SmoreError::InvalidConfig { what: "drift_window must be positive".into() });
        }
        if !(self.drift_threshold > 0.0 && self.drift_threshold <= 1.0) {
            return Err(SmoreError::InvalidConfig {
                what: format!("drift_threshold must be in (0, 1], got {}", self.drift_threshold),
            });
        }
        if self.min_enroll == 0 {
            return Err(SmoreError::InvalidConfig { what: "min_enroll must be positive".into() });
        }
        if self.min_enroll > self.buffer_capacity {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "min_enroll ({}) exceeds buffer_capacity ({})",
                    self.min_enroll, self.buffer_capacity
                ),
            });
        }
        if self.enroll_horizon < self.drift_window {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "enroll_horizon ({}) must cover drift_window ({})",
                    self.enroll_horizon, self.drift_window
                ),
            });
        }
        if let Some(d) = self.drift_delta {
            if !d.is_finite() || !(-1.0..=1.0).contains(&d) {
                return Err(SmoreError::InvalidConfig {
                    what: format!("drift_delta must be a cosine value in [-1, 1], got {d}"),
                });
            }
        }
        Ok(())
    }
}

/// Record of one online enrolment (drift fired → domain added → snapshot
/// swapped).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptationEvent {
    /// External tag assigned to the enrolled domain.
    pub tag: usize,
    /// Stream step at which drift fired.
    pub step: usize,
    /// Number of buffered windows the domain was enrolled from.
    pub enrolled_windows: usize,
    /// Of those, how many carried ground-truth labels (Oracle strategy).
    pub oracle_labelled: usize,
    /// Wall-clock seconds for dense enrolment (encode + descriptor +
    /// adaptive training).
    pub enroll_seconds: f64,
    /// Wall-clock seconds to append to the quantized snapshot and publish
    /// the swap.
    pub swap_seconds: f64,
}

/// Outcome of ingesting one window.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamOutcome {
    /// The serving snapshot's prediction (always produced, even when the
    /// query is OOD — breadth beats purity, §3.6).
    pub prediction: Prediction,
    /// Whether the query was added to the OOD enrolment buffer.
    pub buffered: bool,
    /// The enrolment this query triggered, if drift fired on it.
    pub adapted: Option<AdaptationEvent>,
}

/// A streaming adaptation session around a fitted [`Smore`] model.
///
/// See the [crate docs](crate) for the full lifecycle. The session owns
/// the dense model (adaptation state) and a [`SnapshotHandle`] to the
/// quantized serving model; [`serving_handle`](Self::serving_handle)
/// clones can serve from other threads while the session adapts.
#[derive(Debug)]
pub struct StreamingSmore {
    dense: Smore,
    handle: SnapshotHandle,
    /// Per-session serving scratch: the ingest hot loop encodes and scores
    /// through it, so steady-state serving performs no heap allocation.
    scratch: ServeScratch,
    /// The shared drift state machine (buffer, detector, step/event
    /// bookkeeping) — the same one `TenantSession` drives.
    state: AdaptationState,
    /// Attached adaptation journal (`None` = telemetry off). Single-stream
    /// sessions record under tenant id 0.
    journal: Option<Arc<EventJournal>>,
}

impl StreamingSmore {
    /// Wraps a fitted model: quantizes the initial serving snapshot and
    /// arms the drift detector.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] when `model` has not been fitted.
    /// - [`SmoreError::InvalidConfig`] for invalid streaming parameters.
    pub fn new(model: Smore, config: StreamingConfig) -> Result<Self> {
        config.validate()?;
        let snapshot = model.quantize()?;
        let next_tag = model.domain_tags()?.iter().copied().max().unwrap_or(0) + 1;
        let drift_delta = config.drift_delta.unwrap_or(model.config().delta_star);
        Ok(Self {
            handle: SnapshotHandle::new(snapshot),
            scratch: ServeScratch::new(),
            state: AdaptationState::new(config, drift_delta, next_tag),
            dense: model,
            journal: None,
        })
    }

    /// Attaches an adaptation journal; the session records its lifecycle
    /// (OOD windows, drift firings, enrolments, snapshot swaps) into it
    /// under tenant id 0.
    pub fn attach_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// Records one lifecycle event.
    fn emit(&self, kind: EventKind, step: usize, a: u64, b: u64, nanos: u64) {
        if let Some(journal) = &self.journal {
            journal.push(Event { kind, tenant: 0, step: step as u64, a, b, nanos });
        }
    }

    /// Calibrates the drift threshold from known in-distribution traffic
    /// (typically held-back training windows): `drift_delta` becomes the
    /// `quantile` of their served `δ_max` distribution, so roughly
    /// `quantile` of in-distribution traffic counts toward drift mass
    /// while genuinely drifted traffic — whose `δ_max` distribution sits
    /// lower — accumulates mass far faster. Returns the calibrated value.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for an empty calibration set
    /// or a quantile outside `(0, 1)`; propagates encoder errors.
    pub fn calibrate_drift_delta(&mut self, windows: &[Matrix], quantile: f32) -> Result<f32> {
        let snapshot = self.handle.load();
        let delta = crate::engine::drift_delta_quantile(&snapshot, windows, quantile)?;
        self.state.set_drift_delta(delta);
        Ok(delta)
    }

    /// The similarity threshold currently used for drift mass and
    /// buffering (serving `δ*` unless configured or calibrated).
    pub fn drift_delta(&self) -> f32 {
        self.state.drift_delta()
    }

    /// The session configuration.
    pub fn config(&self) -> &StreamingConfig {
        self.state.config()
    }

    /// The dense (adaptation) model.
    pub fn dense(&self) -> &Smore {
        &self.dense
    }

    /// The current quantized serving snapshot.
    pub fn snapshot(&self) -> Arc<QuantizedSmore> {
        self.handle.load()
    }

    /// A cloneable handle serving threads can hold: every
    /// [`SnapshotHandle::load`] observes the latest hot-swap without ever
    /// blocking on adaptation.
    pub fn serving_handle(&self) -> SnapshotHandle {
        self.handle.clone()
    }

    /// Enrolments performed so far, in stream order.
    pub fn events(&self) -> &[AdaptationEvent] {
        self.state.events()
    }

    /// Number of queries currently buffered for enrolment.
    pub fn buffered(&self) -> usize {
        self.state.buffered()
    }

    /// OOD fraction over the detector's current sliding window.
    pub fn recent_ood_fraction(&self) -> f32 {
        self.state.ood_fraction()
    }

    /// Total windows ingested.
    pub fn steps(&self) -> usize {
        self.state.steps()
    }

    /// Ingests one unlabelled window: serve, buffer if OOD, adapt if drift
    /// fires.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows and enrolment
    /// errors; a failed ingest does not corrupt the session.
    pub fn ingest(&mut self, window: &Matrix) -> Result<StreamOutcome> {
        self.observe(window, None)
    }

    /// Ingests one window with (possibly delayed) ground truth — the
    /// [`LabelStrategy::Oracle`] path. Under
    /// [`LabelStrategy::SelfLabel`] the label is recorded but ignored at
    /// enrolment time.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::InvalidConfig`] for an out-of-range label.
    /// - Same conditions as [`ingest`](Self::ingest) otherwise.
    pub fn ingest_labelled(&mut self, window: &Matrix, label: usize) -> Result<StreamOutcome> {
        if label >= self.dense.config().num_classes {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "label {label} out of range for {} classes",
                    self.dense.config().num_classes
                ),
            });
        }
        self.observe(window, Some(label))
    }

    /// Ingests a micro-batch in arrival order, returning one outcome per
    /// window.
    ///
    /// # Errors
    ///
    /// Stops at (and propagates) the first failing window.
    pub fn ingest_batch(&mut self, windows: &[Matrix]) -> Result<Vec<StreamOutcome>> {
        windows.iter().map(|w| self.ingest(w)).collect()
    }

    fn observe(&mut self, window: &Matrix, true_label: Option<usize>) -> Result<StreamOutcome> {
        // Serve from the quantized snapshot — the exact model external
        // serving threads see — through the session's reusable scratch, so
        // the serve step allocates nothing (the outcome's owned Prediction
        // is the only copy made).
        let prediction = self.handle.load().predict_window_with(window, &mut self.scratch)?.clone();
        let outcome = self.state.observe(window, &prediction, true_label);
        if self.journal.is_some() {
            let step = self.state.steps().saturating_sub(1);
            if outcome.buffered {
                self.emit(EventKind::OodWindow, step, self.state.buffered() as u64, 0, 0);
            }
            if outcome.drift_fired {
                self.emit(EventKind::DriftFired, step, self.state.buffered() as u64, 0, 0);
            }
        }
        let adapted = match outcome.plan {
            Some(plan) => {
                self.emit(
                    EventKind::EnrollStart,
                    plan.step,
                    plan.windows.len() as u64,
                    plan.oracle_labelled as u64,
                    0,
                );
                Some(self.adapt(plan)?)
            }
            None => None,
        };
        Ok(StreamOutcome { prediction, buffered: outcome.buffered, adapted })
    }

    /// Drift fired: enrol the planned windows as a new domain and hot-swap
    /// the serving snapshot.
    fn adapt(&mut self, plan: EnrollmentPlan) -> Result<AdaptationEvent> {
        let report = self.dense.enroll_domain(&plan.windows, &plan.labels, plan.tag)?;

        // Append-only refresh of the serving snapshot: clone the current
        // snapshot, add the one new domain, publish. Serving threads keep
        // reading the old Arc until the publish lands.
        let t1 = Instant::now();
        let mut snapshot = (*self.handle.load()).clone();
        let models = self.dense.domain_models()?;
        let descriptors = self.dense.descriptors()?.as_matrix();
        let new_local = models.len() - 1;
        snapshot.enroll_domain(
            // smore-lint: allow(panic_path) domain_models() returned ≥ 1 models — this enrolment just added one
            models.last().expect("enroll_domain pushed a model"),
            descriptors.row(new_local),
            plan.tag,
        )?;
        self.handle.publish(snapshot);
        let swap_seconds = t1.elapsed().as_secs_f64();

        self.emit(
            EventKind::EnrollFinished,
            plan.step,
            report.samples as u64,
            plan.oracle_labelled as u64,
            seconds_to_nanos(report.seconds),
        );
        self.emit(EventKind::SnapshotSwap, plan.step, 0, 0, seconds_to_nanos(swap_seconds));

        let event = AdaptationEvent {
            tag: plan.tag,
            step: plan.step,
            enrolled_windows: report.samples,
            oracle_labelled: plan.oracle_labelled,
            enroll_seconds: report.seconds,
            swap_seconds,
        };
        self.state.record(event.clone());
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore::SmoreConfig;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;
    use smore_data::stream::{concept_drift_stream, DriftSegment, StreamConfig};

    fn shifted_dataset(seed: u64) -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "session-test".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 80 },
                DomainSpec { subjects: vec![2, 3], windows: 80 },
                DomainSpec { subjects: vec![4, 5], windows: 80 },
                DomainSpec { subjects: vec![6, 7], windows: 80 },
            ],
            shift_severity: 1.2,
            seed,
        })
        .unwrap()
    }

    /// The new-device scenario the drift tests exercise: the held-out
    /// domain arrives with a 1.5× sensor gain (a miscalibrated unit), a
    /// physically-grounded drift the frozen channel scaler cannot absorb.
    fn drifted_segment(windows: usize) -> DriftSegment {
        DriftSegment { domain: 3, windows, gain_ramp: Some((1.5, 1.5)), dropout_channel: None }
    }

    /// Builds a calibrated session on `ds` (train = domains 0–2) with the
    /// given overrides; returns the session.
    fn calibrated_session(
        ds: &smore_data::Dataset,
        train: &[usize],
        config: StreamingConfig,
    ) -> StreamingSmore {
        let mut session = StreamingSmore::new(fitted(ds, train), config).unwrap();
        let (calib_w, _, _) = ds.gather(train);
        session.calibrate_drift_delta(&calib_w, 0.25).unwrap();
        session
    }

    fn fitted(ds: &smore_data::Dataset, train: &[usize]) -> Smore {
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(1024)
                .channels(3)
                .num_classes(4)
                .epochs(10)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        model.fit_indices(ds, train).unwrap();
        model
    }

    fn session_config() -> StreamingConfig {
        StreamingConfig {
            buffer_capacity: 128,
            drift_window: 32,
            drift_threshold: 0.5,
            min_enroll: 24,
            cooldown: 32,
            ..StreamingConfig::default()
        }
    }

    #[test]
    fn config_validation() {
        let ds = shifted_dataset(1);
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let model = fitted(&ds, &train);
        for bad in [
            StreamingConfig { buffer_capacity: 0, ..session_config() },
            StreamingConfig { drift_window: 0, ..session_config() },
            StreamingConfig { drift_threshold: 0.0, ..session_config() },
            StreamingConfig { drift_threshold: 1.5, ..session_config() },
            StreamingConfig { min_enroll: 0, ..session_config() },
            StreamingConfig { min_enroll: 999, buffer_capacity: 64, ..session_config() },
            StreamingConfig { drift_delta: Some(f32::NAN), ..session_config() },
            StreamingConfig { drift_delta: Some(1.5), ..session_config() },
            StreamingConfig { enroll_horizon: 8, drift_window: 32, ..session_config() },
        ] {
            assert!(StreamingSmore::new(model.clone(), bad).is_err());
        }
        // Calibration validation.
        let mut session = StreamingSmore::new(model, session_config()).unwrap();
        assert!(session.calibrate_drift_delta(&[], 0.25).is_err());
        let w = vec![ds.window(0).clone()];
        assert!(session.calibrate_drift_delta(&w, 0.0).is_err());
        assert!(session.calibrate_drift_delta(&w, 1.0).is_err());
        let dd = session.calibrate_drift_delta(&w, 0.5).unwrap();
        assert_eq!(session.drift_delta(), dd);
    }

    #[test]
    fn requires_a_fitted_model() {
        let unfitted =
            Smore::new(SmoreConfig::builder().dim(256).channels(3).num_classes(4).build().unwrap())
                .unwrap();
        assert!(matches!(
            StreamingSmore::new(unfitted, StreamingConfig::default()),
            Err(SmoreError::NotFitted)
        ));
    }

    #[test]
    fn in_distribution_stream_never_adapts() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut session = calibrated_session(&ds, &train, session_config());
        let items = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 40), DriftSegment::plain(1, 40)],
                seed: 5,
            },
        )
        .unwrap();
        for item in &items {
            let outcome = session.ingest(&item.window).unwrap();
            assert!(outcome.adapted.is_none(), "no drift in source-domain traffic");
        }
        assert!(session.events().is_empty());
        assert_eq!(session.steps(), 80);
        assert_eq!(session.snapshot().num_domains(), 3);
    }

    #[test]
    fn unseen_domain_triggers_enrolment_and_hot_swap() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut session = calibrated_session(&ds, &train, session_config());
        let outside = session.serving_handle();
        let before = outside.load();
        assert_eq!(before.num_domains(), 3);

        // 100 in-distribution windows, then the unseen user arrives on a
        // 1.5×-gain device.
        let items = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 100), drifted_segment(140)],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();
        let mut adapted_at = None;
        for item in &items {
            let outcome = session.ingest(&item.window).unwrap();
            if let Some(event) = outcome.adapted {
                assert!(item.segment == 1, "no false fire on in-distribution traffic");
                adapted_at = Some(event.step);
                assert_eq!(event.tag, 3, "tags continue past the training tags");
                assert!(event.enrolled_windows >= session.config().min_enroll);
                assert!(event.enroll_seconds >= 0.0 && event.swap_seconds >= 0.0);
                break;
            }
        }
        assert!(adapted_at.is_some(), "sustained OOD traffic must fire the detector");
        // Hot swap: the outside handle sees K+1 domains without being told,
        // while the pre-swap Arc still serves the old model.
        assert_eq!(outside.load().num_domains(), 4);
        assert_eq!(before.num_domains(), 3);
        assert_eq!(session.events().len(), 1);
        assert_eq!(session.dense().num_domains().unwrap(), 4);
    }

    #[test]
    fn cooldown_and_domain_cap_bound_enrolment() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let config = StreamingConfig { max_enrolled_domains: 1, cooldown: 8, ..session_config() };
        let mut session = calibrated_session(&ds, &train, config);
        let items = concept_drift_stream(
            &ds,
            &StreamConfig { segments: vec![drifted_segment(240)], seed: 7 ^ 0xAA },
        )
        .unwrap();
        for item in &items {
            session.ingest(&item.window).unwrap();
        }
        assert_eq!(session.events().len(), 1, "cap holds even under sustained drift");
        assert_eq!(session.snapshot().num_domains(), 4);
    }

    #[test]
    fn stale_buffer_entries_are_not_enrolled() {
        // A long in-distribution stretch leaves its low-δ tail in the
        // buffer; with a tight enrolment horizon only the fresh (drifted)
        // evidence may be trained on.
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let horizon = 48usize;
        let config = StreamingConfig { enroll_horizon: horizon, ..session_config() };
        let mut session = calibrated_session(&ds, &train, config);
        let items = concept_drift_stream(
            &ds,
            &StreamConfig {
                // 300 in-distribution steps accumulate plenty of stale
                // low-δ entries before the drift begins.
                segments: vec![DriftSegment::plain(0, 300), drifted_segment(140)],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();
        let mut event = None;
        let mut stale_buffered = 0usize;
        for item in &items {
            if item.step == 300 {
                stale_buffered = session.buffered();
            }
            let outcome = session.ingest(&item.window).unwrap();
            if outcome.adapted.is_some() && event.is_none() {
                event = outcome.adapted;
            }
        }
        let event = event.expect("drift fires after the in-distribution stretch");
        assert!(stale_buffered > 0, "the in-distribution prefix must leave buffer entries");
        assert!(
            event.enrolled_windows <= horizon,
            "enrolment drew {} windows from a {horizon}-step horizon",
            event.enrolled_windows
        );
    }

    #[test]
    fn oracle_labels_are_used_when_configured() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let config = StreamingConfig { label_strategy: LabelStrategy::Oracle, ..session_config() };
        let mut session = calibrated_session(&ds, &train, config);
        let items = concept_drift_stream(
            &ds,
            &StreamConfig { segments: vec![drifted_segment(200)], seed: 7 ^ 0xAA },
        )
        .unwrap();
        let mut event = None;
        for item in &items {
            let outcome = session.ingest_labelled(&item.window, item.label).unwrap();
            if outcome.adapted.is_some() {
                event = outcome.adapted;
                break;
            }
        }
        let event = event.expect("drift fires");
        assert_eq!(
            event.oracle_labelled, event.enrolled_windows,
            "every buffered window carried ground truth"
        );
        // Label validation.
        assert!(session.ingest_labelled(ds.window(0), 99).is_err());
    }

    #[test]
    fn failed_ingest_leaves_session_usable() {
        let ds = shifted_dataset(6);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut session = StreamingSmore::new(fitted(&ds, &train), session_config()).unwrap();
        // Wrong channel count: typed error, not a panic.
        assert!(session.ingest(&Matrix::zeros(24, 9)).is_err());
        // The session keeps serving afterwards.
        let outcome = session.ingest(ds.window(0)).unwrap();
        assert!(outcome.prediction.label < 4);
        assert_eq!(session.steps(), 1, "failed ingest does not consume a step");
    }
}
