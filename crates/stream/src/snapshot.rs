//! Atomically swappable serving snapshots.
//!
//! Serving and adaptation have incompatible needs: serving wants a frozen,
//! immutable model it can read lock-free-ish from many threads; adaptation
//! wants to replace that model wholesale. [`SnapshotHandle`] reconciles
//! them with the classic arc-swap pattern on std primitives: the current
//! [`QuantizedSmore`] lives in an `Arc`, readers clone the `Arc` under a
//! briefly-held read lock (no data copy, no waiting on adaptation), and
//! [`publish`](SnapshotHandle::publish) swaps the pointer under the write
//! lock. A reader that loaded the old snapshot keeps serving from it until
//! it drops its `Arc` — predictions are never torn between two models.

use std::sync::{Arc, RwLock};

use smore::{Prediction, Predictor, QuantizedSmore, ServeScratch};
use smore_tensor::Matrix;

use crate::Result;

/// A cloneable, thread-safe handle to the current quantized serving
/// snapshot.
///
/// Clones share the same slot: a [`publish`](Self::publish) through any
/// handle is visible to every other handle's next
/// [`load`](Self::load). Hand clones to serving threads; keep one in the
/// adaptation session.
#[derive(Debug, Clone)]
pub struct SnapshotHandle {
    slot: Arc<RwLock<Arc<QuantizedSmore>>>,
}

impl SnapshotHandle {
    /// Wraps an initial snapshot.
    pub fn new(snapshot: QuantizedSmore) -> Self {
        Self { slot: Arc::new(RwLock::new(Arc::new(snapshot))) }
    }

    /// Returns the current snapshot. The read lock is held only long
    /// enough to clone the `Arc`; the returned snapshot stays valid (and
    /// immutable) however long the caller keeps it, even across a
    /// concurrent [`publish`](Self::publish).
    ///
    /// Lock poisoning is deliberately ignored: the slot only ever holds a
    /// fully-built `Arc<QuantizedSmore>` and the swap in
    /// [`publish`](Self::publish) is a single pointer store, so a thread
    /// that panicked while holding the guard cannot have left the slot
    /// torn. Recovering the guard keeps every serving thread alive; the
    /// old `.expect("snapshot lock poisoned")` turned one panicking
    /// publisher into a permanent fleet-wide outage.
    pub fn load(&self) -> Arc<QuantizedSmore> {
        Arc::clone(&self.slot.read().unwrap_or_else(std::sync::PoisonError::into_inner))
    }

    /// Atomically replaces the serving snapshot. Recovers a poisoned
    /// guard for the same reason as [`load`](Self::load): the slot is
    /// always a valid snapshot, so publishing over it stays safe.
    pub fn publish(&self, snapshot: QuantizedSmore) {
        *self.slot.write().unwrap_or_else(std::sync::PoisonError::into_inner) = Arc::new(snapshot);
    }
}

/// Serving through the unified [`Predictor`] surface: every call `load`s
/// the current snapshot first, so a handle held by a serving thread
/// observes hot-swaps between calls without re-coordination. The scratch
/// survives swaps (its similarity buffers grow once when a swap enrolled a
/// domain).
impl Predictor for SnapshotHandle {
    fn num_classes(&self) -> usize {
        self.load().config().num_classes
    }

    fn predict_window_with<'s>(
        &self,
        window: &Matrix,
        scratch: &'s mut ServeScratch,
    ) -> Result<&'s Prediction> {
        let snapshot = self.load();
        snapshot.predict_window_with(window, scratch)
    }

    fn score_into(
        &self,
        window: &Matrix,
        scratch: &mut ServeScratch,
        scores: &mut Vec<f32>,
    ) -> Result<()> {
        self.load().score_into(window, scratch, scores)
    }

    fn predict_batch(&self, windows: &[Matrix]) -> Result<Vec<Prediction>> {
        // One load for the whole batch: a mid-batch hot-swap must never
        // tear the batch across two models.
        self.load().predict_batch(windows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore::{Smore, SmoreConfig};
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};

    fn quantized() -> (smore_data::Dataset, Smore, QuantizedSmore) {
        let ds = generate(&GeneratorConfig {
            name: "snapshot-test".into(),
            domains: vec![
                DomainSpec { subjects: vec![0], windows: 24 },
                DomainSpec { subjects: vec![1], windows: 24 },
            ],
            ..GeneratorConfig::default()
        })
        .unwrap();
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(512)
                .channels(ds.meta().channels)
                .num_classes(ds.meta().num_classes)
                .epochs(5)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        let all: Vec<usize> = (0..ds.len()).collect();
        model.fit_indices(&ds, &all).unwrap();
        let q = model.quantize().unwrap();
        (ds, model, q)
    }

    #[test]
    fn load_survives_publish() {
        let (ds, mut dense, q) = quantized();
        let handle = SnapshotHandle::new(q);
        let old = handle.load();
        assert_eq!(old.num_domains(), 2);

        // Enrol a third domain and publish; the held snapshot is unmoved.
        let (w, l, _) = ds.gather(&(0..12).collect::<Vec<_>>());
        dense.enroll_domain(&w, &l, 9).unwrap();
        handle.publish(dense.quantize().unwrap());
        assert_eq!(old.num_domains(), 2, "held Arc keeps serving the old model");
        assert_eq!(handle.load().num_domains(), 3, "next load sees the swap");
    }

    #[test]
    fn clones_share_the_slot() {
        let (ds, mut dense, q) = quantized();
        let a = SnapshotHandle::new(q);
        let b = a.clone();
        let (w, l, _) = ds.gather(&(0..12).collect::<Vec<_>>());
        dense.enroll_domain(&w, &l, 9).unwrap();
        b.publish(dense.quantize().unwrap());
        assert_eq!(a.load().num_domains(), 3);
    }

    #[test]
    fn predict_window_serves_through_the_handle() {
        let (ds, _, q) = quantized();
        let handle = SnapshotHandle::new(q);
        let p = handle.predict_window(ds.window(0)).unwrap();
        assert!(p.label < ds.meta().num_classes);
        assert!(handle.predict_window(&Matrix::zeros(4, 99)).is_err());
    }

    #[test]
    fn scratch_serving_survives_hot_swap() {
        let (ds, mut dense, q) = quantized();
        let handle = SnapshotHandle::new(q);
        let mut scratch = ServeScratch::new();
        let before = handle.predict_window_with(ds.window(0), &mut scratch).unwrap().clone();
        assert_eq!(before, handle.predict_window(ds.window(0)).unwrap());
        // After a hot swap the same scratch serves the new model (its
        // similarity buffers grow to the enrolled domain count).
        let (w, l, _) = ds.gather(&(0..12).collect::<Vec<_>>());
        dense.enroll_domain(&w, &l, 9).unwrap();
        handle.publish(dense.quantize().unwrap());
        let after = handle.predict_window_with(ds.window(0), &mut scratch).unwrap().clone();
        assert_eq!(after.domain_similarities.len(), 3);
        assert_eq!(after, handle.predict_window(ds.window(0)).unwrap());
    }

    #[test]
    fn serving_survives_a_poisoned_publisher() {
        let (ds, mut dense, q) = quantized();
        let handle = SnapshotHandle::new(q);

        // A publisher that panics while holding the write guard poisons
        // the lock. The slot still holds the last fully-published
        // snapshot, so every serving thread must carry on.
        let poisoner = handle.clone();
        let outcome = std::thread::spawn(move || {
            let _guard = poisoner.slot.write().unwrap();
            panic!("publisher crashed mid-publish");
        })
        .join();
        assert!(outcome.is_err(), "publisher thread must have panicked");
        assert!(handle.slot.is_poisoned(), "the panic must actually poison the lock");

        // load() recovers the guard and serves the pre-crash snapshot.
        assert_eq!(handle.load().num_domains(), 2);
        let p = handle.predict_window(ds.window(0)).unwrap();
        assert!(p.label < ds.meta().num_classes);

        // publish() also recovers: the fleet can hot-swap past the crash.
        let (w, l, _) = ds.gather(&(0..12).collect::<Vec<_>>());
        dense.enroll_domain(&w, &l, 9).unwrap();
        handle.publish(dense.quantize().unwrap());
        assert_eq!(handle.load().num_domains(), 3);
    }

    #[test]
    fn concurrent_readers_see_consistent_snapshots() {
        let (ds, mut dense, q) = quantized();
        let handle = SnapshotHandle::new(q);
        let reader = handle.clone();
        let windows: Vec<Matrix> = (0..24).map(|i| ds.window(i).clone()).collect();
        std::thread::scope(|scope| {
            let serve = scope.spawn(move || {
                // Serve continuously while the main thread publishes.
                let mut served = 0usize;
                for _ in 0..20 {
                    for w in &windows {
                        let snap = reader.load();
                        let p = snap.predict_window(w).unwrap();
                        // Whatever snapshot we got, its prediction shape is
                        // internally consistent.
                        assert_eq!(p.domain_similarities.len(), snap.num_domains());
                        served += 1;
                    }
                }
                served
            });
            let (w, l, _) = ds.gather(&(0..12).collect::<Vec<_>>());
            dense.enroll_domain(&w, &l, 9).unwrap();
            handle.publish(dense.quantize().unwrap());
            assert_eq!(serve.join().unwrap(), 480);
        });
        assert_eq!(handle.load().num_domains(), 3);
    }
}
