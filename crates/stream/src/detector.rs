//! Sustained-OOD drift detection.
//!
//! A single OOD query is an outlier; a *sustained block* of them means the
//! input distribution has moved (§3.5's OOD test, aggregated over time).
//! The detector keeps a sliding window of the last `window` per-query OOD
//! flags and fires when the OOD fraction reaches `threshold` — but only
//! once the window is full, so a cold start cannot fire on two samples,
//! and never during a cooldown period (armed again after enrolment
//! stabilises).

use std::collections::VecDeque;

/// Sliding-window drift detector over per-query OOD flags.
#[derive(Debug, Clone)]
pub struct DriftDetector {
    recent: VecDeque<bool>,
    window: usize,
    threshold: f32,
    ood_count: usize,
    cooldown_remaining: usize,
}

impl DriftDetector {
    /// Creates a detector that fires when at least `threshold` of the last
    /// `window` queries were OOD. `window` is clamped to ≥ 1; `threshold`
    /// to `(0, 1]`.
    pub fn new(window: usize, threshold: f32) -> Self {
        Self {
            recent: VecDeque::with_capacity(window.max(1)),
            window: window.max(1),
            threshold: if threshold.is_finite() { threshold.clamp(f32::EPSILON, 1.0) } else { 1.0 },
            ood_count: 0,
            cooldown_remaining: 0,
        }
    }

    /// Observes one query's OOD flag; returns `true` when drift fires.
    ///
    /// Firing does not reset the detector — call [`reset`](Self::reset)
    /// (typically after a successful enrolment) to clear the window and
    /// start a cooldown.
    pub fn observe(&mut self, is_ood: bool) -> bool {
        if self.recent.len() == self.window && self.recent.pop_front() == Some(true) {
            self.ood_count -= 1;
        }
        self.recent.push_back(is_ood);
        if is_ood {
            self.ood_count += 1;
        }
        if self.cooldown_remaining > 0 {
            self.cooldown_remaining -= 1;
            return false;
        }
        self.recent.len() == self.window
            && self.ood_count as f32 >= self.threshold * self.window as f32
    }

    /// Fraction of OOD flags in the current window (0 when empty).
    pub fn ood_fraction(&self) -> f32 {
        if self.recent.is_empty() {
            0.0
        } else {
            self.ood_count as f32 / self.recent.len() as f32
        }
    }

    /// Whether the detector is in a post-enrolment cooldown.
    pub fn in_cooldown(&self) -> bool {
        self.cooldown_remaining > 0
    }

    /// Clears the sliding window and suppresses firing for the next
    /// `cooldown` observations — called after enrolment so the detector
    /// re-arms on the *post-swap* distribution.
    pub fn reset(&mut self, cooldown: usize) {
        self.recent.clear();
        self.ood_count = 0;
        self.cooldown_remaining = cooldown;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_only_when_window_full_and_fraction_reached() {
        let mut d = DriftDetector::new(4, 0.75);
        assert!(!d.observe(true));
        assert!(!d.observe(true));
        assert!(!d.observe(true), "window not full yet");
        assert!(d.observe(true), "4/4 ≥ 0.75");
        // Sliding: one in-distribution sample drops the fraction to 3/4.
        assert!(d.observe(false), "3/4 ≥ 0.75 still fires");
        assert!(!d.observe(false), "2/4 < 0.75");
        assert!((d.ood_fraction() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn transient_outliers_do_not_fire() {
        let mut d = DriftDetector::new(8, 0.5);
        for i in 0..100 {
            // Every 4th query OOD: 25% mass, never sustained.
            assert!(!d.observe(i % 4 == 0), "fired at step {i}");
        }
    }

    #[test]
    fn reset_applies_cooldown_and_clears_window() {
        let mut d = DriftDetector::new(2, 0.5);
        assert!(!d.observe(true));
        assert!(d.observe(true));
        d.reset(3);
        assert!(d.in_cooldown());
        assert_eq!(d.ood_fraction(), 0.0);
        // Cooldown swallows the next 3 observations even though they fill
        // the window with OOD.
        assert!(!d.observe(true));
        assert!(!d.observe(true));
        assert!(!d.observe(true));
        assert!(!d.in_cooldown());
        assert!(d.observe(true), "re-armed after cooldown");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut d = DriftDetector::new(0, f32::NAN);
        // window 1, threshold 1.0: fires exactly on OOD observations.
        assert!(d.observe(true));
        assert!(!d.observe(false));
    }
}
