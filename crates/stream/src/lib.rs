//! Streaming domain adaptation for SMORE (§3.5–3.6 taken online).
//!
//! The batch pipeline (`smore`) learns `K` source domains once and serves
//! them forever. Real deployments meet domains that did not exist at
//! training time: a new user, a new sensor placement, a decaying gain. This
//! crate closes that gap with a [`StreamingSmore`] session that wraps a
//! fitted model and, per ingested window:
//!
//! 1. **serves** from a frozen bit-packed snapshot
//!    ([`smore::QuantizedSmore`]) held behind an atomically swappable
//!    [`SnapshotHandle`] — serving threads never block on adaptation;
//! 2. **detects** out-of-distribution queries with the model's own
//!    descriptor similarities (Algorithm 1's `δ_max < δ*`) and accumulates
//!    persistently-OOD windows in a bounded [`OodBuffer`];
//! 3. **fires** a [`DriftDetector`] when the recent OOD mass is sustained
//!    — a transient outlier is not drift, a solid block of OOD queries is;
//! 4. **enrols** a new domain online: the buffered windows are labelled
//!    (self-labels from the serving ensemble, or delayed ground truth —
//!    see [`LabelStrategy`]), bundled into a fresh descriptor `U_{K+1}`,
//!    and trained into a new domain-specific model via the paper's
//!    adaptive update rule ([`smore::Smore::enroll_domain`]); then the
//!    serving snapshot is *appended to* (not re-quantized) and hot-swapped
//!    ([`smore::QuantizedSmore::enroll_domain`]).
//!
//! Concept-drift input streams for exercising all of this live in
//! [`smore_data::stream`].
//!
//! For fleet deployments — one model shared by many independently
//! drifting users — see [`ServeEngine`]/[`TenantSession`] in [`engine`]:
//! one `.smore` artifact load, one `Arc`-shared base snapshot, per-tenant
//! drift detection with compact personal deltas chained onto the base.
//! [`SessionStore`] in [`store`] bounds how many of those sessions stay
//! resident: least-recently-used tenants are suspended to tiny `DeltaV1`
//! artifacts and lazily rehydrated on their next request.
//!
//! # Example
//!
//! ```
//! use smore::{Smore, SmoreConfig};
//! use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
//! use smore_data::split;
//! use smore_stream::{StreamingConfig, StreamingSmore};
//!
//! # fn main() -> Result<(), smore::SmoreError> {
//! let ds = generate(&GeneratorConfig {
//!     domains: vec![
//!         DomainSpec { subjects: vec![0, 1], windows: 40 },
//!         DomainSpec { subjects: vec![2, 3], windows: 40 },
//!         DomainSpec { subjects: vec![4, 5], windows: 40 },
//!     ],
//!     ..GeneratorConfig::default()
//! })
//! .map_err(smore::SmoreError::from)?;
//! let (train, test) = split::lodo(&ds, 2)?;
//! let mut model = Smore::new(
//!     SmoreConfig::builder()
//!         .dim(1024)
//!         .channels(ds.meta().channels)
//!         .num_classes(ds.meta().num_classes)
//!         .epochs(5)
//!         .build()?,
//! )?;
//! model.fit_indices(&ds, &train)?;
//!
//! let mut session = StreamingSmore::new(model, StreamingConfig::default())?;
//! for &i in &test {
//!     let outcome = session.ingest(ds.window(i))?;
//!     assert!(outcome.prediction.label < ds.meta().num_classes);
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapt;
mod buffer;
mod detector;
pub mod engine;
pub mod persist;
mod session;
mod snapshot;
pub mod store;

pub use buffer::{BufferedQuery, OodBuffer};
pub use detector::DriftDetector;
pub use engine::{ServeEngine, TenantSession};
pub use persist::{FlushPolicy, StateDir};
pub use session::{AdaptationEvent, LabelStrategy, StreamOutcome, StreamingConfig, StreamingSmore};
pub use snapshot::SnapshotHandle;
pub use store::SessionStore;

/// Result alias; streaming shares the core SMORE error vocabulary.
pub type Result<T> = std::result::Result<T, smore::SmoreError>;
