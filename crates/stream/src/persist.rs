//! Durable on-disk archive for suspended tenant state.
//!
//! PR 8's eviction archive parked every suspended tenant's `DeltaV1`
//! bytes in an in-memory map — compact, but gone with the process: one
//! crash, OOM-kill or deploy restart silently destroyed every evicted
//! tenant's personalization. [`StateDir`] is the durable tier behind
//! that archive: **one artifact file per tenant**, written atomically,
//! recovered by a startup scan that tolerates everything a dying
//! process can leave behind.
//!
//! # Layout
//!
//! ```text
//! <state-dir>/
//!   tenant-42.smore              # DeltaV1 container (CRC per section)
//!   tenant-42.smore.quarantine   # a file that failed validation — kept
//!   tenant-99.tmp                # torn write (never renamed) — quarantined
//! ```
//!
//! Every write goes temp file → (fsync) → atomic rename, so a reader
//! never observes a half-written `*.smore` file: a crash mid-write
//! leaves only a `.tmp` orphan, which the next scan quarantines. Files
//! the scan cannot vouch for — bad magic, wrong kind, truncated header
//! — are *renamed* to `*.quarantine`, never deleted: the operator can
//! inspect or repair them, and the tenant simply re-enrols fresh.
//! Unrecognised file names are left untouched.
//!
//! # Flush policy
//!
//! [`FlushPolicy`] decides when durability is paid for:
//!
//! - [`Sync`](FlushPolicy::Sync): every archive write is fsynced (file
//!   and directory) before it returns — a suspended tenant survives a
//!   power cut the moment its eviction completes.
//! - [`OnEvict`](FlushPolicy::OnEvict) (default): the file is written
//!   and atomically renamed at eviction, but fsync is deferred to
//!   [`StateDir::flush`] (called by graceful drain). The serving path
//!   never blocks on fsync; an unclean kill can lose writes the OS had
//!   not yet flushed — but never corrupt one, thanks to the rename.
//!
//! # Sharding
//!
//! Serve workers shard tenants and each owns one store; they share one
//! flat state directory. Each worker opens the directory with an
//! ownership filter, so a restart with a *different* worker count still
//! assigns every recovered file to exactly one worker. Ownership of a
//! tenant id is single-writer by construction; this module adds no
//! locking.

use std::collections::{HashMap, HashSet};
use std::fs::{self, File};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use smore::artifact::{self, ArtifactKind};
use smore::SmoreError;

use crate::Result;

/// When an archive write becomes durable (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FlushPolicy {
    /// fsync file and directory on every archive write.
    Sync,
    /// Write and rename at eviction; fsync deferred to
    /// [`StateDir::flush`] so the serving path never blocks on fsync.
    #[default]
    OnEvict,
}

impl FlushPolicy {
    /// Parses the CLI spelling (`sync` / `on_evict`).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] for anything else.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "sync" => Ok(FlushPolicy::Sync),
            "on_evict" | "on-evict" => Ok(FlushPolicy::OnEvict),
            other => Err(SmoreError::InvalidConfig {
                what: format!("unknown flush policy {other:?} (expected sync or on_evict)"),
            }),
        }
    }

    /// The CLI spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FlushPolicy::Sync => "sync",
            FlushPolicy::OnEvict => "on_evict",
        }
    }
}

/// Extension of committed per-tenant artifacts.
const STATE_EXT: &str = "smore";
/// Extension of in-flight writes (renamed away on commit).
const TMP_EXT: &str = "tmp";
/// Suffix appended to files that failed validation.
const QUARANTINE_SUFFIX: &str = ".quarantine";

/// A durable per-tenant state directory (see the [module docs](self)).
#[derive(Debug)]
pub struct StateDir {
    dir: PathBuf,
    policy: FlushPolicy,
    /// Committed, validated files owned by this instance: tenant →
    /// artifact bytes on disk.
    index: HashMap<u64, u64>,
    /// Tenants written but not yet fsynced (only under `OnEvict`).
    unsynced: HashSet<u64>,
    /// Sum of `index` values, maintained incrementally.
    indexed_bytes: u64,
    recovered: u64,
    quarantined: u64,
    write_failures: u64,
}

impl StateDir {
    /// Opens `dir` (creating it if needed) and scans it for previously
    /// archived tenant state. `owns` is the shard-ownership filter: only
    /// files whose tenant id it accepts are indexed or quarantined, so
    /// several workers can share one directory. Use `|_| true` for a
    /// single-owner directory.
    ///
    /// The scan validates each owned `tenant-<id>.smore` file's 16-byte
    /// artifact header (magic, version, kind = delta) with one small
    /// read; files that fail, plus orphaned `tenant-<id>.tmp` files from
    /// torn writes, are quarantined — renamed, counted, never deleted.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::Io`] when the directory cannot be created
    /// or listed. Per-file problems are never errors: they quarantine.
    pub fn open(
        dir: impl Into<PathBuf>,
        policy: FlushPolicy,
        owns: impl Fn(u64) -> bool,
    ) -> Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| SmoreError::io(dir.display().to_string(), &e))?;
        let mut state = StateDir {
            dir,
            policy,
            index: HashMap::new(),
            unsynced: HashSet::new(),
            indexed_bytes: 0,
            recovered: 0,
            quarantined: 0,
            write_failures: 0,
        };
        state.scan(owns)?;
        Ok(state)
    }

    fn scan(&mut self, owns: impl Fn(u64) -> bool) -> Result<()> {
        let entries = fs::read_dir(&self.dir)
            .map_err(|e| SmoreError::io(self.dir.display().to_string(), &e))?;
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            if name.ends_with(QUARANTINE_SUFFIX) {
                continue;
            }
            match parse_name(name) {
                Some((tenant, true)) if owns(tenant) => match self.validate_header(&path) {
                    Ok(len) => {
                        self.indexed_bytes += len;
                        self.index.insert(tenant, len);
                        self.recovered += 1;
                    }
                    Err(reason) => self.quarantine_path(&path, &reason),
                },
                // An orphaned temp file is a torn write: the rename that
                // would have committed it never happened.
                Some((tenant, false)) if owns(tenant) => {
                    self.quarantine_path(&path, "orphaned temp file (torn write)");
                }
                // Unowned (another shard's) or unrecognised: not ours.
                _ => {}
            }
        }
        Ok(())
    }

    /// Checks the 16-byte artifact header; returns the file length.
    fn validate_header(&self, path: &Path) -> std::result::Result<u64, String> {
        let mut file = File::open(path).map_err(|e| format!("unreadable: {e}"))?;
        let len = file.metadata().map_err(|e| format!("unreadable: {e}"))?.len();
        let mut header = [0u8; artifact::HEADER_LEN];
        file.read_exact(&mut header).map_err(|e| format!("short header: {e}"))?;
        match artifact::kind_of(&header) {
            Ok(ArtifactKind::Delta) => Ok(len),
            Ok(kind) => Err(format!("artifact kind {kind:?} is not a tenant delta")),
            Err(e) => Err(e.to_string()),
        }
    }

    /// Renames `path` aside with the quarantine suffix (best-effort —
    /// a racing owner may have renamed it first) and counts it.
    fn quarantine_path(&mut self, path: &Path, reason: &str) {
        let mut target = path.as_os_str().to_owned();
        target.push(QUARANTINE_SUFFIX);
        let renamed = fs::rename(path, PathBuf::from(&target)).is_ok();
        if renamed {
            self.quarantined += 1;
            smore_obs::warn!(
                "persist",
                "quarantined {} ({reason}); kept for inspection",
                path.display()
            );
        }
    }

    /// The directory files live in.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The flush policy writes follow.
    #[must_use]
    pub fn policy(&self) -> FlushPolicy {
        self.policy
    }

    /// Indexed (committed, owned, validated) tenants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no tenant state is indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Sum of indexed artifact bytes on disk.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.indexed_bytes
    }

    /// Whether `tenant` has committed state on disk.
    #[must_use]
    pub fn contains(&self, tenant: u64) -> bool {
        self.index.contains_key(&tenant)
    }

    /// Files recovered (indexed) by the startup scan.
    #[must_use]
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Files quarantined — by the scan or by [`Self::quarantine`].
    #[must_use]
    pub fn quarantined(&self) -> u64 {
        self.quarantined
    }

    /// Archive writes that failed (the caller kept the bytes in memory).
    #[must_use]
    pub fn write_failures(&self) -> u64 {
        self.write_failures
    }

    /// Atomically writes `tenant`'s artifact bytes: temp file → (fsync
    /// under [`FlushPolicy::Sync`]) → rename over the committed name.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::Io`] when any step fails; the temp file is
    /// removed best-effort and the failure is counted in
    /// [`Self::write_failures`]. The previously committed file (if any)
    /// is untouched by a failed write.
    pub fn write(&mut self, tenant: u64, bytes: &[u8]) -> Result<()> {
        let tmp = self.dir.join(format!("tenant-{tenant}.{TMP_EXT}"));
        let committed = self.path_for(tenant);
        let result = Self::write_atomic(&tmp, &committed, bytes, self.policy);
        match result {
            Ok(()) => {
                if self.policy == FlushPolicy::OnEvict {
                    self.unsynced.insert(tenant);
                }
                if let Some(stale) = self.index.insert(tenant, bytes.len() as u64) {
                    self.indexed_bytes = self.indexed_bytes.saturating_sub(stale);
                }
                self.indexed_bytes += bytes.len() as u64;
                Ok(())
            }
            Err(e) => {
                self.write_failures += 1;
                let _ = fs::remove_file(&tmp);
                Err(SmoreError::io(committed.display().to_string(), &e))
            }
        }
    }

    fn write_atomic(
        tmp: &Path,
        committed: &Path,
        bytes: &[u8],
        policy: FlushPolicy,
    ) -> std::io::Result<()> {
        let mut file = File::create(tmp)?;
        file.write_all(bytes)?;
        if policy == FlushPolicy::Sync {
            file.sync_all()?;
        }
        drop(file);
        fs::rename(tmp, committed)?;
        if policy == FlushPolicy::Sync {
            // Make the rename itself durable.
            if let Some(parent) = committed.parent() {
                File::open(parent)?.sync_all()?;
            }
        }
        Ok(())
    }

    /// Reads `tenant`'s committed bytes and drops them from the index —
    /// the archived → resident transition. The *file stays on disk* as
    /// the crash fallback until the next write overwrites it; callers
    /// that fail to resume from the bytes should [`Self::quarantine`]
    /// the file instead of retrying.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::Io`] when the indexed file cannot be read
    /// (it is dropped from the index — the state is gone).
    pub fn take(&mut self, tenant: u64) -> Result<Option<Vec<u8>>> {
        let Some(len) = self.index.remove(&tenant) else { return Ok(None) };
        self.indexed_bytes = self.indexed_bytes.saturating_sub(len);
        self.unsynced.remove(&tenant);
        let path = self.path_for(tenant);
        match fs::read(&path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) => Err(SmoreError::io(path.display().to_string(), &e)),
        }
    }

    /// Quarantines `tenant`'s on-disk file (committed name), if present.
    /// Returns whether a file was actually renamed aside.
    pub fn quarantine(&mut self, tenant: u64) -> bool {
        if let Some(len) = self.index.remove(&tenant) {
            self.indexed_bytes = self.indexed_bytes.saturating_sub(len);
        }
        self.unsynced.remove(&tenant);
        let before = self.quarantined;
        let path = self.path_for(tenant);
        self.quarantine_path(&path, "failed to resume");
        self.quarantined > before
    }

    /// Fsyncs every write deferred by [`FlushPolicy::OnEvict`] plus the
    /// directory itself — the drain barrier. A no-op under
    /// [`FlushPolicy::Sync`] or when nothing is outstanding.
    ///
    /// # Errors
    ///
    /// Returns the first [`SmoreError::Io`] hit; every other outstanding
    /// file is still attempted, and failures count in
    /// [`Self::write_failures`].
    pub fn flush(&mut self) -> Result<()> {
        if self.unsynced.is_empty() {
            return Ok(());
        }
        let mut first_err = None;
        for tenant in std::mem::take(&mut self.unsynced) {
            let path = self.path_for(tenant);
            let result = File::open(&path).and_then(|f| f.sync_all());
            if let Err(e) = result {
                // A file taken back to residency after its write is
                // already unindexed; anything else is a real failure.
                if e.kind() != std::io::ErrorKind::NotFound {
                    self.write_failures += 1;
                    first_err.get_or_insert_with(|| SmoreError::io(path.display().to_string(), &e));
                }
            }
        }
        if first_err.is_none() {
            if let Err(e) = File::open(&self.dir).and_then(|f| f.sync_all()) {
                first_err = Some(SmoreError::io(self.dir.display().to_string(), &e));
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn path_for(&self, tenant: u64) -> PathBuf {
        self.dir.join(format!("tenant-{tenant}.{STATE_EXT}"))
    }
}

/// Parses a directory entry name: `Some((tenant, committed))` for
/// `tenant-<id>.smore` (committed = true) or `tenant-<id>.tmp`
/// (committed = false); `None` for anything else.
fn parse_name(name: &str) -> Option<(u64, bool)> {
    let rest = name.strip_prefix("tenant-")?;
    if let Some(id) = rest.strip_suffix(".smore") {
        return id.parse().ok().map(|t| (t, true));
    }
    if let Some(id) = rest.strip_suffix(".tmp") {
        return id.parse().ok().map(|t| (t, false));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh per-test directory under the OS temp dir.
    fn scratch_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smore_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    /// Minimal bytes that pass the header sniff as a Delta artifact:
    /// magic, version 1, kind 3, reserved 0, zero sections — plus a
    /// payload marker to tell instances apart.
    fn delta_header_bytes(marker: u8) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&artifact::MAGIC);
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.push(3);
        bytes.push(0);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(marker);
        bytes
    }

    #[test]
    fn flush_policy_parses_cli_spellings() {
        assert_eq!(FlushPolicy::parse("sync").unwrap(), FlushPolicy::Sync);
        assert_eq!(FlushPolicy::parse("on_evict").unwrap(), FlushPolicy::OnEvict);
        assert_eq!(FlushPolicy::parse("on-evict").unwrap(), FlushPolicy::OnEvict);
        let err = FlushPolicy::parse("whenever").unwrap_err();
        assert!(matches!(err, SmoreError::InvalidConfig { .. }), "{err}");
        assert_eq!(FlushPolicy::Sync.name(), "sync");
        assert_eq!(FlushPolicy::default(), FlushPolicy::OnEvict);
    }

    #[test]
    fn write_take_round_trip_survives_reopen() {
        let dir = scratch_dir("roundtrip");
        let payload = delta_header_bytes(0xAB);
        {
            let mut state = StateDir::open(&dir, FlushPolicy::Sync, |_| true).unwrap();
            assert_eq!(state.recovered(), 0);
            state.write(42, &payload).unwrap();
            assert!(state.contains(42));
            assert_eq!(state.total_bytes(), payload.len() as u64);
        }
        // A brand-new instance (new process, conceptually) recovers it.
        let mut state = StateDir::open(&dir, FlushPolicy::Sync, |_| true).unwrap();
        assert_eq!(state.recovered(), 1);
        assert_eq!(state.quarantined(), 0);
        assert_eq!(state.take(42).unwrap().as_deref(), Some(payload.as_slice()));
        assert!(!state.contains(42));
        assert_eq!(state.total_bytes(), 0);
        // take() keeps the file on disk as the crash fallback.
        assert!(dir.join("tenant-42.smore").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn overwrite_replaces_and_keeps_byte_accounting_exact() {
        let dir = scratch_dir("overwrite");
        let mut state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
        state.write(7, &delta_header_bytes(1)).unwrap();
        let bigger: Vec<u8> =
            delta_header_bytes(2).into_iter().chain(std::iter::repeat_n(0u8, 64)).collect();
        state.write(7, &bigger).unwrap();
        assert_eq!(state.len(), 1);
        assert_eq!(state.total_bytes(), bigger.len() as u64);
        assert_eq!(state.take(7).unwrap().unwrap(), bigger);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scan_quarantines_torn_corrupt_and_foreign_kind_files() {
        let dir = scratch_dir("quarantine");
        fs::create_dir_all(&dir).unwrap();
        // A good file, a torn temp, garbage, a wrong-kind artifact, and
        // a file that is not ours at all.
        fs::write(dir.join("tenant-1.smore"), delta_header_bytes(9)).unwrap();
        fs::write(dir.join("tenant-2.tmp"), b"half a wri").unwrap();
        fs::write(dir.join("tenant-3.smore"), b"not an artifact, far too short?").unwrap();
        let mut quantized = delta_header_bytes(9);
        quantized[10] = 1; // ArtifactKind::Quantized
        fs::write(dir.join("tenant-4.smore"), quantized).unwrap();
        fs::write(dir.join("README.txt"), b"operator notes").unwrap();

        let state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
        assert_eq!(state.recovered(), 1);
        assert_eq!(state.quarantined(), 3);
        assert!(state.contains(1));
        assert!(!state.contains(3));
        // Quarantined, not deleted — and the foreign file untouched.
        assert!(dir.join("tenant-2.tmp.quarantine").exists());
        assert!(dir.join("tenant-3.smore.quarantine").exists());
        assert!(dir.join("tenant-4.smore.quarantine").exists());
        assert!(dir.join("README.txt").exists());
        assert!(!dir.join("tenant-3.smore").exists());

        // A rescan must not double-quarantine or resurrect them.
        drop(state);
        let state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
        assert_eq!(state.recovered(), 1);
        assert_eq!(state.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shard_filter_partitions_ownership_exactly() {
        let dir = scratch_dir("shards");
        {
            let mut state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
            for tenant in 0..10u64 {
                state.write(tenant, &delta_header_bytes(tenant as u8)).unwrap();
            }
        }
        let even = StateDir::open(&dir, FlushPolicy::OnEvict, |t| t % 2 == 0).unwrap();
        let odd = StateDir::open(&dir, FlushPolicy::OnEvict, |t| t % 2 == 1).unwrap();
        assert_eq!(even.len(), 5);
        assert_eq!(odd.len(), 5);
        assert!(even.contains(4) && !even.contains(5));
        assert!(odd.contains(5) && !odd.contains(4));
        assert_eq!(even.quarantined() + odd.quarantined(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn quarantine_after_failed_resume_renames_the_file() {
        let dir = scratch_dir("resume_fail");
        let mut state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
        state.write(5, &delta_header_bytes(5)).unwrap();
        assert!(state.quarantine(5));
        assert!(!state.contains(5));
        assert_eq!(state.quarantined(), 1);
        assert!(dir.join("tenant-5.smore.quarantine").exists());
        assert!(!dir.join("tenant-5.smore").exists());
        // Quarantining an absent tenant is a no-op.
        assert!(!state.quarantine(5));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flush_clears_the_write_behind_backlog() {
        let dir = scratch_dir("flush");
        let mut state = StateDir::open(&dir, FlushPolicy::OnEvict, |_| true).unwrap();
        state.write(1, &delta_header_bytes(1)).unwrap();
        state.write(2, &delta_header_bytes(2)).unwrap();
        assert_eq!(state.unsynced.len(), 2);
        state.flush().unwrap();
        assert!(state.unsynced.is_empty());
        // Idempotent.
        state.flush().unwrap();
        // Sync policy never defers.
        let mut sync =
            StateDir::open(scratch_dir("flush_sync"), FlushPolicy::Sync, |_| true).unwrap();
        sync.write(1, &delta_header_bytes(1)).unwrap();
        assert!(sync.unsynced.is_empty());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(sync.dir());
    }

    #[test]
    fn unwritable_dir_fails_typed_and_counts() {
        let dir = scratch_dir("readonly");
        let mut state = StateDir::open(&dir, FlushPolicy::Sync, |_| true).unwrap();
        // Yank the directory out from under the open instance and park a
        // plain file at its path — every write must now fail, even for
        // root (chmod tricks do not bind uid 0).
        fs::remove_dir_all(&dir).unwrap();
        fs::write(&dir, b"disk gone").unwrap();
        let err = state.write(9, &delta_header_bytes(9)).unwrap_err();
        assert!(matches!(err, SmoreError::Io { .. }), "{err}");
        assert_eq!(state.write_failures(), 1);
        assert!(!state.contains(9));
        let _ = fs::remove_file(&dir);
    }
}
