//! Backend-agnostic drift bookkeeping shared by every adaptation session.
//!
//! [`AdaptationState`] owns everything about *deciding* to adapt — the OOD
//! buffer, the drift detector, the calibrated drift threshold, the step
//! counter, the enrolment cap/cooldown and the event log — while staying
//! ignorant of *how* the adaptation is executed. [`StreamingSmore`]
//! (single-session, publishes to a shared [`crate::SnapshotHandle`]) and
//! the multi-tenant [`crate::TenantSession`] (copy-on-adapt personal
//! overlay over a shared base snapshot) both drive the same state machine,
//! so the drift semantics locked down by the streaming regression tests
//! hold identically for both deployment shapes.
//!
//! [`StreamingSmore`]: crate::StreamingSmore

use smore::Prediction;
use smore_tensor::Matrix;

use crate::buffer::{BufferedQuery, OodBuffer};
use crate::detector::DriftDetector;
use crate::session::{AdaptationEvent, LabelStrategy, StreamingConfig};

/// Everything the caller needs to *execute* an enrolment that the state
/// machine has decided on: the recent buffered windows, their labels
/// (oracle ground truth where available and configured, serving-ensemble
/// self-labels otherwise), and the tag/step bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct EnrollmentPlan {
    /// External tag to enrol under.
    pub(crate) tag: usize,
    /// Stream step at which drift fired.
    pub(crate) step: usize,
    /// The buffered windows inside the enrolment horizon.
    pub(crate) windows: Vec<Matrix>,
    /// One label per window.
    pub(crate) labels: Vec<usize>,
    /// How many labels came from ground truth (Oracle strategy).
    pub(crate) oracle_labelled: usize,
}

/// Outcome of one [`AdaptationState::observe`] call.
#[derive(Debug)]
pub(crate) struct ObserveOutcome {
    /// Whether the query entered the OOD enrolment buffer.
    pub(crate) buffered: bool,
    /// Whether the drift detector crossed its threshold on this window —
    /// true even when no enrolment follows (too little recent evidence, or
    /// the enrolment cap is exhausted), so telemetry sees every firing.
    pub(crate) drift_fired: bool,
    /// A decided enrolment (drift fired with enough recent evidence); the
    /// caller trains/attaches the domain and then calls
    /// [`AdaptationState::record`].
    pub(crate) plan: Option<EnrollmentPlan>,
}

/// The shared drift-adaptation state machine (see the module docs).
#[derive(Debug)]
pub(crate) struct AdaptationState {
    config: StreamingConfig,
    buffer: OodBuffer,
    detector: DriftDetector,
    drift_delta: f32,
    next_tag: usize,
    step: usize,
    enrolled: usize,
    events: Vec<AdaptationEvent>,
}

impl AdaptationState {
    /// Builds the state machine around an already-validated `config`.
    pub(crate) fn new(config: StreamingConfig, drift_delta: f32, next_tag: usize) -> Self {
        Self {
            buffer: OodBuffer::new(config.buffer_capacity),
            detector: DriftDetector::new(config.drift_window, config.drift_threshold),
            drift_delta,
            next_tag,
            step: 0,
            enrolled: 0,
            events: Vec::new(),
            config,
        }
    }

    /// Rebuilds the state machine of a suspended session from its
    /// persisted metadata: the tag/step counters and the enrolment history
    /// pick up exactly where eviction paused them, while the OOD buffer
    /// and drift detector restart empty — buffered windows are
    /// deliberately *not* persisted (they are raw tenant sensor data, and
    /// re-accumulating a drift verdict is cheap next to storing them).
    pub(crate) fn resume(
        config: StreamingConfig,
        drift_delta: f32,
        next_tag: usize,
        step: usize,
        events: Vec<AdaptationEvent>,
    ) -> Self {
        Self {
            buffer: OodBuffer::new(config.buffer_capacity),
            detector: DriftDetector::new(config.drift_window, config.drift_threshold),
            drift_delta,
            next_tag,
            step,
            enrolled: events.len(),
            events,
            config,
        }
    }

    pub(crate) fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The tag the next enrolment will be filed under.
    pub(crate) fn next_tag(&self) -> usize {
        self.next_tag
    }

    pub(crate) fn drift_delta(&self) -> f32 {
        self.drift_delta
    }

    pub(crate) fn set_drift_delta(&mut self, drift_delta: f32) {
        self.drift_delta = drift_delta;
    }

    pub(crate) fn events(&self) -> &[AdaptationEvent] {
        &self.events
    }

    pub(crate) fn buffered(&self) -> usize {
        self.buffer.len()
    }

    pub(crate) fn ood_fraction(&self) -> f32 {
        self.detector.ood_fraction()
    }

    pub(crate) fn steps(&self) -> usize {
        self.step
    }

    /// Advances the state machine by one successfully served window:
    /// buffers it when its `δ_max` falls below the drift threshold, feeds
    /// the detector, and — when drift fires with enough *recent* buffered
    /// evidence (see `StreamingConfig::enroll_horizon`) and the enrolment
    /// cap is not exhausted — drains the buffer into an
    /// [`EnrollmentPlan`]. Stale buffer entries (the low-δ tail of
    /// ordinary in-distribution traffic) are discarded, not enrolled.
    pub(crate) fn observe(
        &mut self,
        window: &Matrix,
        prediction: &Prediction,
        true_label: Option<usize>,
    ) -> ObserveOutcome {
        let step = self.step;
        self.step += 1;

        // Drift bookkeeping uses the (possibly calibrated) drift threshold,
        // which may differ from the serving δ* baked into `prediction`.
        let buffered = prediction.delta_max < self.drift_delta;
        if buffered {
            self.buffer.push(BufferedQuery {
                window: window.clone(),
                pseudo_label: prediction.label,
                true_label,
                delta_max: prediction.delta_max,
                step,
            });
        }

        let fired = self.detector.observe(buffered);
        let horizon_start = step.saturating_sub(self.config.enroll_horizon.saturating_sub(1));
        let plan = if fired && self.enrolled < self.config.max_enrolled_domains {
            let recent = self.buffer.queries().filter(|q| q.step >= horizon_start).count();
            if recent >= self.config.min_enroll {
                Some(self.drain_plan(step, horizon_start))
            } else {
                None
            }
        } else {
            None
        };
        ObserveOutcome { buffered, drift_fired: fired, plan }
    }

    /// Drains the buffer into an enrolment plan, keeping only queries
    /// inside the horizon and resolving labels per the configured
    /// [`LabelStrategy`].
    fn drain_plan(&mut self, step: usize, horizon_start: usize) -> EnrollmentPlan {
        let mut queries = self.buffer.drain();
        queries.retain(|q| q.step >= horizon_start);
        let use_oracle = self.config.label_strategy == LabelStrategy::Oracle;
        let mut oracle_labelled = 0usize;
        let labels: Vec<usize> = queries
            .iter()
            .map(|q| match (use_oracle, q.true_label) {
                (true, Some(l)) => {
                    oracle_labelled += 1;
                    l
                }
                _ => q.pseudo_label,
            })
            .collect();
        let windows: Vec<Matrix> = queries.into_iter().map(|q| q.window).collect();
        EnrollmentPlan { tag: self.next_tag, step, windows, labels, oracle_labelled }
    }

    /// Commits a completed enrolment: logs the event, advances the tag,
    /// counts it against the cap, and puts the detector into cooldown so
    /// it re-arms on the post-swap distribution.
    pub(crate) fn record(&mut self, event: AdaptationEvent) {
        self.detector.reset(self.config.cooldown);
        self.next_tag += 1;
        self.enrolled += 1;
        self.events.push(event);
    }
}
