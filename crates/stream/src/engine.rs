//! Multi-tenant serving: one model, a million users.
//!
//! [`StreamingSmore`](crate::StreamingSmore) binds one adaptation loop to
//! one serving snapshot — the single-stream deployment. Real fleets look
//! different: **one** trained model serves millions of users, and each
//! user drifts (or doesn't) independently — a miscalibrated watch here, a
//! new sensor placement there. Duplicating the model per user is a
//! non-starter; sharing one mutable model across users would let one
//! user's drift corrupt everyone else's predictions.
//!
//! [`ServeEngine`] resolves this with shared immutable state plus
//! per-tenant overlays:
//!
//! - The engine holds the **base** state behind `Arc`s: the frozen
//!   [`QuantizedSmore`] serving snapshot (loaded once — typically from a
//!   `.smore` artifact via [`ServeEngine::from_artifact`]) and the fitted
//!   dense [`Smore`] used to *train* tenant enrolments
//!   ([`Smore::prepare_domain`] never mutates it, so no locking exists
//!   anywhere on the serve path).
//! - Each [`TenantSession`] owns only its own adaptation state: OOD
//!   buffer, drift detector, serving scratch and — only after its drift
//!   detector has actually fired — a **personal delta**
//!   ([`smore::SnapshotDelta`]): just the tenant's enrolled class planes,
//!   descriptors and Gram growth, scored *chained* onto the shared base
//!   ([`smore::DeltaSmore`]) bit-exactly as if the base had been cloned
//!   and appended to. Tenants that never drift (the overwhelming
//!   majority) serve from the shared snapshot and cost a few KiB each;
//!   personalized tenants cost KiB, not a full model copy.
//!
//! Idle sessions do not have to stay resident at all:
//! [`TenantSession::suspend`] serializes the delta into a tiny `DeltaV1`
//! `.smore` artifact and [`ServeEngine::resume_session`] rebuilds the
//! session from it — tag counter, step counter and enrolment history
//! included — which is what [`SessionStore`](crate::SessionStore) builds
//! its LRU evict/rehydrate layer on.
//!
//! Sessions are `Send`, so a server hands one to each connection/actor;
//! the engine itself is cheap to share behind an `Arc`.

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use smore::artifact::{self, ArtifactKind};
use smore::{
    DeltaEnrollmentRecord, DeltaSmore, QuantizedSmore, ServeScratch, ServingModel, Smore,
    SmoreError, SnapshotDelta,
};
use smore_hdc::model::HdcClassifier;
use smore_obs::{Event, EventJournal, EventKind};
use smore_tensor::Matrix;

use crate::adapt::{AdaptationState, EnrollmentPlan};
use crate::session::{AdaptationEvent, StreamOutcome, StreamingConfig};
use crate::Result;

/// Served `δ_max` quantile over a calibration set — the shared core of
/// [`StreamingSmore::calibrate_drift_delta`](crate::StreamingSmore::calibrate_drift_delta)
/// and [`ServeEngine::calibrate_drift_delta`].
pub(crate) fn drift_delta_quantile(
    model: &QuantizedSmore,
    windows: &[Matrix],
    quantile: f32,
) -> Result<f32> {
    if windows.is_empty() {
        return Err(SmoreError::InvalidConfig { what: "calibration set is empty".into() });
    }
    if !(quantile > 0.0 && quantile < 1.0) {
        return Err(SmoreError::InvalidConfig {
            what: format!("calibration quantile must be in (0, 1), got {quantile}"),
        });
    }
    // A NaN-poisoned window must fail calibration loudly, not fold
    // garbage into the served threshold (the packed encoder quantizes
    // non-finite values into arbitrary level bins, so its δ_max would be
    // finite nonsense rather than NaN).
    for (i, window) in windows.iter().enumerate() {
        if !window.as_slice().iter().all(|v| v.is_finite()) {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "calibration window {i} contains a non-finite value; drift δ must be \
                     calibrated on finite in-distribution traffic"
                ),
            });
        }
    }
    let mut deltas: Vec<f32> = model.predict_batch(windows)?.iter().map(|p| p.delta_max).collect();
    // Defense in depth: a non-finite similarity is a model bug, but the
    // serving path must answer with an error, never a panic.
    if let Some(i) = deltas.iter().position(|d| !d.is_finite()) {
        return Err(SmoreError::InvalidConfig {
            // smore-lint: allow(panic_path) i came from position() over this very vec
            what: format!("calibration window {i} produced a non-finite δ_max ({})", deltas[i]),
        });
    }
    // total_cmp is a total order — no panicking partial_cmp on the
    // serving path even if the finiteness guards above ever change.
    deltas.sort_by(f32::total_cmp);
    // The shared nearest-rank helper (ties rounded *up*) — the local copy
    // this crate used to carry floored the rank via `as usize`, biasing the
    // calibrated drift δ low on small calibration sets.
    // smore-lint: allow(panic_path) nearest_rank_index returns an index < len by contract
    Ok(deltas[smore::metrics::nearest_rank_index(deltas.len(), f64::from(quantile))])
}

/// Seconds → whole nanoseconds for journal payloads (saturating).
pub(crate) fn seconds_to_nanos(seconds: f64) -> u64 {
    if seconds <= 0.0 {
        0
    } else {
        (seconds * 1e9).min(u64::MAX as f64) as u64
    }
}

/// The multi-tenant serving engine (see the [module docs](self)).
///
/// # Example
///
/// ```no_run
/// use smore_stream::{ServeEngine, StreamingConfig};
///
/// # fn main() -> Result<(), smore::SmoreError> {
/// // One artifact load; every tenant shares the resulting snapshot.
/// let engine = ServeEngine::from_artifact("model.smore", StreamingConfig::default())?;
/// let mut alice = engine.session();
/// let mut bob = engine.session();
/// # let window = smore_tensor::Matrix::zeros(24, 3);
/// alice.ingest(&window)?; // tenants adapt independently
/// bob.ingest(&window)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    /// The fitted dense model — frozen; tenants train enrolments against
    /// it through the non-mutating [`Smore::prepare_domain`].
    dense: Arc<Smore>,
    /// The shared serving snapshot every non-personalized tenant reads.
    base: Arc<QuantizedSmore>,
    config: StreamingConfig,
    drift_delta: f32,
    /// First tag for tenant-enrolled domains (base tags come before it).
    next_tag: usize,
    /// Monotone tenant-id source.
    tenants: AtomicUsize,
    /// Adaptation journal handed to every session created after
    /// [`set_journal`](Self::set_journal); `None` disables event emission.
    journal: Option<Arc<EventJournal>>,
}

impl ServeEngine {
    /// Builds an engine around a fitted dense model: quantizes the shared
    /// base snapshot once and freezes the dense model for tenant
    /// enrolment.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::NotFitted`] when `model` has not been fitted.
    /// - [`SmoreError::InvalidConfig`] for invalid streaming parameters.
    pub fn new(model: Smore, config: StreamingConfig) -> Result<Self> {
        config.validate()?;
        let base = model.quantize()?;
        let next_tag = model.domain_tags()?.iter().copied().max().unwrap_or(0) + 1;
        let drift_delta = config.drift_delta.unwrap_or(model.config().delta_star);
        Ok(Self {
            dense: Arc::new(model),
            base: Arc::new(base),
            config,
            drift_delta,
            next_tag,
            tenants: AtomicUsize::new(0),
            journal: None,
        })
    }

    /// Loads a **dense** `.smore` artifact (written by [`Smore::save`])
    /// and builds the engine from it — the "train once, fan out to a
    /// serving fleet" entry point: one artifact read, one quantize, any
    /// number of tenants.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::Io`] when reading fails.
    /// - [`SmoreError::CorruptArtifact`] for a malformed artifact.
    /// - [`SmoreError::InvalidConfig`] when the artifact holds a frozen
    ///   quantized model: per-tenant adaptation needs the dense model —
    ///   serve a frozen snapshot directly via [`QuantizedSmore::load`].
    pub fn from_artifact(path: impl AsRef<Path>, config: StreamingConfig) -> Result<Self> {
        let path = path.as_ref();
        let bytes =
            std::fs::read(path).map_err(|e| SmoreError::io(path.display().to_string(), &e))?;
        match artifact::kind_of(&bytes)? {
            ArtifactKind::Dense => Self::new(Smore::from_artifact_bytes(&bytes)?, config),
            ArtifactKind::Quantized => Err(SmoreError::InvalidConfig {
                what: format!(
                    "{} holds a frozen quantized model; per-tenant adaptation needs the dense \
                     artifact (Smore::save). Serve a frozen snapshot with QuantizedSmore::load \
                     instead.",
                    path.display()
                ),
            }),
            ArtifactKind::Delta => Err(SmoreError::InvalidConfig {
                what: format!(
                    "{} holds a per-tenant delta overlay, not a model; load the dense base \
                     artifact here and hand the delta to ServeEngine::resume_session.",
                    path.display()
                ),
            }),
        }
    }

    /// Calibrates the drift threshold from known in-distribution traffic,
    /// exactly like
    /// [`StreamingSmore::calibrate_drift_delta`](crate::StreamingSmore::calibrate_drift_delta).
    /// Calibrate **before** spawning sessions: existing sessions keep the
    /// threshold they were created with.
    ///
    /// # Errors
    ///
    /// [`SmoreError::InvalidConfig`] for an empty calibration set or a
    /// quantile outside `(0, 1)`; propagates encoder errors.
    pub fn calibrate_drift_delta(&mut self, windows: &[Matrix], quantile: f32) -> Result<f32> {
        self.drift_delta = drift_delta_quantile(&self.base, windows, quantile)?;
        Ok(self.drift_delta)
    }

    /// The shared base serving snapshot.
    pub fn base_snapshot(&self) -> Arc<QuantizedSmore> {
        Arc::clone(&self.base)
    }

    /// The frozen dense model tenant enrolments are trained against.
    pub fn dense(&self) -> &Smore {
        &self.dense
    }

    /// The streaming configuration every new session starts from.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// The drift threshold new sessions start with.
    pub fn drift_delta(&self) -> f32 {
        self.drift_delta
    }

    /// Number of tenant sessions created so far.
    pub fn tenants_created(&self) -> usize {
        // ordering: Relaxed — monotone stats counter, no ordering promised.
        self.tenants.load(Ordering::Relaxed)
    }

    /// Attaches an adaptation journal: every session created **after**
    /// this call records its lifecycle (OOD windows, drift firings,
    /// enrolments, snapshot swaps, personalization) into it with the
    /// session's tenant id. Existing sessions are unaffected.
    pub fn set_journal(&mut self, journal: Arc<EventJournal>) {
        self.journal = Some(journal);
    }

    /// The attached adaptation journal, if any.
    pub fn journal(&self) -> Option<&Arc<EventJournal>> {
        self.journal.as_ref()
    }

    /// Opens a fresh tenant session sharing the engine's base state. The
    /// session owns all of its adaptation machinery and is `Send` — hand
    /// it to the tenant's connection/actor thread.
    pub fn session(&self) -> TenantSession {
        // ordering: Relaxed — the counter only hands out distinct ids;
        // session state is owned by the caller, not published through it.
        let id = self.tenants.fetch_add(1, Ordering::Relaxed);
        self.session_with_id(id)
    }

    /// Opens a session attributed to a caller-chosen tenant id — the
    /// serving front-end passes the wire protocol's tenant id here so
    /// journal events carry the id the operator knows, not the engine's
    /// internal counter. Still counts toward
    /// [`tenants_created`](Self::tenants_created).
    pub fn session_for(&self, tenant: u64) -> TenantSession {
        // ordering: Relaxed — monotone stats counter, same as session().
        self.tenants.fetch_add(1, Ordering::Relaxed);
        self.session_with_id(tenant as usize)
    }

    fn session_with_id(&self, id: usize) -> TenantSession {
        TenantSession {
            id,
            dense: Arc::clone(&self.dense),
            base: Arc::clone(&self.base),
            delta: None,
            personal_models: Vec::new(),
            scratch: ServeScratch::new(),
            state: AdaptationState::new(self.config.clone(), self.drift_delta, self.next_tag),
            journal: self.journal.clone(),
        }
    }

    /// Rebuilds a suspended tenant session from the `DeltaV1` artifact
    /// bytes [`TenantSession::suspend`] produced: the personal delta is
    /// chained back onto this engine's base, the tag/step counters and
    /// enrolment history resume where eviction paused them, and repeat
    /// enrolments keep seeding from the tenant's earlier domains (rebuilt
    /// from their stored residual planes). Counts toward
    /// [`tenants_created`](Self::tenants_created) like any session.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::CorruptArtifact`] for malformed delta bytes.
    /// - [`SmoreError::InvalidConfig`] when the delta was built over a
    ///   different base than this engine serves.
    pub fn resume_session(&self, tenant: u64, bytes: &[u8]) -> Result<TenantSession> {
        let delta = SnapshotDelta::from_artifact_bytes(bytes)?;
        delta.matches_base(&self.base)?;
        let dense_config = self.dense.config();
        let personal_models =
            delta.dense_models(dense_config.learning_rate, dense_config.epochs)?;
        let events: Vec<AdaptationEvent> = delta
            .meta
            .records
            .iter()
            .map(|r| AdaptationEvent {
                tag: r.tag,
                step: r.step,
                enrolled_windows: r.enrolled_windows,
                oracle_labelled: r.oracle_labelled,
                enroll_seconds: r.enroll_nanos as f64 / 1e9,
                swap_seconds: r.swap_nanos as f64 / 1e9,
            })
            .collect();
        // A delta written before any enrolment carries tag 0; never let a
        // stale counter reuse a base tag.
        let next_tag = delta.meta.next_tag.max(self.next_tag);
        let steps = delta.meta.steps;
        // ordering: Relaxed — monotone stats counter, same as session().
        self.tenants.fetch_add(1, Ordering::Relaxed);
        Ok(TenantSession {
            id: tenant as usize,
            dense: Arc::clone(&self.dense),
            base: Arc::clone(&self.base),
            delta: Some(delta),
            personal_models,
            scratch: ServeScratch::new(),
            state: AdaptationState::resume(
                self.config.clone(),
                self.drift_delta,
                next_tag,
                steps,
                events,
            ),
            journal: self.journal.clone(),
        })
    }
}

/// Borrows the serving view for a session's current state — a free
/// function over the two disjoint fields so callers can keep `&mut`
/// access to the rest of the session (the scratch) while serving.
fn serving_view<'a>(
    base: &'a QuantizedSmore,
    delta: &'a Option<SnapshotDelta>,
) -> Result<ServingModel<'a>> {
    match delta {
        Some(delta) => Ok(ServingModel::Chained(DeltaSmore::new(base, delta)?)),
        None => Ok(ServingModel::Base(base)),
    }
}

/// One tenant's streaming session over the shared engine state (see the
/// [module docs](self)).
///
/// Serves from the shared base snapshot until this tenant's own drift
/// detector fires; then the tenant's new domain goes into a compact
/// personal [`SnapshotDelta`] — only the enrolled class planes,
/// descriptor and Gram growth — and all later serving (and further
/// enrolments) chain base + delta ([`DeltaSmore`]), bit-exact with a full
/// base clone but ~3 orders of magnitude smaller. Other tenants never
/// observe any of it.
#[derive(Debug)]
pub struct TenantSession {
    id: usize,
    dense: Arc<Smore>,
    base: Arc<QuantizedSmore>,
    /// Personal overlay: `None` until the first enrolment.
    delta: Option<SnapshotDelta>,
    /// Dense models of this tenant's enrolled domains — kept so repeat
    /// enrolments seed from base *and* personal models alike.
    personal_models: Vec<HdcClassifier>,
    scratch: ServeScratch,
    state: AdaptationState,
    /// Engine-attached adaptation journal (`None` = telemetry off).
    journal: Option<Arc<EventJournal>>,
}

impl TenantSession {
    /// The engine-assigned tenant id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// The model this tenant currently serves from: the shared base, or
    /// base + personal delta chained once adapted. Borrowed per call —
    /// taking this view clones nothing.
    pub fn serving_model(&self) -> ServingModel<'_> {
        serving_view(&self.base, &self.delta)
            // smore-lint: allow(panic_path) the session built its delta over this same base; the pairing cannot mismatch
            .expect("session delta is built over the session's own base")
    }

    /// Whether this tenant has enrolled at least one personal domain (and
    /// therefore owns a personal delta).
    pub fn is_personalized(&self) -> bool {
        self.delta.as_ref().is_some_and(|d| !d.is_empty())
    }

    /// The tenant's personal delta, if any enrolment has happened.
    pub fn delta(&self) -> Option<&SnapshotDelta> {
        self.delta.as_ref()
    }

    /// Resident bytes of the tenant's personal state (0 until the first
    /// enrolment) — what the eviction layer budgets against.
    pub fn delta_storage_bytes(&self) -> usize {
        self.delta.as_ref().map_or(0, SnapshotDelta::storage_bytes)
    }

    /// Domains in this tenant's serving model (base `K` + personal).
    pub fn num_domains(&self) -> usize {
        self.serving_model().num_domains()
    }

    /// Suspends this session into its persistent form: `Some(bytes)` of a
    /// `DeltaV1` `.smore` artifact when the tenant has personal state
    /// (delta domains plus tag/step counters and enrolment history),
    /// `None` when it has none worth keeping — a never-personalized
    /// session is fully reconstructed by [`ServeEngine::session_for`].
    pub fn suspend(mut self) -> Option<Vec<u8>> {
        let steps = self.state.steps();
        let next_tag = self.state.next_tag();
        self.delta.as_mut().map(|delta| {
            delta.meta.steps = steps;
            delta.meta.next_tag = next_tag;
            delta.to_artifact_bytes()
        })
    }

    /// Enrolments this tenant performed, in stream order.
    pub fn events(&self) -> &[AdaptationEvent] {
        self.state.events()
    }

    /// Total windows this tenant ingested.
    pub fn steps(&self) -> usize {
        self.state.steps()
    }

    /// Queries currently buffered for enrolment.
    pub fn buffered(&self) -> usize {
        self.state.buffered()
    }

    /// The drift threshold this session runs with.
    pub fn drift_delta(&self) -> f32 {
        self.state.drift_delta()
    }

    /// OOD fraction over this tenant's detector window.
    pub fn recent_ood_fraction(&self) -> f32 {
        self.state.ood_fraction()
    }

    /// Encode/score split of the most recent predict or ingest served
    /// through this session's scratch — the serving front-end's source for
    /// per-stage latency histograms on the stateful path.
    pub fn last_timings(&self) -> smore::PredictTimings {
        self.scratch.timings()
    }

    /// Serves one window through this tenant's current snapshot and
    /// session scratch **without** touching adaptation state — the
    /// read-only fast path network front-ends use for pure predict
    /// requests (no OOD buffering, no drift accounting, no step count).
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows.
    pub fn predict_window(&mut self, window: &Matrix) -> Result<&smore::Prediction> {
        use smore::Predictor;
        let serving = serving_view(&self.base, &self.delta)?;
        serving.predict_window_with(window, &mut self.scratch)
    }

    /// Ingests one unlabelled window: serve, buffer if OOD, adapt (into
    /// the personal overlay) if drift fires.
    ///
    /// # Errors
    ///
    /// Propagates encoder errors for malformed windows and enrolment
    /// errors; a failed ingest does not corrupt the session.
    pub fn ingest(&mut self, window: &Matrix) -> Result<StreamOutcome> {
        self.observe(window, None)
    }

    /// Ingests one window with ground truth — the
    /// [`LabelStrategy::Oracle`](crate::LabelStrategy::Oracle) path.
    ///
    /// # Errors
    ///
    /// - [`SmoreError::InvalidConfig`] for an out-of-range label.
    /// - Same conditions as [`ingest`](Self::ingest) otherwise.
    pub fn ingest_labelled(&mut self, window: &Matrix, label: usize) -> Result<StreamOutcome> {
        let num_classes = self.dense.config().num_classes;
        if label >= num_classes {
            return Err(SmoreError::InvalidConfig {
                what: format!("label {label} out of range for {num_classes} classes"),
            });
        }
        self.observe(window, Some(label))
    }

    /// Ingests a micro-batch in arrival order.
    ///
    /// # Errors
    ///
    /// Stops at (and propagates) the first failing window.
    pub fn ingest_batch(&mut self, windows: &[Matrix]) -> Result<Vec<StreamOutcome>> {
        windows.iter().map(|w| self.ingest(w)).collect()
    }

    /// Records one lifecycle event with this tenant's attribution.
    fn emit(&self, kind: EventKind, step: usize, a: u64, b: u64, nanos: u64) {
        if let Some(journal) = &self.journal {
            journal.push(Event { kind, tenant: self.id as u64, step: step as u64, a, b, nanos });
        }
    }

    fn observe(&mut self, window: &Matrix, true_label: Option<usize>) -> Result<StreamOutcome> {
        use smore::Predictor;
        // Serve through the session scratch from whichever view this
        // tenant currently owns — no lock, no Arc clone, no model copy.
        let serving = serving_view(&self.base, &self.delta)?;
        let prediction = serving.predict_window_with(window, &mut self.scratch)?.clone();
        let outcome = self.state.observe(window, &prediction, true_label);
        if self.journal.is_some() {
            let step = self.state.steps().saturating_sub(1);
            if outcome.buffered {
                self.emit(EventKind::OodWindow, step, self.state.buffered() as u64, 0, 0);
            }
            if outcome.drift_fired {
                self.emit(EventKind::DriftFired, step, self.state.buffered() as u64, 0, 0);
            }
        }
        let adapted = match outcome.plan {
            Some(plan) => {
                self.emit(
                    EventKind::EnrollStart,
                    plan.step,
                    plan.windows.len() as u64,
                    plan.oracle_labelled as u64,
                    0,
                );
                Some(self.adapt(plan)?)
            }
            None => None,
        };
        Ok(StreamOutcome { prediction, buffered: outcome.buffered, adapted })
    }

    /// Drift fired for this tenant: train the new domain against the
    /// shared frozen dense model (plus this tenant's earlier personal
    /// models), then append it to the personal delta — only the new class
    /// planes, descriptor and Gram growth; the base is never copied.
    fn adapt(&mut self, plan: EnrollmentPlan) -> Result<AdaptationEvent> {
        let t0 = Instant::now();
        let prep = self.dense.prepare_domain(&plan.windows, &plan.labels, &self.personal_models)?;
        let enroll_seconds = t0.elapsed().as_secs_f64();

        let t1 = Instant::now();
        let had_personal = self.delta.is_some();
        let mut delta = self.delta.take().unwrap_or_else(|| SnapshotDelta::new(&self.base));
        if let Err(e) = delta.enroll_domain(&self.base, &prep.model, &prep.descriptor, plan.tag) {
            // The delta is unchanged on error; keep the session serving
            // exactly what it served before (a fresh empty one is dropped).
            self.delta = had_personal.then_some(delta);
            return Err(e);
        }
        let swap_seconds = t1.elapsed().as_secs_f64();
        delta.meta.next_tag = plan.tag + 1;
        delta.meta.records.push(DeltaEnrollmentRecord {
            tag: plan.tag,
            step: plan.step,
            enrolled_windows: prep.samples,
            oracle_labelled: plan.oracle_labelled,
            enroll_nanos: seconds_to_nanos(enroll_seconds),
            swap_nanos: seconds_to_nanos(swap_seconds),
        });
        self.delta = Some(delta);
        self.personal_models.push(prep.model);

        self.emit(
            EventKind::EnrollFinished,
            plan.step,
            prep.samples as u64,
            plan.oracle_labelled as u64,
            seconds_to_nanos(enroll_seconds),
        );
        self.emit(EventKind::SnapshotSwap, plan.step, 0, 0, seconds_to_nanos(swap_seconds));
        if !had_personal {
            self.emit(EventKind::Personalized, plan.step, self.personal_models.len() as u64, 0, 0);
        }

        let event = AdaptationEvent {
            tag: plan.tag,
            step: plan.step,
            enrolled_windows: prep.samples,
            oracle_labelled: plan.oracle_labelled,
            enroll_seconds,
            swap_seconds,
        };
        self.state.record(event.clone());
        Ok(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore::SmoreConfig;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;
    use smore_data::stream::{concept_drift_stream, DriftSegment, StreamConfig};

    fn shifted_dataset(seed: u64) -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "engine-test".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: (0..4)
                .map(|d| DomainSpec { subjects: vec![2 * d, 2 * d + 1], windows: 80 })
                .collect(),
            shift_severity: 1.2,
            seed,
        })
        .unwrap()
    }

    fn fitted(ds: &smore_data::Dataset, train: &[usize]) -> Smore {
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(1024)
                .channels(3)
                .num_classes(4)
                .epochs(10)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        model.fit_indices(ds, train).unwrap();
        model
    }

    fn engine_config() -> StreamingConfig {
        StreamingConfig {
            buffer_capacity: 128,
            drift_window: 32,
            drift_threshold: 0.5,
            min_enroll: 24,
            cooldown: 32,
            label_strategy: crate::LabelStrategy::Oracle,
            ..StreamingConfig::default()
        }
    }

    /// The calibrated 1.5×-gain new-user scenario from the streaming
    /// regression tests.
    fn drifted_segment(windows: usize) -> DriftSegment {
        DriftSegment { domain: 3, windows, gain_ramp: Some((1.5, 1.5)), dropout_channel: None }
    }

    fn calibrated_engine(ds: &smore_data::Dataset, train: &[usize]) -> ServeEngine {
        let mut engine = ServeEngine::new(fitted(ds, train), engine_config()).unwrap();
        let (calib_w, _, _) = ds.gather(train);
        engine.calibrate_drift_delta(&calib_w, 0.25).unwrap();
        engine
    }

    #[test]
    fn engine_validates_inputs() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let model = fitted(&ds, &train);
        let bad = StreamingConfig { buffer_capacity: 0, ..engine_config() };
        assert!(ServeEngine::new(model.clone(), bad).is_err());
        let unfitted =
            Smore::new(SmoreConfig::builder().dim(256).channels(3).num_classes(4).build().unwrap())
                .unwrap();
        assert!(matches!(ServeEngine::new(unfitted, engine_config()), Err(SmoreError::NotFitted)));
        // Calibration validation flows through the shared helper.
        let mut engine = ServeEngine::new(model, engine_config()).unwrap();
        assert!(engine.calibrate_drift_delta(&[], 0.25).is_err());
        let w = vec![ds.window(0).clone()];
        assert!(engine.calibrate_drift_delta(&w, 0.0).is_err());
        assert!(engine.calibrate_drift_delta(&w, 1.0).is_err());
    }

    #[test]
    fn quantile_index_uses_nearest_rank_not_truncation() {
        // The motivating case: `as usize` floored 8.1 to 8. Calibration now
        // routes through the one shared workspace helper — pin the behavior
        // at this call site too.
        use smore::metrics::nearest_rank_index;
        assert_eq!(nearest_rank_index(10, 0.9), 9);
        assert_eq!(nearest_rank_index(10, 0.5), 5);
        assert_eq!(nearest_rank_index(10, 0.25), 3);
        // Exactly representable products are not over-rounded.
        assert_eq!(nearest_rank_index(9, 0.25), 2);
        assert_eq!(nearest_rank_index(5, 0.5), 2);
        // Degenerate sizes stay in bounds.
        assert_eq!(nearest_rank_index(1, 0.9), 0);
        assert_eq!(nearest_rank_index(2, 0.99), 1);
    }

    #[test]
    fn calibration_rejects_non_finite_windows_instead_of_panicking() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut engine = ServeEngine::new(fitted(&ds, &train), engine_config()).unwrap();
        let mut windows: Vec<Matrix> = (0..6).map(|i| ds.window(i).clone()).collect();

        // One NaN cell in one calibration window: a typed error, not the
        // old partial_cmp panic (and not a silently-poisoned threshold).
        windows[3].set(5, 1, f32::NAN);
        let err = engine.calibrate_drift_delta(&windows, 0.5).unwrap_err();
        assert!(matches!(err, SmoreError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("non-finite"), "{err}");

        // Infinity is rejected the same way.
        windows[3].set(5, 1, f32::INFINITY);
        assert!(engine.calibrate_drift_delta(&windows, 0.5).is_err());

        // Restoring finiteness restores calibration.
        windows[3].set(5, 1, 0.0);
        let delta = engine.calibrate_drift_delta(&windows, 0.5).unwrap();
        assert!(delta.is_finite());
    }

    #[test]
    fn tenants_share_the_base_until_they_drift() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let engine = calibrated_engine(&ds, &train);
        assert_eq!(engine.tenants_created(), 0);

        let mut steady = engine.session();
        let mut drifter = engine.session();
        assert_eq!((steady.id(), drifter.id()), (0, 1));
        assert_eq!(engine.tenants_created(), 2);

        // Steady tenant sees only in-distribution traffic (the exact
        // stream the session regression test pins as non-firing).
        let calm = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 40), DriftSegment::plain(1, 40)],
                seed: 5,
            },
        )
        .unwrap();
        // The drifting tenant is the calibrated 1.5×-gain new user.
        let stormy = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 100), drifted_segment(140)],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();

        for item in &calm {
            let outcome = steady.ingest_labelled(&item.window, item.label).unwrap();
            assert!(outcome.adapted.is_none());
        }
        let mut adapted = false;
        for item in &stormy {
            let outcome = drifter.ingest_labelled(&item.window, item.label).unwrap();
            if outcome.adapted.is_some() {
                adapted = true;
                assert_eq!(item.segment, 1, "no false fire on in-distribution traffic");
            }
        }
        assert!(adapted, "sustained drift must fire the tenant's detector");

        // Isolation: the drifter personalized (possibly re-enrolling under
        // sustained drift, its later domains seeded from its earlier ones);
        // the steady tenant and the engine's base are untouched.
        assert!(drifter.is_personalized());
        assert!(!drifter.events().is_empty());
        assert_eq!(drifter.num_domains(), 3 + drifter.events().len());
        assert!(!steady.is_personalized(), "copy-on-adapt must not touch other tenants");
        assert_eq!(steady.num_domains(), 3);
        assert_eq!(engine.base_snapshot().num_domains(), 3);
        assert_eq!(engine.dense().num_domains().unwrap(), 3, "shared dense model stays frozen");

        // A fresh session still starts from the shared base.
        let fresh = engine.session();
        assert!(!fresh.is_personalized());
        assert_eq!(fresh.num_domains(), 3);
    }

    #[test]
    fn journal_accounts_for_every_enrolment() {
        use smore_obs::{EventJournal, EventKind};

        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut engine = calibrated_engine(&ds, &train);
        // Capacity comfortably above the event volume of this run, so
        // nothing wraps and the tail is a complete account.
        let journal = Arc::new(EventJournal::new(4096));
        engine.set_journal(Arc::clone(&journal));
        assert!(engine.journal().is_some());

        let stormy = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 100), drifted_segment(140)],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();
        let mut drifter = engine.session();
        let mut steady = engine.session();
        for item in &stormy {
            drifter.ingest_labelled(&item.window, item.label).unwrap();
        }
        for item in stormy.iter().filter(|i| i.segment == 0) {
            steady.ingest_labelled(&item.window, item.label).unwrap();
        }
        assert!(drifter.is_personalized());

        let snap = journal.snapshot();
        assert_eq!(journal.dropped(), 0, "single-threaded run must not drop");
        assert_eq!(snap.events.len() as u64, journal.pushed(), "nothing wrapped");

        // Every enrolment the engine reports appears in the journal —
        // started, finished, and followed by a snapshot swap.
        let enrolments = drifter.events().len() + steady.events().len();
        assert!(enrolments > 0);
        assert_eq!(snap.count_of(EventKind::EnrollStart), enrolments);
        assert_eq!(snap.count_of(EventKind::EnrollFinished), enrolments);
        assert_eq!(snap.count_of(EventKind::SnapshotSwap), enrolments);
        assert_eq!(snap.count_of(EventKind::Personalized), 1, "only the drifter personalizes");
        assert!(snap.count_of(EventKind::DriftFired) >= enrolments);
        assert!(snap.count_of(EventKind::OodWindow) >= engine.config().min_enroll);

        // Attribution: every enrolment event carries the drifter's id; the
        // enrolled-window payload matches the engine's own record.
        let finished: Vec<_> =
            snap.events.iter().filter(|e| e.kind == EventKind::EnrollFinished).collect();
        for (event, record) in finished.iter().zip(drifter.events()) {
            assert_eq!(event.tenant, drifter.id() as u64);
            assert_eq!(event.a, record.enrolled_windows as u64);
            assert_eq!(event.step, record.step as u64);
        }
        // The steady tenant never journals an enrolment.
        assert!(snap
            .events
            .iter()
            .all(|e| e.kind == EventKind::OodWindow || e.tenant == drifter.id() as u64));
    }

    #[test]
    fn tenant_adaptation_improves_that_tenants_accuracy() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let engine = calibrated_engine(&ds, &train);
        let mut tenant = engine.session();
        let items = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![
                    DriftSegment::plain(0, 100),
                    drifted_segment(140),
                    drifted_segment(100),
                ],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();
        for item in items.iter().filter(|i| i.segment < 2) {
            tenant.ingest_labelled(&item.window, item.label).unwrap();
        }
        assert!(tenant.is_personalized(), "drift fires on the 1.5×-gain user");
        let eval_w: Vec<_> =
            items.iter().filter(|i| i.segment == 2).map(|i| i.window.clone()).collect();
        let eval_l: Vec<_> = items.iter().filter(|i| i.segment == 2).map(|i| i.label).collect();
        let pre = engine.base_snapshot().evaluate(&eval_w, &eval_l).unwrap().accuracy;
        let post = tenant.serving_model().evaluate(&eval_w, &eval_l).unwrap().accuracy;
        assert!(
            post - pre >= 0.10,
            "tenant accuracy {post} must beat the shared base {pre} by >= 10 points"
        );
    }

    #[test]
    fn failed_ingest_leaves_tenant_usable() {
        let ds = shifted_dataset(6);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let engine = ServeEngine::new(fitted(&ds, &train), engine_config()).unwrap();
        let mut tenant = engine.session();
        assert!(tenant.ingest(&Matrix::zeros(24, 9)).is_err());
        let outcome = tenant.ingest(ds.window(0)).unwrap();
        assert!(outcome.prediction.label < 4);
        assert_eq!(tenant.steps(), 1, "failed ingest does not consume a step");
        // Label validation.
        assert!(tenant.ingest_labelled(ds.window(0), 99).is_err());
    }

    #[test]
    fn suspend_resume_round_trips_personal_state() {
        use smore::Predictor;

        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let engine = calibrated_engine(&ds, &train);

        // A base-only session has nothing worth suspending.
        assert!(engine.session().suspend().is_none());

        let mut tenant = engine.session_for(42);
        let items = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment::plain(0, 100), drifted_segment(140)],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap();
        for item in &items {
            tenant.ingest_labelled(&item.window, item.label).unwrap();
        }
        assert!(tenant.is_personalized());

        let eval: Vec<Matrix> =
            items.iter().filter(|i| i.segment == 1).map(|i| i.window.clone()).collect();
        let before = tenant.serving_model().predict_batch(&eval).unwrap();
        let events = tenant.events().to_vec();
        let (steps, domains) = (tenant.steps(), tenant.num_domains());

        let bytes = tenant.suspend().expect("personalized session suspends to delta bytes");
        assert!(bytes.len() < 32 << 10, "delta artifact is KiB-scale, got {}", bytes.len());

        let resumed = engine.resume_session(42, &bytes).unwrap();
        assert_eq!(resumed.id(), 42);
        assert!(resumed.is_personalized());
        assert_eq!(resumed.steps(), steps);
        assert_eq!(resumed.num_domains(), domains);
        assert_eq!(resumed.events().len(), events.len());
        for (a, b) in resumed.events().iter().zip(&events) {
            assert_eq!(
                (a.tag, a.step, a.enrolled_windows, a.oracle_labelled),
                (b.tag, b.step, b.enrolled_windows, b.oracle_labelled)
            );
        }
        let after = resumed.serving_model().predict_batch(&eval).unwrap();
        assert_eq!(after, before, "resume must not move one bit of the serving path");

        // Malformed bytes are refused typed.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 1;
        assert!(matches!(engine.resume_session(42, &bad), Err(SmoreError::CorruptArtifact { .. })));
        // A delta built over a differently-shaped base is refused before it
        // can chain onto the wrong model.
        let mut other_model = Smore::new(
            SmoreConfig::builder()
                .dim(512)
                .channels(3)
                .num_classes(4)
                .epochs(4)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        other_model.fit_indices(&ds, &train).unwrap();
        let other = ServeEngine::new(other_model, engine_config()).unwrap();
        assert!(matches!(other.resume_session(42, &bytes), Err(SmoreError::InvalidConfig { .. })));
    }

    #[test]
    fn from_artifact_requires_the_dense_kind() {
        let ds = shifted_dataset(6);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let model = fitted(&ds, &train);
        let dir = std::env::temp_dir().join("smore_engine_test");
        std::fs::create_dir_all(&dir).unwrap();

        // Quantized artifact: typed refusal pointing to QuantizedSmore::load.
        let qpath = dir.join("frozen.smore");
        model.quantize().unwrap().save(&qpath).unwrap();
        let err = ServeEngine::from_artifact(&qpath, engine_config()).unwrap_err();
        assert!(err.to_string().contains("QuantizedSmore::load"), "{err}");

        // Dense artifact round trip: the engine's base equals a direct
        // quantize of the original model, bit for bit.
        let dpath = dir.join("dense.smore");
        model.save(&dpath).unwrap();
        let engine = ServeEngine::from_artifact(&dpath, engine_config()).unwrap();
        let windows: Vec<Matrix> = (0..10).map(|i| ds.window(i).clone()).collect();
        let from_artifact = engine.base_snapshot().predict_batch(&windows).unwrap();
        let from_memory = model.quantize().unwrap().predict_batch(&windows).unwrap();
        assert_eq!(from_artifact, from_memory, "artifact-loaded engine serves bit-identically");

        // Missing file is a typed Io error.
        assert!(matches!(
            ServeEngine::from_artifact(dir.join("absent.smore"), engine_config()),
            Err(SmoreError::Io { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
