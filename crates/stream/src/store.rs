//! Bounded resident-session store: LRU eviction to compact delta
//! artifacts, lazy rehydration on the tenant's next request.
//!
//! A serving worker used to keep every [`TenantSession`] it had ever
//! opened in an unbounded map — fine for a demo fleet, an OOM time bomb
//! at the ROADMAP's million-tenant scale. [`SessionStore`] is the
//! replacement: a fixed budget of resident sessions and resident
//! personalized bytes, with everything over budget *suspended* rather
//! than lost.
//!
//! - **Access** goes through [`SessionStore::with_session`]: resident
//!   sessions are served in place; an evicted tenant is transparently
//!   rebuilt from its archived `DeltaV1` bytes
//!   ([`ServeEngine::resume_session`]) before the closure runs; an
//!   unknown tenant gets a fresh session off the shared base.
//! - **Eviction** pops least-recently-used sessions (never the one being
//!   accessed) whenever either cap is exceeded. A personalized session
//!   suspends to its compact delta artifact — KiB against the ~half-MiB a
//!   resident full-model clone used to pin — and a never-personalized
//!   session is simply dropped, because the engine can rebuild it from
//!   nothing.
//!
//! Every eviction and rehydration is journalled
//! ([`EventKind::SessionEvicted`] / [`EventKind::SessionHydrated`]) when
//! the engine carries a journal, so the serving telemetry sees churn the
//! same way it sees drift.
//!
//! The store is single-owner by design (each serve worker shards tenants
//! and owns one store) — no locks anywhere.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use smore::SmoreError;
use smore_obs::{Event, EventKind};

use crate::engine::{ServeEngine, TenantSession};
use crate::persist::StateDir;
use crate::Result;

/// Duration → whole nanoseconds, saturating.
fn elapsed_nanos(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Where suspended tenant state is parked: PR 8's in-memory map, or the
/// durable [`StateDir`] tier. The disk tier keeps an in-memory
/// `overflow` for bytes the disk refused (full, unwritable): serving
/// availability beats durability, so a failed archive write degrades to
/// exactly the memory-tier behaviour — counted, never lost silently.
#[derive(Debug)]
enum ArchiveTier {
    Memory { map: HashMap<u64, Vec<u8>>, bytes: usize },
    Disk { state: StateDir, overflow: HashMap<u64, Vec<u8>>, overflow_bytes: usize },
}

impl ArchiveTier {
    fn memory() -> Self {
        ArchiveTier::Memory { map: HashMap::new(), bytes: 0 }
    }

    fn tenants(&self) -> usize {
        match self {
            ArchiveTier::Memory { map, .. } => map.len(),
            ArchiveTier::Disk { state, overflow, .. } => state.len() + overflow.len(),
        }
    }

    fn bytes(&self) -> usize {
        match self {
            ArchiveTier::Memory { bytes, .. } => *bytes,
            ArchiveTier::Disk { state, overflow_bytes, .. } => {
                usize::try_from(state.total_bytes()).unwrap_or(usize::MAX) + overflow_bytes
            }
        }
    }

    fn contains(&self, tenant: u64) -> bool {
        match self {
            ArchiveTier::Memory { map, .. } => map.contains_key(&tenant),
            ArchiveTier::Disk { state, overflow, .. } => {
                overflow.contains_key(&tenant) || state.contains(tenant)
            }
        }
    }

    /// The in-memory archived bytes for `tenant` (the memory map or the
    /// disk tier's overflow) — committed on-disk state is not loaded.
    fn peek(&self, tenant: u64) -> Option<&[u8]> {
        match self {
            ArchiveTier::Memory { map, .. } => map.get(&tenant).map(Vec::as_slice),
            ArchiveTier::Disk { overflow, .. } => overflow.get(&tenant).map(Vec::as_slice),
        }
    }

    /// Parks `tenant`'s suspended bytes. Disk-tier write failures fall
    /// back to the in-memory overflow (and count in
    /// [`StateDir::write_failures`]).
    fn insert(&mut self, tenant: u64, bytes: Vec<u8>) {
        match self {
            ArchiveTier::Memory { map, bytes: total } => {
                *total += bytes.len();
                if let Some(stale) = map.insert(tenant, bytes) {
                    *total = total.saturating_sub(stale.len());
                }
            }
            ArchiveTier::Disk { state, overflow, overflow_bytes } => {
                if let Some(stale) = overflow.remove(&tenant) {
                    *overflow_bytes = overflow_bytes.saturating_sub(stale.len());
                }
                if let Err(e) = state.write(tenant, &bytes) {
                    smore_obs::warn!(
                        "store",
                        "archive write for tenant {tenant} failed ({e}); keeping state in memory"
                    );
                    *overflow_bytes += bytes.len();
                    overflow.insert(tenant, bytes);
                }
            }
        }
    }

    /// Removes and returns `tenant`'s archived bytes, reading through
    /// memory → disk.
    fn take(&mut self, tenant: u64) -> Result<Option<Vec<u8>>> {
        match self {
            ArchiveTier::Memory { map, bytes: total } => Ok(map.remove(&tenant).inspect(|b| {
                *total = total.saturating_sub(b.len());
            })),
            ArchiveTier::Disk { state, overflow, overflow_bytes } => {
                if let Some(bytes) = overflow.remove(&tenant) {
                    *overflow_bytes = overflow_bytes.saturating_sub(bytes.len());
                    return Ok(Some(bytes));
                }
                state.take(tenant)
            }
        }
    }

    /// Puts `tenant`'s bytes back after a failed resume. The memory
    /// tier (and the disk overflow) re-inserts them for inspection; the
    /// disk tier quarantines the on-disk artifact instead. Returns
    /// whether a file was quarantined (the caller journals it).
    fn restore_failed(&mut self, tenant: u64, bytes: Vec<u8>) -> bool {
        match self {
            ArchiveTier::Memory { map, bytes: total } => {
                *total += bytes.len();
                map.insert(tenant, bytes);
                false
            }
            ArchiveTier::Disk { state, overflow, overflow_bytes } => {
                if state.quarantine(tenant) {
                    true
                } else {
                    *overflow_bytes += bytes.len();
                    overflow.insert(tenant, bytes);
                    false
                }
            }
        }
    }
}

/// One resident session plus its LRU and byte bookkeeping.
#[derive(Debug)]
struct Entry {
    session: TenantSession,
    /// The monotone access tick keying this entry in the LRU index.
    tick: u64,
    /// Personal-state bytes counted toward the store's byte budget at the
    /// tenant's last access.
    delta_bytes: usize,
}

/// A bounded, LRU-evicting map from tenant id to resident
/// [`TenantSession`] (see the [module docs](self)).
#[derive(Debug)]
pub struct SessionStore {
    engine: Arc<ServeEngine>,
    max_sessions: usize,
    max_delta_bytes: usize,
    resident: HashMap<u64, Entry>,
    /// LRU index: access tick → tenant. Ticks are unique, so the smallest
    /// key is always the least recently used resident.
    lru: BTreeMap<u64, u64>,
    /// Suspended personal state of evicted tenants, as `DeltaV1` bytes —
    /// in memory, or durable on disk when built with
    /// [`SessionStore::new_persistent`].
    tier: ArchiveTier,
    resident_delta_bytes: usize,
    tick: u64,
    evictions: u64,
    hydrations: u64,
}

impl SessionStore {
    /// A store over `engine` holding at most `max_sessions` resident
    /// sessions and at most `max_delta_bytes` of resident personalized
    /// state (both enforced after every access; the session being
    /// accessed is never evicted by its own access).
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when `max_sessions` is zero.
    pub fn new(
        engine: Arc<ServeEngine>,
        max_sessions: usize,
        max_delta_bytes: usize,
    ) -> Result<Self> {
        Self::with_tier(engine, max_sessions, max_delta_bytes, ArchiveTier::memory())
    }

    /// Like [`SessionStore::new`], but with the archive backed by a
    /// durable [`StateDir`]: evicted personalization is written to disk
    /// (surviving the process), rehydration reads through the in-memory
    /// overflow to disk, and the state the directory scan recovered from
    /// a previous process is immediately servable. Use
    /// [`SessionStore::drain`] before exit to also persist the sessions
    /// still resident.
    ///
    /// # Errors
    ///
    /// Returns [`SmoreError::InvalidConfig`] when `max_sessions` is zero.
    pub fn new_persistent(
        engine: Arc<ServeEngine>,
        max_sessions: usize,
        max_delta_bytes: usize,
        state: StateDir,
    ) -> Result<Self> {
        Self::with_tier(
            engine,
            max_sessions,
            max_delta_bytes,
            ArchiveTier::Disk { state, overflow: HashMap::new(), overflow_bytes: 0 },
        )
    }

    fn with_tier(
        engine: Arc<ServeEngine>,
        max_sessions: usize,
        max_delta_bytes: usize,
        tier: ArchiveTier,
    ) -> Result<Self> {
        if max_sessions == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "session store needs max_sessions >= 1".into(),
            });
        }
        Ok(Self {
            engine,
            max_sessions,
            max_delta_bytes,
            resident: HashMap::new(),
            lru: BTreeMap::new(),
            tier,
            resident_delta_bytes: 0,
            tick: 0,
            evictions: 0,
            hydrations: 0,
        })
    }

    /// The shared engine sessions are opened against.
    pub fn engine(&self) -> &Arc<ServeEngine> {
        &self.engine
    }

    /// Resident sessions right now.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether no session is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// The resident-session cap.
    pub fn max_sessions(&self) -> usize {
        self.max_sessions
    }

    /// The resident personalized-byte cap.
    pub fn max_delta_bytes(&self) -> usize {
        self.max_delta_bytes
    }

    /// Resident personal-state bytes currently counted against the byte
    /// cap.
    pub fn resident_delta_bytes(&self) -> usize {
        self.resident_delta_bytes
    }

    /// Evicted tenants whose personal state is parked as delta bytes.
    pub fn archived_tenants(&self) -> usize {
        self.tier.tenants()
    }

    /// Total archived delta bytes (on disk plus any in-memory overflow
    /// under a persistent store).
    pub fn archived_bytes(&self) -> usize {
        self.tier.bytes()
    }

    /// Sessions evicted since creation.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Sessions rehydrated from archived deltas since creation.
    pub fn hydrations(&self) -> u64 {
        self.hydrations
    }

    /// Whether the archive is backed by a durable [`StateDir`].
    pub fn persists(&self) -> bool {
        matches!(self.tier, ArchiveTier::Disk { .. })
    }

    /// Tenant-state files recovered from disk by the startup scan
    /// (0 for an in-memory store).
    pub fn state_recovered(&self) -> u64 {
        match &self.tier {
            ArchiveTier::Memory { .. } => 0,
            ArchiveTier::Disk { state, .. } => state.recovered(),
        }
    }

    /// Tenant-state files quarantined — torn, corrupt or unresumable
    /// (0 for an in-memory store).
    pub fn state_quarantined(&self) -> u64 {
        match &self.tier {
            ArchiveTier::Memory { .. } => 0,
            ArchiveTier::Disk { state, .. } => state.quarantined(),
        }
    }

    /// Archive writes the disk refused; the state fell back to memory
    /// (0 for an in-memory store).
    pub fn state_write_failures(&self) -> u64 {
        match &self.tier {
            ArchiveTier::Memory { .. } => 0,
            ArchiveTier::Disk { state, .. } => state.write_failures(),
        }
    }

    /// Whether `tenant` currently holds a resident session.
    pub fn is_resident(&self, tenant: u64) -> bool {
        self.resident.contains_key(&tenant)
    }

    /// Whether `tenant` is evicted with archived personal state — i.e. it
    /// would rehydrate (not start fresh) on its next access.
    pub fn has_archived(&self, tenant: u64) -> bool {
        self.tier.contains(tenant)
    }

    /// The archived delta bytes held *in memory* for `tenant`, if any —
    /// under a persistent store, state committed to disk is not loaded
    /// by this accessor.
    pub fn archived_delta(&self, tenant: u64) -> Option<&[u8]> {
        self.tier.peek(tenant)
    }

    /// Iterates the resident sessions (unspecified order) — the gauge
    /// scrape surface.
    pub fn sessions(&self) -> impl Iterator<Item = &TenantSession> {
        self.resident.values().map(|e| &e.session)
    }

    /// Peeks at `tenant`'s resident session **without** touching LRU
    /// order or rehydrating — for routing decisions (is this tenant
    /// answerable from the shared base?), not for serving.
    pub fn get(&self, tenant: u64) -> Option<&TenantSession> {
        self.resident.get(&tenant).map(|e| &e.session)
    }

    /// Runs `f` against `tenant`'s session, making it resident first if
    /// needed: rehydrated from its archived delta, or opened fresh off
    /// the shared base. Afterwards the tenant's byte accounting is
    /// refreshed (the closure may have enrolled a domain) and the LRU
    /// caps are enforced against every *other* resident.
    ///
    /// # Errors
    ///
    /// Propagates rehydration failures (corrupt archived bytes, base
    /// mismatch); the archived bytes are kept for inspection and the
    /// closure never runs.
    pub fn with_session<T>(
        &mut self,
        tenant: u64,
        f: impl FnOnce(&mut TenantSession) -> T,
    ) -> Result<T> {
        self.touch(tenant)?;
        // smore-lint: allow(panic_path) touch() either hydrated the tenant or returned an error
        let entry = self.resident.get_mut(&tenant).expect("touched tenant is resident");
        let out = f(&mut entry.session);
        let bytes = entry.session.delta_storage_bytes();
        self.resident_delta_bytes =
            (self.resident_delta_bytes + bytes).saturating_sub(entry.delta_bytes);
        entry.delta_bytes = bytes;
        self.evict_to_caps(tenant);
        Ok(out)
    }

    /// Makes `tenant` resident and most-recently-used.
    fn touch(&mut self, tenant: u64) -> Result<()> {
        self.tick += 1;
        let tick = self.tick;
        if let Some(entry) = self.resident.get_mut(&tenant) {
            self.lru.remove(&entry.tick);
            entry.tick = tick;
            self.lru.insert(tick, tenant);
            return Ok(());
        }
        let session = match self.tier.take(tenant)? {
            Some(bytes) => {
                let t0 = Instant::now();
                match self.engine.resume_session(tenant, &bytes) {
                    Ok(session) => {
                        self.hydrations += 1;
                        self.emit(Event {
                            kind: EventKind::SessionHydrated,
                            tenant,
                            step: session.steps() as u64,
                            a: bytes.len() as u64,
                            b: session.delta().map_or(0, |d| d.num_domains()) as u64,
                            nanos: elapsed_nanos(t0),
                        });
                        session
                    }
                    Err(e) => {
                        // Keep the bytes: the operator can still extract
                        // or repair them; serving just fails typed. The
                        // memory tier re-archives them; the disk tier
                        // quarantines the file instead.
                        let len = bytes.len();
                        if self.tier.restore_failed(tenant, bytes) {
                            self.emit(Event {
                                kind: EventKind::StateQuarantined,
                                tenant,
                                step: 0,
                                a: len as u64,
                                b: 0,
                                nanos: elapsed_nanos(t0),
                            });
                        }
                        return Err(e);
                    }
                }
            }
            None => self.engine.session_for(tenant),
        };
        let delta_bytes = session.delta_storage_bytes();
        self.resident_delta_bytes += delta_bytes;
        self.resident.insert(tenant, Entry { session, tick, delta_bytes });
        self.lru.insert(tick, tenant);
        Ok(())
    }

    /// Evicts least-recently-used residents until both caps hold.
    /// `protect` (the tenant just accessed — always the newest tick) is
    /// never evicted; when it is the only resident, a byte budget it
    /// exceeds on its own is tolerated rather than thrashed on.
    fn evict_to_caps(&mut self, protect: u64) {
        while self.resident.len() > self.max_sessions
            || self.resident_delta_bytes > self.max_delta_bytes
        {
            let Some((&tick, &tenant)) = self.lru.iter().next() else { break };
            if tenant == protect {
                break;
            }
            self.evict_entry(tick, tenant);
        }
    }

    /// Suspends and removes one resident: personalized sessions archive
    /// their delta bytes, base-only sessions vanish (the engine rebuilds
    /// them from nothing).
    fn evict_entry(&mut self, tick: u64, tenant: u64) {
        self.lru.remove(&tick);
        let Some(entry) = self.resident.remove(&tenant) else { return };
        self.resident_delta_bytes = self.resident_delta_bytes.saturating_sub(entry.delta_bytes);
        let step = entry.session.steps() as u64;
        let t0 = Instant::now();
        let archived = entry.session.suspend();
        let nanos = elapsed_nanos(t0);
        let archived_len = archived.as_ref().map_or(0, Vec::len);
        if let Some(bytes) = archived {
            self.tier.insert(tenant, bytes);
        }
        self.evictions += 1;
        self.emit(Event {
            kind: EventKind::SessionEvicted,
            tenant,
            step,
            a: archived_len as u64,
            b: self.resident.len() as u64,
            nanos,
        });
    }

    /// Suspends **every** resident session — the graceful-drain phase of
    /// a shutdown — and flushes the durable tier, so a restart over the
    /// same state dir rehydrates each personalized tenant bit-exactly.
    /// Returns how many suspended sessions carried personal state.
    ///
    /// Meaningful for a persistent store; on an in-memory store it only
    /// moves residents to the (equally volatile) archive.
    ///
    /// # Errors
    ///
    /// Propagates the first fsync failure from [`StateDir::flush`]; the
    /// sessions are suspended regardless.
    pub fn drain(&mut self) -> Result<usize> {
        let mut persisted = 0usize;
        while let Some((&tick, &tenant)) = self.lru.iter().next() {
            let personalized =
                self.resident.get(&tenant).is_some_and(|e| e.session.is_personalized());
            self.evict_entry(tick, tenant);
            if personalized {
                persisted += 1;
            }
        }
        self.flush()?;
        Ok(persisted)
    }

    /// Fsyncs archive writes deferred by [`FlushPolicy::OnEvict`]
    /// (no-op for an in-memory store).
    ///
    /// [`FlushPolicy::OnEvict`]: crate::persist::FlushPolicy::OnEvict
    ///
    /// # Errors
    ///
    /// Propagates [`StateDir::flush`] failures.
    pub fn flush(&mut self) -> Result<()> {
        match &mut self.tier {
            ArchiveTier::Memory { .. } => Ok(()),
            ArchiveTier::Disk { state, .. } => state.flush(),
        }
    }

    /// Journals `event` when the engine carries a journal.
    fn emit(&self, event: Event) {
        if let Some(journal) = self.engine.journal() {
            journal.push(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::OnceLock;

    use smore::{Smore, SmoreConfig};
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;
    use smore_data::stream::{concept_drift_stream, DriftSegment, StreamConfig, StreamItem};
    use smore_obs::EventJournal;
    use smore_tensor::Matrix;

    use super::*;
    use crate::{LabelStrategy, StreamingConfig};

    fn shifted_dataset(seed: u64) -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "store-test".into(),
            num_classes: 4,
            channels: 3,
            window_len: 24,
            sample_rate_hz: 25.0,
            domains: (0..4)
                .map(|d| DomainSpec { subjects: vec![2 * d, 2 * d + 1], windows: 80 })
                .collect(),
            shift_severity: 1.2,
            seed,
        })
        .unwrap()
    }

    fn engine_config() -> StreamingConfig {
        StreamingConfig {
            buffer_capacity: 128,
            drift_window: 32,
            drift_threshold: 0.5,
            min_enroll: 24,
            cooldown: 32,
            label_strategy: LabelStrategy::Oracle,
            ..StreamingConfig::default()
        }
    }

    fn calibrated_engine(ds: &smore_data::Dataset, train: &[usize]) -> ServeEngine {
        let mut model = Smore::new(
            SmoreConfig::builder()
                .dim(1024)
                .channels(3)
                .num_classes(4)
                .epochs(10)
                .threads(2)
                .build()
                .unwrap(),
        )
        .unwrap();
        model.fit_indices(ds, train).unwrap();
        let mut engine = ServeEngine::new(model, engine_config()).unwrap();
        let (calib_w, _, _) = ds.gather(train);
        engine.calibrate_drift_delta(&calib_w, 0.25).unwrap();
        engine
    }

    /// One calibrated engine + dataset shared by the journal-free tests —
    /// each test opens its own store over it.
    fn fixture() -> &'static (smore_data::Dataset, Arc<ServeEngine>) {
        static FIXTURE: OnceLock<(smore_data::Dataset, Arc<ServeEngine>)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let ds = shifted_dataset(7);
            let (train, _) = split::lodo(&ds, 3).unwrap();
            let engine = calibrated_engine(&ds, &train);
            (ds, Arc::new(engine))
        })
    }

    /// The calibrated 1.5×-gain new-user stream the engine tests pin as
    /// reliably firing the drift detector.
    fn stormy(ds: &smore_data::Dataset) -> Vec<StreamItem> {
        concept_drift_stream(
            ds,
            &StreamConfig {
                segments: vec![
                    DriftSegment::plain(0, 100),
                    DriftSegment {
                        domain: 3,
                        windows: 140,
                        gain_ramp: Some((1.5, 1.5)),
                        dropout_channel: None,
                    },
                ],
                seed: 7 ^ 0xAA,
            },
        )
        .unwrap()
    }

    /// Drives `tenant` through `items` until it personalizes.
    fn personalize(store: &mut SessionStore, tenant: u64, items: &[StreamItem]) {
        for item in items {
            store
                .with_session(tenant, |s| s.ingest_labelled(&item.window, item.label).map(|_| ()))
                .unwrap()
                .unwrap();
        }
        assert!(
            store.with_session(tenant, |s| s.is_personalized()).unwrap(),
            "drift stream must personalize tenant {tenant}"
        );
    }

    #[test]
    fn store_requires_a_positive_session_cap() {
        let (_, engine) = fixture();
        let err = SessionStore::new(Arc::clone(engine), 0, 1024).unwrap_err();
        assert!(matches!(err, SmoreError::InvalidConfig { .. }), "{err}");
        assert!(err.to_string().contains("max_sessions"), "{err}");
    }

    /// The leak regression: a worker that meets 10k distinct tenants must
    /// hold at most `max_sessions` of them resident at any point — the old
    /// unbounded `HashMap` kept all 10k alive forever.
    #[test]
    fn churn_of_ten_thousand_tenants_stays_bounded() {
        let (ds, engine) = fixture();
        let cap = 64;
        let mut store = SessionStore::new(Arc::clone(engine), cap, usize::MAX).unwrap();
        let window = ds.window(0);
        for tenant in 0..10_000u64 {
            let label =
                store.with_session(tenant, |s| s.predict_window(window).unwrap().label).unwrap();
            assert!(label < 4);
            assert!(store.len() <= cap, "resident sessions exceeded the cap at tenant {tenant}");
        }
        assert_eq!(store.len(), cap);
        assert_eq!(store.evictions(), 10_000 - cap as u64);
        assert_eq!(store.hydrations(), 0);
        assert_eq!(store.archived_tenants(), 0, "base-only sessions drop, they never archive");
        assert_eq!(store.resident_delta_bytes(), 0);
        assert!(store.is_resident(9_999));
        assert!(!store.is_resident(0));
        // An evicted base-only tenant simply starts fresh off the shared
        // base — nothing was worth keeping.
        assert_eq!(store.with_session(0, |s| s.steps()).unwrap(), 0);
    }

    /// The byte budget is enforced independently of the session cap: an
    /// idle personalized tenant is suspended to its archive as soon as its
    /// resident delta bytes cannot be afforded, while base-only traffic
    /// keeps flowing.
    #[test]
    fn byte_budget_evicts_idle_personalized_tenants() {
        let (ds, engine) = fixture();
        let mut store = SessionStore::new(Arc::clone(engine), 16, 1).unwrap();
        personalize(&mut store, 1, &stormy(ds));

        // The tenant just accessed is protected even while over budget on
        // its own — tolerate, don't thrash.
        assert!(store.is_resident(1));
        assert!(store.resident_delta_bytes() > 1);

        // The next tenant's access makes tenant 1 evictable.
        let window = ds.window(0);
        store.with_session(2, |s| s.predict_window(window).unwrap().label).unwrap();
        assert!(!store.is_resident(1), "over-budget personalized tenant must be suspended");
        assert!(store.has_archived(1), "suspension must archive the personal delta");
        assert_eq!(store.resident_delta_bytes(), 0);
        assert!(store.is_resident(2));
    }

    /// The full churn lifecycle for a personalized tenant: enrol → evict →
    /// rehydrate → enrol again. Serving after rehydration is bit-exact
    /// with serving before eviction, enrolment history survives, and the
    /// second enrolment continues the tag sequence instead of reusing one.
    #[test]
    fn personalized_tenant_survives_eviction_and_reenrols_after_rehydration() {
        let ds = shifted_dataset(7);
        let (train, _) = split::lodo(&ds, 3).unwrap();
        let mut engine = calibrated_engine(&ds, &train);
        let journal = Arc::new(EventJournal::new(4096));
        engine.set_journal(Arc::clone(&journal));
        let mut store = SessionStore::new(Arc::new(engine), 3, usize::MAX).unwrap();

        let items = stormy(&ds);
        personalize(&mut store, 1, &items);
        let eval: Vec<Matrix> =
            items.iter().filter(|i| i.segment == 1).take(24).map(|i| i.window.clone()).collect();
        let (events_before, steps_before, domains_before, before) = store
            .with_session(1, |s| {
                let preds: Vec<_> =
                    eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect();
                (s.events().to_vec(), s.steps(), s.num_domains(), preds)
            })
            .unwrap();
        assert!(!events_before.is_empty());

        // Three other tenants push tenant 1 over the session cap.
        let window = ds.window(0);
        for tenant in 2..=5 {
            store.with_session(tenant, |s| s.predict_window(window).unwrap().label).unwrap();
        }
        assert!(!store.is_resident(1));
        assert!(store.has_archived(1), "evicting a personalized tenant must keep its delta");
        let archived = store.archived_delta(1).unwrap().len();
        assert!(archived > 0, "personal state serializes to a non-empty artifact");
        assert!(archived < 32 << 10, "delta artifact stays KiB-scale, got {archived} bytes");
        assert_eq!(store.archived_bytes(), archived);

        // Next access transparently rehydrates — nothing moved a bit.
        let (events_after, steps_after, domains_after, after) = store
            .with_session(1, |s| {
                let preds: Vec<_> =
                    eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect();
                (s.events().to_vec(), s.steps(), s.num_domains(), preds)
            })
            .unwrap();
        assert_eq!(store.hydrations(), 1);
        assert!(!store.has_archived(1));
        assert_eq!(store.archived_bytes(), 0);
        assert_eq!(after, before, "rehydrated serving must be bit-exact with pre-eviction");
        assert_eq!(steps_after, steps_before, "step counter must survive suspension");
        assert_eq!(domains_after, domains_before);
        assert_eq!(events_after.len(), events_before.len());
        for (a, b) in events_after.iter().zip(&events_before) {
            assert_eq!(
                (a.tag, a.step, a.enrolled_windows, a.oracle_labelled),
                (b.tag, b.step, b.enrolled_windows, b.oracle_labelled),
                "enrolment history must survive suspension"
            );
        }

        // A second, different drift (other source domain, harsher gain, a
        // dead channel) must fire again — and its tag must extend the
        // sequence, not reuse one.
        let second = concept_drift_stream(
            &ds,
            &StreamConfig {
                segments: vec![DriftSegment {
                    domain: 2,
                    windows: 140,
                    gain_ramp: Some((2.4, 2.4)),
                    dropout_channel: Some(1),
                }],
                seed: 99,
            },
        )
        .unwrap();
        let mut new_tags = Vec::new();
        for item in &second {
            let adapted = store
                .with_session(1, |s| s.ingest_labelled(&item.window, item.label).map(|o| o.adapted))
                .unwrap()
                .unwrap();
            if let Some(event) = adapted {
                new_tags.push(event.tag);
            }
        }
        assert!(!new_tags.is_empty(), "fresh drift after rehydration must enrol again");
        let prev_max = events_before.iter().map(|e| e.tag).max().unwrap();
        assert!(
            new_tags.iter().all(|t| *t > prev_max),
            "post-rehydration tags {new_tags:?} must continue past {prev_max}"
        );

        // The whole lifecycle is journalled with the tenant's id.
        let snap = journal.snapshot();
        assert!(snap.count_of(EventKind::SessionEvicted) >= 1);
        assert_eq!(snap.count_of(EventKind::SessionHydrated), 1);
        let hydrated = snap.events.iter().find(|e| e.kind == EventKind::SessionHydrated).unwrap();
        assert_eq!(hydrated.tenant, 1);
        assert_eq!(hydrated.a, archived as u64, "hydration event carries the bytes read");
        assert!(hydrated.b >= 1, "hydration event carries the domains restored");
        let evicted = snap
            .events
            .iter()
            .find(|e| e.kind == EventKind::SessionEvicted && e.tenant == 1)
            .unwrap();
        assert_eq!(evicted.a, archived as u64, "eviction event carries the bytes archived");
    }

    /// Corrupt archived bytes fail typed on rehydration and stay archived
    /// for inspection; other tenants keep serving.
    #[test]
    fn corrupt_archive_fails_typed_and_is_kept() {
        let (ds, engine) = fixture();
        let mut store = SessionStore::new(Arc::clone(engine), 2, usize::MAX).unwrap();
        personalize(&mut store, 1, &stormy(ds));

        // Evict tenant 1, then sabotage its archive.
        let window = ds.window(0);
        for tenant in 2..=4 {
            store.with_session(tenant, |s| s.predict_window(window).unwrap().label).unwrap();
        }
        assert!(store.has_archived(1));
        let mut bytes = store.archived_delta(1).unwrap().to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        store.tier.insert(1, bytes);

        let err = store.with_session(1, |s| s.steps()).unwrap_err();
        assert!(matches!(err, SmoreError::CorruptArtifact { .. }), "{err}");
        assert!(store.has_archived(1), "failed hydration must keep the bytes for inspection");
        assert!(!store.is_resident(1));
        assert_eq!(store.hydrations(), 0);
        // The store still serves everyone else.
        store.with_session(2, |s| s.predict_window(window).unwrap().label).unwrap();
    }

    // ---- durable archive tier -------------------------------------

    use crate::persist::{FlushPolicy, StateDir};

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("smore_store_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn persistent_store(
        engine: &Arc<ServeEngine>,
        dir: &std::path::Path,
        cap: usize,
        policy: FlushPolicy,
    ) -> SessionStore {
        let state = StateDir::open(dir, policy, |_| true).unwrap();
        SessionStore::new_persistent(Arc::clone(engine), cap, usize::MAX, state).unwrap()
    }

    /// The PR 8 suspend/resume invariant, now across a (conceptual)
    /// process boundary: evict to disk, drop the store entirely, build a
    /// fresh one over the same directory — the scan recovers the state
    /// and the tenant's predictions have not moved a bit.
    #[test]
    fn evicted_state_survives_a_new_store_over_the_same_dir() {
        let (ds, engine) = fixture();
        let dir = scratch_dir("recover");
        let eval: Vec<Matrix> = stormy(ds)
            .iter()
            .filter(|i| i.segment == 1)
            .take(16)
            .map(|i| i.window.clone())
            .collect();
        let before;
        {
            let mut store = persistent_store(engine, &dir, 2, FlushPolicy::Sync);
            personalize(&mut store, 1, &stormy(ds));
            before = store
                .with_session(1, |s| {
                    eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect::<Vec<_>>()
                })
                .unwrap();
            // Push tenant 1 out so its delta is committed to disk, then
            // drop the store with no drain — the unclean-death case.
            let window = ds.window(0);
            for tenant in 2..=4 {
                store.with_session(tenant, |s| s.predict_window(window).unwrap().label).unwrap();
            }
            assert!(store.has_archived(1));
            assert_eq!(store.state_recovered(), 0);
        }
        assert!(dir.join("tenant-1.smore").exists(), "eviction must commit a per-tenant file");

        let mut store = persistent_store(engine, &dir, 2, FlushPolicy::Sync);
        assert_eq!(store.state_recovered(), 1);
        assert!(store.has_archived(1), "recovered state must be immediately servable");
        let (after, steps, events) = store
            .with_session(1, |s| {
                let preds: Vec<_> =
                    eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect();
                (preds, s.steps(), s.events().to_vec())
            })
            .unwrap();
        assert_eq!(after, before, "recovered serving must be bit-exact with pre-crash");
        assert!(steps > 0, "step counter must survive the process boundary");
        assert!(!events.is_empty(), "enrolment history must survive the process boundary");
        assert_eq!(store.hydrations(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// `drain()` persists the sessions still *resident* — the graceful
    /// half of shutdown — so nothing relies on eviction having happened.
    #[test]
    fn drain_persists_resident_sessions() {
        let (ds, engine) = fixture();
        let dir = scratch_dir("drain");
        {
            let mut store = persistent_store(engine, &dir, 8, FlushPolicy::OnEvict);
            personalize(&mut store, 1, &stormy(ds));
            assert!(store.is_resident(1), "nothing has evicted tenant 1 yet");
            let persisted = store.drain().unwrap();
            assert_eq!(persisted, 1, "one personalized resident must be archived");
            assert!(store.is_empty());
            assert!(store.has_archived(1));
        }
        let store = persistent_store(engine, &dir, 8, FlushPolicy::OnEvict);
        assert_eq!(store.state_recovered(), 1);
        assert!(store.has_archived(1));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A corrupt on-disk artifact fails typed, is quarantined (kept,
    /// renamed) rather than retried forever, and the tenant simply
    /// starts fresh on the next access.
    #[test]
    fn corrupt_state_file_is_quarantined_and_tenant_restarts_fresh() {
        let (ds, engine) = fixture();
        let dir = scratch_dir("corrupt");
        {
            let mut store = persistent_store(engine, &dir, 8, FlushPolicy::Sync);
            personalize(&mut store, 1, &stormy(ds));
            store.drain().unwrap();
        }
        // Flip a payload bit — the header still sniffs fine, so the scan
        // accepts it and the CRC catches it at resume time.
        let path = dir.join("tenant-1.smore");
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let mut store = persistent_store(engine, &dir, 8, FlushPolicy::Sync);
        assert_eq!(store.state_recovered(), 1);
        let err = store.with_session(1, |s| s.steps()).unwrap_err();
        assert!(matches!(err, SmoreError::CorruptArtifact { .. }), "{err}");
        assert_eq!(store.state_quarantined(), 1);
        assert!(dir.join("tenant-1.smore.quarantine").exists(), "kept for inspection");
        assert!(!store.has_archived(1));
        // Next access is a fresh session off the shared base, not an error.
        assert_eq!(store.with_session(1, |s| s.steps()).unwrap(), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Disk-full / unwritable state dir: eviction falls back to the
    /// in-memory overflow — serving continues, nothing is lost, the
    /// failure is counted — and rehydration from the overflow is
    /// bit-exact.
    #[test]
    fn unwritable_state_dir_degrades_to_memory_overflow() {
        let (ds, engine) = fixture();
        let dir = scratch_dir("nowrite");
        let mut store = persistent_store(engine, &dir, 2, FlushPolicy::Sync);
        personalize(&mut store, 1, &stormy(ds));
        let eval: Vec<Matrix> = stormy(ds)
            .iter()
            .filter(|i| i.segment == 1)
            .take(8)
            .map(|i| i.window.clone())
            .collect();
        let before = store
            .with_session(1, |s| {
                eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect::<Vec<_>>()
            })
            .unwrap();

        // Yank the directory away and park a plain file at its path —
        // writes fail even for root (chmod does not bind uid 0).
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"disk gone").unwrap();
        let window = ds.window(0);
        for tenant in 2..=4 {
            store.with_session(tenant, |s| s.predict_window(window).unwrap().label).unwrap();
        }
        assert!(!store.is_resident(1));
        assert!(store.has_archived(1), "failed disk write must not lose the state");
        assert_eq!(store.state_write_failures(), 1);
        assert!(store.archived_delta(1).is_some(), "state is parked in the memory overflow");

        let after = store
            .with_session(1, |s| {
                eval.iter().map(|w| s.predict_window(w).unwrap().clone()).collect::<Vec<_>>()
            })
            .unwrap();
        assert_eq!(after, before, "overflow rehydration must stay bit-exact");
        let _ = std::fs::remove_file(&dir);
    }
}
