//! A bounded ring buffer of out-of-distribution queries awaiting
//! enrolment.

use std::collections::VecDeque;

use smore_tensor::Matrix;

/// One buffered OOD query.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferedQuery {
    /// The raw sensor window (kept raw so enrolment re-encodes it through
    /// the frozen pipeline).
    pub window: Matrix,
    /// The serving ensemble's label at ingest time (the self-label).
    pub pseudo_label: usize,
    /// Ground-truth label, when the deployment supplies one (delayed
    /// annotation, user confirmation, …).
    pub true_label: Option<usize>,
    /// `δ_max` the query scored at ingest time.
    pub delta_max: f32,
    /// Stream step at which the query arrived.
    pub step: usize,
}

/// Fixed-capacity FIFO of OOD queries: when full, the oldest query is
/// evicted, so the buffer always holds the *most recent* evidence of the
/// unseen distribution — exactly what enrolment should train on.
#[derive(Debug, Clone)]
pub struct OodBuffer {
    queries: VecDeque<BufferedQuery>,
    capacity: usize,
}

impl OodBuffer {
    /// Creates an empty buffer holding at most `capacity` queries
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self { queries: VecDeque::with_capacity(capacity), capacity }
    }

    /// Number of buffered queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Pushes a query, evicting the oldest when full. Returns whether an
    /// eviction happened.
    pub fn push(&mut self, query: BufferedQuery) -> bool {
        let evicted = self.queries.len() == self.capacity;
        if evicted {
            self.queries.pop_front();
        }
        self.queries.push_back(query);
        evicted
    }

    /// The buffered queries, oldest first.
    pub fn queries(&self) -> impl Iterator<Item = &BufferedQuery> {
        self.queries.iter()
    }

    /// Drains the buffer, returning all queries oldest-first.
    pub fn drain(&mut self) -> Vec<BufferedQuery> {
        self.queries.drain(..).collect()
    }

    /// Clears the buffer without returning the queries.
    pub fn clear(&mut self) {
        self.queries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(step: usize) -> BufferedQuery {
        BufferedQuery {
            window: Matrix::zeros(2, 2),
            pseudo_label: 0,
            true_label: None,
            delta_max: 0.0,
            step,
        }
    }

    #[test]
    fn fifo_eviction_keeps_most_recent() {
        let mut buf = OodBuffer::new(3);
        assert!(buf.is_empty());
        assert!(!buf.push(q(0)));
        assert!(!buf.push(q(1)));
        assert!(!buf.push(q(2)));
        assert!(buf.push(q(3)), "fourth push evicts");
        assert_eq!(buf.len(), 3);
        let steps: Vec<usize> = buf.queries().map(|b| b.step).collect();
        assert_eq!(steps, vec![1, 2, 3]);
    }

    #[test]
    fn drain_empties_oldest_first() {
        let mut buf = OodBuffer::new(4);
        for i in 0..4 {
            buf.push(q(i));
        }
        let drained = buf.drain();
        assert!(buf.is_empty());
        assert_eq!(drained.iter().map(|b| b.step).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut buf = OodBuffer::new(0);
        assert_eq!(buf.capacity(), 1);
        buf.push(q(7));
        assert_eq!(buf.len(), 1);
        buf.clear();
        assert!(buf.is_empty());
    }
}
