//! Telemetry correctness under contention: the histogram drops no counts
//! and its quantiles bound the true sample quantiles; the journal survives
//! wrap-around and concurrent read/write without tearing.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use smore_obs::{bucket_of, AtomicHistogram, Event, EventJournal, EventKind};

#[test]
fn contended_histogram_drops_nothing_and_bounds_quantiles() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50_000;
    let hist = Arc::new(AtomicHistogram::new());
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let hist = Arc::clone(&hist);
        handles.push(std::thread::spawn(move || {
            // Deterministic per-thread LCG so the union of all samples is
            // reproducible without sharing state between threads.
            let mut state = 0x9E37_79B9_u64.wrapping_mul(t + 1) | 1;
            let mut local = Vec::with_capacity(PER_THREAD as usize);
            for _ in 0..PER_THREAD {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let sample = state >> 40; // ~0..16.7M, a realistic nanos range
                hist.record(sample);
                local.push(sample);
            }
            local
        }));
    }
    let mut all: Vec<u64> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
    all.sort_unstable();

    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD, "every concurrent record must land");
    assert_eq!(snap.sum, all.iter().sum::<u64>(), "running sum must not lose updates");
    for q in [0.5, 0.95, 0.99] {
        let truth = all[smore::metrics::nearest_rank_index(all.len(), q)];
        let reported = snap.quantile(q);
        assert!(reported >= truth, "q={q}: reported {reported} understates true {truth}");
        assert_eq!(
            bucket_of(reported),
            bucket_of(truth),
            "q={q}: reported {reported} not within one bucket of true {truth}"
        );
    }
}

#[test]
fn journal_wraps_and_never_returns_torn_events() {
    const WRITERS: u64 = 4;
    const PER_WRITER: u64 = 40_000;
    // Small capacity forces continuous wrap-around while readers scan.
    let journal = Arc::new(EventJournal::new(32));
    let stop = Arc::new(AtomicBool::new(false));

    // Writers tag every word of an event with the same (writer, i) pair,
    // so any torn mix of two writes is detectable by cross-checking words.
    let writers: Vec<_> = (0..WRITERS)
        .map(|w| {
            let journal = Arc::clone(&journal);
            std::thread::spawn(move || {
                let mut published = 0u64;
                for i in 0..PER_WRITER {
                    let stamp = w * PER_WRITER + i;
                    if journal.push(Event {
                        kind: EventKind::OodWindow,
                        tenant: w,
                        step: stamp,
                        a: stamp.wrapping_mul(3),
                        b: stamp.wrapping_mul(5),
                        nanos: stamp.wrapping_mul(7),
                    }) {
                        published += 1;
                    }
                }
                published
            })
        })
        .collect();

    let readers: Vec<_> = (0..2)
        .map(|_| {
            let journal = Arc::clone(&journal);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut seen = 0u64;
                // ordering: Relaxed — stop is a plain quit flag; the
                // readers only need eventual visibility.
                while !stop.load(Ordering::Relaxed) {
                    for e in journal.snapshot().events {
                        // An untorn event's payload words are all derived
                        // from the same stamp.
                        assert_eq!(e.kind, EventKind::OodWindow);
                        assert_eq!(e.a, e.step.wrapping_mul(3), "torn event: {e:?}");
                        assert_eq!(e.b, e.step.wrapping_mul(5), "torn event: {e:?}");
                        assert_eq!(e.nanos, e.step.wrapping_mul(7), "torn event: {e:?}");
                        assert_eq!(e.tenant, e.step / PER_WRITER, "torn event: {e:?}");
                        seen += 1;
                    }
                }
                seen
            })
        })
        .collect();

    let published: u64 = writers.into_iter().map(|h| h.join().unwrap()).sum();
    // ordering: Relaxed — quit flag; reader loops only need to see it
    // eventually.
    stop.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }

    // Every attempted push is accounted for: published or counted dropped.
    assert_eq!(journal.pushed(), published);
    assert_eq!(journal.pushed() + journal.dropped(), WRITERS * PER_WRITER);
    assert!(journal.pushed() > 0, "contention must not drop everything");

    // After quiescence the ring holds the freshest published events and a
    // full snapshot is readable.
    let snap = journal.snapshot();
    assert!(!snap.events.is_empty());
    assert!(snap.events.len() <= journal.capacity());
    for pair in snap.events.windows(2) {
        // Oldest-first scan order (per-writer stamps interleave, but the
        // publication indices the scan follows are strictly increasing, so
        // the same writer's events stay ordered).
        if pair[0].tenant == pair[1].tenant {
            assert!(pair[0].step < pair[1].step);
        }
    }
}

#[test]
fn single_threaded_journal_accounts_for_every_push() {
    let journal = EventJournal::new(16);
    for i in 0..1000 {
        assert!(journal.push(Event {
            kind: EventKind::SnapshotSwap,
            tenant: 1,
            step: i,
            a: 0,
            b: 0,
            nanos: 5,
        }));
    }
    assert_eq!(journal.pushed(), 1000);
    assert_eq!(journal.dropped(), 0);
    let snap = journal.snapshot();
    assert_eq!(snap.events.len(), 16);
    assert_eq!(snap.events.last().unwrap().step, 999);
}
