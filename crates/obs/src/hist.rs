//! Lock-free log2-bucketed histograms.
//!
//! ## Bucket layout
//!
//! Values below 16 get one exact bucket each (buckets `0..16`). Every
//! larger value lands in one of 16 linear sub-buckets of its power-of-two
//! octave: with `msb` the index of the leading one bit, the sub-bucket is
//! the next four bits below it, so bucket width is `2^(msb-4)` and the
//! relative quantization error is at most 1/16 (6.25%). Octaves are
//! contiguous — `bucket = (msb - 3) * 16 + sub` — giving
//! [`NUM_BUCKETS`]` = 976` buckets covering the whole `u64` range in
//! 7.6 KiB of counters per histogram.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution bits per octave (16 linear sub-buckets).
const SUB_BITS: u32 = 4;
const SUB: u64 = 1 << SUB_BITS;

/// Total bucket count: 16 exact small-value buckets plus 16 sub-buckets
/// for each of the 60 octaves `2^4..2^63`.
pub const NUM_BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// The bucket index a value is recorded into.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let msb = 63 - value.leading_zeros();
    let sub = (value >> (msb - SUB_BITS)) & (SUB - 1);
    ((msb - SUB_BITS + 1) as u64 * SUB + sub) as usize
}

/// Inclusive `(lower, upper)` value bounds of a bucket.
///
/// # Panics
///
/// Panics if `bucket >= `[`NUM_BUCKETS`].
#[must_use]
pub fn bucket_bounds(bucket: usize) -> (u64, u64) {
    assert!(bucket < NUM_BUCKETS, "bucket {bucket} out of range");
    let b = bucket as u64;
    if b < SUB {
        return (b, b);
    }
    let msb = b / SUB + SUB_BITS as u64 - 1;
    let sub = b % SUB;
    let width = 1u64 << (msb - u64::from(SUB_BITS));
    let lower = (1u64 << msb) + sub * width;
    (lower, lower + (width - 1))
}

/// A fixed-size, lock-free latency histogram.
///
/// [`record`](Self::record) is wait-free: one relaxed atomic add on the
/// bucket counter and one on the running sum — no locks, no allocation, no
/// contention point beyond cache-line sharing of hot buckets. Aggregation
/// happens at [`snapshot`](Self::snapshot) time (the rare path), which
/// walks the bucket array once; per-shard histograms are merged by merging
/// their snapshots.
///
/// # Example
///
/// ```
/// let h = smore_obs::AtomicHistogram::new();
/// for v in [10u64, 20, 30, 40, 50] {
///     h.record(v);
/// }
/// let snap = h.snapshot();
/// assert_eq!(snap.count, 5);
/// assert_eq!(snap.sum, 150);
/// assert!(snap.quantile(0.5) >= 30);
/// ```
#[derive(Debug)]
pub struct AtomicHistogram {
    buckets: Box<[AtomicU64; NUM_BUCKETS]>,
    sum: AtomicU64,
}

impl Default for AtomicHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl AtomicHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        let buckets: Vec<AtomicU64> = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let buckets: Box<[AtomicU64; NUM_BUCKETS]> =
            // smore-lint: allow(panic_path) the vec above is built with exactly NUM_BUCKETS entries
            buckets.into_boxed_slice().try_into().expect("NUM_BUCKETS entries");
        Self { buckets, sum: AtomicU64::new(0) }
    }

    /// Records one sample.
    pub fn record(&self, value: u64) {
        // ordering: Relaxed — independent monotone counters; the snapshot
        // contract tolerates samples landing mid-walk, so no recorder
        // ordering is needed.
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed); // smore-lint: allow(panic_path) bucket_of clamps to NUM_BUCKETS - 1
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records `n` samples of the same value — how batch-mean costs are
    /// charged (e.g. a coalesced batch's per-window encode time).
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        // ordering: Relaxed — same contract as `record`.
        self.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed); // smore-lint: allow(panic_path) bucket_of clamps to NUM_BUCKETS - 1
        self.sum.fetch_add(value.saturating_mul(n), Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    ///
    /// Concurrent recorders keep running; the snapshot is internally
    /// consistent to within the samples that land mid-walk.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ordering: Relaxed — the snapshot is documented as consistent
        // only to within mid-walk samples; no bucket-to-bucket or
        // bucket-to-sum ordering is promised, so no fences are needed.
        let mut buckets: Vec<u64> =
            self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let count = buckets.iter().sum();
        // Trim trailing zeros — snapshots travel over the wire.
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        HistogramSnapshot { count, sum: self.sum.load(Ordering::Relaxed), buckets }
    }
}

/// A point-in-time histogram: trailing-zero-trimmed bucket counts plus the
/// exact sample count and sum.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples recorded.
    pub count: u64,
    /// Exact sum of all recorded values.
    pub sum: u64,
    /// Bucket counts, trimmed after the last non-zero bucket (index `i`
    /// covers the value range [`bucket_bounds`]`(i)`).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// The nearest-rank `q`-quantile, reported as the **upper bound** of
    /// the bucket holding the rank-selected sample — so the report never
    /// understates the true sample quantile and overstates it by at most
    /// one bucket width (≤ 6.25% relative).
    ///
    /// Returns 0 for an empty histogram.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = smore::metrics::nearest_rank_index(self.count as usize, q) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen > rank {
                return bucket_bounds(i).1;
            }
        }
        // Unreachable when count == Σ buckets; safe fallback under racing
        // snapshot reads.
        self.buckets.len().checked_sub(1).map_or(0, |i| bucket_bounds(i).1)
    }

    /// Mean of the recorded samples (0 when empty). Exact — computed from
    /// the running sum, not bucket midpoints.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds another snapshot's counts into this one — how per-shard
    /// histograms aggregate on scrape.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        let mut expected_lower = 0u64;
        for b in 0..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(b);
            assert_eq!(lo, expected_lower, "bucket {b} lower bound");
            assert!(hi >= lo);
            expected_lower = hi.wrapping_add(1);
        }
        // The last bucket ends exactly at u64::MAX.
        assert_eq!(bucket_bounds(NUM_BUCKETS - 1).1, u64::MAX);
    }

    #[test]
    fn bucket_of_matches_bounds() {
        let probes = [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            1000,
            4095,
            4096,
            123_456_789,
            u64::from(u32::MAX),
            1 << 40,
            (1 << 40) + 12345,
            u64::MAX / 2,
            u64::MAX - 1,
            u64::MAX,
        ];
        for v in probes {
            let b = bucket_of(v);
            let (lo, hi) = bucket_bounds(b);
            assert!(lo <= v && v <= hi, "value {v} not inside bucket {b} [{lo}, {hi}]");
        }
    }

    #[test]
    fn relative_error_bounded() {
        for v in [100u64, 999, 123_456, 9_999_999, 1 << 50] {
            let (lo, hi) = bucket_bounds(bucket_of(v));
            let width = hi - lo;
            assert!(
                (width as f64) <= (lo as f64) / 16.0 + 1.0,
                "bucket for {v} too wide: [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn quantiles_upper_bound_true_samples_within_a_bucket() {
        let h = AtomicHistogram::new();
        let mut samples: Vec<u64> = (0..1000).map(|i| (i * 37 + 11) % 100_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1000);
        assert_eq!(snap.sum, samples.iter().sum::<u64>());
        for q in [0.5, 0.95, 0.99] {
            let truth = samples[smore::metrics::nearest_rank_index(samples.len(), q)];
            let reported = snap.quantile(q);
            assert!(reported >= truth, "q={q}: reported {reported} < true {truth}");
            assert_eq!(
                bucket_of(reported),
                bucket_of(truth),
                "q={q}: reported {reported} left the true sample's bucket ({truth})"
            );
        }
    }

    #[test]
    fn record_n_and_merge() {
        let a = AtomicHistogram::new();
        let b = AtomicHistogram::new();
        a.record_n(500, 10);
        a.record_n(0, 0); // no-op
        b.record(7);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.count, 11);
        assert_eq!(snap.sum, 5007);
        assert_eq!(snap.quantile(0.0), 7);
        assert!(snap.quantile(0.99) >= 500);
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let snap = AtomicHistogram::new().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean(), 0.0);
        assert!(snap.buckets.is_empty());
    }
}
