//! # smore_obs — serving telemetry for the SMORE stack.
//!
//! Std-only, zero-third-party-dependency observability primitives,
//! designed so the serving hot path pays atomic adds — never a lock, never
//! a heap allocation:
//!
//! - [`AtomicHistogram`]: a log2-bucketed latency histogram over relaxed
//!   `AtomicU64` counters. Recording a sample is one relaxed atomic add on
//!   the bucket array (plus one on the running sum); snapshots report
//!   count, sum and nearest-rank quantiles through the same
//!   [`smore::metrics::nearest_rank_index`] helper every other quantile
//!   consumer in the workspace uses.
//! - [`Stage`] / [`StageSet`] / [`StageTimer`]: named spans over the
//!   serving request pipeline (frame decode → queue wait → coalesce wait →
//!   encode → score → reply write), one histogram per stage.
//! - [`EventJournal`]: a fixed-capacity lock-free ring of structured
//!   adaptation [`Event`]s (OOD windows, drift firings, enrolments,
//!   snapshot swaps, personalization, overload sheds) with per-tenant
//!   attribution. Writers never block and never tear; readers detect and
//!   discard in-flight slots.
//! - [`log`]: a leveled, `SMORE_LOG`-gated structured logger
//!   ([`error!`](crate::error), [`warn!`](crate::warn), …) replacing
//!   scattered `eprintln!`s on serving paths.
//! - [`StatsSnapshot`]: a versioned, self-describing stats frame
//!   (counters, gauges, per-stage histograms, journal tail) encoded with
//!   [`smore::wire`] for the serving protocol's `Stats` request, plus a
//!   Prometheus-style text exposition.
//!
//! The crate deliberately knows nothing about servers or tenant sessions:
//! counters and gauges are named `(String, value)` pairs, so `smore_serve`
//! and `smore_stream` own their vocabularies and `smore_obs` stays a leaf
//! dependency (it depends only on `smore` for the quantile helper and the
//! wire format).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hist;
mod journal;
pub mod log;
mod snapshot;
mod stage;

pub use hist::{bucket_bounds, bucket_of, AtomicHistogram, HistogramSnapshot, NUM_BUCKETS};
pub use journal::{Event, EventJournal, EventKind, JournalSnapshot};
pub use log::Level;
pub use snapshot::{StatsSnapshot, STATS_VERSION};
pub use stage::{Stage, StageSet, StageTimer};
