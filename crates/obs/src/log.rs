//! A leveled, `SMORE_LOG`-gated structured logger.
//!
//! Serving binaries used to `eprintln!` straight from worker and
//! connection threads, interleaving garbage on stderr at high QPS. This
//! logger gates every line behind a process-wide level (read once from the
//! `SMORE_LOG` environment variable — `error`, `warn`, `info`, `debug` or
//! `trace`; default `warn`) and writes each record with a single
//! `eprintln!` call, so concurrent lines never interleave mid-record.
//!
//! The level check is one relaxed atomic load; a disabled record never
//! formats its arguments.
//!
//! # Example
//!
//! ```
//! smore_obs::log::set_level(smore_obs::Level::Info);
//! smore_obs::info!("server", "listening on {}", "127.0.0.1:7878");
//! smore_obs::debug!("server", "this line is suppressed at info level");
//! ```

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Once;

/// Log severity, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The process or a connection is in trouble.
    Error = 0,
    /// Unexpected but survivable (the default gate).
    Warn = 1,
    /// Lifecycle landmarks: startup, shutdown, model loads.
    Info = 2,
    /// Per-event serving detail (adaptations, sheds).
    Debug = 3,
    /// Everything, including per-request noise.
    Trace = 4,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        Some(match s.trim().to_ascii_lowercase().as_str() {
            "error" => Level::Error,
            "warn" | "warning" => Level::Warn,
            "info" => Level::Info,
            "debug" => Level::Debug,
            "trace" => Level::Trace,
            _ => return None,
        })
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Error => "ERROR",
            Level::Warn => "WARN",
            Level::Info => "INFO",
            Level::Debug => "DEBUG",
            Level::Trace => "TRACE",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Warn as u8);
static INIT: Once = Once::new();

/// The active level, initialising from `SMORE_LOG` on first use.
pub fn level() -> Level {
    // ordering: Relaxed — LEVEL is an independent byte-sized gate; Once
    // already fences the initial store, and later set_level overrides
    // only need eventual visibility (a racing record at the old level is
    // harmless).
    INIT.call_once(|| {
        if let Some(parsed) = std::env::var("SMORE_LOG").ok().as_deref().and_then(Level::parse) {
            LEVEL.store(parsed as u8, Ordering::Relaxed);
        }
    });
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Error,
        1 => Level::Warn,
        2 => Level::Info,
        3 => Level::Debug,
        _ => Level::Trace,
    }
}

/// Overrides the level programmatically (wins over `SMORE_LOG`).
pub fn set_level(new: Level) {
    INIT.call_once(|| {});
    // ordering: Relaxed — same contract as `level()`: the gate only needs
    // eventual visibility.
    LEVEL.store(new as u8, Ordering::Relaxed);
}

/// Whether records at `at` currently pass the gate.
#[must_use]
pub fn enabled(at: Level) -> bool {
    at <= level()
}

/// Writes one record — use the [`error!`](crate::error) /
/// [`warn!`](crate::warn) / [`info!`](crate::info) /
/// [`debug!`](crate::debug) / [`trace!`](crate::trace) macros instead,
/// which skip argument formatting when the level is disabled.
pub fn write(at: Level, target: &str, args: std::fmt::Arguments<'_>) {
    // One eprintln per record keeps concurrent lines whole.
    eprintln!("[{} {}] {}", at.tag(), target, args);
}

/// Logs at a given level; the five leveled macros expand to this.
#[macro_export]
macro_rules! log_at {
    ($level:expr, $target:expr, $($arg:tt)+) => {{
        let level = $level;
        if $crate::log::enabled(level) {
            $crate::log::write(level, $target, format_args!($($arg)+));
        }
    }};
}

/// Logs at [`Level::Error`](crate::Level::Error).
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::log_at!($crate::Level::Error, $target, $($arg)+) };
}

/// Logs at [`Level::Warn`](crate::Level::Warn).
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::log_at!($crate::Level::Warn, $target, $($arg)+) };
}

/// Logs at [`Level::Info`](crate::Level::Info).
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::log_at!($crate::Level::Info, $target, $($arg)+) };
}

/// Logs at [`Level::Debug`](crate::Level::Debug).
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::log_at!($crate::Level::Debug, $target, $($arg)+) };
}

/// Logs at [`Level::Trace`](crate::Level::Trace).
#[macro_export]
macro_rules! trace {
    ($target:expr, $($arg:tt)+) => { $crate::log_at!($crate::Level::Trace, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_known_levels_case_insensitively() {
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse(" warn "), Some(Level::Warn));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("trace"), Some(Level::Trace));
        assert_eq!(Level::parse("verbose"), None);
        assert_eq!(Level::parse(""), None);
    }

    #[test]
    fn set_level_gates_enabled() {
        set_level(Level::Info);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
        set_level(Level::Error);
        assert!(!enabled(Level::Warn));
        set_level(Level::Trace);
        assert!(enabled(Level::Trace));
        // Restore the default for other tests in this process.
        set_level(Level::Warn);
    }
}
