//! Named spans over the serving request pipeline.
//!
//! A request travels `Decode → QueueWait → CoalesceWait → Encode → Score →
//! Reply`: the connection thread times frame decoding, the job then waits
//! in its shard queue, the worker may hold it briefly while filling a
//! coalesced batch, the model encodes and scores it, and the writer thread
//! serialises the response. [`StageSet`] keeps one [`AtomicHistogram`] per
//! stage; spans are recorded either directly in nanoseconds
//! ([`StageSet::record`]) or through the RAII [`StageTimer`] guard
//! ([`StageSet::time`]), which records on drop so early returns and `?`
//! exits are still measured.

use std::time::Instant;

use crate::hist::{AtomicHistogram, HistogramSnapshot};

/// One stage of the serving request pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Wire-frame decoding on the connection thread (CRC check, request
    /// parse, window validation) — excludes blocking socket reads.
    Decode,
    /// Time between shard-queue admission and worker dequeue.
    QueueWait,
    /// Time a dequeued job waits while the worker fills its micro-batch.
    CoalesceWait,
    /// Window standardisation + packed hypervector encoding.
    Encode,
    /// Descriptor similarity, OOD verdict, ensemble weighting and
    /// per-class scoring.
    Score,
    /// Response serialisation + socket write on the writer thread.
    Reply,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 6] = [
        Stage::Decode,
        Stage::QueueWait,
        Stage::CoalesceWait,
        Stage::Encode,
        Stage::Score,
        Stage::Reply,
    ];

    /// Stable snake_case name (used as the wire / exposition key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Stage::Decode => "decode",
            Stage::QueueWait => "queue_wait",
            Stage::CoalesceWait => "coalesce_wait",
            Stage::Encode => "encode",
            Stage::Score => "score",
            Stage::Reply => "reply",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Decode => 0,
            Stage::QueueWait => 1,
            Stage::CoalesceWait => 2,
            Stage::Encode => 3,
            Stage::Score => 4,
            Stage::Reply => 5,
        }
    }
}

/// One latency histogram per pipeline [`Stage`].
///
/// # Example
///
/// ```
/// use smore_obs::{Stage, StageSet};
///
/// let stages = StageSet::new();
/// {
///     let _span = stages.time(Stage::Decode); // records on drop
/// }
/// stages.record(Stage::Score, 42_000); // nanoseconds, recorded directly
/// let snaps = stages.snapshot();
/// assert_eq!(snaps.len(), Stage::ALL.len());
/// assert_eq!(snaps[4].1.count, 1);
/// ```
#[derive(Debug, Default)]
pub struct StageSet {
    hists: [AtomicHistogram; 6],
}

impl StageSet {
    /// A set of empty histograms.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The underlying histogram for one stage.
    #[must_use]
    pub fn histogram(&self, stage: Stage) -> &AtomicHistogram {
        &self.hists[stage.index()] // smore-lint: allow(panic_path) Stage::index() enumerates exactly the 6 variants
    }

    /// Records one span of `nanos` nanoseconds against `stage`.
    pub fn record(&self, stage: Stage, nanos: u64) {
        self.hists[stage.index()].record(nanos); // smore-lint: allow(panic_path) Stage::index() enumerates exactly the 6 variants
    }

    /// Records `n` spans of the same duration (batch-mean charging).
    pub fn record_n(&self, stage: Stage, nanos: u64, n: u64) {
        self.hists[stage.index()].record_n(nanos, n); // smore-lint: allow(panic_path) Stage::index() enumerates exactly the 6 variants
    }

    /// Starts an RAII span over `stage`; the elapsed time is recorded when
    /// the returned [`StageTimer`] drops (or explicitly via
    /// [`StageTimer::stop`]).
    #[must_use]
    pub fn time(&self, stage: Stage) -> StageTimer<'_> {
        StageTimer { hist: Some(self.histogram(stage)), start: Instant::now() }
    }

    /// Snapshots every stage histogram, in [`Stage::ALL`] order.
    #[must_use]
    pub fn snapshot(&self) -> Vec<(Stage, HistogramSnapshot)> {
        Stage::ALL.iter().map(|&s| (s, self.histogram(s).snapshot())).collect()
    }
}

/// An RAII span: measures from construction to drop and records the
/// elapsed nanoseconds into its stage histogram exactly once.
#[derive(Debug)]
pub struct StageTimer<'a> {
    hist: Option<&'a AtomicHistogram>,
    start: Instant,
}

impl StageTimer<'_> {
    /// Ends the span now, returning the recorded nanoseconds.
    pub fn stop(mut self) -> u64 {
        let nanos = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        if let Some(h) = self.hist.take() {
            h.record(nanos);
        }
        nanos
    }

    /// Abandons the span without recording (e.g. a decode that turned out
    /// to be a liveness ping not worth charging to the pipeline).
    pub fn cancel(mut self) {
        self.hist = None;
    }
}

impl Drop for StageTimer<'_> {
    fn drop(&mut self) {
        if let Some(h) = self.hist.take() {
            h.record(u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_unique() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["decode", "queue_wait", "coalesce_wait", "encode", "score", "reply"]);
        for (i, &s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn timer_records_on_drop_stop_and_not_on_cancel() {
        let set = StageSet::new();
        {
            let _t = set.time(Stage::Decode);
        }
        let nanos = set.time(Stage::Decode).stop();
        set.time(Stage::Decode).cancel();
        let snap = set.histogram(Stage::Decode).snapshot();
        assert_eq!(snap.count, 2, "drop + stop record, cancel does not");
        assert!(snap.sum >= nanos);
    }

    #[test]
    fn record_n_charges_batches() {
        let set = StageSet::new();
        set.record_n(Stage::Encode, 1_000, 32);
        let snap = set.histogram(Stage::Encode).snapshot();
        assert_eq!(snap.count, 32);
        assert_eq!(snap.sum, 32_000);
    }
}
