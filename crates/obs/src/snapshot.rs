//! Versioned stats snapshots: the payload of the serving protocol's
//! `Stats` request, and its human/Prometheus-style text exposition.
//!
//! A [`StatsSnapshot`] is deliberately self-describing — named counters,
//! named gauges, named stage histograms — so the wire format never changes
//! when a serving layer adds a metric, and `smore_obs` never needs to know
//! the serving vocabulary. The binary encoding reuses [`smore::wire`]
//! (little-endian, length-prefixed strings, trailing-byte rejection) under
//! a leading version word.
//!
//! ## Frame layout (version 1)
//!
//! ```text
//! u16 version
//! u32 n_counters,  n × { str_lp name, u64 value }
//! u32 n_gauges,    n × { str_lp name, u64 f64_bits }
//! u32 n_stages,    n × { str_lp name, u64 sum, u32 n_buckets, n_buckets × u64 }
//! u64 journal_pushed, u64 journal_dropped, u32 journal_capacity
//! u32 n_events,    n × { u8 kind, u64 tenant, u64 step, u64 a, u64 b, u64 nanos }
//! ```

use smore::wire::{WireError, WireReader, WireWriter};

use crate::hist::HistogramSnapshot;
use crate::journal::{Event, EventKind, JournalSnapshot};

/// Version word leading every encoded snapshot.
pub const STATS_VERSION: u16 = 1;

/// A point-in-time view of a serving process: counters, gauges, per-stage
/// latency histograms, and the adaptation journal tail.
///
/// # Example
///
/// ```
/// use smore_obs::StatsSnapshot;
///
/// let mut snap = StatsSnapshot::new();
/// snap.counters.push(("requests_served".into(), 12345));
/// snap.gauges.push(("tenants_personalized".into(), 7.0));
/// let decoded = StatsSnapshot::decode(&snap.encode()).unwrap();
/// assert_eq!(decoded.counter("requests_served"), Some(12345));
/// assert!(decoded.render_text().contains("smore_requests_served 12345"));
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Monotonic counters, e.g. `requests_served`.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous values, e.g. `ood_fraction_recent`.
    pub gauges: Vec<(String, f64)>,
    /// Per-stage latency histograms (nanoseconds), keyed by stage name.
    pub stages: Vec<(String, HistogramSnapshot)>,
    /// The adaptation journal: totals plus the retained event tail.
    pub journal: JournalSnapshot,
}

impl StatsSnapshot {
    /// An empty snapshot.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a counter by name.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a stage histogram by name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.stages.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Encodes the snapshot into the versioned binary frame body.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = WireWriter::new();
        w.u16(STATS_VERSION);
        w.u32(self.counters.len() as u32);
        for (name, value) in &self.counters {
            w.str_lp(name);
            w.u64(*value);
        }
        w.u32(self.gauges.len() as u32);
        for (name, value) in &self.gauges {
            w.str_lp(name);
            w.u64(value.to_bits());
        }
        w.u32(self.stages.len() as u32);
        for (name, hist) in &self.stages {
            w.str_lp(name);
            w.u64(hist.sum);
            w.u32(hist.buckets.len() as u32);
            for &b in &hist.buckets {
                w.u64(b);
            }
        }
        w.u64(self.journal.pushed);
        w.u64(self.journal.dropped);
        w.u32(self.journal.capacity as u32);
        w.u32(self.journal.events.len() as u32);
        for e in &self.journal.events {
            w.u8(e.kind as u8);
            w.u64(e.tenant);
            w.u64(e.step);
            w.u64(e.a);
            w.u64(e.b);
            w.u64(e.nanos);
        }
        w.into_bytes()
    }

    /// Decodes a snapshot frame body.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on truncation, trailing bytes, unknown
    /// version or unknown event kinds — a corrupt frame never yields a
    /// partially-filled snapshot.
    pub fn decode(bytes: &[u8]) -> Result<StatsSnapshot, WireError> {
        let mut r = WireReader::new(bytes, "stats snapshot");
        let version = r.u16()?;
        if version != STATS_VERSION {
            return Err(r.malformed(format!(
                "unsupported stats version {version} (this build speaks {STATS_VERSION})"
            )));
        }
        let n = r.count("counter", 12)?;
        let mut counters = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str_lp()?;
            counters.push((name, r.u64()?));
        }
        let n = r.count("gauge", 12)?;
        let mut gauges = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str_lp()?;
            gauges.push((name, f64::from_bits(r.u64()?)));
        }
        let n = r.count("stage histogram", 16)?;
        let mut stages = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str_lp()?;
            let sum = r.u64()?;
            let n_buckets = r.count("histogram bucket", 8)?;
            if n_buckets > crate::hist::NUM_BUCKETS {
                return Err(r.malformed(format!(
                    "{n_buckets} histogram buckets exceeds the maximum {}",
                    crate::hist::NUM_BUCKETS
                )));
            }
            let mut buckets = Vec::with_capacity(n_buckets);
            for _ in 0..n_buckets {
                buckets.push(r.u64()?);
            }
            let count = buckets.iter().sum();
            stages.push((name, HistogramSnapshot { count, sum, buckets }));
        }
        let pushed = r.u64()?;
        let dropped = r.u64()?;
        let capacity = r.u32()? as usize;
        let n = r.count("journal event", 41)?;
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            let code = u64::from(r.u8()?);
            let kind = EventKind::from_code(code)
                .ok_or_else(|| r.malformed(format!("unknown event kind code {code}")))?;
            events.push(Event {
                kind,
                tenant: r.u64()?,
                step: r.u64()?,
                a: r.u64()?,
                b: r.u64()?,
                nanos: r.u64()?,
            });
        }
        r.finish()?;
        Ok(StatsSnapshot {
            counters,
            gauges,
            stages,
            journal: JournalSnapshot { pushed, dropped, capacity, events },
        })
    }

    /// Prometheus-style text exposition: one `smore_`-prefixed line per
    /// counter and gauge, per-stage quantile/count/sum lines, journal
    /// totals, and a human-readable tail of recent adaptation events.
    #[must_use]
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.counters {
            let _ = writeln!(out, "smore_{name} {value}");
        }
        for (name, value) in &self.gauges {
            let _ = writeln!(out, "smore_{name} {value}");
        }
        for (name, hist) in &self.stages {
            for (label, q) in [("p50", 0.5), ("p95", 0.95), ("p99", 0.99)] {
                let _ = writeln!(
                    out,
                    "smore_stage_nanos{{stage=\"{name}\",quantile=\"{label}\"}} {}",
                    hist.quantile(q)
                );
            }
            let _ = writeln!(out, "smore_stage_count{{stage=\"{name}\"}} {}", hist.count);
            let _ = writeln!(out, "smore_stage_sum_nanos{{stage=\"{name}\"}} {}", hist.sum);
        }
        let _ = writeln!(out, "smore_journal_pushed {}", self.journal.pushed);
        let _ = writeln!(out, "smore_journal_dropped {}", self.journal.dropped);
        for e in &self.journal.events {
            let _ = writeln!(
                out,
                "# event kind={} tenant={} step={} a={} b={} nanos={}",
                e.kind.name(),
                e.tenant,
                e.step,
                e.a,
                e.b,
                e.nanos
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> StatsSnapshot {
        let hist = {
            let h = crate::AtomicHistogram::new();
            h.record(5);
            h.record(5000);
            h.record(123_456);
            h.snapshot()
        };
        StatsSnapshot {
            counters: vec![("requests_served".into(), 42), ("overloaded".into(), 3)],
            gauges: vec![("ood_fraction_recent".into(), 0.125), ("nan_gauge".into(), f64::NAN)],
            stages: vec![("encode".into(), hist.clone()), ("score".into(), hist)],
            journal: JournalSnapshot {
                pushed: 9,
                dropped: 1,
                capacity: 64,
                events: vec![Event {
                    kind: EventKind::Personalized,
                    tenant: 3,
                    step: 77,
                    a: 1,
                    b: 0,
                    nanos: 1_000,
                }],
            },
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let snap = sample();
        let decoded = StatsSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded.counters, snap.counters);
        assert_eq!(decoded.stages, snap.stages);
        assert_eq!(decoded.journal, snap.journal);
        // NaN gauges survive as bit patterns (PartialEq on f64 would fail).
        assert_eq!(decoded.gauges[0], snap.gauges[0]);
        assert!(decoded.gauges[1].1.is_nan());
        assert_eq!(decoded.counter("overloaded"), Some(3));
        assert_eq!(decoded.gauge("ood_fraction_recent"), Some(0.125));
        assert_eq!(decoded.stage("encode").unwrap().count, 3);
        assert!(decoded.stage("missing").is_none());
    }

    #[test]
    fn empty_snapshot_round_trips() {
        let snap = StatsSnapshot::new();
        assert_eq!(StatsSnapshot::decode(&snap.encode()).unwrap(), snap);
    }

    #[test]
    fn rejects_unknown_version_truncation_and_trailing_bytes() {
        let mut bytes = sample().encode();
        assert!(StatsSnapshot::decode(&bytes[..bytes.len() - 1]).is_err(), "truncated");
        bytes.push(0);
        assert!(StatsSnapshot::decode(&bytes).is_err(), "trailing byte");
        bytes.pop();
        bytes[0] = 0xFF;
        bytes[1] = 0xFF;
        assert!(StatsSnapshot::decode(&bytes).is_err(), "unknown version");
    }

    #[test]
    fn rejects_unknown_event_kind() {
        let mut snap = sample();
        snap.journal.events.clear();
        let mut bytes = snap.encode();
        // Append one event with an invalid kind code by re-encoding by hand.
        let fixed = bytes.len() - 4; // n_events trailer
        bytes.truncate(fixed);
        let mut w = WireWriter::new();
        w.u32(1);
        w.u8(0xEE); // no such kind
        for _ in 0..5 {
            w.u64(0);
        }
        bytes.extend_from_slice(&w.into_bytes());
        let err = StatsSnapshot::decode(&bytes).unwrap_err();
        assert!(err.to_string().contains("unknown event kind"), "{err}");
    }

    #[test]
    fn render_text_is_line_oriented() {
        let text = sample().render_text();
        assert!(text.contains("smore_requests_served 42"));
        assert!(text.contains("smore_ood_fraction_recent 0.125"));
        assert!(text.contains("stage=\"encode\",quantile=\"p99\""));
        assert!(text.contains("smore_journal_pushed 9"));
        assert!(text.contains("# event kind=personalized tenant=3"));
    }
}
