//! A lock-free ring journal of structured adaptation events.
//!
//! Serving keeps counters for *how much*; the journal answers *what
//! happened, to whom, when*: every OOD window, drift firing, enrolment,
//! snapshot swap, personalization and overload shed is recorded with its
//! tenant id and step. The ring holds the most recent `capacity` events;
//! older ones are overwritten (writers never block on readers) and a
//! `dropped` counter accounts for writes lost to claim contention.
//!
//! ## Concurrency
//!
//! Each slot is an independent seqlock built from plain `AtomicU64`s — no
//! `unsafe` anywhere:
//!
//! - A writer claims a global index with one `fetch_add` on `head`, then
//!   CASes the slot's sequence word from "published at my index minus one
//!   lap" to "writing at my index" (odd). Only the CAS winner stores the
//!   six data words, then publishes with a release store of the even
//!   sequence. A writer that loses the CAS (a stalled predecessor, or a
//!   faster writer a full lap ahead) drops its event and counts it —
//!   nothing ever spins.
//! - A reader loads the sequence, copies the data words, fences, and
//!   re-checks the sequence: any concurrent overwrite flips the sequence
//!   first, so a torn copy is detected and discarded rather than returned.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// What happened. Codes are stable wire values — new kinds append only.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum EventKind {
    /// A serving window fell below the OOD similarity threshold and was
    /// buffered for adaptation. `a` = buffer occupancy after the push.
    OodWindow = 1,
    /// The drift detector crossed its OOD-fraction threshold.
    /// `a` = buffered windows at firing time.
    DriftFired = 2,
    /// An enrolment began. `a` = windows in the enrolment set,
    /// `b` = how many carried oracle labels.
    EnrollStart = 3,
    /// An enrolment finished and produced a candidate domain.
    /// `a` = windows enrolled, `nanos` = wall time of the model build.
    EnrollFinished = 4,
    /// A new snapshot was published to the serving path.
    /// `nanos` = wall time of the swap itself.
    SnapshotSwap = 5,
    /// A tenant transitioned from the shared base model to a personal
    /// snapshot. `a` = enrolled domains the personal snapshot now holds.
    Personalized = 6,
    /// A request was shed by admission control. `a` = shard index.
    OverloadShed = 7,
    /// A resident tenant session was evicted by the LRU layer.
    /// `a` = delta bytes archived (0 when the session held no personal
    /// state and was simply dropped), `b` = resident sessions after the
    /// eviction, `nanos` = wall time of the delta serialization.
    SessionEvicted = 8,
    /// An evicted tenant's session was rehydrated from its archived
    /// delta on its next request. `a` = delta bytes read, `b` = enrolled
    /// delta domains restored, `nanos` = wall time of the rehydration.
    SessionHydrated = 9,
    /// A serving worker thread panicked and was respawned by its
    /// supervisor with the shard queue intact. `a` = shard index,
    /// `b` = respawn count for that shard so far.
    WorkerPanic = 10,
    /// An archived tenant-state artifact failed validation (torn write,
    /// bit rot, foreign base) and was quarantined on disk — renamed, not
    /// deleted. `a` = artifact bytes.
    StateQuarantined = 11,
}

impl EventKind {
    /// Decodes a wire code; `None` for codes this build does not know.
    #[must_use]
    pub fn from_code(code: u64) -> Option<EventKind> {
        Some(match code {
            1 => EventKind::OodWindow,
            2 => EventKind::DriftFired,
            3 => EventKind::EnrollStart,
            4 => EventKind::EnrollFinished,
            5 => EventKind::SnapshotSwap,
            6 => EventKind::Personalized,
            7 => EventKind::OverloadShed,
            8 => EventKind::SessionEvicted,
            9 => EventKind::SessionHydrated,
            10 => EventKind::WorkerPanic,
            11 => EventKind::StateQuarantined,
            _ => return None,
        })
    }

    /// Stable snake_case name (used in text exposition).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::OodWindow => "ood_window",
            EventKind::DriftFired => "drift_fired",
            EventKind::EnrollStart => "enroll_start",
            EventKind::EnrollFinished => "enroll_finished",
            EventKind::SnapshotSwap => "snapshot_swap",
            EventKind::Personalized => "personalized",
            EventKind::OverloadShed => "overload_shed",
            EventKind::SessionEvicted => "session_evicted",
            EventKind::SessionHydrated => "session_hydrated",
            EventKind::WorkerPanic => "worker_panic",
            EventKind::StateQuarantined => "state_quarantined",
        }
    }
}

/// One journal entry. `a`, `b` and `nanos` are kind-specific payloads
/// (documented on each [`EventKind`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// What happened.
    pub kind: EventKind,
    /// The tenant it happened to (0 for engine-wide events).
    pub tenant: u64,
    /// The tenant's observation step at the time.
    pub step: u64,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
    /// Kind-specific duration payload, in nanoseconds.
    pub nanos: u64,
}

const WORDS: usize = 6;

#[derive(Debug)]
struct Slot {
    /// 0 = never written; odd `2i+1` = writing at global index `i`;
    /// even `2i+2` = published at global index `i`.
    seq: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Slot { seq: AtomicU64::new(0), words: std::array::from_fn(|_| AtomicU64::new(0)) }
    }
}

/// A fixed-capacity, lock-free ring of the most recent [`Event`]s.
///
/// # Example
///
/// ```
/// use smore_obs::{Event, EventJournal, EventKind};
///
/// let journal = EventJournal::new(64);
/// journal.push(Event {
///     kind: EventKind::DriftFired,
///     tenant: 7,
///     step: 120,
///     a: 32,
///     b: 0,
///     nanos: 0,
/// });
/// let snap = journal.snapshot();
/// assert_eq!(snap.pushed, 1);
/// assert_eq!(snap.events[0].tenant, 7);
/// ```
#[derive(Debug)]
pub struct EventJournal {
    slots: Box<[Slot]>,
    mask: u64,
    head: AtomicU64,
    pushed: AtomicU64,
    dropped: AtomicU64,
}

impl EventJournal {
    /// A journal holding the most recent `capacity` events; `capacity` is
    /// rounded up to a power of two (minimum 2).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.next_power_of_two().max(2);
        Self {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            pushed: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity (events retained).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events successfully published since creation.
    #[must_use]
    pub fn pushed(&self) -> u64 {
        // ordering: Relaxed — monotone stats counter; readers only ever
        // see it grow and promise no ordering against slot contents.
        self.pushed.load(Ordering::Relaxed)
    }

    /// Events lost to slot-claim contention (never to readers).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        // ordering: Relaxed — monotone stats counter, same contract as
        // `pushed`.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Records an event; wait-free, returns whether it was published.
    pub fn push(&self, event: Event) -> bool {
        // ordering: Relaxed — the ticket counter only hands out distinct
        // indices; all ownership ordering goes through the slot's seq word.
        let index = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(index & self.mask) as usize]; // smore-lint: allow(panic_path) index is masked by capacity-1
        let capacity = self.slots.len() as u64;
        // The slot last held the event one lap behind us (or nothing).
        let expected = if index >= capacity { 2 * (index - capacity) + 2 } else { 0 };
        let writing = 2 * index + 1;
        // ordering: Acquire on success pairs with the previous lap's
        // Release publish, so our word stores below cannot be reordered
        // before we own the slot; Relaxed on failure — we write nothing.
        if slot
            .seq
            .compare_exchange(expected, writing, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            // A stalled predecessor still owns the slot, or a writer a full
            // lap ahead already claimed it. Drop rather than spin or tear.
            // ordering: Relaxed — monotone drop counter, stats only.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let values = [event.kind as u64, event.tenant, event.step, event.a, event.b, event.nanos];
        // ordering: Relaxed word stores are fenced by the seq protocol —
        // after the Acquire claim above, before the Release publish below,
        // which is the edge snapshot() synchronizes with.
        for (word, value) in slot.words.iter().zip(values) {
            word.store(value, Ordering::Relaxed);
        }
        // ordering: Release — publishes the word stores above to any
        // reader that Acquire-loads seq == 2*index+2.
        slot.seq.store(2 * index + 2, Ordering::Release);
        // ordering: Relaxed — monotone publish counter, stats only.
        self.pushed.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Copies out the currently retained events, oldest first. Slots being
    /// overwritten mid-copy are detected via their sequence word and
    /// skipped — a returned event is never torn.
    #[must_use]
    pub fn snapshot(&self) -> JournalSnapshot {
        // ordering: Acquire — any slot published before this head read is
        // fully visible (pairs with the writers' Release seq stores).
        let head = self.head.load(Ordering::Acquire);
        let capacity = self.slots.len() as u64;
        let start = head.saturating_sub(capacity);
        let mut events = Vec::with_capacity((head - start) as usize);
        for index in start..head {
            let slot = &self.slots[(index & self.mask) as usize]; // smore-lint: allow(panic_path) index is masked by capacity-1
                                                                  // ordering: Acquire — seeing the published seq makes the
                                                                  // writer's word stores visible to the Relaxed loads below.
            let seq = slot.seq.load(Ordering::Acquire);
            if seq != 2 * index + 2 {
                continue; // unpublished, in-flight, or already overwritten
            }
            // ordering: Relaxed word loads are validated by the seqlock
            // re-check below; a torn read is discarded, never returned.
            let words: [u64; WORDS] =
                std::array::from_fn(|w| slot.words[w].load(Ordering::Relaxed)); // smore-lint: allow(panic_path) w < WORDS by construction
                                                                                // ordering: the Acquire fence orders the word loads above
                                                                                // before the seq re-load — if seq is still unchanged, no
                                                                                // writer claimed the slot while we copied.
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != seq {
                continue; // overwritten while copying — discard the torn read
            }
            let [code, tenant, step, a, b, nanos] = words;
            let Some(kind) = EventKind::from_code(code) else { continue };
            events.push(Event { kind, tenant, step, a, b, nanos });
        }
        JournalSnapshot {
            pushed: self.pushed(),
            dropped: self.dropped(),
            capacity: self.capacity(),
            events,
        }
    }
}

/// A point-in-time copy of the journal: totals plus the retained tail.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalSnapshot {
    /// Events successfully published since creation.
    pub pushed: u64,
    /// Events lost to claim contention.
    pub dropped: u64,
    /// Ring capacity of the source journal.
    pub capacity: usize,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
}

impl JournalSnapshot {
    /// How many retained events match `kind`.
    #[must_use]
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind, tenant: u64, step: u64) -> Event {
        Event { kind, tenant, step, a: step + 1, b: step + 2, nanos: step + 3 }
    }

    #[test]
    fn preserves_order_and_payloads() {
        let j = EventJournal::new(8);
        for step in 0..5 {
            assert!(j.push(ev(EventKind::OodWindow, 42, step)));
        }
        let snap = j.snapshot();
        assert_eq!(snap.pushed, 5);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.capacity, 8);
        assert_eq!(snap.events.len(), 5);
        for (i, e) in snap.events.iter().enumerate() {
            assert_eq!(*e, ev(EventKind::OodWindow, 42, i as u64));
        }
    }

    #[test]
    fn wrap_around_keeps_most_recent() {
        let j = EventJournal::new(4);
        for step in 0..10 {
            j.push(ev(EventKind::DriftFired, 1, step));
        }
        let snap = j.snapshot();
        assert_eq!(snap.pushed, 10);
        let steps: Vec<u64> = snap.events.iter().map(|e| e.step).collect();
        assert_eq!(steps, [6, 7, 8, 9], "ring retains exactly the last `capacity` events");
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(EventJournal::new(0).capacity(), 2);
        assert_eq!(EventJournal::new(3).capacity(), 4);
        assert_eq!(EventJournal::new(64).capacity(), 64);
    }

    #[test]
    fn count_of_filters_kinds() {
        let j = EventJournal::new(8);
        j.push(ev(EventKind::EnrollStart, 1, 0));
        j.push(ev(EventKind::EnrollFinished, 1, 1));
        j.push(ev(EventKind::EnrollFinished, 2, 2));
        let snap = j.snapshot();
        assert_eq!(snap.count_of(EventKind::EnrollFinished), 2);
        assert_eq!(snap.count_of(EventKind::SnapshotSwap), 0);
    }
}
