//! Fault-injection harness: every failure domain the server claims to
//! isolate, exercised over real loopback sockets.
//!
//! Each test kills, corrupts, starves or stalls exactly one component
//! and asserts the blast radius stays contained: no hangs, typed errors
//! instead of panics, and gauges that report what actually happened —
//! `worker_panics`, `state_recovered`, `state_quarantined` and
//! `state_write_failures` must tell the truth after every scenario.

use std::fs;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use smore_data::Dataset;
use smore_obs::EventJournal;
use smore_serve::{
    serve, synthetic, ChaosConfig, ErrorCode, EventKind, FlushPolicy, Response, RetryPolicy,
    ServeClient, ServeConfig, ServerHandle, StatsSnapshot, WirePrediction,
};
use smore_stream::ServeEngine;
use smore_tensor::Matrix;

/// One trained fleet shared by every chaos scenario (training dominates
/// wall-clock; the engine is immutable — all mutable tenant state lives
/// in each server's workers, which is exactly what these tests destroy).
fn fleet() -> &'static (Dataset, Arc<ServeEngine>) {
    static FLEET: OnceLock<(Dataset, Arc<ServeEngine>)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let (ds, mut engine) = synthetic::engine(11, 512).expect("synthetic fleet trains");
        engine.set_journal(Arc::new(EventJournal::new(4096)));
        (ds, Arc::new(engine))
    })
}

fn start(config: ServeConfig) -> (ServerHandle, Dataset) {
    let (ds, engine) = fleet();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = serve(Arc::clone(engine), listener, config).expect("server starts");
    (server, ds.clone())
}

/// A scratch state directory unique to one scenario, wiped on entry so
/// reruns never inherit stale tenant files.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smore-chaos-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("scratch state dir");
    dir
}

/// Drives the calibrated drift stream through wire ingest until the
/// tenant enrols, then returns the probe window a bit-exactness check
/// can replay later.
fn personalize(client: &mut ServeClient, ds: &Dataset, tenant: u64) -> Vec<(Matrix, usize)> {
    let drift = synthetic::drift_stream(ds, 160, 42).expect("drift stream");
    let mut adapted = false;
    for (window, label) in &drift {
        if client.ingest(tenant, window, Some(*label as u32)).expect("wire ingest").adapted {
            adapted = true;
            break;
        }
    }
    assert!(adapted, "drift stream must personalize tenant {tenant}");
    drift
}

fn assert_bit_exact(before: &WirePrediction, after: &WirePrediction, what: &str) {
    assert_eq!(after.label, before.label, "{what}: label");
    assert_eq!(after.best_domain, before.best_domain, "{what}: best domain");
    assert_eq!(after.delta_max, before.delta_max, "{what}: delta_max must be bit-exact");
}

/// Workers publish counters after replying, so a scrape can race one
/// batch behind — poll until the condition holds (or fail loudly).
fn scrape_until(
    client: &mut ServeClient,
    what: &str,
    cond: impl Fn(&StatsSnapshot) -> bool,
) -> StatsSnapshot {
    for _ in 0..500 {
        let stats = client.stats().expect("stats scrape");
        if cond(&stats) {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stats never reflected: {what}");
}

#[test]
fn graceful_shutdown_suspends_sessions_and_restart_is_bit_exact() {
    let dir = scratch_dir("graceful");
    let config = ServeConfig {
        workers: 2,
        state_dir: Some(dir.clone()),
        flush_policy: FlushPolicy::OnEvict,
        ..ServeConfig::default()
    };

    let (server, ds) = start(config.clone());
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let tenant = 7u64;
    let drift = personalize(&mut client, &ds, tenant);
    let probe = &drift[0].0;
    let before = client.predict(tenant, probe).expect("personalized predict");
    drop(client);

    // Graceful drain: every resident personalized session must land in
    // the state dir (fsynced — OnEvict defers the sync to exactly here).
    let metrics = server.metrics_arc();
    server.shutdown();
    // ordering: Relaxed — read after shutdown() joined every worker.
    assert!(
        metrics.sessions_drained.load(std::sync::atomic::Ordering::Relaxed) >= 1,
        "drain must suspend the personalized session"
    );

    // A restart over the same directory recovers the tenant before any
    // traffic and serves it bit-exactly.
    let (restarted, _) = start(config);
    let mut client = ServeClient::connect(restarted.local_addr()).expect("reconnect");
    let stats = scrape_until(&mut client, "recovery scan after graceful restart", |s| {
        s.counter("state_recovered").unwrap_or(0) >= 1
    });
    assert_eq!(stats.counter("state_quarantined"), Some(0));
    let after = client.predict(tenant, probe).expect("post-restart predict");
    assert_bit_exact(&before, &after, "graceful restart");
    restarted.shutdown();
}

#[test]
fn kill_without_shutdown_recovers_evicted_state_from_disk() {
    // Satellite crash-recovery scenario, over the wire: with `sync`
    // flushing, whatever eviction pushed to disk survives an unclean
    // kill (abort = no drain, exactly what SIGKILL leaves behind).
    let dir = scratch_dir("kill");
    let config = ServeConfig {
        workers: 1,
        max_sessions_per_shard: 2,
        state_dir: Some(dir.clone()),
        flush_policy: FlushPolicy::Sync,
        ..ServeConfig::default()
    };

    let (server, ds) = start(config.clone());
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let tenant = 5u64;
    let drift = personalize(&mut client, &ds, tenant);
    let probe = &drift[0].0;
    let before = client.predict(tenant, probe).expect("personalized predict");

    // Churn other tenants through the 2-session shard until the
    // personalized tenant is evicted — its delta hits disk fsynced.
    for t in 100..110u64 {
        client.ingest(t, ds.window(t as usize % ds.len()), None).expect("churn ingest");
    }
    scrape_until(&mut client, "eviction of the personalized tenant", |s| {
        s.counter("sessions_evicted").unwrap_or(0) >= 1
    });
    drop(client);
    server.abort();

    // The unclean kill lost every resident session; the evicted one is
    // on disk and must come back bit-exactly.
    let (restarted, _) = start(config);
    let mut client = ServeClient::connect(restarted.local_addr()).expect("reconnect");
    let stats = scrape_until(&mut client, "recovery scan after unclean kill", |s| {
        s.counter("state_recovered").unwrap_or(0) >= 1
    });
    assert!(
        stats.gauge("tenants_archived").unwrap_or(0.0) >= 1.0,
        "the recovered tenant must be reported archived until its first request"
    );
    let after = client.predict(tenant, probe).expect("post-kill predict");
    assert_bit_exact(&before, &after, "crash recovery");
    scrape_until(&mut client, "rehydration from the recovered file", |s| {
        s.counter("sessions_hydrated").unwrap_or(0) >= 1
    });
    restarted.shutdown();
}

#[test]
fn worker_panic_is_supervised_and_serving_continues() {
    // One worker with an injected panic on tenant 666: the supervisor
    // must respawn it with the queue intact, journal the crash, and keep
    // every other tenant serving. batch_max = 1 keeps the victim's batch
    // to itself so no innocent request shares its dropped replies.
    let (server, ds) = start(ServeConfig {
        workers: 1,
        batch_max: 1,
        chaos: ChaosConfig { panic_on_tenant: Some(666), ..ChaosConfig::default() },
        ..ServeConfig::default()
    });

    // The victim request is fired pipelined on its own connection and
    // never awaited — its reply sender dies with the panicking worker.
    let mut victim = ServeClient::connect(server.local_addr()).expect("victim connect");
    victim.send_predict(666, ds.window(0)).expect("queue the poisoned request");
    victim.flush().expect("flush");

    // A healthy tenant on a separate connection must keep getting
    // answers from the respawned worker.
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let p = client.predict(1, ds.window(3)).expect("predict after the panic");
    assert!(p.label < 4);
    let stats = scrape_until(&mut client, "supervised worker panic", |s| {
        s.counter("worker_panics").unwrap_or(0) >= 1
    });
    assert!(
        stats.journal.events.iter().any(|e| e.kind == EventKind::WorkerPanic),
        "the crash must land in the journal"
    );
    // The poisoned tenant keeps poisoning — and the supervisor keeps
    // absorbing it — without taking the healthy tenant down.
    victim.send_predict(666, ds.window(1)).expect("queue a second poisoned request");
    victim.flush().expect("flush");
    let p = client.predict(2, ds.window(5)).expect("predict after the second panic");
    assert!(p.label < 4);
    scrape_until(&mut client, "second supervised panic", |s| {
        s.counter("worker_panics").unwrap_or(0) >= 2
    });
    drop(victim);
    server.shutdown();
}

#[test]
fn unwritable_state_dir_degrades_to_memory_not_death() {
    // The disk vanishes under a running server: archive writes must fail
    // typed (counted, journaled) while serving continues from the
    // in-memory overflow — availability over durability.
    let dir = scratch_dir("diskfull");
    let (server, ds) = start(ServeConfig {
        workers: 1,
        max_sessions_per_shard: 2,
        state_dir: Some(dir.clone()),
        flush_policy: FlushPolicy::Sync,
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let tenant = 9u64;
    let drift = personalize(&mut client, &ds, tenant);
    let probe = &drift[0].0;
    let before = client.predict(tenant, probe).expect("personalized predict");

    // Yank the directory out from under the store. chmod cannot simulate
    // this for root, so the dir is replaced by a plain file — every
    // subsequent create in it fails with a real io::Error.
    fs::remove_dir_all(&dir).expect("yank state dir");
    fs::write(&dir, b"disk gone").expect("park a file at the dir path");

    for t in 300..310u64 {
        client.ingest(t, ds.window(t as usize % ds.len()), None).expect("churn ingest");
    }
    let stats = scrape_until(&mut client, "archive write failure", |s| {
        s.counter("state_write_failures").unwrap_or(0) >= 1
    });
    assert!(stats.counter("sessions_evicted").unwrap_or(0) >= 1);

    // The failed write fell back to the in-memory overflow: the tenant
    // rehydrates bit-exactly even though its disk is gone.
    let after = client.predict(tenant, probe).expect("predict with the disk gone");
    assert_bit_exact(&before, &after, "memory-overflow rehydration");
    server.shutdown();
    let _ = fs::remove_file(&dir);
}

#[test]
fn torn_and_foreign_state_files_are_quarantined_not_trusted() {
    // A state dir seeded with wreckage a real crash leaves behind: a
    // garbage `.smore`, a torn `.tmp`, and a foreign file. The recovery
    // scan must quarantine the first two (never delete), skip the third,
    // and serve the affected tenant fresh.
    let dir = scratch_dir("torn");
    fs::write(dir.join("tenant-5.smore"), b"not a smore artifact at all").expect("seed garbage");
    fs::write(dir.join("tenant-6.tmp"), b"torn mid-write").expect("seed torn tmp");
    fs::write(dir.join("README.txt"), b"operator notes").expect("seed foreign file");

    let (server, ds) =
        start(ServeConfig { workers: 1, state_dir: Some(dir.clone()), ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let stats = scrape_until(&mut client, "quarantine of the seeded wreckage", |s| {
        s.counter("state_quarantined").unwrap_or(0) >= 2
    });
    assert_eq!(stats.counter("state_recovered"), Some(0));

    // Quarantined artifacts are renamed aside for forensics, not deleted.
    let names: Vec<String> = fs::read_dir(&dir)
        .expect("state dir listing")
        .map(|e| e.expect("dir entry").file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        names.iter().filter(|n| n.ends_with(".quarantine")).count() >= 2,
        "wreckage must be parked as .quarantine files, got {names:?}"
    );
    assert!(names.iter().any(|n| n == "README.txt"), "foreign files must be left alone");

    // The tenant whose file was garbage starts fresh and serves.
    let p = client.predict(5, ds.window(2)).expect("fresh serve after quarantine");
    assert!(p.label < 4);
    server.shutdown();
}

#[test]
fn stalled_reader_is_disconnected_without_stalling_the_server() {
    // A client that opens a connection, sends half a frame, and goes
    // silent: the io timeout must reap it instead of pinning a reader
    // thread forever, and healthy traffic must never notice.
    let (server, ds) = start(ServeConfig {
        workers: 1,
        io_timeout: Some(Duration::from_millis(150)),
        ..ServeConfig::default()
    });

    let mut staller = TcpStream::connect(server.local_addr()).expect("staller connects");
    staller.write_all(&[0x01, 0x02]).expect("half a length prefix");
    staller.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");

    // Healthy requests keep flowing while the staller sits silent.
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    for i in 0..5 {
        client.predict(i, ds.window(i as usize)).expect("healthy predict");
    }

    // The server must close the stalled connection within the timeout
    // bound — observed as EOF on the staller's socket, not a hang.
    let t0 = Instant::now();
    let mut buf = [0u8; 64];
    let n = staller.read(&mut buf).expect("read until server closes");
    assert_eq!(n, 0, "the server must close the stalled connection, not answer it");
    assert!(
        t0.elapsed() < Duration::from_secs(8),
        "the stalled connection must be reaped promptly, took {:?}",
        t0.elapsed()
    );
    // The io timeout reaps idle keep-alives too (the first client sat
    // silent during the wait above) — a fresh connection serves fine.
    let mut fresh = ServeClient::connect(server.local_addr()).expect("reconnect");
    fresh.predict(99, ds.window(7)).expect("healthy predict after the reap");
    server.shutdown();
}

#[test]
fn overload_retry_rides_out_a_burst() {
    // A saturated one-deep queue with an injected per-job stall: plain
    // sends get honest `Overloaded` errors; the retrying client backs
    // off with jitter and lands its request once the burst drains.
    let (server, ds) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        batch_deadline: Duration::from_micros(1),
        chaos: ChaosConfig {
            stall_per_job: Some(Duration::from_millis(1)),
            ..ChaosConfig::default()
        },
        ..ServeConfig::default()
    });

    let mut burst = ServeClient::connect(server.local_addr()).expect("burst connect");
    let total = 300usize;
    for i in 0..total {
        burst.send_predict(i as u64, ds.window(i % ds.len())).expect("queue predict");
    }
    burst.flush().expect("flush");

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let policy = RetryPolicy {
        attempts: 50,
        base_delay: Duration::from_millis(2),
        max_delay: Duration::from_millis(20),
    };
    let p = client.predict_retrying(500, ds.window(11), policy).expect("retry rides out burst");
    assert!(p.label < 4);

    // Every burst request still gets exactly one answer — shed or served.
    let mut shed = 0usize;
    for _ in 0..total {
        match burst.recv().expect("every request gets exactly one response").1 {
            Response::Prediction(_) => {}
            Response::Error { code: ErrorCode::Overloaded, .. } => shed += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert!(shed > 0, "a 300-deep burst into a queue of 1 must shed");
    // ordering: Relaxed — every shed was observed via its reply above.
    assert!(server.metrics().overloaded.load(std::sync::atomic::Ordering::Relaxed) > 0);
    server.shutdown();
}
