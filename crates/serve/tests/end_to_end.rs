//! End-to-end serving over real loopback sockets: wire predictions must
//! match direct in-process serving, drifting tenants must personalize
//! through `Ingest`, and admission control must answer `Overloaded`
//! instead of buffering without bound.

use std::net::TcpListener;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use smore_data::Dataset;
use smore_obs::EventJournal;
use smore_serve::{
    serve, synthetic, ErrorCode, EventKind, Response, ServeClient, ServeConfig, ServerHandle,
    StatsSnapshot,
};
use smore_stream::ServeEngine;

/// One trained fleet shared by every test in this file (training
/// dominates test wall-clock; the engine itself is immutable — tenant
/// state lives in each server's workers). The attached journal is
/// likewise shared: every server started from this fleet pushes its
/// adaptation events into the same ring.
fn fleet() -> &'static (Dataset, Arc<ServeEngine>) {
    static FLEET: OnceLock<(Dataset, Arc<ServeEngine>)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let (ds, mut engine) = synthetic::engine(11, 512).expect("synthetic fleet trains");
        engine.set_journal(Arc::new(EventJournal::new(4096)));
        (ds, Arc::new(engine))
    })
}

fn start(config: ServeConfig) -> (ServerHandle, Dataset) {
    let (ds, engine) = fleet();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server = serve(Arc::clone(engine), listener, config).expect("server starts");
    (server, ds.clone())
}

#[test]
fn wire_predictions_match_direct_serving() {
    let (server, ds) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    let (_, engine) = fleet();
    let base = engine.base_snapshot();

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    for (i, idx) in (0..ds.len()).step_by(17).enumerate() {
        let window = ds.window(idx);
        let direct = base.predict_window(window).expect("direct predict");
        let wire = client.predict(i as u64, window).expect("wire predict");
        assert_eq!(wire.label as usize, direct.label, "window {idx}");
        assert_eq!(wire.is_ood, direct.is_ood, "window {idx}");
        assert_eq!(wire.best_domain as usize, direct.best_domain, "window {idx}");
        assert!((wire.delta_max - direct.delta_max).abs() < 1e-6, "window {idx}");
        assert!(!wire.buffered && !wire.adapted, "stateless predicts never touch a session");
    }
    // ordering: Relaxed — the predict round-trips above already ordered
    // the counter bumps before this read.
    assert!(server.metrics().served.load(std::sync::atomic::Ordering::Relaxed) > 0);
    server.shutdown();
}

#[test]
fn pipelined_predicts_coalesce_into_shared_base_batches() {
    let (server, ds) = start(ServeConfig {
        workers: 1,
        batch_max: 16,
        batch_deadline: Duration::from_millis(5),
        ..ServeConfig::default()
    });

    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    let total = 64usize;
    let mut expected_ids = Vec::new();
    for i in 0..total {
        let id =
            client.send_predict(1000 + i as u64, ds.window(i % ds.len())).expect("queue predict");
        expected_ids.push(id);
    }
    client.flush().expect("flush");
    let mut answered = 0usize;
    while answered < total {
        let (id, response) = client.recv().expect("response");
        assert!(expected_ids.contains(&id));
        assert!(matches!(response, Response::Prediction(_)), "got {response:?}");
        answered += 1;
    }

    let m = server.metrics();
    // ordering: Relaxed — read after every pipelined reply arrived, so
    // the worker's bumps are already ordered before these loads.
    let batches = m.coalesced_batches.load(std::sync::atomic::Ordering::Relaxed);
    let windows = m.coalesced_windows.load(std::sync::atomic::Ordering::Relaxed);
    assert!(batches > 0, "pipelined same-connection predicts must coalesce");
    assert!(windows > batches, "coalesced batches must hold more than one window each");
    server.shutdown();
}

#[test]
fn drifting_tenant_personalizes_through_wire_ingest() {
    let (server, ds) = start(ServeConfig { workers: 1, ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Feed the tenant the calibrated drift stream (1.5×-hot held-out
    // windows) with oracle labels — exactly what a drifted deployment
    // streams back. Sustained low δ_max must fire enrolment.
    let drift = synthetic::drift_stream(&ds, 160, 42).expect("drift stream");
    assert!(drift.len() >= 64, "need a real drift stream");

    let tenant = 77u64;
    let mut adapted = false;
    for (window, label) in &drift {
        let p = client.ingest(tenant, window, Some(*label as u32)).expect("wire ingest");
        if p.adapted {
            adapted = true;
            break;
        }
    }
    assert!(adapted, "a tenant streaming drifted windows must trigger enrolment");
    // ordering: Relaxed — the adapted reply already ordered the bump.
    assert!(server.metrics().adaptations.load(std::sync::atomic::Ordering::Relaxed) >= 1);

    // The enrolment the wire reported must be visible in the scraped
    // journal, attributed to this tenant.
    let stats = client.stats().expect("stats scrape");
    let finished = stats.journal.count_of(EventKind::EnrollFinished);
    assert!(finished >= 1, "the journal must record the enrolment just observed");
    assert!(
        stats
            .journal
            .events
            .iter()
            .any(|e| e.kind == EventKind::EnrollFinished && e.tenant == tenant),
        "the enrolment event must carry the drifting tenant's id"
    );

    // The personalized tenant keeps serving (now through its own session).
    let p = client.predict(tenant, &drift[0].0).expect("post-adaptation predict");
    assert!(p.label < 4);
    server.shutdown();
}

#[test]
fn stats_snapshot_accounts_for_served_requests() {
    let (server, ds) = start(ServeConfig { workers: 2, ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let total = 40u64;
    for i in 0..total {
        client.predict(i, ds.window(i as usize % ds.len())).expect("wire predict");
    }

    // Scrape over the wire: the versioned snapshot frame must decode and
    // its totals must equal what this client just observed.
    let stats = client.stats().expect("stats scrape decodes");
    assert_eq!(
        stats.counter("requests_served"),
        Some(total),
        "served counter must match the predicts answered"
    );
    assert_eq!(stats.counter("stats_requests"), Some(1));
    assert_eq!(stats.counter("protocol_errors"), Some(0));
    assert_eq!(stats.gauge("workers"), Some(2.0));

    // Per-stage histograms: every predict passes once through each
    // pipeline stage, so the stage counts reconcile with the counter.
    for stage in ["encode", "score", "queue_wait", "coalesce_wait"] {
        let h = stats.stage(stage).unwrap_or_else(|| panic!("stage {stage} present"));
        assert_eq!(h.count, total, "stage {stage} must see every predict exactly once");
        assert!(h.quantile(0.50) <= h.quantile(0.99), "stage {stage} quantiles ordered");
    }
    // Decode also sees the Stats frame itself; Reply counts only what the
    // writer has flushed by scrape time (>= the answered predicts).
    let decode = stats.stage("decode").expect("decode stage");
    assert!(decode.count >= total, "decode must time every inbound frame");
    assert!(decode.sum > 0, "decode nanos must accumulate");
    let reply = stats.stage("reply").expect("reply stage");
    assert!(reply.count >= total, "every answered predict was written before the scrape");

    // The in-process handle sees the same registry the wire serves.
    let local = server.stats();
    assert_eq!(local.counter("requests_served"), Some(total));
    server.shutdown();
}

#[test]
fn stats_never_shed_under_overload() {
    // Same saturation setup as the overload test: the Stats request must
    // be answered inline on the connection thread even while workers shed.
    let (server, ds) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        batch_deadline: Duration::from_micros(1),
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let total = 300usize;
    for i in 0..total {
        client.send_predict(i as u64, ds.window(i % ds.len())).expect("queue predict");
    }
    client.flush().expect("flush");
    let mut diag = ServeClient::connect(server.local_addr()).expect("second connection");
    let stats = diag.stats().expect("an overloaded server still answers its own diagnosis");
    assert!(stats.counter("requests_served").is_some());
    for _ in 0..total {
        client.recv().expect("every request still gets exactly one response");
    }

    // Shed events landed in the shared journal (this config must shed).
    let after = diag.stats().expect("second scrape");
    if after.counter("overloaded").unwrap_or(0) > 0 {
        assert!(
            after.journal.count_of(EventKind::OverloadShed) > 0
                || after.journal.pushed > after.journal.capacity as u64,
            "shed requests must be journaled"
        );
    }
    server.shutdown();
}

#[test]
fn full_queue_answers_overloaded_not_oom() {
    // One worker, a queue of one, no coalescing: a pipelined burst must
    // overflow admission control and get explicit Overloaded responses
    // while every request still gets exactly one answer.
    let (server, ds) = start(ServeConfig {
        workers: 1,
        queue_capacity: 1,
        batch_max: 1,
        batch_deadline: Duration::from_micros(1),
        ..ServeConfig::default()
    });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let total = 400usize;
    for i in 0..total {
        client.send_predict(i as u64, ds.window(i % ds.len())).expect("queue predict");
    }
    client.flush().expect("flush");

    let mut predictions = 0usize;
    let mut overloaded = 0usize;
    for _ in 0..total {
        match client.recv().expect("every request gets exactly one response").1 {
            Response::Prediction(_) => predictions += 1,
            Response::Error { code: ErrorCode::Overloaded, .. } => overloaded += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(predictions + overloaded, total);
    assert!(overloaded > 0, "a 400-deep burst into a queue of 1 must trip admission control");
    assert!(predictions > 0, "admission control must shed load, not stop serving");
    // ordering: Relaxed — every burst reply was received before this.
    assert_eq!(
        server.metrics().overloaded.load(std::sync::atomic::Ordering::Relaxed),
        overloaded as u64
    );
    server.shutdown();
}

/// Workers publish gauges after replying, so a scrape can race one batch
/// behind — poll until the condition holds (or fail loudly).
fn scrape_until(
    client: &mut ServeClient,
    what: &str,
    cond: impl Fn(&StatsSnapshot) -> bool,
) -> StatsSnapshot {
    for _ in 0..500 {
        let stats = client.stats().expect("stats scrape");
        if cond(&stats) {
            return stats;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("stats never reflected: {what}");
}

#[test]
fn session_churn_is_bounded_archived_and_rehydrated_on_the_wire() {
    // A shard capped at 8 resident sessions: tenant churn beyond the cap
    // must evict (never grow without bound), a personalized tenant must be
    // archived rather than lost, and its next request must rehydrate it —
    // all of it visible in one stats scrape.
    let (server, ds) =
        start(ServeConfig { workers: 1, max_sessions_per_shard: 8, ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Personalize tenant 5 through wire ingest (the calibrated drift
    // stream from the adaptation test).
    let drift = synthetic::drift_stream(&ds, 160, 42).expect("drift stream");
    let tenant = 5u64;
    let mut adapted = false;
    for (window, label) in &drift {
        if client.ingest(tenant, window, Some(*label as u32)).expect("wire ingest").adapted {
            adapted = true;
            break;
        }
    }
    assert!(adapted, "drift stream must personalize the tenant");
    let probe = &drift[0].0;
    let before = client.predict(tenant, probe).expect("personalized predict");

    // Churn 100 other tenants through the shard via the stateful path.
    for t in 100..200u64 {
        client.ingest(t, ds.window(t as usize % ds.len()), None).expect("churn ingest");
    }
    let stats = scrape_until(&mut client, "eviction of the personalized tenant", |s| {
        s.counter("sessions_evicted").unwrap_or(0) >= 1
            && s.gauge("tenants_archived").unwrap_or(0.0) >= 1.0
    });
    // The leak fix: the resident gauge respects the cap under churn. The
    // stale-gauge fix: evicted sessions stop counting the moment they
    // leave, so personalized drops to zero while the tenant is archived.
    assert!(
        stats.gauge("tenant_sessions").expect("sessions gauge") <= 8.0,
        "resident sessions must stay within the shard cap"
    );
    assert_eq!(stats.gauge("tenants_personalized"), Some(0.0));
    assert!(stats.gauge("archived_delta_bytes").expect("archive gauge") > 0.0);
    assert!(stats.journal.count_of(EventKind::SessionEvicted) >= 1);

    // The evicted tenant's next request transparently rehydrates it, and
    // the rehydrated overlay serves bit-identically.
    let after = client.predict(tenant, probe).expect("rehydrated predict");
    assert_eq!(after.label, before.label);
    assert_eq!(after.best_domain, before.best_domain);
    assert_eq!(after.delta_max, before.delta_max, "rehydration must be bit-exact");
    let stats = scrape_until(&mut client, "rehydration of the archived tenant", |s| {
        s.counter("sessions_hydrated").unwrap_or(0) >= 1 && s.gauge("tenants_archived") == Some(0.0)
    });
    assert_eq!(stats.gauge("archived_delta_bytes"), Some(0.0));
    assert_eq!(stats.gauge("tenants_personalized"), Some(1.0));
    assert!(stats.journal.count_of(EventKind::SessionHydrated) >= 1);
    server.shutdown();
}

#[test]
fn tenants_shard_across_workers_and_share_the_base() {
    let (server, ds) = start(ServeConfig { workers: 3, ..ServeConfig::default() });
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");
    // 32 tenants spread across 3 shards all serve the same base snapshot:
    // identical windows give identical predictions regardless of shard.
    let window = ds.window(3);
    let reference = client.predict(0, window).expect("tenant 0");
    for tenant in 1..32u64 {
        let p = client.predict(tenant, window).expect("tenant predict");
        assert_eq!(p.label, reference.label, "tenant {tenant}");
        assert_eq!(p.delta_max, reference.delta_max, "tenant {tenant}");
    }
    server.shutdown();
}
