//! Socket-level corruption sweep: hostile bytes on a live connection
//! must be answered with clean typed errors — never a worker death, an
//! allocation sized by the attacker, or a poisoned server. After every
//! attack the same connection (where framing allows) and the server as a
//! whole must keep serving.

use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};

use smore::wire::crc32;
use smore_data::Dataset;
use smore_serve::protocol::{
    decode_response, encode_request, encode_response, WirePrediction, MAX_FRAME_LEN,
    UNKNOWN_REQUEST_ID,
};
use smore_serve::{
    serve, synthetic, ErrorCode, Request, Response, ServeClient, ServeConfig, ServerHandle,
};
use smore_stream::ServeEngine;

fn fleet() -> &'static (Dataset, Arc<ServeEngine>) {
    static FLEET: OnceLock<(Dataset, Arc<ServeEngine>)> = OnceLock::new();
    FLEET.get_or_init(|| {
        let (ds, engine) = synthetic::engine(13, 256).expect("synthetic fleet trains");
        (ds, Arc::new(engine))
    })
}

fn start() -> (ServerHandle, Dataset) {
    let (ds, engine) = fleet();
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let server =
        serve(Arc::clone(engine), listener, ServeConfig { workers: 1, ..ServeConfig::default() })
            .expect("server starts");
    (server, ds.clone())
}

/// Builds a sealed frame with arbitrary tag + body — the attacker's
/// version of `protocol::seal`.
fn raw_frame(tag: u8, request_id: u64, body: &[u8]) -> Vec<u8> {
    let mut inner = vec![tag];
    inner.extend_from_slice(&request_id.to_le_bytes());
    inner.extend_from_slice(body);
    let mut out = ((4 + inner.len()) as u32).to_le_bytes().to_vec();
    out.extend_from_slice(&crc32(&inner).to_le_bytes());
    out.extend_from_slice(&inner);
    out
}

fn expect_error(client: &mut ServeClient, want_code: ErrorCode, want_id: u64) -> String {
    let (id, response) = client.recv().expect("server answers the hostile frame");
    assert_eq!(id, want_id);
    match response {
        Response::Error { code, message } => {
            assert_eq!(code, want_code, "{message}");
            message
        }
        other => panic!("expected an error response, got {other:?}"),
    }
}

#[test]
fn oversized_length_prefix_is_refused_without_allocation() {
    let (server, ds) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Declare a frame just over the cap and actually send that many
    // bytes: the server must drain it in bounded chunks (never allocate
    // the declared length) and answer TooLarge.
    let declared = MAX_FRAME_LEN + 1;
    let mut bytes = (declared as u32).to_le_bytes().to_vec();
    bytes.extend_from_slice(&vec![0xA5u8; declared]);
    client.send_raw(&bytes).expect("send oversized frame");
    let message = expect_error(&mut client, ErrorCode::TooLarge, UNKNOWN_REQUEST_ID);
    assert!(message.contains("exceeds"), "{message}");

    // Same connection keeps serving.
    client.ping().expect("connection survives an oversized frame");
    let p = client.predict(1, ds.window(0)).expect("predict after oversized frame");
    assert!(p.label < 4);
    server.shutdown();
}

#[test]
fn runt_length_prefix_is_refused() {
    let (server, _) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Declared length too small to hold CRC + tag + id.
    let mut bytes = 6u32.to_le_bytes().to_vec();
    bytes.extend_from_slice(&[0u8; 6]);
    client.send_raw(&bytes).expect("send runt frame");
    expect_error(&mut client, ErrorCode::Malformed, UNKNOWN_REQUEST_ID);
    client.ping().expect("connection survives a runt frame");
    server.shutdown();
}

#[test]
fn bit_flips_are_caught_by_the_crc() {
    let (server, ds) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    let good = encode_request(9, &Request::Predict { tenant_id: 5, window: ds.window(0).clone() });
    // Flip one bit at a sweep of payload positions (CRC field, tag, id,
    // tenant, shape, values) — each must come back Malformed with the id
    // withheld, and the connection must stay usable.
    for byte in (8..good.len()).step_by(7) {
        let mut corrupt = good.clone();
        corrupt[byte] ^= 0x04;
        client.send_raw(&corrupt).expect("send corrupt frame");
        expect_error(&mut client, ErrorCode::Malformed, UNKNOWN_REQUEST_ID);
    }
    let p = client.predict(5, ds.window(0)).expect("predict after the bit-flip sweep");
    assert!(p.label < 4);
    // ordering: Relaxed — the recv() round-trips above already ordered
    // the counter bumps before this read.
    assert!(server.metrics().protocol_errors.load(std::sync::atomic::Ordering::Relaxed) > 0);
    server.shutdown();
}

#[test]
fn unknown_tag_answers_unknown_tag_with_the_echoed_id() {
    let (server, _) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    client.send_raw(&raw_frame(0x5C, 4242, &[])).expect("send unknown tag");
    let message = expect_error(&mut client, ErrorCode::UnknownTag, 4242);
    assert!(message.contains("0x5C"), "{message}");
    client.ping().expect("connection survives an unknown tag");
    server.shutdown();
}

#[test]
fn hostile_window_counts_never_size_an_allocation() {
    let (server, ds) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // A predict declaring a 4096×4096 window backed by 8 floats: the
    // byte bound must trip before any allocation, echoing the id.
    let mut body = 7u64.to_le_bytes().to_vec();
    body.extend_from_slice(&4096u32.to_le_bytes());
    body.extend_from_slice(&4096u32.to_le_bytes());
    body.extend_from_slice(&[0u8; 32]);
    client.send_raw(&raw_frame(0x01, 31, &body)).expect("send hostile count");
    let message = expect_error(&mut client, ErrorCode::Malformed, 31);
    assert!(message.contains("exceeds"), "{message}");

    // Shape outside the cap entirely.
    let mut body = 7u64.to_le_bytes().to_vec();
    body.extend_from_slice(&u32::MAX.to_le_bytes());
    body.extend_from_slice(&1u32.to_le_bytes());
    client.send_raw(&raw_frame(0x01, 32, &body)).expect("send hostile shape");
    let message = expect_error(&mut client, ErrorCode::Malformed, 32);
    assert!(message.contains("outside"), "{message}");

    let p = client.predict(7, ds.window(1)).expect("worker survives hostile counts");
    assert!(p.label < 4);
    server.shutdown();
}

#[test]
fn truncated_frame_kills_only_its_own_connection() {
    let (server, ds) = start();

    // A connection that dies mid-frame (declared 64 bytes, sent 10) is
    // simply dropped — but the server and other connections keep serving.
    {
        let mut stream = TcpStream::connect(server.local_addr()).expect("connect raw");
        let mut bytes = 64u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1u8; 10]);
        stream.write_all(&bytes).expect("send truncated frame");
        stream.flush().expect("flush");
    } // dropped: EOF mid-frame on the server's reader

    let mut client = ServeClient::connect(server.local_addr()).expect("fresh connection");
    client.ping().expect("server survives a torn connection");
    let p = client.predict(2, ds.window(2)).expect("predict after torn connection");
    assert!(p.label < 4);
    server.shutdown();
}

#[test]
fn every_request_tag_survives_a_corrupted_twin() {
    let (server, ds) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // One frame per request tag — Request::Predict, Request::Ingest,
    // Request::Ping, Request::Stats. Each is sent corrupted (must come
    // back Malformed with the id withheld) and then pristine (must get
    // its real response), proving no tag's decode path poisons the
    // connection.
    let window = ds.window(0).clone();
    let frames = [
        encode_request(21, &Request::Predict { tenant_id: 11, window: window.clone() }),
        encode_request(22, &Request::Ingest { tenant_id: 11, label: Some(1), window }),
        encode_request(23, &Request::Ping),
        encode_request(24, &Request::Stats),
    ];
    for (i, frame) in frames.iter().enumerate() {
        let mut corrupt = frame.clone();
        // Any post-CRC-field byte works: the CRC covers tag, id and body.
        corrupt[8 + i % (frame.len() - 8)] ^= 0x10;
        client.send_raw(&corrupt).expect("send corrupted frame");
        expect_error(&mut client, ErrorCode::Malformed, UNKNOWN_REQUEST_ID);

        client.send_raw(frame).expect("send pristine frame");
        let (id, response) = client.recv().expect("pristine frame still answered");
        assert_eq!(id, 21 + i as u64);
        match (i, response) {
            (0 | 1, Response::Prediction(p)) => assert!(p.label < 4),
            (2, Response::Pong) => {}
            (3, Response::Stats(body)) => assert!(!body.is_empty()),
            (i, other) => panic!("tag #{i}: unexpected response {other:?}"),
        }
    }
    server.shutdown();
}

#[test]
fn truncated_response_payloads_decode_to_typed_errors() {
    // Client-side mirror of the sweep: every response tag —
    // Response::Prediction, Response::Pong, Response::Stats,
    // Response::Error — must round-trip pristine, and every truncation
    // of its payload must surface as a decode error, never a panic.
    let responses = vec![
        Response::Prediction(WirePrediction {
            label: 2,
            is_ood: false,
            delta_max: 0.5,
            best_domain: 1,
            buffered: false,
            adapted: false,
        }),
        Response::Pong,
        Response::Stats(vec![9, 9, 9, 9]),
        Response::Error { code: ErrorCode::Overloaded, message: "shed".into() },
    ];
    for response in &responses {
        let frame = encode_response(77, response);
        // The payload handed to decode is everything after the length
        // prefix: CRC + tag + id + body.
        let payload = &frame[4..];
        let (id, decoded) = decode_response(payload).expect("pristine payload decodes");
        assert_eq!(id, 77);
        assert_eq!(&decoded, response);
        for cut in 0..payload.len() {
            decode_response(&payload[..cut]).expect_err("truncated payload must not decode");
        }
    }
}

#[test]
fn label_out_of_range_is_rejected_not_fatal() {
    let (server, ds) = start();
    let mut client = ServeClient::connect(server.local_addr()).expect("connect");

    // Structurally valid ingest whose label the model refuses: the worker
    // must answer Rejected (model vocabulary), not die.
    let err = client
        .ingest(3, ds.window(0), Some(999))
        .expect_err("label 999 of 4 classes must be rejected");
    match err {
        smore_serve::ClientError::Server { code, message } => {
            assert_eq!(code, ErrorCode::Rejected, "{message}");
        }
        other => panic!("expected a server rejection, got {other}"),
    }
    let p = client.predict(3, ds.window(0)).expect("worker survives a rejected label");
    assert!(p.label < 4);
    server.shutdown();
}
