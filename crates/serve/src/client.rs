//! A blocking client for the SMORE wire protocol.
//!
//! [`ServeClient`] supports two calling styles over one connection:
//!
//! - **Synchronous** ([`predict`](ServeClient::predict),
//!   [`ingest`](ServeClient::ingest), [`ping`](ServeClient::ping)): one
//!   request in flight, the response returned in place. Simple, but the
//!   server's micro-batch coalescing sees at most one request from this
//!   connection at a time.
//! - **Pipelined** ([`send_predict`](ServeClient::send_predict) /
//!   [`send_ingest`](ServeClient::send_ingest), then
//!   [`flush`](ServeClient::flush) and [`recv`](ServeClient::recv)):
//!   many requests in flight, responses correlated by the echoed request
//!   id. This is what the load generator uses — coalescing only batches
//!   what is actually concurrent.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

use smore_obs::StatsSnapshot;
use smore_tensor::Matrix;

use crate::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, FrameRead, Request, Response,
    WirePrediction,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the server hung up mid-frame).
    Io(io::Error),
    /// The server's bytes failed structural validation.
    Malformed(String),
    /// The server answered with an error response.
    Server {
        /// Failure class reported by the server.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed server frame: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One connection to a SMORE serving front-end.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl ServeClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        Ok(Self { reader: BufReader::new(read_half), writer: BufWriter::new(stream), next_id: 0 })
    }

    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&encode_request(id, request))?;
        Ok(id)
    }

    /// Queues a pipelined predict; returns the request id to correlate
    /// the response. Call [`flush`](Self::flush) before blocking on
    /// [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_predict(&mut self, tenant_id: u64, window: &Matrix) -> io::Result<u64> {
        self.send(&Request::Predict { tenant_id, window: window.clone() })
    }

    /// Queues a pipelined ingest (label = delayed ground truth for the
    /// oracle strategy).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_ingest(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        label: Option<u32>,
    ) -> io::Result<u64> {
        self.send(&Request::Ingest { tenant_id, label, window: window.clone() })
    }

    /// Flushes queued pipelined requests to the socket.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next response frame; returns `(request_id,
    /// response)`. Error *responses* (e.g. `Overloaded`) are returned as
    /// [`Response::Error`] values, not `Err` — pipelined callers decide
    /// per request.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure or server hang-up;
    /// [`ClientError::Malformed`] when the server's bytes fail
    /// validation.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        match read_frame(&mut self.reader)? {
            FrameRead::Closed => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            FrameRead::Oversized { declared } | FrameRead::Runt { declared } => {
                Err(ClientError::Malformed(format!("server framed {declared} bytes")))
            }
            FrameRead::Payload(payload) => {
                decode_response(&payload).map_err(|bad| ClientError::Malformed(bad.message))
            }
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        self.flush()?;
        loop {
            let (got, response) = self.recv()?;
            if got == id || got == crate::protocol::UNKNOWN_REQUEST_ID {
                return Ok(response);
            }
            // A response to an earlier pipelined request; synchronous
            // callers after pipelined use must drain first — drop it.
        }
    }

    fn expect_prediction(response: Response) -> Result<WirePrediction, ClientError> {
        match response {
            Response::Prediction(p) => Ok(p),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Malformed(format!("expected a prediction, got {other:?}"))),
        }
    }

    /// Synchronous predict: send, flush, block for the prediction.
    ///
    /// # Errors
    ///
    /// Transport / framing errors, or [`ClientError::Server`] when the
    /// server answers with an error response.
    pub fn predict(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
    ) -> Result<WirePrediction, ClientError> {
        let response = self.round_trip(&Request::Predict { tenant_id, window: window.clone() })?;
        Self::expect_prediction(response)
    }

    /// Synchronous ingest.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict`](Self::predict).
    pub fn ingest(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        label: Option<u32>,
    ) -> Result<WirePrediction, ClientError> {
        let response =
            self.round_trip(&Request::Ingest { tenant_id, label, window: window.clone() })?;
        Self::expect_prediction(response)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport / framing errors; a non-Pong answer is
    /// [`ClientError::Malformed`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Malformed(format!("expected pong, got {other:?}"))),
        }
    }

    /// Scrapes the server's telemetry: counters, gauges, per-stage
    /// latency histograms and the adaptation journal tail. Answered on
    /// the server's connection thread, so it works even while every
    /// worker queue is refusing admission.
    ///
    /// # Errors
    ///
    /// Transport / framing errors; [`ClientError::Malformed`] when the
    /// snapshot bytes fail to decode (e.g. a version this build does not
    /// speak).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(bytes) => {
                StatsSnapshot::decode(&bytes).map_err(|e| ClientError::Malformed(e.to_string()))
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Malformed(format!("expected stats, got {other:?}"))),
        }
    }

    /// Sends pre-encoded raw bytes — the corruption tests' entry point
    /// for hostile frames.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}
