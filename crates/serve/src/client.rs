//! A blocking client for the SMORE wire protocol.
//!
//! [`ServeClient`] supports two calling styles over one connection:
//!
//! - **Synchronous** ([`predict`](ServeClient::predict),
//!   [`ingest`](ServeClient::ingest), [`ping`](ServeClient::ping)): one
//!   request in flight, the response returned in place. Simple, but the
//!   server's micro-batch coalescing sees at most one request from this
//!   connection at a time.
//! - **Pipelined** ([`send_predict`](ServeClient::send_predict) /
//!   [`send_ingest`](ServeClient::send_ingest), then
//!   [`flush`](ServeClient::flush) and [`recv`](ServeClient::recv)):
//!   many requests in flight, responses correlated by the echoed request
//!   id. This is what the load generator uses — coalescing only batches
//!   what is actually concurrent.

use std::io::{self, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use smore_obs::StatsSnapshot;
use smore_tensor::Matrix;

use crate::protocol::{
    decode_response, encode_request, read_frame, ErrorCode, FrameRead, Request, Response,
    WirePrediction,
};

/// A client-side failure.
#[derive(Debug)]
pub enum ClientError {
    /// The transport failed (or the server hung up mid-frame).
    Io(io::Error),
    /// The server's bytes failed structural validation.
    Malformed(String),
    /// The server answered with an error response.
    Server {
        /// Failure class reported by the server.
        code: ErrorCode,
        /// The server's message.
        message: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed server frame: {m}"),
            ClientError::Server { code, message } => {
                write!(f, "server error ({code:?}): {message}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Backoff schedule for [`ServeClient::predict_retrying`] /
/// [`ServeClient::ingest_retrying`]: retries apply **only** to
/// [`ErrorCode::Overloaded`] refusals — the one error the server
/// explicitly asks the client to retry — with exponential, jittered
/// delays so a refused fleet does not re-synchronize into the same
/// full queue.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts, the first included (`1` disables retrying).
    pub attempts: u32,
    /// Delay before the first retry; doubles per retry.
    pub base_delay: Duration,
    /// Cap on the (pre-jitter) delay.
    pub max_delay: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            attempts: 5,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(50),
        }
    }
}

/// One connection to a SMORE serving front-end.
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
    /// xorshift64* state feeding retry jitter — no clock, no new deps.
    jitter_state: u64,
}

impl ServeClient {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let read_half = stream.try_clone()?;
        // Seed jitter from the ephemeral local port: cheap, distinct per
        // connection, deterministic within one.
        let seed = match stream.local_addr() {
            Ok(addr) => u64::from(addr.port()) | 0x9E37_79B9_7F4A_7C15,
            Err(_) => 0x9E37_79B9_7F4A_7C15,
        };
        Ok(Self {
            reader: BufReader::new(read_half),
            writer: BufWriter::new(stream),
            next_id: 0,
            jitter_state: seed,
        })
    }

    /// Sets (or clears) the socket read/write timeout. With a timeout
    /// set, a stalled or dead server surfaces as [`ClientError::Io`]
    /// within the bound instead of blocking a caller forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure (e.g. a zero duration).
    pub fn set_io_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        let stream = self.reader.get_ref();
        stream.set_read_timeout(timeout)?;
        stream.set_write_timeout(timeout)
    }

    fn send(&mut self, request: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.writer.write_all(&encode_request(id, request))?;
        Ok(id)
    }

    /// Queues a pipelined predict; returns the request id to correlate
    /// the response. Call [`flush`](Self::flush) before blocking on
    /// [`recv`](Self::recv).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_predict(&mut self, tenant_id: u64, window: &Matrix) -> io::Result<u64> {
        self.send(&Request::Predict { tenant_id, window: window.clone() })
    }

    /// Queues a pipelined ingest (label = delayed ground truth for the
    /// oracle strategy).
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_ingest(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        label: Option<u32>,
    ) -> io::Result<u64> {
        self.send(&Request::Ingest { tenant_id, label, window: window.clone() })
    }

    /// Flushes queued pipelined requests to the socket.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn flush(&mut self) -> io::Result<()> {
        self.writer.flush()
    }

    /// Blocks for the next response frame; returns `(request_id,
    /// response)`. Error *responses* (e.g. `Overloaded`) are returned as
    /// [`Response::Error`] values, not `Err` — pipelined callers decide
    /// per request.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on transport failure or server hang-up;
    /// [`ClientError::Malformed`] when the server's bytes fail
    /// validation.
    pub fn recv(&mut self) -> Result<(u64, Response), ClientError> {
        match read_frame(&mut self.reader)? {
            FrameRead::Closed => Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ))),
            FrameRead::Oversized { declared } | FrameRead::Runt { declared } => {
                Err(ClientError::Malformed(format!("server framed {declared} bytes")))
            }
            FrameRead::Payload(payload) => {
                decode_response(&payload).map_err(|bad| ClientError::Malformed(bad.message))
            }
        }
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        let id = self.send(request)?;
        self.flush()?;
        loop {
            let (got, response) = self.recv()?;
            if got == id || got == crate::protocol::UNKNOWN_REQUEST_ID {
                return Ok(response);
            }
            // A response to an earlier pipelined request; synchronous
            // callers after pipelined use must drain first — drop it.
        }
    }

    fn expect_prediction(response: Response) -> Result<WirePrediction, ClientError> {
        match response {
            Response::Prediction(p) => Ok(p),
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Malformed(format!("expected a prediction, got {other:?}"))),
        }
    }

    /// Synchronous predict: send, flush, block for the prediction.
    ///
    /// # Errors
    ///
    /// Transport / framing errors, or [`ClientError::Server`] when the
    /// server answers with an error response.
    pub fn predict(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
    ) -> Result<WirePrediction, ClientError> {
        let response = self.round_trip(&Request::Predict { tenant_id, window: window.clone() })?;
        Self::expect_prediction(response)
    }

    /// Synchronous ingest.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict`](Self::predict).
    pub fn ingest(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        label: Option<u32>,
    ) -> Result<WirePrediction, ClientError> {
        let response =
            self.round_trip(&Request::Ingest { tenant_id, label, window: window.clone() })?;
        Self::expect_prediction(response)
    }

    /// [`predict`](Self::predict) with `Overloaded`-aware retry: an
    /// admission-control refusal sleeps an exponentially-growing,
    /// jittered delay and tries again, up to [`RetryPolicy::attempts`].
    /// Every other error — transport, protocol, model rejection — is
    /// returned immediately; retrying cannot fix those.
    ///
    /// # Errors
    ///
    /// Same conditions as [`predict`](Self::predict); the final
    /// `Overloaded` is returned when every attempt was refused.
    pub fn predict_retrying(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        policy: RetryPolicy,
    ) -> Result<WirePrediction, ClientError> {
        self.with_retry(policy, |c| c.predict(tenant_id, window))
    }

    /// [`ingest`](Self::ingest) with `Overloaded`-aware retry (see
    /// [`predict_retrying`](Self::predict_retrying)).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ingest`](Self::ingest).
    pub fn ingest_retrying(
        &mut self,
        tenant_id: u64,
        window: &Matrix,
        label: Option<u32>,
        policy: RetryPolicy,
    ) -> Result<WirePrediction, ClientError> {
        self.with_retry(policy, |c| c.ingest(tenant_id, window, label))
    }

    fn with_retry(
        &mut self,
        policy: RetryPolicy,
        mut call: impl FnMut(&mut Self) -> Result<WirePrediction, ClientError>,
    ) -> Result<WirePrediction, ClientError> {
        let attempts = policy.attempts.max(1);
        let mut delay = policy.base_delay;
        // All attempts but the last may back off and go around; the last
        // one falls through below and returns whatever it got.
        for _ in 1..attempts {
            match call(self) {
                Err(ClientError::Server { code: ErrorCode::Overloaded, .. }) => {
                    std::thread::sleep(self.jittered(delay));
                    delay = (delay * 2).min(policy.max_delay);
                }
                outcome => return outcome,
            }
        }
        call(self)
    }

    /// Scales `delay` by a factor in `[0.5, 1.5)` from the xorshift64*
    /// stream, de-synchronizing a fleet of refused clients.
    fn jittered(&mut self, delay: Duration) -> Duration {
        let mut x = self.jitter_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.jitter_state = x;
        let unit = (x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
        delay.mul_f64(0.5 + unit)
    }

    /// Liveness probe.
    ///
    /// # Errors
    ///
    /// Transport / framing errors; a non-Pong answer is
    /// [`ClientError::Malformed`].
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(ClientError::Malformed(format!("expected pong, got {other:?}"))),
        }
    }

    /// Scrapes the server's telemetry: counters, gauges, per-stage
    /// latency histograms and the adaptation journal tail. Answered on
    /// the server's connection thread, so it works even while every
    /// worker queue is refusing admission.
    ///
    /// # Errors
    ///
    /// Transport / framing errors; [`ClientError::Malformed`] when the
    /// snapshot bytes fail to decode (e.g. a version this build does not
    /// speak).
    pub fn stats(&mut self) -> Result<StatsSnapshot, ClientError> {
        match self.round_trip(&Request::Stats)? {
            Response::Stats(bytes) => {
                StatsSnapshot::decode(&bytes).map_err(|e| ClientError::Malformed(e.to_string()))
            }
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Err(ClientError::Malformed(format!("expected stats, got {other:?}"))),
        }
    }

    /// Sends pre-encoded raw bytes — the corruption tests' entry point
    /// for hostile frames.
    ///
    /// # Errors
    ///
    /// Propagates transport failures.
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.writer.write_all(bytes)?;
        self.writer.flush()
    }
}
