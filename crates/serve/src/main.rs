//! `smore_serve` — the SMORE network serving daemon.
//!
//! ```text
//! smore_serve --synthetic [--addr 127.0.0.1:7878] [--dim 1024]
//! smore_serve --artifact model.smore [--addr ...]
//!             [--workers N] [--batch-max N] [--batch-deadline-us N]
//!             [--queue-cap N] [--max-sessions-per-shard N]
//!             [--state-dir PATH] [--flush-policy sync|on_evict]
//!             [--io-timeout-ms N] [--duration-secs N] [--seed N]
//!             [--stats-every N]
//! ```
//!
//! `--synthetic` trains the canonical synthetic fleet model in-process
//! (seconds) — the mode CI and the load generator use. `--artifact`
//! serves a dense `.smore` artifact written by `Smore::save`.
//! `--duration-secs 0` (default) serves until killed. `--stats-every N`
//! dumps the telemetry snapshot (text exposition) to stdout every N
//! seconds. Diagnostics go through the `SMORE_LOG`-leveled logger
//! (default `warn`; set `SMORE_LOG=info` for startup/shutdown chatter,
//! `SMORE_LOG=debug` for per-connection protocol errors).

#![forbid(unsafe_code)]

use std::net::TcpListener;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smore_obs::{error, info, EventJournal};
use smore_serve::{serve, synthetic, FlushPolicy, ServeConfig};
use smore_stream::ServeEngine;

/// Ring capacity for the engine-attached adaptation journal.
const JOURNAL_CAPACITY: usize = 4096;

/// Where the served model comes from — parsing resolves the
/// `--synthetic` / `--artifact` pair into one typed source, so the
/// serving setup never has to re-derive which flag was given.
enum ModelSource {
    Synthetic,
    Artifact(String),
}

struct Args {
    addr: String,
    source: Option<ModelSource>,
    dim: usize,
    seed: u64,
    workers: Option<usize>,
    batch_max: Option<usize>,
    batch_deadline_us: Option<u64>,
    queue_cap: Option<usize>,
    max_sessions_per_shard: Option<usize>,
    state_dir: Option<PathBuf>,
    flush_policy: Option<FlushPolicy>,
    io_timeout_ms: Option<u64>,
    duration_secs: u64,
    stats_every_secs: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: smore_serve (--synthetic | --artifact <model.smore>) [--addr HOST:PORT] \
         [--dim N] [--seed N] [--workers N] [--batch-max N] [--batch-deadline-us N] \
         [--queue-cap N] [--max-sessions-per-shard N] [--state-dir PATH] \
         [--flush-policy sync|on_evict] [--io-timeout-ms N] [--duration-secs N] \
         [--stats-every N]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
    let Some(raw) = it.next() else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse '{raw}'");
        usage();
    })
}

fn parse_args() -> Args {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        source: None,
        dim: 1024,
        seed: 7,
        workers: None,
        batch_max: None,
        batch_deadline_us: None,
        queue_cap: None,
        max_sessions_per_shard: None,
        state_dir: None,
        flush_policy: None,
        io_timeout_ms: None,
        duration_secs: 0,
        stats_every_secs: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => args.addr = parse(&mut it, "--addr"),
            "--synthetic" => set_source(&mut args, ModelSource::Synthetic),
            "--artifact" => {
                let path = parse(&mut it, "--artifact");
                set_source(&mut args, ModelSource::Artifact(path));
            }
            "--dim" => args.dim = parse(&mut it, "--dim"),
            "--seed" => args.seed = parse(&mut it, "--seed"),
            "--workers" => args.workers = Some(parse(&mut it, "--workers")),
            "--batch-max" => args.batch_max = Some(parse(&mut it, "--batch-max")),
            "--batch-deadline-us" => {
                args.batch_deadline_us = Some(parse(&mut it, "--batch-deadline-us"))
            }
            "--queue-cap" => args.queue_cap = Some(parse(&mut it, "--queue-cap")),
            "--max-sessions-per-shard" => {
                args.max_sessions_per_shard = Some(parse(&mut it, "--max-sessions-per-shard"))
            }
            "--state-dir" => {
                args.state_dir = Some(PathBuf::from(parse::<String>(&mut it, "--state-dir")))
            }
            "--flush-policy" => {
                let raw: String = parse(&mut it, "--flush-policy");
                let Ok(policy) = FlushPolicy::parse(&raw) else {
                    eprintln!("--flush-policy: expected 'sync' or 'on_evict', got '{raw}'");
                    usage();
                };
                args.flush_policy = Some(policy);
            }
            "--io-timeout-ms" => args.io_timeout_ms = Some(parse(&mut it, "--io-timeout-ms")),
            "--duration-secs" => args.duration_secs = parse(&mut it, "--duration-secs"),
            "--stats-every" => args.stats_every_secs = parse(&mut it, "--stats-every"),
            "--help" | "-h" => {
                println!(
                    "smore_serve: network serving front-end for the SMORE multi-tenant engine.\n\
                     Speaks the length-prefixed CRC-framed binary protocol in smore_serve::protocol.\n\
                     \n\
                     usage: smore_serve (--synthetic | --artifact <model.smore>) [--addr HOST:PORT]\n\
                            [--dim N] [--seed N] [--workers N] [--batch-max N]\n\
                            [--batch-deadline-us N] [--queue-cap N] [--max-sessions-per-shard N]\n\
                            [--state-dir PATH] [--flush-policy sync|on_evict] [--io-timeout-ms N]\n\
                            [--duration-secs N] [--stats-every N]\n\
                     \n\
                     --state-dir PATH     durable tenant-state directory: evicted/drained\n\
                                          sessions persist here and survive restarts\n\
                     --flush-policy P     sync (fsync per archive write) or on_evict\n\
                                          (default; fsync deferred to drain)\n\
                     --io-timeout-ms N    per-connection socket read/write timeout\n\
                     --stats-every N      print the telemetry snapshot every N seconds\n\
                     SMORE_LOG=LEVEL      error|warn|info|debug|trace diagnostics (default warn)"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument '{other}'");
                usage();
            }
        }
    }
    if args.source.is_none() {
        eprintln!("exactly one of --synthetic / --artifact is required");
        usage();
    }
    args
}

fn set_source(args: &mut Args, source: ModelSource) {
    if args.source.is_some() {
        eprintln!("exactly one of --synthetic / --artifact is required");
        usage();
    }
    args.source = Some(source);
}

fn main() {
    let args = parse_args();

    let mut engine = match &args.source {
        Some(ModelSource::Synthetic) => {
            info!(
                "serve",
                "training the synthetic fleet model (seed {}, d = {})...", args.seed, args.dim
            );
            let (_, engine) = synthetic::engine(args.seed, args.dim).unwrap_or_else(|e| {
                error!("serve", "synthetic engine failed: {e}");
                std::process::exit(1);
            });
            engine
        }
        Some(ModelSource::Artifact(path)) => {
            info!("serve", "loading dense artifact {path}...");
            ServeEngine::from_artifact(path, synthetic::streaming_config()).unwrap_or_else(|e| {
                error!("serve", "artifact load failed: {e}");
                std::process::exit(1);
            })
        }
        // parse_args validated the source; stay typed instead of panicking.
        None => usage(),
    };
    // Engine-attached journal: tenant lifecycle events (OOD, drift,
    // enrolments, swaps) and the server's shed events share one ring,
    // scrapeable over the wire.
    engine.set_journal(Arc::new(EventJournal::new(JOURNAL_CAPACITY)));

    let mut config = ServeConfig::default();
    if let Some(w) = args.workers {
        config.workers = w;
    }
    if let Some(b) = args.batch_max {
        config.batch_max = b;
    }
    if let Some(us) = args.batch_deadline_us {
        config.batch_deadline = Duration::from_micros(us);
    }
    if let Some(q) = args.queue_cap {
        config.queue_capacity = q;
    }
    if let Some(s) = args.max_sessions_per_shard {
        config.max_sessions_per_shard = s;
    }
    if let Some(dir) = args.state_dir {
        config.state_dir = Some(dir);
    }
    if let Some(policy) = args.flush_policy {
        config.flush_policy = policy;
    }
    if let Some(ms) = args.io_timeout_ms {
        config.io_timeout = Some(Duration::from_millis(ms));
    }

    let listener = TcpListener::bind(&args.addr).unwrap_or_else(|e| {
        error!("serve", "cannot bind {}: {e}", args.addr);
        std::process::exit(1);
    });
    let server = serve(Arc::new(engine), listener, config.clone()).unwrap_or_else(|e| {
        error!("serve", "server start failed: {e}");
        std::process::exit(1);
    });
    info!(
        "serve",
        "serving on {} ({} workers, batch_max {}, deadline {:?}, queue {}, state {})",
        server.local_addr(),
        config.workers,
        config.batch_max,
        config.batch_deadline,
        config.queue_capacity,
        match &config.state_dir {
            Some(dir) => format!("{} ({})", dir.display(), config.flush_policy.name()),
            None => "in-memory".into(),
        }
    );

    // One loop drives both the serve deadline and the periodic stats
    // dump; without either it just sleeps in long slices.
    let deadline =
        (args.duration_secs > 0).then(|| Instant::now() + Duration::from_secs(args.duration_secs));
    let tick = if args.stats_every_secs > 0 {
        Duration::from_secs(args.stats_every_secs)
    } else {
        Duration::from_secs(3600)
    };
    loop {
        let mut sleep = tick;
        if let Some(d) = deadline {
            let now = Instant::now();
            if now >= d {
                break;
            }
            sleep = sleep.min(d - now);
        }
        std::thread::sleep(sleep);
        if args.stats_every_secs > 0 {
            // The stats dump is the binary's requested output, not a
            // diagnostic — it stays on stdout regardless of SMORE_LOG.
            print!("{}", server.stats().render_text());
        }
    }

    let m = server.metrics_arc();
    server.shutdown();
    // ordering: Relaxed — monotone report counters read after shutdown()
    // joined every worker; the joins give the happens-before edge.
    info!(
        "serve",
        "served {} predictions ({} coalesced into {} batches), {} adaptations, \
         {} overloaded, {} protocol errors over {} connections",
        m.served.load(std::sync::atomic::Ordering::Relaxed),
        m.coalesced_windows.load(std::sync::atomic::Ordering::Relaxed),
        m.coalesced_batches.load(std::sync::atomic::Ordering::Relaxed),
        m.adaptations.load(std::sync::atomic::Ordering::Relaxed),
        m.overloaded.load(std::sync::atomic::Ordering::Relaxed),
        m.protocol_errors.load(std::sync::atomic::Ordering::Relaxed),
        m.connections.load(std::sync::atomic::Ordering::Relaxed),
    );
}
