//! Network serving front-end for SMORE — the repo's library turned into
//! a service.
//!
//! Everything below `smore_serve` is in-process: [`smore_stream`]'s
//! [`ServeEngine`](smore_stream::ServeEngine) multiplexes tenants, but
//! only for callers in the same address space. This crate puts a socket
//! in front of it, std-only (the build vendors all dependencies offline —
//! no tokio; the server is a hand-rolled accept loop plus a
//! bounded-queue worker pool on OS threads):
//!
//! - [`protocol`] — a length-prefixed, CRC-framed binary protocol built
//!   on the same [`smore::wire`] primitives as the `.smore` artifact
//!   container: every count bounds-checked before allocation, corrupt
//!   frames answered with typed errors, never a panic or an unbounded
//!   allocation.
//! - [`server`] — tenants sharded across workers by tenant-id hash (a
//!   tenant's adaptation state and scratch stay core-local), cross-tenant
//!   micro-batch coalescing of shared-base predicts into one
//!   [`Predictor::predict_batch`](smore::Predictor::predict_batch) call,
//!   and bounded per-worker queues that answer `Overloaded` instead of
//!   buffering without bound.
//! - [`client`] — a blocking client with synchronous and pipelined
//!   calling styles.
//! - Telemetry throughout (built on `smore_obs`): every request is timed
//!   per pipeline stage into lock-free histograms, adaptation lifecycle
//!   and overload-shed events land in a shared journal, and a `Stats`
//!   wire request scrapes the whole registry as a versioned
//!   [`StatsSnapshot`] ([`ServerHandle::stats`] /
//!   [`ServeClient::stats`](client::ServeClient::stats)).
//! - [`synthetic`] — the canonical synthetic fleet recipe shared by the
//!   `smore_serve --synthetic` binary, the `load_gen` bench and the
//!   tests.
//!
//! # Example
//!
//! ```no_run
//! use std::net::TcpListener;
//! use std::sync::Arc;
//! use smore_serve::{serve, ServeClient, ServeConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (ds, engine) = smore_serve::synthetic::engine(7, 1024)?;
//! let listener = TcpListener::bind("127.0.0.1:0")?;
//! let server = serve(Arc::new(engine), listener, ServeConfig::default())?;
//!
//! let mut client = ServeClient::connect(server.local_addr())?;
//! let p = client.predict(42, ds.window(0))?;
//! assert!(p.label < 4);
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod synthetic;
mod telemetry;

pub use client::{ClientError, RetryPolicy, ServeClient};
pub use protocol::{ErrorCode, Request, Response, WirePrediction};
pub use server::{serve, ChaosConfig, ServeConfig, ServerHandle, ServerMetrics};
// The telemetry vocabulary a `Stats` scrape decodes into, re-exported so
// clients need not depend on `smore_obs` directly.
pub use smore_obs::{EventKind, StatsSnapshot};
// The durable-archive vocabulary `ServeConfig::state_dir` configures.
pub use smore_stream::FlushPolicy;

/// Result alias; the front-end shares the core SMORE error vocabulary.
pub type Result<T> = std::result::Result<T, smore::SmoreError>;
