//! The serving front-end: accept loop, per-tenant sharding, micro-batch
//! coalescing and admission control.
//!
//! # Architecture
//!
//! ```text
//!            ┌──────────────┐   bounded sync_channel   ┌──────────────┐
//! TCP ──────▶│ conn reader  │──── hash(tenant) % W ───▶│  worker 0    │
//!            │ (one/conn)   │                          │  sessions:   │
//!            │              │◀──── encoded frames ─────│  tenant →    │
//!            └─────┬────────┘      (reply channel)     │  TenantSession│
//!                  ▼                                   └──────────────┘
//!            ┌──────────────┐                          ┌──────────────┐
//!            │ conn writer  │                          │  worker 1…W  │
//!            └──────────────┘                          └──────────────┘
//! ```
//!
//! - **Sharding.** Every tenant id hashes to exactly one worker, so that
//!   tenant's [`TenantSession`](smore_stream::TenantSession) — OOD
//!   buffer, drift detector, serve scratch, personal delta — lives on one
//!   thread for its whole lifetime: core-local state, no locks, no
//!   cross-thread migration.
//! - **Bounded residency.** Each worker keeps its sessions in a
//!   [`SessionStore`] capped by [`ServeConfig::max_sessions_per_shard`]
//!   and [`ServeConfig::max_delta_bytes_per_shard`]: least-recently-used
//!   tenants are evicted — personalized ones suspend to compact `DeltaV1`
//!   delta artifacts — and lazily rehydrated on their next request. A
//!   tenant-id scan can no longer grow a worker's memory without bound.
//! - **Coalescing.** A worker drains its queue into a micro-batch (flush
//!   on [`ServeConfig::batch_max`] or [`ServeConfig::batch_deadline`]).
//!   Predict requests for tenants still serving the *shared base
//!   snapshot* — the overwhelming majority in a real fleet — are answered
//!   by **one** [`Predictor::predict_batch`] call across tenants;
//!   personalized tenants and stateful ingests are served individually
//!   through their own sessions.
//! - **Backpressure.** Worker queues are bounded `sync_channel`s. When a
//!   shard's queue is full the connection thread answers
//!   [`ErrorCode::Overloaded`] immediately instead of buffering without
//!   bound — admission control at the door, not OOM later.
//! - **Isolation.** A request the model refuses (bad shape, bad label)
//!   answers [`ErrorCode::Rejected`] with the model's message; a frame
//!   the protocol refuses answers [`ErrorCode::Malformed`] /
//!   [`ErrorCode::TooLarge`] / [`ErrorCode::UnknownTag`]. The connection
//!   — and every other tenant — keeps serving through all of them.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smore::{ServeScratch, SmoreError};
use smore_obs::{
    debug, error, warn, Event, EventJournal, EventKind, Stage, StageSet, StatsSnapshot,
};
use smore_stream::{FlushPolicy, ServeEngine, SessionStore, StateDir};
use smore_tensor::Matrix;

use crate::protocol::{
    decode_request, encode_response, read_frame, ErrorCode, FrameRead, Request, Response,
    WirePrediction, UNKNOWN_REQUEST_ID,
};
use crate::telemetry::Telemetry;
use crate::Result;

/// Capacity of the journal `serve` creates when the engine has none
/// attached (power of two; holds a full enrolment storm's events).
const DEFAULT_JOURNAL_CAPACITY: usize = 4096;

fn nanos_of(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Tuning knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker (shard) count. Each worker owns the sessions of the tenants
    /// that hash to it.
    pub workers: usize,
    /// Bounded depth of each worker's queue — the admission-control
    /// limit. A full queue answers `Overloaded`.
    pub queue_capacity: usize,
    /// Micro-batch flush size; `1` disables coalescing.
    pub batch_max: usize,
    /// Micro-batch flush deadline: how long a worker waits for more
    /// requests after the first one before serving a short batch.
    pub batch_deadline: Duration,
    /// Resident [`TenantSession`](smore_stream::TenantSession)s each
    /// worker keeps before LRU-evicting — the bound that fixes the old
    /// grow-forever session map.
    pub max_sessions_per_shard: usize,
    /// Resident personalized-state bytes each worker keeps before
    /// LRU-evicting (evicted tenants park as compact delta artifacts and
    /// rehydrate on their next request).
    pub max_delta_bytes_per_shard: usize,
    /// Durable tenant-state directory. When set, each worker backs its
    /// eviction archive with per-tenant files here
    /// ([`smore_stream::StateDir`]), recovers them on startup, and
    /// [`ServerHandle::shutdown`] drains every resident personalized
    /// session to it — restart → bit-exact predictions. `None` keeps the
    /// PR 8 in-memory archive (state dies with the process).
    pub state_dir: Option<PathBuf>,
    /// When archive writes are fsynced (only meaningful with
    /// [`state_dir`](Self::state_dir); see [`FlushPolicy`]).
    pub flush_policy: FlushPolicy,
    /// Socket read/write timeout applied to every accepted connection,
    /// so a stalled peer cannot pin a connection thread forever; the
    /// connection is closed when it trips. `None` (default) never times
    /// out — PR 7 wire behaviour.
    pub io_timeout: Option<Duration>,
    /// Fault-injection hooks for the chaos harness. Default: all off.
    pub chaos: ChaosConfig,
}

/// Deterministic fault-injection hooks ([`ServeConfig::chaos`]) — the
/// levers `crates/serve/tests/chaos.rs` pulls. All off by default; a
/// production config never sets them.
#[derive(Debug, Clone, Default)]
pub struct ChaosConfig {
    /// Panic the owning worker when a batch contains this tenant —
    /// exercises the supervision/respawn path.
    pub panic_on_tenant: Option<u64>,
    /// Sleep this long per batched job before serving — makes queues
    /// back up deterministically to exercise `Overloaded` retry paths.
    pub stall_per_job: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism().map_or(2, usize::from);
        Self {
            workers: cores.max(2),
            queue_capacity: 256,
            batch_max: 32,
            batch_deadline: Duration::from_micros(500),
            max_sessions_per_shard: 4096,
            max_delta_bytes_per_shard: 64 << 20,
            state_dir: None,
            flush_policy: FlushPolicy::default(),
            io_timeout: None,
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<()> {
        if self.workers == 0 || self.queue_capacity == 0 || self.batch_max == 0 {
            return Err(SmoreError::InvalidConfig {
                what: format!(
                    "workers ({}), queue_capacity ({}) and batch_max ({}) must all be >= 1",
                    self.workers, self.queue_capacity, self.batch_max
                ),
            });
        }
        if self.max_sessions_per_shard == 0 {
            return Err(SmoreError::InvalidConfig {
                what: "max_sessions_per_shard must be >= 1".into(),
            });
        }
        if self.io_timeout == Some(Duration::ZERO) {
            return Err(SmoreError::InvalidConfig {
                what: "io_timeout must be positive (use None to disable)".into(),
            });
        }
        Ok(())
    }
}

/// Monotone counters exported by a running server (all `Relaxed`; read
/// them for reporting, not synchronization).
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Requests answered with a prediction.
    pub served: AtomicU64,
    /// Micro-batches answered through one shared-base `predict_batch`.
    pub coalesced_batches: AtomicU64,
    /// Windows inside those coalesced batches.
    pub coalesced_windows: AtomicU64,
    /// Requests refused by admission control.
    pub overloaded: AtomicU64,
    /// Frames answered with a protocol error.
    pub protocol_errors: AtomicU64,
    /// Online enrolments fired by ingests.
    pub adaptations: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Telemetry scrapes answered.
    pub stats_requests: AtomicU64,
    /// Resident sessions evicted by the per-shard LRU layer.
    pub sessions_evicted: AtomicU64,
    /// Evicted sessions rehydrated from their archived deltas.
    pub sessions_hydrated: AtomicU64,
    /// Worker threads that panicked and were respawned by supervision.
    pub worker_panics: AtomicU64,
    /// Personalized sessions suspended to the state dir by graceful
    /// drain.
    pub sessions_drained: AtomicU64,
    /// Tenant-state files recovered from the state dir by directory
    /// scans (startup and worker respawns).
    pub state_recovered: AtomicU64,
    /// Tenant-state files quarantined — torn, corrupt or unresumable.
    pub state_quarantined: AtomicU64,
    /// Archive writes the state dir refused; the state fell back to
    /// memory.
    pub state_write_failures: AtomicU64,
}

impl ServerMetrics {
    fn bump(counter: &AtomicU64) {
        // ordering: Relaxed — independent monotone report counters; no
        // reader infers anything about other memory from their values.
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// One queued unit of work for a shard worker.
struct Job {
    request_id: u64,
    tenant_id: u64,
    kind: JobKind,
    reply: Sender<Vec<u8>>,
    /// When admission control accepted the job — `queue_wait` starts here.
    accepted: Instant,
    /// When the owning worker dequeued it — `coalesce_wait` starts here.
    /// Initialised to `accepted`; overwritten at dequeue.
    dequeued: Instant,
}

enum JobKind {
    Predict(Matrix),
    Ingest { label: Option<u32>, window: Matrix },
}

/// A running server. Dropping the handle does **not** stop the server;
/// call [`shutdown`](Self::shutdown).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    metrics: Arc<ServerMetrics>,
    telemetry: Arc<Telemetry>,
    stop: Arc<AtomicBool>,
    /// Whether workers run the graceful drain phase when they observe
    /// `stop` — cleared by [`abort`](Self::abort) to simulate a crash.
    drain: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (resolves `:0` binds).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live server counters.
    pub fn metrics(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Shared handle to the live server counters.
    pub fn metrics_arc(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.metrics)
    }

    /// A point-in-time telemetry snapshot: counters, occupancy gauges,
    /// per-stage latency histograms and the adaptation journal tail —
    /// the same aggregation a wire [`Request::Stats`] scrape receives.
    ///
    /// [`Request::Stats`]: crate::protocol::Request::Stats
    pub fn stats(&self) -> StatsSnapshot {
        self.telemetry.snapshot(&self.metrics)
    }

    /// Stops accepting, drains the workers and joins every server thread.
    /// Established connections are closed as their reader threads observe
    /// the stop flag or EOF. With [`ServeConfig::state_dir`] set, each
    /// worker first serves its already-queued jobs, then suspends every
    /// resident personalized session to the state dir and fsyncs — a
    /// restart over the same directory rehydrates them bit-exactly.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    /// Stops the server **without** the graceful drain phase — the
    /// crash-simulation path for the fault-injection harness (threads of
    /// a live process cannot be `SIGKILL`ed individually). Sessions still
    /// resident are *not* suspended to the state dir; only state already
    /// evicted (and flushed, per [`FlushPolicy`]) survives — exactly the
    /// durability a real unclean kill leaves behind.
    pub fn abort(mut self) {
        // ordering: SeqCst — rare control-plane flag; the total order with
        // the `stop` store below makes "drain cleared before stop observed"
        // trivially true on every worker, and the cost is off the hot path.
        self.drain.store(false, Ordering::SeqCst);
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ordering: SeqCst — control-plane stop flag, set once at shutdown;
        // SeqCst keeps every thread's view of stop/drain totally ordered.
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Starts serving `engine` on `listener` with `config`. Returns
/// immediately; serving happens on background threads until
/// [`ServerHandle::shutdown`].
///
/// # Errors
///
/// [`SmoreError::InvalidConfig`] for a zero worker count, queue capacity
/// or batch size; [`SmoreError::Io`] when
/// [`ServeConfig::state_dir`] cannot be created;
/// [`SmoreError::Resource`] when the OS refuses a server thread (every
/// already-spawned thread is stopped and joined before returning).
pub fn serve(
    engine: Arc<ServeEngine>,
    listener: TcpListener,
    config: ServeConfig,
) -> Result<ServerHandle> {
    config.validate()?;
    if let Some(dir) = &config.state_dir {
        // Fail fast on an uncreatable state dir; per-write failures later
        // degrade to the in-memory overflow instead of failing startup.
        std::fs::create_dir_all(dir).map_err(|e| SmoreError::io(dir.display().to_string(), &e))?;
    }
    let addr = listener.local_addr().map_err(|e| SmoreError::io("listener", &e))?;
    let metrics = Arc::new(ServerMetrics::default());
    let stop = Arc::new(AtomicBool::new(false));
    let drain = Arc::new(AtomicBool::new(true));
    // Share the engine's journal when one was attached (set_journal before
    // Arc-wrapping) so tenant lifecycle events and the server's shed
    // events land in one ring; otherwise run a server-local journal.
    let journal = engine
        .journal()
        .cloned()
        .unwrap_or_else(|| Arc::new(EventJournal::new(DEFAULT_JOURNAL_CAPACITY)));
    let telemetry = Arc::new(Telemetry::new(config.workers, journal));

    // A failed spawn unwinds everything spawned so far: stop flag up,
    // queues dropped (workers drain out on Disconnected), threads joined
    // — the caller gets a typed error and no orphan threads.
    let unwind = |worker_handles: Vec<JoinHandle<()>>,
                  queues: Vec<SyncSender<Job>>,
                  stop: &Arc<AtomicBool>| {
        // ordering: SeqCst — control-plane stop flag (see stop_and_join).
        stop.store(true, Ordering::SeqCst);
        drop(queues);
        for handle in worker_handles {
            let _ = handle.join();
        }
    };

    let mut worker_handles = Vec::with_capacity(config.workers);
    let mut queues: Vec<SyncSender<Job>> = Vec::with_capacity(config.workers);
    for shard in 0..config.workers {
        let (tx, rx) = mpsc::sync_channel(config.queue_capacity);
        queues.push(tx);
        let engine = Arc::clone(&engine);
        let metrics = Arc::clone(&metrics);
        let telemetry = Arc::clone(&telemetry);
        let worker_stop = Arc::clone(&stop);
        let worker_drain = Arc::clone(&drain);
        let cfg = config.clone();
        let spawned =
            std::thread::Builder::new().name(format!("smore-worker-{shard}")).spawn(move || {
                supervise_worker(
                    &engine,
                    &rx,
                    &cfg,
                    &metrics,
                    &telemetry,
                    shard,
                    &worker_stop,
                    &worker_drain,
                );
            });
        match spawned {
            Ok(handle) => worker_handles.push(handle),
            Err(e) => {
                unwind(worker_handles, queues, &stop);
                return Err(SmoreError::resource(format!("spawning worker thread {shard}"), &e));
            }
        }
    }

    let accept_metrics = Arc::clone(&metrics);
    let accept_telemetry = Arc::clone(&telemetry);
    let accept_stop = Arc::clone(&stop);
    let io_timeout = config.io_timeout;
    let accept_thread = std::thread::Builder::new().name("smore-accept".into()).spawn(move || {
        // Dropping `queues` when this loop exits closes every worker
        // queue once in-flight jobs (which hold clones) finish.
        let queues = queues;
        for stream in listener.incoming() {
            // ordering: SeqCst — pairs with the SeqCst stop store in
            // stop_and_join; once per accepted connection, not hot.
            if accept_stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            // A stalled peer trips these and the connection closes
            // instead of pinning its threads forever.
            if let Some(timeout) = io_timeout {
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = stream.set_write_timeout(Some(timeout));
            }
            ServerMetrics::bump(&accept_metrics.connections);
            let queues = queues.clone();
            let metrics = Arc::clone(&accept_metrics);
            let telemetry = Arc::clone(&accept_telemetry);
            let stop = Arc::clone(&accept_stop);
            let _ = std::thread::Builder::new()
                .name("smore-conn".into())
                .spawn(move || connection_loop(stream, &queues, &metrics, &telemetry, &stop));
        }
    });
    let accept_thread = match accept_thread {
        Ok(handle) => handle,
        Err(e) => {
            // `queues` moved into the failed closure and is already gone.
            unwind(worker_handles, Vec::new(), &stop);
            return Err(SmoreError::resource("spawning the accept thread", &e));
        }
    };

    Ok(ServerHandle {
        addr,
        metrics,
        telemetry,
        stop,
        drain,
        accept_thread: Some(accept_thread),
        workers: worker_handles,
    })
}

/// Stable tenant → shard assignment.
fn shard_of(tenant_id: u64, workers: usize) -> usize {
    let mut h = DefaultHasher::new();
    tenant_id.hash(&mut h);
    (h.finish() % workers as u64) as usize
}

/// One connection: a reader loop on this thread plus a writer thread
/// draining the reply channel. Responses come from whichever worker
/// served each request; the reply channel serializes them onto the
/// socket.
fn connection_loop(
    stream: TcpStream,
    queues: &[SyncSender<Job>],
    metrics: &Arc<ServerMetrics>,
    telemetry: &Arc<Telemetry>,
    stop: &Arc<AtomicBool>,
) {
    let Ok(write_half) = stream.try_clone() else { return };
    let (reply_tx, reply_rx): (Sender<Vec<u8>>, Receiver<Vec<u8>>) = mpsc::channel();
    let writer_telemetry = Arc::clone(telemetry);
    let writer = match std::thread::Builder::new()
        .name("smore-conn-writer".into())
        .spawn(move || writer_loop(write_half, reply_rx, &writer_telemetry))
    {
        Ok(handle) => handle,
        Err(e) => {
            // Thread exhaustion: shed this connection (the peer sees a
            // clean close and can retry) instead of killing the server.
            warn!("serve", "dropping a connection: cannot spawn its writer thread: {e}");
            return;
        }
    };

    let mut reader = BufReader::new(stream);
    loop {
        // ordering: SeqCst — pairs with the SeqCst stop store in
        // stop_and_join; once per frame, dwarfed by the socket read.
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let frame = match read_frame(&mut reader) {
            Ok(FrameRead::Closed) | Err(_) => break,
            Ok(FrameRead::Oversized { declared }) => {
                ServerMetrics::bump(&metrics.protocol_errors);
                let resp = Response::Error {
                    code: ErrorCode::TooLarge,
                    message: format!(
                        "declared frame length {declared} exceeds the {} byte cap",
                        crate::protocol::MAX_FRAME_LEN
                    ),
                };
                if reply_tx.send(encode_response(UNKNOWN_REQUEST_ID, &resp)).is_err() {
                    break;
                }
                continue;
            }
            Ok(FrameRead::Runt { declared }) => {
                ServerMetrics::bump(&metrics.protocol_errors);
                let resp = Response::Error {
                    code: ErrorCode::Malformed,
                    message: format!("declared frame length {declared} cannot hold a message"),
                };
                if reply_tx.send(encode_response(UNKNOWN_REQUEST_ID, &resp)).is_err() {
                    break;
                }
                continue;
            }
            Ok(FrameRead::Payload(payload)) => payload,
        };

        let decode_span = telemetry.conn.time(Stage::Decode);
        let decoded = decode_request(&frame);
        let nanos = decode_span.stop();
        let (request_id, request) = match decoded {
            Ok(decoded) => decoded,
            Err(bad) => {
                ServerMetrics::bump(&metrics.protocol_errors);
                debug!("serve", "protocol error after {nanos} ns decode: {}", bad.message);
                let resp = Response::Error { code: bad.code, message: bad.message };
                if reply_tx.send(encode_response(bad.request_id, &resp)).is_err() {
                    break;
                }
                continue;
            }
        };

        let (tenant_id, kind) = match request {
            Request::Ping => {
                if reply_tx.send(encode_response(request_id, &Response::Pong)).is_err() {
                    break;
                }
                continue;
            }
            Request::Stats => {
                // Answered on the connection thread, like Ping: a scrape
                // must get through even when every worker queue is full.
                ServerMetrics::bump(&metrics.stats_requests);
                let snapshot = telemetry.snapshot(metrics).encode();
                if reply_tx.send(encode_response(request_id, &Response::Stats(snapshot))).is_err() {
                    break;
                }
                continue;
            }
            Request::Predict { tenant_id, window } => (tenant_id, JobKind::Predict(window)),
            Request::Ingest { tenant_id, label, window } => {
                (tenant_id, JobKind::Ingest { label, window })
            }
        };

        let shard = shard_of(tenant_id, queues.len());
        let accepted = Instant::now();
        let job = Job {
            request_id,
            tenant_id,
            kind,
            reply: reply_tx.clone(),
            accepted,
            dequeued: accepted,
        };
        // smore-lint: allow(panic_path) shard = hash % queues.len(), always in range
        match queues[shard].try_send(job) {
            Ok(()) => {}
            Err(TrySendError::Full(job)) => {
                // Admission control: answer now, buffer nothing.
                ServerMetrics::bump(&metrics.overloaded);
                telemetry.journal.push(Event {
                    kind: EventKind::OverloadShed,
                    tenant: tenant_id,
                    step: 0,
                    a: shard as u64,
                    b: queues.len() as u64,
                    nanos: 0,
                });
                let resp = Response::Error {
                    code: ErrorCode::Overloaded,
                    message: format!("shard {shard} queue is full; retry with backoff"),
                };
                if job.reply.send(encode_response(request_id, &resp)).is_err() {
                    break;
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    // Dropping our reply sender lets the writer drain in-flight worker
    // responses and exit once the last job's clone is gone.
    drop(reply_tx);
    let _ = writer.join();
}

fn writer_loop(stream: TcpStream, replies: Receiver<Vec<u8>>, telemetry: &Telemetry) {
    let mut writer = BufWriter::new(stream);
    while let Ok(frame) = replies.recv() {
        // One reply span per write burst: everything already queued goes
        // out under one buffered write + flush.
        let mut frames = 1u64;
        let burst = Instant::now();
        if writer.write_all(&frame).is_err() {
            return;
        }
        // Coalesce any already-queued responses into one flush.
        while let Ok(frame) = replies.try_recv() {
            if writer.write_all(&frame).is_err() {
                return;
            }
            frames += 1;
        }
        if writer.flush().is_err() {
            return;
        }
        telemetry.conn.record_n(Stage::Reply, nanos_of(burst.elapsed()) / frames, frames);
    }
}

/// Renders a panic payload for the supervision log line.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<&str>()
        .copied()
        .or_else(|| payload.downcast_ref::<String>().map(String::as_str))
        .unwrap_or("non-string panic payload")
}

/// The failure-domain boundary around one shard: runs [`worker_loop`]
/// under `catch_unwind`; a panic loses only that worker's *resident*
/// sessions (their last archived state, if any, is re-scanned from the
/// state dir) — the queue, its in-flight jobs and every other shard
/// survive, and the loop respawns the worker in place. Each panic is
/// counted, journalled and logged.
#[allow(clippy::too_many_arguments)]
fn supervise_worker(
    engine: &Arc<ServeEngine>,
    queue: &Receiver<Job>,
    config: &ServeConfig,
    metrics: &Arc<ServerMetrics>,
    telemetry: &Arc<Telemetry>,
    shard: usize,
    stop: &Arc<AtomicBool>,
    drain: &Arc<AtomicBool>,
) {
    let mut respawns = 0u64;
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(engine, queue, config, metrics, telemetry, shard, stop, drain);
        }));
        match run {
            Ok(()) => break,
            Err(payload) => {
                respawns += 1;
                ServerMetrics::bump(&metrics.worker_panics);
                telemetry.journal.push(Event {
                    kind: EventKind::WorkerPanic,
                    tenant: 0,
                    step: 0,
                    a: shard as u64,
                    b: respawns,
                    nanos: 0,
                });
                error!(
                    "serve",
                    "worker {shard} panicked ({}); respawning with its queue intact",
                    panic_message(payload.as_ref())
                );
                // ordering: SeqCst — pairs with the SeqCst stop store in
                // stop_and_join; read once per (rare) worker respawn.
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                // A deterministic crash loop must not spin a core.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Builds the shard's session store: persistent over
/// [`ServeConfig::state_dir`] when set (with this shard's ownership
/// filter, so a restart with a different worker count still assigns
/// every recovered file to exactly one worker), in-memory otherwise —
/// including as the degraded fallback when the state dir cannot be
/// opened, because serving beats durability.
fn open_store(engine: &Arc<ServeEngine>, config: &ServeConfig, shard: usize) -> SessionStore {
    let caps = (config.max_sessions_per_shard, config.max_delta_bytes_per_shard);
    if let Some(dir) = &config.state_dir {
        let workers = config.workers;
        match StateDir::open(dir, config.flush_policy, move |tenant| {
            shard_of(tenant, workers) == shard
        }) {
            Ok(state) => {
                return SessionStore::new_persistent(Arc::clone(engine), caps.0, caps.1, state)
                    // smore-lint: allow(panic_path) caps were validated by ServeConfig::validate before any worker spawned
                    .expect("serve() validated the session caps");
            }
            Err(e) => {
                error!(
                    "serve",
                    "worker {shard} cannot open state dir {} ({e}); \
                     serving with a volatile in-memory archive",
                    dir.display()
                );
            }
        }
    }
    SessionStore::new(Arc::clone(engine), caps.0, caps.1)
        // smore-lint: allow(panic_path) caps were validated by ServeConfig::validate before any worker spawned
        .expect("serve() validated the session caps")
}

/// Store counters already forwarded into [`ServerMetrics`] — the store's
/// counters are cumulative per instance, so the worker forwards diffs.
#[derive(Default)]
struct ForwardedCounters {
    evictions: u64,
    hydrations: u64,
    recovered: u64,
    quarantined: u64,
    write_failures: u64,
}

fn forward_store_counters(
    seen: &mut ForwardedCounters,
    sessions: &SessionStore,
    metrics: &ServerMetrics,
) {
    let forward = |counter: &AtomicU64, now: u64, seen: &mut u64| {
        // ordering: Relaxed — monotone report counter; `seen` lives on the
        // single owning worker, so the saturating diff can never race, and
        // readers only aggregate the values.
        counter.fetch_add(now.saturating_sub(*seen), Ordering::Relaxed);
        *seen = now;
    };
    forward(&metrics.sessions_evicted, sessions.evictions(), &mut seen.evictions);
    forward(&metrics.sessions_hydrated, sessions.hydrations(), &mut seen.hydrations);
    forward(&metrics.state_recovered, sessions.state_recovered(), &mut seen.recovered);
    forward(&metrics.state_quarantined, sessions.state_quarantined(), &mut seen.quarantined);
    forward(
        &metrics.state_write_failures,
        sessions.state_write_failures(),
        &mut seen.write_failures,
    );
}

/// Occupancy gauges: overwrite this shard's slots, walking only the
/// *resident* sessions — an evicted session stops counting the moment
/// it leaves the store, so the gauges can never go stale on session
/// drop. One pass costs microseconds against a batch's milliseconds of
/// scoring.
fn refresh_gauges(telemetry: &Telemetry, shard: usize, sessions: &SessionStore) {
    // smore-lint: allow(panic_path) telemetry allocates one gauge slot per shard at startup
    let gauges = &telemetry.gauges[shard];
    let mut personalized = 0u64;
    let mut buffered = 0u64;
    let mut ood_micros = 0u64;
    for session in sessions.sessions() {
        personalized += u64::from(session.is_personalized());
        buffered += session.buffered() as u64;
        ood_micros += (f64::from(session.recent_ood_fraction()) * 1e6) as u64;
    }
    // ordering: Relaxed — last-writer-wins occupancy gauges with a single
    // writer (the owning worker); `archived_bytes` included, since the
    // store keeps its own accounting and this is a plain overwrite. A
    // scrape may see a mid-refresh mix, which is fine for reporting.
    gauges.sessions.store(sessions.len() as u64, Ordering::Relaxed);
    gauges.personalized.store(personalized, Ordering::Relaxed);
    gauges.buffered_windows.store(buffered, Ordering::Relaxed);
    gauges.ood_fraction_micros.store(ood_micros, Ordering::Relaxed);
    gauges.archived_tenants.store(sessions.archived_tenants() as u64, Ordering::Relaxed);
    gauges.archived_bytes.store(sessions.archived_bytes() as u64, Ordering::Relaxed);
    gauges.resident_delta_bytes.store(sessions.resident_delta_bytes() as u64, Ordering::Relaxed);
}

/// One shard: owns every hashed-here tenant's session, coalesces the
/// queue into micro-batches, serves, replies. On shutdown (with `drain`
/// still set) it serves the jobs already queued, then suspends every
/// resident session to the state dir so nothing personalized is lost.
#[allow(clippy::too_many_arguments)]
fn worker_loop(
    engine: &Arc<ServeEngine>,
    queue: &Receiver<Job>,
    config: &ServeConfig,
    metrics: &Arc<ServerMetrics>,
    telemetry: &Arc<Telemetry>,
    shard: usize,
    stop: &Arc<AtomicBool>,
    drain: &Arc<AtomicBool>,
) {
    let mut sessions = open_store(engine, config, shard);
    let mut scratch = ServeScratch::new();
    let mut batch: Vec<Job> = Vec::with_capacity(config.batch_max);
    // smore-lint: allow(panic_path) telemetry allocates one stage set per shard at startup
    let stages = &telemetry.shards[shard];
    let mut seen = ForwardedCounters::default();
    // Publish recovery results immediately — a restarted server must show
    // honest `state_recovered` gauges before any traffic arrives.
    forward_store_counters(&mut seen, &sessions, metrics);
    refresh_gauges(telemetry, shard, &sessions);
    let dequeue = |stages: &StageSet, mut job: Job| -> Job {
        stages.record(Stage::QueueWait, nanos_of(job.accepted.elapsed()));
        job.dequeued = Instant::now();
        job
    };

    'serving: loop {
        // Wait for the first job, re-checking the stop flag so shutdown
        // never deadlocks on queue senders still held by live connection
        // threads. A closed queue also means shutdown.
        let first = loop {
            // ordering: SeqCst — pairs with the SeqCst stop store in
            // stop_and_join; polled at most every 25 ms while idle.
            if stop.load(Ordering::SeqCst) {
                break 'serving;
            }
            match queue.recv_timeout(Duration::from_millis(25)) {
                Ok(job) => break job,
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => break 'serving,
            }
        };
        batch.push(dequeue(stages, first));
        if config.batch_max > 1 {
            let deadline = Instant::now() + config.batch_deadline;
            while batch.len() < config.batch_max {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                match queue.recv_timeout(deadline - now) {
                    Ok(job) => batch.push(dequeue(stages, job)),
                    Err(RecvTimeoutError::Timeout) => break,
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        inject_chaos(config, &batch, shard);
        serve_batch(engine, &mut sessions, &mut scratch, &mut batch, metrics, stages);
        batch.clear();

        forward_store_counters(&mut seen, &sessions, metrics);
        refresh_gauges(telemetry, shard, &sessions);
    }

    // Graceful drain: finish the work already admitted, then suspend
    // every resident session so a restart over the state dir rehydrates
    // them bit-exactly. Skipped by `ServerHandle::abort` (crash
    // simulation) and pointless without persistence.
    // ordering: SeqCst — reads the flag abort() cleared with SeqCst; the
    // total order with `stop` guarantees an abort is never mistaken for a
    // graceful drain.
    if drain.load(Ordering::SeqCst) && sessions.persists() {
        while let Ok(job) = queue.try_recv() {
            batch.push(dequeue(stages, job));
            if batch.len() >= config.batch_max {
                serve_batch(engine, &mut sessions, &mut scratch, &mut batch, metrics, stages);
                batch.clear();
            }
        }
        if !batch.is_empty() {
            serve_batch(engine, &mut sessions, &mut scratch, &mut batch, metrics, stages);
            batch.clear();
        }
        match sessions.drain() {
            Ok(persisted) => {
                // ordering: Relaxed — monotone report counter (see bump).
                metrics.sessions_drained.fetch_add(persisted as u64, Ordering::Relaxed);
            }
            Err(e) => {
                error!("serve", "worker {shard} drain flush failed: {e}");
            }
        }
        forward_store_counters(&mut seen, &sessions, metrics);
        refresh_gauges(telemetry, shard, &sessions);
    }
}

/// Applies the [`ChaosConfig`] hooks to a collected batch.
fn inject_chaos(config: &ServeConfig, batch: &[Job], shard: usize) {
    if let Some(victim) = config.chaos.panic_on_tenant {
        if batch.iter().any(|job| job.tenant_id == victim) {
            // smore-lint: allow(panic_path) deliberate fault injection for the supervision harness; production configs never set it
            panic!("chaos: injected panic serving tenant {victim} on shard {shard}");
        }
    }
    if let Some(stall) = config.chaos.stall_per_job {
        std::thread::sleep(stall.saturating_mul(u32::try_from(batch.len()).unwrap_or(u32::MAX)));
    }
}

fn prediction_response(p: &smore::Prediction, buffered: bool, adapted: bool) -> Response {
    Response::Prediction(WirePrediction {
        label: p.label as u32,
        is_ood: p.is_ood,
        delta_max: p.delta_max,
        best_domain: p.best_domain as u32,
        buffered,
        adapted,
    })
}

fn model_error_response(err: &SmoreError) -> Response {
    Response::Error { code: ErrorCode::Rejected, message: err.to_string() }
}

/// Serves one coalesced micro-batch. Shared-base predicts go through one
/// `predict_batch`; everything else is served per tenant session.
fn serve_batch(
    engine: &Arc<ServeEngine>,
    sessions: &mut SessionStore,
    scratch: &mut ServeScratch,
    batch: &mut Vec<Job>,
    metrics: &Arc<ServerMetrics>,
    stages: &StageSet,
) {
    // Every job's coalesce wait ends here, whichever path serves it.
    for job in batch.iter() {
        stages.record(Stage::CoalesceWait, nanos_of(job.dequeued.elapsed()));
    }

    // Partition: a Predict for a tenant with no personal state is
    // answerable from the shared base — coalescable across tenants. An
    // evicted-but-personalized tenant has *archived* state, so it must
    // take the stateful path and rehydrate; only a tenant that is neither
    // resident-personalized nor archived is truly on the base. Base jobs
    // split into lockstep reply/window vectors, so the serving paths
    // below re-match nothing (no unreachable arms) and the batch call
    // borrows the windows without cloning them.
    let mut base_replies: Vec<(u64, Sender<Vec<u8>>)> = Vec::new();
    let mut base_windows: Vec<Matrix> = Vec::new();
    let mut stateful: Vec<Job> = Vec::new();
    for job in batch.drain(..) {
        let on_base = matches!(job.kind, JobKind::Predict(_))
            && match sessions.get(job.tenant_id) {
                Some(s) => !s.is_personalized(),
                None => !sessions.has_archived(job.tenant_id),
            };
        match job {
            Job { request_id, kind: JobKind::Predict(window), reply, .. } if on_base => {
                base_replies.push((request_id, reply));
                base_windows.push(window);
            }
            job => stateful.push(job),
        }
    }

    if !base_windows.is_empty() {
        let base = engine.base_snapshot();
        let serve_one = |window: &Matrix, scratch: &mut ServeScratch| {
            let response = match base.predict_window_with(window, scratch) {
                Ok(p) => {
                    ServerMetrics::bump(&metrics.served);
                    prediction_response(p, false, false)
                }
                Err(e) => model_error_response(&e),
            };
            if matches!(response, Response::Prediction(_)) {
                let t = scratch.timings();
                stages.record(Stage::Encode, t.encode_nanos);
                stages.record(Stage::Score, t.score_nanos);
            }
            response
        };
        if let ([(request_id, reply)], [window]) =
            (base_replies.as_slice(), base_windows.as_slice())
        {
            // No cross-tenant coalescing possible; serve through the
            // worker scratch without the batch machinery.
            let response = serve_one(window, scratch);
            let _ = reply.send(encode_response(*request_id, &response));
        } else {
            match base.predict_batch_timed(&base_windows) {
                Ok((predictions, timings)) => {
                    ServerMetrics::bump(&metrics.coalesced_batches);
                    // ordering: Relaxed — monotone report counters (see bump).
                    metrics
                        .coalesced_windows
                        .fetch_add(base_windows.len() as u64, Ordering::Relaxed);
                    metrics.served.fetch_add(base_windows.len() as u64, Ordering::Relaxed);
                    // Charge each window the batch mean of its stage — the
                    // per-window split inside one parallel batch call is
                    // not observable, the totals are.
                    let n = base_windows.len() as u64;
                    stages.record_n(Stage::Encode, timings.encode_nanos / n, n);
                    stages.record_n(Stage::Score, timings.score_nanos / n, n);
                    for ((request_id, reply), p) in base_replies.iter().zip(&predictions) {
                        let _ = reply.send(encode_response(
                            *request_id,
                            &prediction_response(p, false, false),
                        ));
                    }
                }
                Err(_) => {
                    // One bad window fails a whole batch call; fall back
                    // to per-window serving so its neighbours still get
                    // answers and only the offender gets the error.
                    for ((request_id, reply), window) in base_replies.iter().zip(&base_windows) {
                        let response = serve_one(window, scratch);
                        let _ = reply.send(encode_response(*request_id, &response));
                    }
                }
            }
        }
    }

    for job in stateful {
        let Job { request_id, tenant_id, kind, reply, .. } = job;
        // The store makes the session resident first (fresh off the base,
        // or rehydrated from its archived delta), runs the closure, then
        // re-enforces the residency caps against the other tenants.
        let served = sessions.with_session(tenant_id, |session| {
            let response = match kind {
                JobKind::Predict(window) => match session.predict_window(&window) {
                    Ok(p) => {
                        ServerMetrics::bump(&metrics.served);
                        prediction_response(p, false, false)
                    }
                    Err(e) => model_error_response(&e),
                },
                JobKind::Ingest { label, window } => {
                    let outcome = match label {
                        Some(l) => session.ingest_labelled(&window, l as usize),
                        None => session.ingest(&window),
                    };
                    match outcome {
                        Ok(o) => {
                            ServerMetrics::bump(&metrics.served);
                            if o.adapted.is_some() {
                                ServerMetrics::bump(&metrics.adaptations);
                            }
                            prediction_response(&o.prediction, o.buffered, o.adapted.is_some())
                        }
                        Err(e) => model_error_response(&e),
                    }
                }
            };
            let timings =
                matches!(response, Response::Prediction(_)).then(|| session.last_timings());
            (response, timings)
        });
        let (response, timings) = match served {
            Ok(out) => out,
            // Rehydration failed (corrupt archive, base mismatch): a typed
            // refusal for this tenant; every other tenant keeps serving.
            Err(e) => (model_error_response(&e), None),
        };
        if let Some(t) = timings {
            stages.record(Stage::Encode, t.encode_nanos);
            stages.record(Stage::Score, t.score_nanos);
        }
        let _ = reply.send(encode_response(request_id, &response));
    }
}
