//! The server's telemetry registry: per-shard stage histograms,
//! connection-thread stages, worker occupancy gauges and the shared
//! adaptation journal, aggregated on scrape into one
//! [`StatsSnapshot`].
//!
//! Recording is contention-free by construction: each worker writes only
//! its own shard's [`StageSet`] and [`ShardGauges`]; connection and
//! writer threads share one `conn` stage set whose histograms are
//! lock-free atomics. Aggregation (histogram merging, gauge summing)
//! happens only when a scrape asks for it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use smore_obs::{EventJournal, Stage, StageSet, StatsSnapshot};

use crate::server::ServerMetrics;

/// Per-shard occupancy gauges, overwritten by the owning worker after
/// every micro-batch (monotone counters live in [`ServerMetrics`]).
#[derive(Debug, Default)]
pub(crate) struct ShardGauges {
    /// Tenant sessions materialised on this shard.
    pub(crate) sessions: AtomicU64,
    /// Sessions serving a personal (post-enrolment) snapshot.
    pub(crate) personalized: AtomicU64,
    /// Windows currently buffered for enrolment across the shard.
    pub(crate) buffered_windows: AtomicU64,
    /// Sum over this shard's sessions of their recent OOD fraction, in
    /// millionths — integer so the hot path never touches floats; the
    /// scrape divides by the session count.
    pub(crate) ood_fraction_micros: AtomicU64,
    /// Evicted tenants parked as archived delta artifacts on this shard.
    pub(crate) archived_tenants: AtomicU64,
    /// Bytes those archived deltas occupy.
    pub(crate) archived_bytes: AtomicU64,
    /// Resident personalized-state bytes counted against the shard's
    /// eviction budget.
    pub(crate) resident_delta_bytes: AtomicU64,
}

/// All telemetry state for one running server (see the module docs).
#[derive(Debug)]
pub(crate) struct Telemetry {
    /// One stage set per worker shard: `queue_wait`, `coalesce_wait`,
    /// `encode`, `score`.
    pub(crate) shards: Vec<StageSet>,
    /// Connection-side stages shared across connections: `decode` on the
    /// reader threads, `reply` on the writer threads.
    pub(crate) conn: StageSet,
    pub(crate) gauges: Vec<ShardGauges>,
    /// The adaptation journal — the engine's, when one was attached with
    /// [`smore_stream::ServeEngine::set_journal`], so tenant lifecycle
    /// events and the server's `overload_shed` events land in one ring.
    pub(crate) journal: Arc<EventJournal>,
}

impl Telemetry {
    pub(crate) fn new(workers: usize, journal: Arc<EventJournal>) -> Self {
        Self {
            shards: (0..workers).map(|_| StageSet::new()).collect(),
            conn: StageSet::new(),
            gauges: (0..workers).map(|_| ShardGauges::default()).collect(),
            journal,
        }
    }

    /// Aggregates every shard into one self-describing snapshot.
    pub(crate) fn snapshot(&self, metrics: &ServerMetrics) -> StatsSnapshot {
        let mut snap = StatsSnapshot::new();
        // ordering: Relaxed — read-only scrape of monotone counters; the
        // snapshot promises no cross-counter consistency to scrapers.
        let load = |c: &AtomicU64| c.load(Ordering::Relaxed);
        snap.counters = vec![
            ("requests_served".into(), load(&metrics.served)),
            ("coalesced_batches".into(), load(&metrics.coalesced_batches)),
            ("coalesced_windows".into(), load(&metrics.coalesced_windows)),
            ("overloaded".into(), load(&metrics.overloaded)),
            ("protocol_errors".into(), load(&metrics.protocol_errors)),
            ("adaptations".into(), load(&metrics.adaptations)),
            ("connections".into(), load(&metrics.connections)),
            ("stats_requests".into(), load(&metrics.stats_requests)),
            ("sessions_evicted".into(), load(&metrics.sessions_evicted)),
            ("sessions_hydrated".into(), load(&metrics.sessions_hydrated)),
            ("worker_panics".into(), load(&metrics.worker_panics)),
            ("sessions_drained".into(), load(&metrics.sessions_drained)),
            ("state_recovered".into(), load(&metrics.state_recovered)),
            ("state_quarantined".into(), load(&metrics.state_quarantined)),
            ("state_write_failures".into(), load(&metrics.state_write_failures)),
        ];

        let mut sessions = 0u64;
        let mut personalized = 0u64;
        let mut buffered = 0u64;
        let mut ood_micros = 0u64;
        let mut archived = 0u64;
        let mut archived_bytes = 0u64;
        let mut resident_delta_bytes = 0u64;
        for g in &self.gauges {
            sessions += load(&g.sessions);
            personalized += load(&g.personalized);
            buffered += load(&g.buffered_windows);
            ood_micros += load(&g.ood_fraction_micros);
            archived += load(&g.archived_tenants);
            archived_bytes += load(&g.archived_bytes);
            resident_delta_bytes += load(&g.resident_delta_bytes);
        }
        let ood_recent =
            if sessions == 0 { 0.0 } else { ood_micros as f64 / 1e6 / sessions as f64 };
        snap.gauges = vec![
            ("tenant_sessions".into(), sessions as f64),
            ("tenants_personalized".into(), personalized as f64),
            ("buffered_windows".into(), buffered as f64),
            ("ood_fraction_recent".into(), ood_recent),
            ("workers".into(), self.shards.len() as f64),
            ("tenants_archived".into(), archived as f64),
            ("archived_delta_bytes".into(), archived_bytes as f64),
            ("resident_delta_bytes".into(), resident_delta_bytes as f64),
        ];

        for stage in Stage::ALL {
            let mut merged = self.conn.histogram(stage).snapshot();
            for shard in &self.shards {
                merged.merge(&shard.histogram(stage).snapshot());
            }
            snap.stages.push((stage.name().to_string(), merged));
        }

        snap.journal = self.journal.snapshot();
        snap
    }
}
