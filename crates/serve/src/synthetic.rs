//! The canonical synthetic serving fleet: one recipe shared by the
//! `smore_serve` binary's `--synthetic` mode, the `load_gen` bench and
//! the integration tests, so a load generator pointed at a synthetic
//! server always produces windows the server's encoder accepts — same
//! channels, same window length, same class count.

use smore::{Smore, SmoreConfig};
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::split;
use smore_data::stream::{concept_drift_stream, DriftSegment, StreamConfig};
use smore_data::Dataset;
use smore_stream::{LabelStrategy, ServeEngine, StreamingConfig};
use smore_tensor::Matrix;

use crate::Result;

/// The held-out domain the drifting tenants come from (LODO split).
pub const DRIFT_DOMAIN: usize = 3;

/// The generator recipe: four domains of two subjects each, 4 classes,
/// 3 channels, 24-step windows — the multi-tenant engine's test fleet at
/// a serving-bench window budget.
pub fn generator_config(seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        name: "serve-fleet".into(),
        num_classes: 4,
        channels: 3,
        window_len: 24,
        sample_rate_hz: 25.0,
        domains: (0..4)
            .map(|d| DomainSpec { subjects: vec![2 * d, 2 * d + 1], windows: 80 })
            .collect(),
        shift_severity: 1.2,
        seed,
    }
}

/// Generates the fleet dataset.
///
/// # Errors
///
/// Propagates generator failures (the fixed recipe does not fail).
pub fn dataset(seed: u64) -> Result<Dataset> {
    generate(&generator_config(seed)).map_err(smore::SmoreError::from)
}

/// The streaming configuration every synthetic tenant session runs with:
/// oracle labels, small enrolment threshold, short cooldown — tuned so a
/// drifting tenant enrols within ~40 drifted windows.
pub fn streaming_config() -> StreamingConfig {
    StreamingConfig {
        buffer_capacity: 128,
        drift_window: 32,
        drift_threshold: 0.5,
        min_enroll: 24,
        cooldown: 32,
        label_strategy: LabelStrategy::Oracle,
        ..StreamingConfig::default()
    }
}

/// The drifting tenant's labelled stream: held-out-domain windows read
/// 1.5× hot (the calibrated drift scenario the streaming regression
/// tests pin down — raw held-out windows alone sit too close to the
/// decision boundary to fire enrolment reliably).
///
/// # Errors
///
/// Propagates stream-synthesis failures (the fixed recipe does not fail).
pub fn drift_stream(ds: &Dataset, windows: usize, seed: u64) -> Result<Vec<(Matrix, usize)>> {
    let items = concept_drift_stream(
        ds,
        &StreamConfig {
            segments: vec![DriftSegment {
                domain: DRIFT_DOMAIN,
                windows,
                gain_ramp: Some((1.5, 1.5)),
                dropout_channel: None,
            }],
            seed,
        },
    )
    .map_err(smore::SmoreError::from)?;
    Ok(items.into_iter().map(|i| (i.window, i.label)).collect())
}

/// Trains the fleet model on the non-drift domains and builds a
/// calibrated [`ServeEngine`] around it (drift δ = the 0.25 quantile of
/// in-distribution `δ_max`).
///
/// # Errors
///
/// Propagates training and calibration failures.
pub fn engine(seed: u64, dim: usize) -> Result<(Dataset, ServeEngine)> {
    let ds = dataset(seed)?;
    let (train, _) = split::lodo(&ds, DRIFT_DOMAIN)?;
    let mut model = Smore::new(
        SmoreConfig::builder()
            .dim(dim)
            .channels(ds.meta().channels)
            .num_classes(ds.meta().num_classes)
            .epochs(10)
            .threads(2)
            .build()?,
    )?;
    model.fit_indices(&ds, &train)?;
    let mut engine = ServeEngine::new(model, streaming_config())?;
    let (calib_w, _, _) = ds.gather(&train);
    engine.calibrate_drift_delta(&calib_w, 0.25)?;
    Ok((ds, engine))
}
