//! The SMORE wire protocol: length-prefixed, CRC-framed binary messages.
//!
//! The framing discipline is the `.smore` artifact container's
//! ([`smore::artifact`]), applied per message instead of per file, built
//! on the shared [`smore::wire`] primitives:
//!
//! ```text
//! frame   = len: u32 | payload[len]
//! payload = crc32: u32 (over everything after it) | tag: u8 | request_id: u64 | body
//! ```
//!
//! Everything is little-endian. The CRC catches bit rot and torn writes
//! before any field is decoded; every declared count inside a body is
//! bounds-checked against the bytes actually present before any
//! allocation, so a hostile length prefix can never size a buffer the
//! frame itself cannot back ([`MAX_FRAME_LEN`] caps the frame allocation
//! itself — an oversized declaration is *skipped* in bounded chunks and
//! answered with [`ErrorCode::TooLarge`], never allocated).
//!
//! Each request carries a client-chosen `request_id`, echoed verbatim in
//! the response, so clients can pipeline many requests per connection —
//! the server's micro-batch coalescing depends on that depth. Responses
//! to one connection may interleave with protocol errors but every
//! request gets exactly one response frame.

use std::io::{self, Read, Write};

use smore::wire::{crc32, WireReader, WireResult, WireWriter};
use smore_tensor::Matrix;

/// Hard cap on one frame's payload length. Windows are a few KiB of f32;
/// 1 MiB leaves two orders of magnitude of headroom while keeping a
/// hostile length prefix from sizing a real allocation.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// Smallest structurally possible payload: CRC (4) + tag (1) + id (8).
pub const MIN_FRAME_LEN: usize = 13;

/// Hard cap on one window dimension (rows or columns) on the wire.
pub const MAX_WINDOW_DIM: usize = 4096;

/// `request_id` echoed when a frame was too corrupt to recover one.
pub const UNKNOWN_REQUEST_ID: u64 = u64::MAX;

// Request tags.
const TAG_PREDICT: u8 = 0x01;
const TAG_INGEST: u8 = 0x02;
const TAG_PING: u8 = 0x03;
const TAG_STATS: u8 = 0x04;
// Response tags.
const TAG_PREDICTION: u8 = 0x81;
const TAG_PONG: u8 = 0x82;
const TAG_STATS_RESP: u8 = 0x83;
const TAG_ERROR: u8 = 0xEE;

/// Machine-readable failure class carried by an error response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame or body failed structural validation (bad CRC,
    /// truncated body, out-of-range shape, trailing bytes…).
    Malformed,
    /// The tenant's worker queue is full — admission control refused the
    /// request instead of buffering unboundedly. Back off and retry.
    Overloaded,
    /// The model rejected the request (e.g. a label out of range or a
    /// window whose shape the encoder refuses).
    Rejected,
    /// The declared frame length exceeds [`MAX_FRAME_LEN`].
    TooLarge,
    /// The message tag is not one this server understands.
    UnknownTag,
}

impl ErrorCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrorCode::Malformed => 1,
            ErrorCode::Overloaded => 2,
            ErrorCode::Rejected => 3,
            ErrorCode::TooLarge => 4,
            ErrorCode::UnknownTag => 5,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::Malformed),
            2 => Some(ErrorCode::Overloaded),
            3 => Some(ErrorCode::Rejected),
            4 => Some(ErrorCode::TooLarge),
            5 => Some(ErrorCode::UnknownTag),
            _ => None,
        }
    }
}

/// One decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Stateless prediction — the coalescable fast path. Does not touch
    /// the tenant's adaptation state (or create a session).
    Predict {
        /// The tenant whose serving model answers (base snapshot until
        /// that tenant personalizes).
        tenant_id: u64,
        /// The raw multi-sensor window, row-major `time × channels`.
        window: Matrix,
    },
    /// Stateful ingest — serves *and* drives the tenant's OOD buffer,
    /// drift detector and (when drift fires) online enrolment.
    Ingest {
        /// The tenant whose session ingests the window.
        tenant_id: u64,
        /// Delayed ground truth for the oracle labelling strategy.
        label: Option<u32>,
        /// The raw multi-sensor window, row-major `time × channels`.
        window: Matrix,
    },
    /// Liveness probe; answered with [`Response::Pong`] without touching
    /// a worker queue.
    Ping,
    /// Telemetry scrape; answered with [`Response::Stats`] on the
    /// connection thread — like [`Request::Ping`] it never enters a worker
    /// queue, so an overloaded server still answers its own diagnosis.
    Stats,
}

/// The serving result carried by [`Response::Prediction`] — a compact
/// wire projection of [`smore::Prediction`] plus the streaming outcome
/// flags.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePrediction {
    /// Predicted class label.
    pub label: u32,
    /// Whether the query was declared out-of-distribution.
    pub is_ood: bool,
    /// Maximum descriptor similarity `δ_max`.
    pub delta_max: f32,
    /// External tag of the most similar domain.
    pub best_domain: u32,
    /// Whether the window was buffered for enrolment (ingest only).
    pub buffered: bool,
    /// Whether this very request fired an online enrolment (ingest only).
    pub adapted: bool,
}

/// One server response.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The prediction for one [`Request::Predict`] / [`Request::Ingest`].
    Prediction(WirePrediction),
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Stats`]: one encoded
    /// [`smore_obs::StatsSnapshot`] frame body (versioned; decode with
    /// [`smore_obs::StatsSnapshot::decode`]). Carried opaquely so the
    /// protocol layer never chases the telemetry vocabulary.
    Stats(Vec<u8>),
    /// The request failed; the connection stays usable.
    Error {
        /// Failure class.
        code: ErrorCode,
        /// Human-readable detail.
        message: String,
    },
}

/// Seals `tag | request_id | body` into a full frame (length prefix +
/// CRC + payload).
fn seal(tag: u8, request_id: u64, body: impl FnOnce(&mut WireWriter)) -> Vec<u8> {
    let mut w = WireWriter::new();
    w.u8(tag);
    w.u64(request_id);
    body(&mut w);
    let inner = w.into_bytes();
    let mut out = Vec::with_capacity(8 + inner.len());
    out.extend_from_slice(&((4 + inner.len()) as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&inner).to_le_bytes());
    out.extend_from_slice(&inner);
    out
}

fn write_window(w: &mut WireWriter, window: &Matrix) {
    w.u32(window.rows() as u32);
    w.u32(window.cols() as u32);
    w.f32s(window.as_slice());
}

fn read_window(r: &mut WireReader<'_>) -> WireResult<Matrix> {
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    if rows == 0 || cols == 0 || rows > MAX_WINDOW_DIM || cols > MAX_WINDOW_DIM {
        return Err(
            r.malformed(format!("window shape {rows}×{cols} is outside (0, {MAX_WINDOW_DIM}]²"))
        );
    }
    // rows × cols ≤ MAX_WINDOW_DIM² < 2^24 — no overflow; the byte bound
    // against the remaining payload happens before the allocation.
    let n = rows * cols;
    if n * 4 > r.remaining() {
        return Err(r.malformed(format!(
            "window of {n} values exceeds the {}-byte payload",
            r.remaining()
        )));
    }
    let values = r.f32s(n)?;
    Matrix::from_vec(rows, cols, values).map_err(|e| r.malformed(format!("window rejected: {e}")))
}

/// Encodes one request into a ready-to-write frame.
pub fn encode_request(request_id: u64, request: &Request) -> Vec<u8> {
    match request {
        Request::Predict { tenant_id, window } => seal(TAG_PREDICT, request_id, |w| {
            w.u64(*tenant_id);
            write_window(w, window);
        }),
        Request::Ingest { tenant_id, label, window } => seal(TAG_INGEST, request_id, |w| {
            w.u64(*tenant_id);
            match label {
                Some(l) => {
                    w.u8(1);
                    w.u32(*l);
                }
                None => w.u8(0),
            }
            write_window(w, window);
        }),
        Request::Ping => seal(TAG_PING, request_id, |_| {}),
        Request::Stats => seal(TAG_STATS, request_id, |_| {}),
    }
}

/// Encodes one response into a ready-to-write frame.
pub fn encode_response(request_id: u64, response: &Response) -> Vec<u8> {
    match response {
        Response::Prediction(p) => seal(TAG_PREDICTION, request_id, |w| {
            w.u32(p.label);
            w.u8(p.is_ood as u8);
            w.f32(p.delta_max);
            w.u32(p.best_domain);
            w.u8(p.buffered as u8);
            w.u8(p.adapted as u8);
        }),
        Response::Pong => seal(TAG_PONG, request_id, |_| {}),
        Response::Stats(snapshot) => seal(TAG_STATS_RESP, request_id, |w| {
            w.u32(snapshot.len() as u32);
            w.bytes(snapshot);
        }),
        Response::Error { code, message } => seal(TAG_ERROR, request_id, |w| {
            w.u8(code.to_byte());
            w.str_lp(message);
        }),
    }
}

/// What [`read_frame`] produced.
#[derive(Debug)]
pub enum FrameRead {
    /// The peer closed the connection cleanly at a frame boundary.
    Closed,
    /// One complete payload (CRC not yet verified — [`decode_request`] /
    /// [`decode_response`] verify it).
    Payload(Vec<u8>),
    /// The declared length exceeded [`MAX_FRAME_LEN`]; the frame was
    /// *skipped* (drained in bounded chunks, never allocated whole). The
    /// connection is still framed correctly.
    Oversized {
        /// The length the peer declared.
        declared: usize,
    },
    /// The declared length cannot hold CRC + tag + request id; skipped
    /// like [`FrameRead::Oversized`].
    Runt {
        /// The length the peer declared.
        declared: usize,
    },
}

/// Reads one length-prefixed frame. Mid-frame EOF and transport failures
/// surface as `Err`; a clean close at a frame boundary is
/// [`FrameRead::Closed`].
pub fn read_frame(r: &mut impl Read) -> io::Result<FrameRead> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before any length byte means the peer hung up.
    match r.read(&mut len_bytes)? {
        0 => return Ok(FrameRead::Closed),
        // smore-lint: allow(panic_path) read() returns at most buf.len(), so n..4 is in range
        n => r.read_exact(&mut len_bytes[n..])?,
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(MIN_FRAME_LEN..=MAX_FRAME_LEN).contains(&len) {
        // Drain the declared bytes through a bounded buffer so the
        // connection stays framed without ever allocating `len`.
        let mut remaining = len as u64;
        let mut sink = [0u8; 4096];
        while remaining > 0 {
            let take = sink.len().min(remaining as usize);
            // smore-lint: allow(panic_path) take is clamped to sink.len() one line up
            r.read_exact(&mut sink[..take])?;
            remaining -= take as u64;
        }
        return Ok(if len > MAX_FRAME_LEN {
            FrameRead::Oversized { declared: len }
        } else {
            FrameRead::Runt { declared: len }
        });
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(FrameRead::Payload(payload))
}

/// Writes pre-encoded frame bytes.
pub fn write_frame(w: &mut impl Write, frame: &[u8]) -> io::Result<()> {
    w.write_all(frame)
}

/// A request frame the server could not turn into a [`Request`]. Carries
/// everything needed to answer with a well-formed error response and keep
/// the connection alive.
#[derive(Debug, Clone, PartialEq)]
pub struct BadFrame {
    /// The request id to echo ([`UNKNOWN_REQUEST_ID`] when the frame was
    /// too corrupt to recover one).
    pub request_id: u64,
    /// Failure class for the error response.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub message: String,
}

/// Verifies the payload CRC and splits off `tag | request_id`, shared by
/// both decode directions.
fn open_payload(payload: &[u8]) -> Result<(u8, u64, WireReader<'_>), BadFrame> {
    let bad = |message: String| BadFrame {
        request_id: UNKNOWN_REQUEST_ID,
        code: ErrorCode::Malformed,
        message,
    };
    if payload.len() < MIN_FRAME_LEN {
        return Err(bad(format!(
            "payload of {} bytes is shorter than {MIN_FRAME_LEN}",
            payload.len()
        )));
    }
    // The length guard above proves 4 bytes exist, but stay typed anyway:
    // the connection thread must never panic on peer input.
    let Some((crc_bytes, inner)) = payload.split_first_chunk::<4>() else {
        return Err(bad("payload too short to carry a CRC".into()));
    };
    let declared = u32::from_le_bytes(*crc_bytes);
    if crc32(inner) != declared {
        // The id bytes failed the checksum too — echoing them could
        // mis-route the error onto an innocent in-flight request.
        return Err(bad("frame CRC mismatch".into()));
    }
    let mut r = WireReader::new(inner, "frame");
    let tag = r.u8().map_err(|e| bad(e.to_string()))?;
    let request_id = r.u64().map_err(|e| bad(e.to_string()))?;
    Ok((tag, request_id, r))
}

/// Decodes a request payload (server side).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), BadFrame> {
    let (tag, request_id, mut r) = open_payload(payload)?;
    let malformed = |e: smore::wire::WireError| BadFrame {
        request_id,
        code: ErrorCode::Malformed,
        message: e.to_string(),
    };
    let request = match tag {
        TAG_PREDICT => {
            let tenant_id = r.u64().map_err(malformed)?;
            let window = read_window(&mut r).map_err(malformed)?;
            Request::Predict { tenant_id, window }
        }
        TAG_INGEST => {
            let tenant_id = r.u64().map_err(malformed)?;
            let label = match r.u8().map_err(malformed)? {
                0 => None,
                1 => Some(r.u32().map_err(malformed)?),
                other => {
                    return Err(BadFrame {
                        request_id,
                        code: ErrorCode::Malformed,
                        message: format!("label flag must be 0 or 1, got {other}"),
                    })
                }
            };
            let window = read_window(&mut r).map_err(malformed)?;
            Request::Ingest { tenant_id, label, window }
        }
        TAG_PING => Request::Ping,
        TAG_STATS => Request::Stats,
        other => {
            return Err(BadFrame {
                request_id,
                code: ErrorCode::UnknownTag,
                message: format!("unknown request tag 0x{other:02X}"),
            })
        }
    };
    r.finish().map_err(malformed)?;
    Ok((request_id, request))
}

/// Decodes a response payload (client side).
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), BadFrame> {
    let (tag, request_id, mut r) = open_payload(payload)?;
    let malformed = |e: smore::wire::WireError| BadFrame {
        request_id,
        code: ErrorCode::Malformed,
        message: e.to_string(),
    };
    let response = match tag {
        TAG_PREDICTION => {
            let label = r.u32().map_err(malformed)?;
            let is_ood = r.u8().map_err(malformed)? != 0;
            let delta_max = r.f32().map_err(malformed)?;
            let best_domain = r.u32().map_err(malformed)?;
            let buffered = r.u8().map_err(malformed)? != 0;
            let adapted = r.u8().map_err(malformed)? != 0;
            Response::Prediction(WirePrediction {
                label,
                is_ood,
                delta_max,
                best_domain,
                buffered,
                adapted,
            })
        }
        TAG_PONG => Response::Pong,
        TAG_STATS_RESP => {
            let n = r.count("snapshot byte", 1).map_err(malformed)?;
            Response::Stats(r.take(n).map_err(malformed)?.to_vec())
        }
        TAG_ERROR => {
            let code_byte = r.u8().map_err(malformed)?;
            let code = ErrorCode::from_byte(code_byte).ok_or_else(|| BadFrame {
                request_id,
                code: ErrorCode::Malformed,
                message: format!("unknown error code {code_byte}"),
            })?;
            let message = r.str_lp().map_err(malformed)?;
            Response::Error { code, message }
        }
        other => {
            return Err(BadFrame {
                request_id,
                code: ErrorCode::UnknownTag,
                message: format!("unknown response tag 0x{other:02X}"),
            })
        }
    };
    r.finish().map_err(malformed)?;
    Ok((request_id, response))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Matrix {
        Matrix::from_fn(6, 3, |i, j| (i * 3 + j) as f32 / 10.0)
    }

    fn round_trip_request(request: Request) {
        let frame = encode_request(42, &request);
        let mut cursor = io::Cursor::new(frame);
        let payload = match read_frame(&mut cursor).unwrap() {
            FrameRead::Payload(p) => p,
            other => panic!("expected payload, got {other:?}"),
        };
        let (id, decoded) = decode_request(&payload).unwrap();
        assert_eq!(id, 42);
        assert_eq!(decoded, request);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Predict { tenant_id: 7, window: window() });
        round_trip_request(Request::Ingest { tenant_id: 7, label: Some(3), window: window() });
        round_trip_request(Request::Ingest { tenant_id: 1, label: None, window: window() });
        round_trip_request(Request::Ping);
        round_trip_request(Request::Stats);
    }

    #[test]
    fn responses_round_trip() {
        let cases = [
            Response::Prediction(WirePrediction {
                label: 3,
                is_ood: true,
                delta_max: 0.73,
                best_domain: 2,
                buffered: true,
                adapted: false,
            }),
            Response::Pong,
            Response::Stats(vec![0x01, 0x00, 0xAB, 0xCD]),
            Response::Stats(Vec::new()),
            Response::Error { code: ErrorCode::Overloaded, message: "queue full".into() },
        ];
        for response in cases {
            let frame = encode_response(9, &response);
            let mut cursor = io::Cursor::new(frame);
            let payload = match read_frame(&mut cursor).unwrap() {
                FrameRead::Payload(p) => p,
                other => panic!("expected payload, got {other:?}"),
            };
            let (id, decoded) = decode_response(&payload).unwrap();
            assert_eq!(id, 9);
            assert_eq!(decoded, response);
        }
    }

    #[test]
    fn crc_catches_single_bit_flips() {
        let frame = encode_request(1, &Request::Predict { tenant_id: 0, window: window() });
        // Flip one bit in every payload byte position in turn; each must
        // be caught by the CRC (or by the id being inside the checksum).
        for byte in 8..frame.len() {
            let mut corrupt = frame.clone();
            corrupt[byte] ^= 0x10;
            let mut cursor = io::Cursor::new(corrupt);
            let payload = match read_frame(&mut cursor).unwrap() {
                FrameRead::Payload(p) => p,
                other => panic!("expected payload, got {other:?}"),
            };
            let err = decode_request(&payload).unwrap_err();
            assert_eq!(err.request_id, UNKNOWN_REQUEST_ID, "byte {byte}");
            assert_eq!(err.code, ErrorCode::Malformed, "byte {byte}");
        }
    }

    #[test]
    fn oversized_and_runt_lengths_are_skipped_not_allocated() {
        // Oversized declaration backed by only a few real bytes: the
        // reader must report Oversized after draining what is there —
        // here the "frame" ends mid-drain, which is a transport error.
        let mut bytes = ((MAX_FRAME_LEN + 1) as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 64]);
        let mut cursor = io::Cursor::new(bytes);
        assert!(read_frame(&mut cursor).is_err(), "mid-drain EOF is a transport error");

        // Oversized declaration with the bytes actually present: skipped
        // cleanly, connection stays framed for the next message.
        let declared = MAX_FRAME_LEN + 5;
        let mut bytes = (declared as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&vec![7u8; declared]);
        let good = encode_request(3, &Request::Ping);
        bytes.extend_from_slice(&good);
        let mut cursor = io::Cursor::new(bytes);
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Oversized { declared: d } => assert_eq!(d, declared),
            other => panic!("expected Oversized, got {other:?}"),
        }
        match read_frame(&mut cursor).unwrap() {
            FrameRead::Payload(p) => {
                assert_eq!(decode_request(&p).unwrap(), (3, Request::Ping));
            }
            other => panic!("expected payload, got {other:?}"),
        }

        // Runt: declared length below the structural minimum.
        let mut bytes = 4u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 4]);
        let mut cursor = io::Cursor::new(bytes);
        assert!(matches!(read_frame(&mut cursor).unwrap(), FrameRead::Runt { declared: 4 }));
    }

    #[test]
    fn truncated_bodies_and_hostile_counts_are_rejected() {
        let frame = encode_request(5, &Request::Predict { tenant_id: 1, window: window() });
        // Re-frame a truncated payload with a consistent length + CRC so
        // the *body* decode (not the CRC) must catch it.
        let inner = &frame[8..frame.len() - 8];
        let mut reframed = ((4 + inner.len()) as u32).to_le_bytes().to_vec();
        reframed.extend_from_slice(&crc32(inner).to_le_bytes());
        reframed.extend_from_slice(inner);
        let mut cursor = io::Cursor::new(reframed);
        let payload = match read_frame(&mut cursor).unwrap() {
            FrameRead::Payload(p) => p,
            other => panic!("expected payload, got {other:?}"),
        };
        let err = decode_request(&payload).unwrap_err();
        assert_eq!(err.request_id, 5, "body errors echo the request id");
        assert_eq!(err.code, ErrorCode::Malformed);

        // A window declaring 4096×4096 values over a tiny payload must be
        // refused before any allocation.
        let hostile = seal(TAG_PREDICT, 6, |w| {
            w.u64(1);
            w.u32(4096);
            w.u32(4096);
            w.f32s(&[0.0; 8]);
        });
        let mut cursor = io::Cursor::new(hostile);
        let payload = match read_frame(&mut cursor).unwrap() {
            FrameRead::Payload(p) => p,
            other => panic!("expected payload, got {other:?}"),
        };
        let err = decode_request(&payload).unwrap_err();
        assert_eq!((err.request_id, err.code), (6, ErrorCode::Malformed));
        assert!(err.message.contains("exceeds"), "{}", err.message);
    }

    #[test]
    fn unknown_tags_echo_the_request_id() {
        let frame = seal(0x5A, 77, |_| {});
        let payload = match read_frame(&mut io::Cursor::new(frame)).unwrap() {
            FrameRead::Payload(p) => p,
            other => panic!("expected payload, got {other:?}"),
        };
        let err = decode_request(&payload).unwrap_err();
        assert_eq!((err.request_id, err.code), (77, ErrorCode::UnknownTag));
    }

    #[test]
    fn trailing_bytes_inside_a_frame_are_rejected() {
        let frame = seal(TAG_PING, 8, |w| w.u32(0xAB));
        let payload = match read_frame(&mut io::Cursor::new(frame)).unwrap() {
            FrameRead::Payload(p) => p,
            other => panic!("expected payload, got {other:?}"),
        };
        let err = decode_request(&payload).unwrap_err();
        assert_eq!((err.request_id, err.code), (8, ErrorCode::Malformed));
        assert!(err.message.contains("trailing"), "{}", err.message);
    }
}
