//! Property-based tests for dataset generation and splits.

use proptest::prelude::*;
use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
use smore_data::{split, window};
use smore_tensor::Matrix;

fn config(num_classes: usize, channels: usize, windows: usize, seed: u64) -> GeneratorConfig {
    GeneratorConfig {
        name: "prop".into(),
        num_classes,
        channels,
        window_len: 16,
        sample_rate_hz: 20.0,
        domains: vec![
            DomainSpec { subjects: vec![0, 1], windows },
            DomainSpec { subjects: vec![2], windows },
            DomainSpec { subjects: vec![3, 4, 5], windows },
        ],
        shift_severity: 1.0,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_datasets_are_structurally_sound(
        classes in 1usize..6,
        channels in 1usize..5,
        windows in 6usize..40,
        seed in any::<u64>(),
    ) {
        let ds = generate(&config(classes, channels, windows, seed)).unwrap();
        prop_assert_eq!(ds.len(), windows * 3);
        prop_assert_eq!(ds.meta().num_domains, 3);
        prop_assert!(ds.windows().iter().all(|w| w.is_finite()));
        prop_assert!(ds.labels().iter().all(|&l| l < classes));
        prop_assert!(ds.domains().iter().all(|&d| d < 3));
        // Class balance within one step of uniform.
        let sizes = ds.class_sizes();
        let max = *sizes.iter().max().unwrap();
        let min = *sizes.iter().min().unwrap();
        prop_assert!(max - min <= 3, "class sizes too skewed: {:?}", sizes);
    }

    #[test]
    fn lodo_is_a_partition(seed in any::<u64>(), held in 0usize..3) {
        let ds = generate(&config(3, 2, 12, seed)).unwrap();
        let (train, test) = split::lodo(&ds, held).unwrap();
        prop_assert_eq!(train.len() + test.len(), ds.len());
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), ds.len());
        prop_assert!(test.iter().all(|&i| ds.domain(i) == held));
        prop_assert!(train.iter().all(|&i| ds.domain(i) != held));
    }

    #[test]
    fn kfold_covers_each_window_exactly_once(seed in any::<u64>(), k in 2usize..6) {
        let ds = generate(&config(2, 1, 10, seed)).unwrap();
        let mut seen = vec![0usize; ds.len()];
        for fold in 0..k {
            let (train, test) = split::kfold(&ds, k, fold, seed).unwrap();
            prop_assert_eq!(train.len() + test.len(), ds.len());
            for i in test {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn subsample_is_sorted_dedup_subset(frac in 0.05f32..1.0, seed in any::<u64>()) {
        let indices: Vec<usize> = (0..200).step_by(2).collect();
        let sub = split::subsample(&indices, frac, seed).unwrap();
        prop_assert!(sub.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(sub.iter().all(|i| indices.contains(i)));
        let expected = ((indices.len() as f32 * frac).round() as usize).clamp(1, indices.len());
        prop_assert_eq!(sub.len(), expected);
    }

    #[test]
    fn segmentation_windows_match_source(
        len in 20usize..200,
        wl in 4usize..20,
        ov in 0.0f32..0.9,
    ) {
        prop_assume!(len >= wl);
        let rec = Matrix::from_fn(len, 2, |t, c| (t * 2 + c) as f32);
        let ws = window::segment(&rec, wl, ov).unwrap();
        prop_assert_eq!(ws.len(), window::count(len, wl, ov).unwrap());
        let stride = ((wl as f32 * (1.0 - ov)).round() as usize).max(1);
        for (k, w) in ws.iter().enumerate() {
            prop_assert_eq!(w.shape(), (wl, 2));
            // Window k starts at stride*k and copies rows verbatim.
            prop_assert_eq!(w.row(0), rec.row(k * stride));
        }
    }
}
