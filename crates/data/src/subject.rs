//! Persistent subject effects — the source of distribution shift.
//!
//! A human activity recognition model fails across age groups and
//! demographics (paper Fig. 1a) because each person executes the same
//! activity with a different tempo, intensity, posture and sensor fit.
//! [`SubjectEffect`] models exactly that: a persistent, seeded
//! transformation applied to every window a subject produces. Domains are
//! groups of subjects, so the joint distribution genuinely differs across
//! domains — `P_S(I, Y) ≠ P_T(I, Y)` in the paper's notation.

use rand::Rng;
use smore_tensor::init;

use crate::{DataError, Result};

/// Persistent per-subject transformation parameters.
///
/// # Example
///
/// ```
/// use smore_data::subject::SubjectEffect;
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// // Subject 3 belongs to domain (group) 1 of a 6-channel, 12-class task.
/// let s = SubjectEffect::procedural(3, 1, 6, 12, 1.0, 99)?;
/// assert_eq!(s.channel_gain().len(), 6);
/// assert!(s.freq_scale() > 0.5 && s.freq_scale() < 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SubjectEffect {
    subject_id: usize,
    /// Multiplicative gain per channel (sensor fit, body composition).
    channel_gain: Vec<f32>,
    /// Additive bias per channel (mounting orientation).
    channel_bias: Vec<f32>,
    /// Global tempo scale (age, fitness): multiplies activity frequency.
    freq_scale: f32,
    /// Per-class style factor: how intensely this subject performs class c.
    class_style: Vec<f32>,
    /// Noise multiplier (skin contact, motion artefacts).
    noise_scale: f32,
}

impl SubjectEffect {
    /// Draws a subject's persistent effect deterministically from
    /// `(dataset seed, subject_id, group)`.
    ///
    /// `group` is the subject's *domain index*: most of each parameter's
    /// deviation (85%) is shared by the whole group, so domains are
    /// internally coherent yet systematically different from each other —
    /// the property similarity-weighted adaptation exploits (a held-out
    /// domain resembles *some* source domains more than others).
    ///
    /// `severity` scales how far subjects deviate from the canonical
    /// archetypes: `0.0` produces identical subjects (no distribution
    /// shift); `1.0` is the default calibration where leave-one-domain-out
    /// evaluation is materially harder than shuffled k-fold. The dominant
    /// mechanism is the tempo scale: at severity 1.0 its spread (±15%) is
    /// comparable to the tempo gap between adjacent activity classes, so a
    /// model pooled over all domains suffers cross-class collisions that
    /// domain-specific models do not.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] when `channels` or
    /// `num_classes` is zero, or `severity` is negative/non-finite.
    pub fn procedural(
        subject_id: usize,
        group: usize,
        channels: usize,
        num_classes: usize,
        severity: f32,
        seed: u64,
    ) -> Result<Self> {
        if channels == 0 {
            return Err(DataError::InvalidConfig { what: "channels must be positive".into() });
        }
        if num_classes == 0 {
            return Err(DataError::InvalidConfig { what: "num_classes must be positive".into() });
        }
        if !(severity >= 0.0 && severity.is_finite()) {
            return Err(DataError::InvalidConfig {
                what: format!("severity must be finite and non-negative, got {severity}"),
            });
        }
        let mut rng = init::rng(seed ^ (0x5EED_0000 + subject_id as u64).wrapping_mul(0x9E37_79B9));
        let mut group_rng =
            init::rng(seed ^ (0x6E0F_0000 + group as u64).wrapping_mul(0x85EB_CA6B));
        // 85% of each deviation is the group's; 15% is individual.
        let mixed = |g: &mut rand::rngs::StdRng, r: &mut rand::rngs::StdRng| {
            0.85 * init::standard_normal(g) + 0.15 * init::standard_normal(r)
        };

        let tempo_dev = mixed(&mut group_rng, &mut rng);
        let freq_scale = (1.0 + severity * 0.15 * tempo_dev).clamp(0.5, 2.0);

        let intensity_dev = mixed(&mut group_rng, &mut rng);
        let base_gain = (1.0 + severity * 0.3 * intensity_dev).clamp(0.2, 3.0);

        let channel_gain = (0..channels)
            .map(|_| {
                (base_gain * (1.0 + severity * 0.15 * mixed(&mut group_rng, &mut rng)))
                    .clamp(0.1, 4.0)
            })
            .collect();
        let channel_bias =
            (0..channels).map(|_| severity * 0.4 * mixed(&mut group_rng, &mut rng)).collect();
        let class_style = (0..num_classes)
            .map(|_| (1.0 + severity * 0.25 * mixed(&mut group_rng, &mut rng)).clamp(0.2, 3.0))
            .collect();
        let noise_scale = (1.0 + severity * 0.4 * rng.gen_range(0.0..1.0)).clamp(0.5, 4.0);

        Ok(Self { subject_id, channel_gain, channel_bias, freq_scale, class_style, noise_scale })
    }

    /// The subject's global identifier.
    pub fn subject_id(&self) -> usize {
        self.subject_id
    }

    /// Multiplicative gain per channel.
    pub fn channel_gain(&self) -> &[f32] {
        &self.channel_gain
    }

    /// Additive bias per channel.
    pub fn channel_bias(&self) -> &[f32] {
        &self.channel_bias
    }

    /// Global tempo (frequency) scale.
    pub fn freq_scale(&self) -> f32 {
        self.freq_scale
    }

    /// Per-class intensity style factor.
    ///
    /// # Panics
    ///
    /// Panics if `class` is out of range.
    pub fn class_style(&self, class: usize) -> f32 {
        self.class_style[class]
    }

    /// Noise multiplier.
    pub fn noise_scale(&self) -> f32 {
        self.noise_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedural_is_deterministic() {
        let a = SubjectEffect::procedural(5, 2, 4, 3, 1.0, 1).unwrap();
        let b = SubjectEffect::procedural(5, 2, 4, 3, 1.0, 1).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_subjects_differ() {
        let a = SubjectEffect::procedural(0, 0, 4, 3, 1.0, 1).unwrap();
        let b = SubjectEffect::procedural(1, 0, 4, 3, 1.0, 1).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_severity_means_no_shift() {
        let a = SubjectEffect::procedural(0, 0, 4, 3, 0.0, 1).unwrap();
        let b = SubjectEffect::procedural(7, 3, 4, 3, 0.0, 1).unwrap();
        assert_eq!(a.freq_scale(), 1.0);
        assert_eq!(b.freq_scale(), 1.0);
        assert!(a.channel_gain().iter().all(|&g| (g - 1.0).abs() < 1e-6));
        assert!(a.channel_bias().iter().all(|&b| b.abs() < 1e-6));
        assert!((a.class_style(0) - 1.0).abs() < 1e-6);
        // Noise scale still 1.0 at zero severity.
        assert_eq!(a.noise_scale(), b.noise_scale());
    }

    #[test]
    fn same_group_subjects_share_drift() {
        // Two subjects of the same group share 85% of each deviation; a
        // subject from another group should (typically) be farther away.
        let mut same = 0usize;
        let mut cross = 0usize;
        for trial in 0..20u64 {
            let a = SubjectEffect::procedural(0, 0, 2, 2, 1.0, trial).unwrap();
            let b = SubjectEffect::procedural(1, 0, 2, 2, 1.0, trial).unwrap();
            let c = SubjectEffect::procedural(2, 1, 2, 2, 1.0, trial).unwrap();
            let within = (a.freq_scale() - b.freq_scale()).abs();
            let between = (a.freq_scale() - c.freq_scale()).abs();
            if within < between {
                same += 1;
            } else {
                cross += 1;
            }
        }
        assert!(same > cross, "group members should usually be closer ({same} vs {cross})");
        // Individuals within a group still differ.
        let s0 = SubjectEffect::procedural(0, 0, 2, 2, 1.0, 11).unwrap();
        let s1 = SubjectEffect::procedural(1, 0, 2, 2, 1.0, 11).unwrap();
        assert_ne!(s0, s1);
    }

    #[test]
    fn parameters_respect_bounds() {
        for id in 0..30 {
            let s = SubjectEffect::procedural(id, id / 2, 8, 5, 2.0, 3).unwrap();
            assert!((0.5..=2.0).contains(&s.freq_scale()));
            assert!(s.channel_gain().iter().all(|&g| (0.1..=4.0).contains(&g)));
            assert!((0.5..=4.0).contains(&s.noise_scale()));
            for c in 0..5 {
                assert!((0.2..=3.0).contains(&s.class_style(c)));
            }
        }
    }

    #[test]
    fn validates_config() {
        assert!(SubjectEffect::procedural(0, 0, 0, 3, 1.0, 1).is_err());
        assert!(SubjectEffect::procedural(0, 0, 3, 0, 1.0, 1).is_err());
        assert!(SubjectEffect::procedural(0, 0, 3, 3, -1.0, 1).is_err());
        assert!(SubjectEffect::procedural(0, 0, 3, 3, f32::NAN, 1).is_err());
    }
}
