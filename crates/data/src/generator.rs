//! The dataset generator: activity archetypes × subject effects → windows.

use rand::Rng;
use smore_tensor::{init, Matrix};

use crate::activity::ActivityModel;
use crate::subject::SubjectEffect;
use crate::{DataError, Dataset, DatasetMeta, Result};

/// One domain: a group of subjects and a window budget (paper Table 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSpec {
    /// Global subject IDs belonging to this domain.
    pub subjects: Vec<usize>,
    /// Number of windows to generate for this domain.
    pub windows: usize,
}

/// Full configuration for [`generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Dataset name recorded in the metadata.
    pub name: String,
    /// Number of activity classes.
    pub num_classes: usize,
    /// Number of sensor channels.
    pub channels: usize,
    /// Time steps per window.
    pub window_len: usize,
    /// Simulated sampling rate in Hz.
    pub sample_rate_hz: f32,
    /// Domain specifications (subject groups + window budgets).
    pub domains: Vec<DomainSpec>,
    /// Distribution-shift severity (see [`SubjectEffect::procedural`]).
    pub shift_severity: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    /// A small two-domain, four-class, three-channel configuration suitable
    /// for unit tests and doc examples.
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            num_classes: 4,
            channels: 3,
            window_len: 32,
            sample_rate_hz: 25.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 80 },
                DomainSpec { subjects: vec![2, 3], windows: 80 },
            ],
            shift_severity: 1.0,
            seed: 0xDA7A,
        }
    }
}

/// Generates a [`Dataset`] from a configuration.
///
/// Windows are distributed uniformly over classes within each domain and
/// round-robin over the domain's subjects, so every (class, subject) cell is
/// populated. Everything is deterministic in `config.seed`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] when the configuration is
/// structurally invalid (no domains, empty subject lists, zero classes or
/// channels, a window shorter than 4 steps, or a non-positive sampling
/// rate).
///
/// # Example
///
/// ```
/// use smore_data::generator::{generate, GeneratorConfig};
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let ds = generate(&GeneratorConfig::default())?;
/// assert_eq!(ds.len(), 160);
/// assert_eq!(ds.meta().num_domains, 2);
/// # Ok(())
/// # }
/// ```
pub fn generate(config: &GeneratorConfig) -> Result<Dataset> {
    if config.domains.is_empty() {
        return Err(DataError::InvalidConfig { what: "at least one domain is required".into() });
    }
    if config.domains.iter().any(|d| d.subjects.is_empty()) {
        return Err(DataError::InvalidConfig {
            what: "every domain needs at least one subject".into(),
        });
    }
    if config.window_len < 4 {
        return Err(DataError::InvalidConfig {
            what: format!("window_len must be at least 4, got {}", config.window_len),
        });
    }
    if !matches!(config.sample_rate_hz.partial_cmp(&0.0), Some(std::cmp::Ordering::Greater)) {
        return Err(DataError::InvalidConfig {
            what: format!("sample_rate_hz must be positive, got {}", config.sample_rate_hz),
        });
    }

    let activity = ActivityModel::procedural(config.num_classes, config.channels, config.seed)?;

    // Materialise each distinct subject's persistent effect once. A
    // subject's coherence group is the domain it belongs to (first listing
    // wins if a subject is listed in several domains).
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for (domain_idx, spec) in config.domains.iter().enumerate() {
        for &id in &spec.subjects {
            if !pairs.iter().any(|&(s, _)| s == id) {
                pairs.push((id, domain_idx));
            }
        }
    }
    pairs.sort_unstable_by_key(|&(id, _)| id);
    let subject_ids: Vec<usize> = pairs.iter().map(|&(id, _)| id).collect();
    let effects: Vec<SubjectEffect> = pairs
        .iter()
        .map(|&(id, group)| {
            SubjectEffect::procedural(
                id,
                group,
                config.channels,
                config.num_classes,
                config.shift_severity,
                config.seed,
            )
        })
        .collect::<Result<Vec<_>>>()?;
    let effect_of = |id: usize| -> &SubjectEffect {
        &effects[subject_ids.binary_search(&id).expect("subject id registered above")]
    };

    let total: usize = config.domains.iter().map(|d| d.windows).sum();
    let mut windows = Vec::with_capacity(total);
    let mut labels = Vec::with_capacity(total);
    let mut domains = Vec::with_capacity(total);
    let mut subjects = Vec::with_capacity(total);

    let mut channel_buf = vec![0.0f32; config.window_len];
    for (domain_idx, spec) in config.domains.iter().enumerate() {
        let mut rng = init::rng(
            config.seed ^ (0xD0AA_11AA + domain_idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        );
        for i in 0..spec.windows {
            let class = i % config.num_classes;
            let subject_id = spec.subjects[(i / config.num_classes) % spec.subjects.len()];
            let effect = effect_of(subject_id);
            let phase0 = rng.gen_range(0.0..std::f32::consts::TAU);
            let mut window = Matrix::zeros(config.window_len, config.channels);
            for ch in 0..config.channels {
                let pattern = activity.pattern(class, ch);
                pattern.sample_into(
                    &mut channel_buf,
                    config.window_len,
                    config.sample_rate_hz,
                    effect.freq_scale(),
                    effect.channel_gain()[ch] * effect.class_style(class),
                    phase0,
                    effect.noise_scale(),
                    &mut rng,
                );
                let bias = effect.channel_bias()[ch];
                for (t, &v) in channel_buf.iter().enumerate().take(config.window_len) {
                    window.set(t, ch, v + bias);
                }
            }
            windows.push(window);
            labels.push(class);
            domains.push(domain_idx);
            subjects.push(subject_id);
        }
    }

    let meta = DatasetMeta {
        name: config.name.clone(),
        num_classes: config.num_classes,
        num_domains: config.domains.len(),
        channels: config.channels,
        window_len: config.window_len,
        sample_rate_hz: config.sample_rate_hz,
    };
    Dataset::new(meta, windows, labels, domains, subjects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_is_deterministic() {
        let cfg = GeneratorConfig::default();
        let a = generate(&cfg).unwrap();
        let b = generate(&cfg).unwrap();
        assert_eq!(a, b);
        let mut cfg2 = cfg;
        cfg2.seed += 1;
        let c = generate(&cfg2).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn respects_domain_budgets_and_balance() {
        let ds = generate(&GeneratorConfig::default()).unwrap();
        assert_eq!(ds.domain_sizes(), vec![80, 80]);
        // Classes are uniformly distributed (80 windows / 4 classes = 20 per
        // class per domain).
        assert_eq!(ds.class_sizes(), vec![40, 40, 40, 40]);
    }

    #[test]
    fn subjects_stay_inside_their_domain() {
        let ds = generate(&GeneratorConfig::default()).unwrap();
        for i in 0..ds.len() {
            let subject = ds.subjects()[i];
            match ds.domain(i) {
                0 => assert!(subject == 0 || subject == 1),
                1 => assert!(subject == 2 || subject == 3),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn windows_are_finite_and_nontrivial() {
        let ds = generate(&GeneratorConfig::default()).unwrap();
        for w in ds.windows() {
            assert!(w.is_finite());
        }
        // Different classes should produce visibly different energy levels
        // at least somewhere.
        let w0 = ds.window(0);
        let w1 = ds.window(1);
        assert_ne!(w0, w1);
    }

    #[test]
    fn validates_config() {
        let mut cfg = GeneratorConfig::default();
        cfg.domains.clear();
        assert!(generate(&cfg).is_err());

        let mut cfg = GeneratorConfig::default();
        cfg.domains[0].subjects.clear();
        assert!(generate(&cfg).is_err());

        let cfg = GeneratorConfig { window_len: 2, ..GeneratorConfig::default() };
        assert!(generate(&cfg).is_err());

        let cfg = GeneratorConfig { sample_rate_hz: 0.0, ..GeneratorConfig::default() };
        assert!(generate(&cfg).is_err());

        let cfg = GeneratorConfig { num_classes: 0, ..GeneratorConfig::default() };
        assert!(generate(&cfg).is_err());
    }

    #[test]
    fn severity_zero_removes_intersubject_variation() {
        let cfg = GeneratorConfig { shift_severity: 0.0, ..GeneratorConfig::default() };
        // With severity 0 and the *same* class, two subjects differ only by
        // window phase and noise draws — their windows share the harmonic
        // structure. We check the per-domain mean energy is close.
        let ds = generate(&cfg).unwrap();
        let energy = |idx: &[usize]| -> f32 {
            let mut acc = 0.0f32;
            for &i in idx {
                acc += ds.window(i).frobenius_norm();
            }
            acc / idx.len() as f32
        };
        let e0 = energy(&ds.domain_indices(0).unwrap());
        let e1 = energy(&ds.domain_indices(1).unwrap());
        assert!(
            (e0 - e1).abs() / e0.max(e1) < 0.1,
            "domains should match at severity 0: {e0} vs {e1}"
        );
    }

    #[test]
    fn severity_creates_domain_differences() {
        let cfg =
            GeneratorConfig { shift_severity: 2.0, seed: 0xBEEF, ..GeneratorConfig::default() };
        let ds = generate(&cfg).unwrap();
        let energy = |idx: &[usize]| -> f32 {
            let mut acc = 0.0f32;
            for &i in idx {
                acc += ds.window(i).frobenius_norm();
            }
            acc / idx.len() as f32
        };
        let e0 = energy(&ds.domain_indices(0).unwrap());
        let e1 = energy(&ds.domain_indices(1).unwrap());
        assert!(
            (e0 - e1).abs() / e0.max(e1) > 0.02,
            "domains too similar at severity 2: {e0} vs {e1}"
        );
    }
}
