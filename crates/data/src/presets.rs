//! DSADS / USC-HAD / PAMAP2-like dataset presets (paper §4.1.2, Table 1).
//!
//! Each preset mirrors the published structure of its namesake:
//!
//! | Preset | Classes | Subjects → Domains | Channels | Window | Rate |
//! |---|---|---|---|---|---|
//! | DSADS   | 19 | 8 → 4 × 2 | 45 | 125 (5 s)    | 25 Hz  |
//! | USC-HAD | 12 | 14 → 5    | 6  | 126 (1.26 s) | 100 Hz |
//! | PAMAP2  | 18 | 8 → 4 × 2 | 27 | 127 (1.27 s) | 100 Hz |
//!
//! Window budgets per domain follow Table 1 exactly at `scale = 1.0`
//! (e.g. USC-HAD: 8 945 / 8 754 / 8 534 / 8 867 / 8 274). A
//! [`PresetProfile`] shrinks the budgets and the time axis for fast CI and
//! benchmark runs without changing the structure.

use crate::generator::{generate, DomainSpec, GeneratorConfig};
use crate::{DataError, Dataset, Result};

/// Scaling profile applied to a preset.
#[derive(Debug, Clone, PartialEq)]
pub struct PresetProfile {
    /// Fraction of the Table 1 window budget to generate (`0 < scale ≤ 1`).
    pub scale: f32,
    /// Keep every `time_downsample`-th time step (`≥ 1`).
    pub time_downsample: usize,
    /// Distribution-shift severity (1.0 = calibrated default).
    pub shift_severity: f32,
    /// Master seed.
    pub seed: u64,
}

impl Default for PresetProfile {
    /// Full fidelity: Table 1 budgets, native window lengths.
    fn default() -> Self {
        Self { scale: 1.0, time_downsample: 1, shift_severity: 1.0, seed: 0x0DAC_2024 }
    }
}

impl PresetProfile {
    /// Full-fidelity profile (Table 1 budgets, native windows).
    pub fn full() -> Self {
        Self::default()
    }

    /// Benchmark profile: 10% of the window budget, 4× time downsampling.
    ///
    /// Keeps all domains, classes and channels, so every experiment retains
    /// its structure at ~2.5% of the compute.
    pub fn fast() -> Self {
        Self { scale: 0.1, time_downsample: 4, ..Self::default() }
    }

    /// Tiny profile for unit tests and doc examples (≈1% budget, 8× time
    /// downsampling).
    pub fn tiny() -> Self {
        Self { scale: 0.012, time_downsample: 8, ..Self::default() }
    }

    fn validate(&self) -> Result<()> {
        if !(self.scale > 0.0 && self.scale <= 1.0) {
            return Err(DataError::InvalidConfig {
                what: format!("scale must be in (0, 1], got {}", self.scale),
            });
        }
        if self.time_downsample == 0 {
            return Err(DataError::InvalidConfig { what: "time_downsample must be ≥ 1".into() });
        }
        Ok(())
    }

    fn budget(&self, full: usize) -> usize {
        ((full as f32 * self.scale).round() as usize).max(1)
    }

    fn window_len(&self, full: usize) -> usize {
        (full / self.time_downsample).max(4)
    }

    fn rate(&self, full: f32) -> f32 {
        full / self.time_downsample as f32
    }
}

/// The paper's Table 1 window counts per domain.
pub mod table1 {
    /// DSADS: 4 domains × 2 280 windows.
    pub const DSADS: [usize; 4] = [2_280, 2_280, 2_280, 2_280];
    /// USC-HAD: 5 domains.
    pub const USC_HAD: [usize; 5] = [8_945, 8_754, 8_534, 8_867, 8_274];
    /// PAMAP2: 4 domains.
    pub const PAMAP2: [usize; 4] = [5_636, 5_591, 5_806, 5_660];
}

/// DSADS-like: 19 daily/sports activities, 8 subjects in 4 domains of two,
/// 45 channels (5 body-worn units × 9 sensor axes), 5 s windows at 25 Hz.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for an invalid profile.
pub fn dsads(profile: &PresetProfile) -> Result<Dataset> {
    profile.validate()?;
    let domains = (0..4)
        .map(|d| DomainSpec {
            subjects: vec![2 * d, 2 * d + 1],
            windows: profile.budget(table1::DSADS[d]),
        })
        .collect();
    generate(&GeneratorConfig {
        name: "dsads-like".into(),
        num_classes: 19,
        channels: 45,
        window_len: profile.window_len(125),
        sample_rate_hz: profile.rate(25.0),
        domains,
        shift_severity: profile.shift_severity,
        seed: profile.seed ^ 0xD5AD_5000,
    })
}

/// USC-HAD-like: 12 activities, 14 subjects in 5 domains (3/3/3/3/2),
/// 6 channels (3-axis accelerometer + 3-axis gyroscope), 1.26 s windows at
/// 100 Hz with 50% overlap in the original segmentation.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for an invalid profile.
pub fn usc_had(profile: &PresetProfile) -> Result<Dataset> {
    profile.validate()?;
    let groups: [&[usize]; 5] = [&[0, 1, 2], &[3, 4, 5], &[6, 7, 8], &[9, 10, 11], &[12, 13]];
    let domains = (0..5)
        .map(|d| DomainSpec {
            subjects: groups[d].to_vec(),
            windows: profile.budget(table1::USC_HAD[d]),
        })
        .collect();
    generate(&GeneratorConfig {
        name: "usc-had-like".into(),
        num_classes: 12,
        channels: 6,
        window_len: profile.window_len(126),
        sample_rate_hz: profile.rate(100.0),
        domains,
        shift_severity: profile.shift_severity,
        seed: profile.seed ^ 0x05CA_AD00,
    })
}

/// PAMAP2-like: 18 activities, 8 subjects (subject nine excluded, as in the
/// paper) in 4 domains of two, 27 channels (3 IMUs × 9 axes), 1.27 s windows
/// at 100 Hz with 50% overlap in the original segmentation.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] for an invalid profile.
pub fn pamap2(profile: &PresetProfile) -> Result<Dataset> {
    profile.validate()?;
    let domains = (0..4)
        .map(|d| DomainSpec {
            subjects: vec![2 * d, 2 * d + 1],
            windows: profile.budget(table1::PAMAP2[d]),
        })
        .collect();
    generate(&GeneratorConfig {
        name: "pamap2-like".into(),
        num_classes: 18,
        channels: 27,
        window_len: profile.window_len(127),
        sample_rate_hz: profile.rate(100.0),
        domains,
        shift_severity: profile.shift_severity,
        seed: profile.seed ^ 0x9A3A_9200,
    })
}

/// A preset constructor: builds a [`Dataset`] from a [`PresetProfile`].
pub type PresetFn = fn(&PresetProfile) -> Result<Dataset>;

/// All three presets as `(name, constructor)` pairs — convenient for
/// iterating experiments over every dataset.
pub fn all() -> [(&'static str, PresetFn); 3] {
    [("DSADS", dsads), ("USC-HAD", usc_had), ("PAMAP2", pamap2)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_profiles_have_right_structure() {
        let d = dsads(&PresetProfile::tiny()).unwrap();
        assert_eq!(d.meta().num_classes, 19);
        assert_eq!(d.meta().num_domains, 4);
        assert_eq!(d.meta().channels, 45);
        let u = usc_had(&PresetProfile::tiny()).unwrap();
        assert_eq!(u.meta().num_classes, 12);
        assert_eq!(u.meta().num_domains, 5);
        assert_eq!(u.meta().channels, 6);
        let p = pamap2(&PresetProfile::tiny()).unwrap();
        assert_eq!(p.meta().num_classes, 18);
        assert_eq!(p.meta().num_domains, 4);
        assert_eq!(p.meta().channels, 27);
    }

    #[test]
    fn full_budgets_match_table1() {
        // Validate budget arithmetic without generating the full data.
        let profile = PresetProfile::full();
        assert_eq!(profile.budget(2280), 2280);
        let total_usc: usize = table1::USC_HAD.iter().map(|&n| profile.budget(n)).sum();
        assert_eq!(total_usc, 43_374);
        let total_pamap: usize = table1::PAMAP2.iter().map(|&n| profile.budget(n)).sum();
        assert_eq!(total_pamap, 22_693);
        let total_dsads: usize = table1::DSADS.iter().map(|&n| profile.budget(n)).sum();
        assert_eq!(total_dsads, 9_120);
    }

    #[test]
    fn scaled_budgets_shrink_proportionally() {
        let fast = PresetProfile::fast();
        let d = usc_had(&fast).unwrap();
        let sizes = d.domain_sizes();
        for (i, &full) in table1::USC_HAD.iter().enumerate() {
            let expected = (full as f32 * 0.1).round() as usize;
            assert_eq!(sizes[i], expected, "domain {i}");
        }
    }

    #[test]
    fn downsampling_shortens_windows() {
        let tiny = PresetProfile::tiny();
        let u = usc_had(&tiny).unwrap();
        assert_eq!(u.meta().window_len, 126 / 8);
        assert!((u.meta().sample_rate_hz - 100.0 / 8.0).abs() < 1e-5);
    }

    #[test]
    fn profile_validation() {
        let mut p = PresetProfile::tiny();
        p.scale = 0.0;
        assert!(usc_had(&p).is_err());
        let mut p = PresetProfile::tiny();
        p.scale = 1.5;
        assert!(dsads(&p).is_err());
        let mut p = PresetProfile::tiny();
        p.time_downsample = 0;
        assert!(pamap2(&p).is_err());
    }

    #[test]
    fn all_lists_three_presets() {
        let presets = all();
        assert_eq!(presets.len(), 3);
        for (name, f) in presets {
            let ds = f(&PresetProfile::tiny()).unwrap();
            assert!(!ds.is_empty(), "{name} generated an empty dataset");
        }
    }

    #[test]
    fn usc_had_has_five_domains_with_two_subject_tail() {
        let u = usc_had(&PresetProfile::tiny()).unwrap();
        // Domain 4 only has subjects 12 and 13.
        let idx = u.domain_indices(4).unwrap();
        let mut subs: Vec<usize> = idx.iter().map(|&i| u.subjects()[i]).collect();
        subs.sort_unstable();
        subs.dedup();
        assert_eq!(subs, vec![12, 13]);
    }
}
