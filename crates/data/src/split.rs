//! Cross-validation splits: leave-one-domain-out and standard k-fold.
//!
//! The paper's central methodological point (Fig. 1b) is that *standard
//! k-fold CV does not reflect real-world distribution shift*: random
//! sampling leaks every domain into the training set and inflates accuracy.
//! [`lodo`] implements the honest protocol — train on all domains except
//! one, evaluate on the held-out domain — while [`kfold`] deliberately
//! reproduces the leaky shuffled protocol for the Fig. 1b comparison.

use rand::seq::SliceRandom;
use smore_tensor::init;

use crate::{DataError, Dataset, Result};

/// Leave-one-domain-out split: `(train indices, test indices)` where the
/// test set is exactly the windows of `held_out` and the training set is
/// everything else.
///
/// # Errors
///
/// - [`DataError::DomainOutOfRange`] for an unknown domain.
/// - [`DataError::InvalidSplit`] when either side would be empty.
///
/// # Example
///
/// ```
/// use smore_data::{presets::{self, PresetProfile}, split};
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let ds = presets::usc_had(&PresetProfile::tiny())?;
/// let (train, test) = split::lodo(&ds, 2)?;
/// assert!(test.iter().all(|&i| ds.domain(i) == 2));
/// assert!(train.iter().all(|&i| ds.domain(i) != 2));
/// # Ok(())
/// # }
/// ```
pub fn lodo(dataset: &Dataset, held_out: usize) -> Result<(Vec<usize>, Vec<usize>)> {
    if held_out >= dataset.meta().num_domains {
        return Err(DataError::DomainOutOfRange {
            domain: held_out,
            num_domains: dataset.meta().num_domains,
        });
    }
    let mut train = Vec::new();
    let mut test = Vec::new();
    for i in 0..dataset.len() {
        if dataset.domain(i) == held_out {
            test.push(i);
        } else {
            train.push(i);
        }
    }
    if train.is_empty() || test.is_empty() {
        return Err(DataError::InvalidSplit {
            what: format!(
                "LODO on domain {held_out} produced {} train / {} test windows",
                train.len(),
                test.len()
            ),
        });
    }
    Ok((train, test))
}

/// Standard shuffled k-fold split: `(train indices, test indices)` for the
/// given `fold` of `k`.
///
/// Shuffling ignores domain boundaries, so every fold's training set
/// contains windows from all domains — the data-leakage semantics the
/// paper's Figure 1(b) uses as its inflated upper reference.
///
/// # Errors
///
/// Returns [`DataError::InvalidSplit`] when `k < 2`, `fold >= k`, or the
/// dataset has fewer than `k` windows.
pub fn kfold(
    dataset: &Dataset,
    k: usize,
    fold: usize,
    seed: u64,
) -> Result<(Vec<usize>, Vec<usize>)> {
    if k < 2 {
        return Err(DataError::InvalidSplit { what: format!("k must be ≥ 2, got {k}") });
    }
    if fold >= k {
        return Err(DataError::InvalidSplit {
            what: format!("fold {fold} out of range for k={k}"),
        });
    }
    if dataset.len() < k {
        return Err(DataError::InvalidSplit {
            what: format!("dataset of {} windows cannot be split into {k} folds", dataset.len()),
        });
    }
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    let mut rng = init::rng(seed);
    indices.shuffle(&mut rng);
    let fold_size = dataset.len() / k;
    let start = fold * fold_size;
    let end = if fold == k - 1 { dataset.len() } else { start + fold_size };
    let test: Vec<usize> = indices[start..end].to_vec();
    let train: Vec<usize> = indices[..start].iter().chain(&indices[end..]).copied().collect();
    Ok((train, test))
}

/// Deterministically subsamples `fraction` of the given indices (used by
/// the scalability experiment, Fig. 7). Keeps at least one index.
///
/// # Errors
///
/// Returns [`DataError::InvalidSplit`] when `fraction` is outside `(0, 1]`
/// or `indices` is empty.
pub fn subsample(indices: &[usize], fraction: f32, seed: u64) -> Result<Vec<usize>> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(DataError::InvalidSplit {
            what: format!("fraction must be in (0, 1], got {fraction}"),
        });
    }
    if indices.is_empty() {
        return Err(DataError::InvalidSplit { what: "cannot subsample an empty index set".into() });
    }
    let mut shuffled = indices.to_vec();
    let mut rng = init::rng(seed);
    shuffled.shuffle(&mut rng);
    let keep = ((indices.len() as f32 * fraction).round() as usize).clamp(1, indices.len());
    shuffled.truncate(keep);
    shuffled.sort_unstable();
    Ok(shuffled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};

    fn dataset() -> Dataset {
        generate(&GeneratorConfig::default()).unwrap()
    }

    #[test]
    fn lodo_partitions_exactly() {
        let ds = dataset();
        let (train, test) = lodo(&ds, 1).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        assert!(test.iter().all(|&i| ds.domain(i) == 1));
        assert!(train.iter().all(|&i| ds.domain(i) == 0));
        // Disjoint.
        let mut all: Vec<usize> = train.iter().chain(&test).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), ds.len());
    }

    #[test]
    fn lodo_rejects_unknown_domain() {
        let ds = dataset();
        assert!(matches!(lodo(&ds, 5), Err(DataError::DomainOutOfRange { .. })));
    }

    #[test]
    fn kfold_partitions_and_leaks_domains() {
        let ds = dataset();
        let (train, test) = kfold(&ds, 5, 0, 42).unwrap();
        assert_eq!(train.len() + test.len(), ds.len());
        // The leak: the training set contains windows from both domains.
        let domains: std::collections::HashSet<usize> =
            train.iter().map(|&i| ds.domain(i)).collect();
        assert_eq!(domains.len(), ds.meta().num_domains, "k-fold must mix all domains");
    }

    #[test]
    fn kfold_folds_cover_everything_once() {
        let ds = dataset();
        let mut seen = vec![0usize; ds.len()];
        for fold in 0..4 {
            let (_, test) = kfold(&ds, 4, fold, 7).unwrap();
            for i in test {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "each window in exactly one test fold");
    }

    #[test]
    fn kfold_is_deterministic_in_seed() {
        let ds = dataset();
        let a = kfold(&ds, 3, 1, 9).unwrap();
        let b = kfold(&ds, 3, 1, 9).unwrap();
        assert_eq!(a, b);
        let c = kfold(&ds, 3, 1, 10).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn kfold_validates() {
        let ds = dataset();
        assert!(kfold(&ds, 1, 0, 0).is_err());
        assert!(kfold(&ds, 3, 3, 0).is_err());
        assert!(kfold(&ds, ds.len() + 1, 0, 0).is_err());
    }

    #[test]
    fn subsample_respects_fraction() {
        let indices: Vec<usize> = (0..100).collect();
        let half = subsample(&indices, 0.5, 1).unwrap();
        assert_eq!(half.len(), 50);
        assert!(half.windows(2).all(|w| w[0] < w[1]), "sorted output");
        let all = subsample(&indices, 1.0, 1).unwrap();
        assert_eq!(all.len(), 100);
        let one = subsample(&indices, 0.001, 1).unwrap();
        assert_eq!(one.len(), 1);
    }

    #[test]
    fn subsample_validates() {
        let indices: Vec<usize> = (0..10).collect();
        assert!(subsample(&indices, 0.0, 0).is_err());
        assert!(subsample(&indices, 1.1, 0).is_err());
        assert!(subsample(&[], 0.5, 0).is_err());
    }
}
