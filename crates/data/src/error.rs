use std::error::Error;
use std::fmt;

/// Error type for dataset generation and splitting.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DataError {
    /// A generator or preset configuration is invalid.
    InvalidConfig {
        /// Human-readable description of the invalid configuration.
        what: String,
    },
    /// A requested domain does not exist in the dataset.
    DomainOutOfRange {
        /// The requested domain index.
        domain: usize,
        /// Number of domains in the dataset.
        num_domains: usize,
    },
    /// A split request was inconsistent (e.g. more folds than samples).
    InvalidSplit {
        /// Human-readable description of the inconsistency.
        what: String,
    },
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::InvalidConfig { what } => write!(f, "invalid dataset configuration: {what}"),
            DataError::DomainOutOfRange { domain, num_domains } => {
                write!(f, "domain {domain} out of range for {num_domains} domains")
            }
            DataError::InvalidSplit { what } => write!(f, "invalid split: {what}"),
        }
    }
}

impl Error for DataError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(DataError::InvalidConfig { what: "zero classes".into() }
            .to_string()
            .contains("zero classes"));
        assert!(DataError::DomainOutOfRange { domain: 7, num_domains: 4 }
            .to_string()
            .contains("domain 7"));
        assert!(DataError::InvalidSplit { what: "k too large".into() }
            .to_string()
            .contains("k too large"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DataError>();
    }
}
