//! Concept-drift streams: windows arriving one at a time, with the data
//! distribution changing underneath the model.
//!
//! A streaming deployment of SMORE never sees a clean train/test split —
//! it sees a *sequence* of windows whose generating distribution drifts:
//! a new user starts wearing the device (domain switch), a sensor's gain
//! slowly decays (gradual drift), a channel goes dead (dropout). This
//! module turns a labelled [`Dataset`] into such a sequence, so the online
//! enrolment and drift-detection machinery (`smore_stream`) can be
//! exercised and benchmarked deterministically.
//!
//! The three scenario ingredients compose per segment:
//!
//! - **Domain switches** — each [`DriftSegment`] draws from one domain of
//!   the base dataset; consecutive segments with different domains model
//!   an unseen user arriving mid-stream.
//! - **Gradual sensor-gain drift** — a linear gain ramp across the
//!   segment, applied to every channel (calibration loss over time).
//! - **Channel dropout** — one channel forced to zero for the whole
//!   segment (a dead sensor).

use rand::Rng;
use smore_tensor::{init, Matrix};

use crate::{DataError, Dataset, Result};

/// One contiguous stretch of the stream, drawn from a single domain of the
/// base dataset with an optional drift transform.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftSegment {
    /// Domain of the base dataset this segment samples from.
    pub domain: usize,
    /// Number of windows in the segment.
    pub windows: usize,
    /// Linear per-window gain ramp `from → to` multiplied into every
    /// channel across the segment (`None` = unit gain). `(1.0, 0.6)`
    /// models a sensor slowly losing 40% of its gain.
    pub gain_ramp: Option<(f32, f32)>,
    /// Channel index forced to zero for the whole segment (`None` = all
    /// channels live).
    pub dropout_channel: Option<usize>,
}

impl DriftSegment {
    /// A plain segment: `windows` draws from `domain`, no drift transform.
    pub fn plain(domain: usize, windows: usize) -> Self {
        Self { domain, windows, gain_ramp: None, dropout_channel: None }
    }
}

/// Configuration for [`concept_drift_stream`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// The segments, in arrival order.
    pub segments: Vec<DriftSegment>,
    /// Seed for the (deterministic) window draws.
    pub seed: u64,
}

/// One window of the stream, tagged with its provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamItem {
    /// The (possibly drift-transformed) sensor window.
    pub window: Matrix,
    /// Ground-truth class label (available to the *evaluator*; a streaming
    /// model must not train on it unless the scenario grants labels).
    pub label: usize,
    /// Domain of the base dataset the window was drawn from.
    pub domain: usize,
    /// Index of the segment that produced the window.
    pub segment: usize,
    /// Position in the stream (0-based arrival order).
    pub step: usize,
}

/// Materialises a concept-drift stream from a base dataset.
///
/// Windows are drawn uniformly at random (seeded) from the segment's
/// domain, then transformed by the segment's gain ramp and channel
/// dropout. The output is deterministic in `config.seed`.
///
/// # Errors
///
/// Returns [`DataError::InvalidConfig`] when there are no segments, a
/// segment is empty, a domain is out of range (or has no windows in the
/// base dataset), or a dropout channel is out of range.
///
/// # Example
///
/// ```
/// use smore_data::generator::{generate, GeneratorConfig};
/// use smore_data::stream::{concept_drift_stream, DriftSegment, StreamConfig};
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let ds = generate(&GeneratorConfig::default())?;
/// let stream = concept_drift_stream(
///     &ds,
///     &StreamConfig {
///         segments: vec![DriftSegment::plain(0, 20), DriftSegment::plain(1, 20)],
///         seed: 7,
///     },
/// )?;
/// assert_eq!(stream.len(), 40);
/// assert_eq!(stream[0].domain, 0);
/// assert_eq!(stream[39].domain, 1);
/// # Ok(())
/// # }
/// ```
pub fn concept_drift_stream(dataset: &Dataset, config: &StreamConfig) -> Result<Vec<StreamItem>> {
    if config.segments.is_empty() {
        return Err(DataError::InvalidConfig { what: "stream needs at least one segment".into() });
    }
    let channels = dataset.meta().channels;
    let mut rng = init::rng(config.seed ^ 0x57_2E_A3);
    let mut items = Vec::with_capacity(config.segments.iter().map(|s| s.windows).sum());
    let mut step = 0usize;
    for (seg_idx, seg) in config.segments.iter().enumerate() {
        if seg.windows == 0 {
            return Err(DataError::InvalidConfig {
                what: format!("segment {seg_idx} has zero windows"),
            });
        }
        if let Some(ch) = seg.dropout_channel {
            if ch >= channels {
                return Err(DataError::InvalidConfig {
                    what: format!("segment {seg_idx} drops channel {ch} of {channels}"),
                });
            }
        }
        let pool = dataset.domain_indices(seg.domain)?;
        if pool.is_empty() {
            return Err(DataError::InvalidConfig {
                what: format!("segment {seg_idx}: domain {} has no windows", seg.domain),
            });
        }
        for i in 0..seg.windows {
            let src = pool[rng.gen_range(0..pool.len())];
            let mut window = dataset.window(src).clone();
            if let Some((from, to)) = seg.gain_ramp {
                let t = if seg.windows > 1 { i as f32 / (seg.windows - 1) as f32 } else { 0.0 };
                let gain = from + (to - from) * t;
                window.scale_inplace(gain);
            }
            if let Some(ch) = seg.dropout_channel {
                for t in 0..window.rows() {
                    window.set(t, ch, 0.0);
                }
            }
            items.push(StreamItem {
                window,
                label: dataset.label(src),
                domain: seg.domain,
                segment: seg_idx,
                step,
            });
            step += 1;
        }
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, DomainSpec, GeneratorConfig};

    fn base() -> Dataset {
        generate(&GeneratorConfig {
            name: "stream-test".into(),
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 40 },
                DomainSpec { subjects: vec![2, 3], windows: 40 },
                DomainSpec { subjects: vec![4, 5], windows: 40 },
            ],
            ..GeneratorConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn stream_is_deterministic_and_ordered() {
        let ds = base();
        let cfg = StreamConfig {
            segments: vec![DriftSegment::plain(0, 15), DriftSegment::plain(2, 10)],
            seed: 3,
        };
        let a = concept_drift_stream(&ds, &cfg).unwrap();
        let b = concept_drift_stream(&ds, &cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 25);
        for (i, item) in a.iter().enumerate() {
            assert_eq!(item.step, i);
            assert_eq!(item.segment, usize::from(i >= 15));
            assert_eq!(item.domain, if i < 15 { 0 } else { 2 });
            assert!(item.label < ds.meta().num_classes);
        }
        let mut cfg2 = cfg;
        cfg2.seed = 4;
        assert_ne!(a, concept_drift_stream(&ds, &cfg2).unwrap());
    }

    #[test]
    fn gain_ramp_scales_windows_linearly() {
        let ds = base();
        let cfg = StreamConfig {
            segments: vec![DriftSegment {
                domain: 1,
                windows: 11,
                gain_ramp: Some((1.0, 0.5)),
                dropout_channel: None,
            }],
            seed: 5,
        };
        let items = concept_drift_stream(&ds, &cfg).unwrap();
        // First window has unit gain: it equals some base window verbatim.
        let first = &items[0].window;
        assert!(ds.windows().iter().any(|w| w == first), "gain 1.0 leaves the window untouched");
        // Energy shrinks along the ramp relative to the drawn base windows;
        // spot-check that the last window's norm is about half of an
        // untransformed draw would allow (it is 0.5 × some base window).
        let last_norm = items[10].window.frobenius_norm();
        assert!(
            ds.windows().iter().any(|w| (w.frobenius_norm() * 0.5 - last_norm).abs() < 1e-3),
            "gain 0.5 halves the window norm"
        );
    }

    #[test]
    fn dropout_zeroes_exactly_one_channel() {
        let ds = base();
        let cfg = StreamConfig {
            segments: vec![DriftSegment {
                domain: 0,
                windows: 8,
                gain_ramp: None,
                dropout_channel: Some(1),
            }],
            seed: 6,
        };
        for item in concept_drift_stream(&ds, &cfg).unwrap() {
            for t in 0..item.window.rows() {
                assert_eq!(item.window.get(t, 1), 0.0);
            }
            // Other channels keep signal.
            assert!(item.window.frobenius_norm() > 0.0);
        }
    }

    #[test]
    fn validates_config() {
        let ds = base();
        let empty = StreamConfig { segments: vec![], seed: 0 };
        assert!(concept_drift_stream(&ds, &empty).is_err());
        let zero = StreamConfig { segments: vec![DriftSegment::plain(0, 0)], seed: 0 };
        assert!(concept_drift_stream(&ds, &zero).is_err());
        let bad_domain = StreamConfig { segments: vec![DriftSegment::plain(9, 4)], seed: 0 };
        assert!(concept_drift_stream(&ds, &bad_domain).is_err());
        let bad_channel = StreamConfig {
            segments: vec![DriftSegment {
                domain: 0,
                windows: 4,
                gain_ramp: None,
                dropout_channel: Some(99),
            }],
            seed: 0,
        };
        assert!(concept_drift_stream(&ds, &bad_channel).is_err());
    }
}
