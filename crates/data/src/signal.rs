//! Signal primitives: harmonic stacks, transient bursts and noise.
//!
//! A single wearable-sensor channel during a periodic activity (walking,
//! running, rowing, …) is well approximated by a small harmonic stack on a
//! baseline offset, punctuated by transient bursts (heel strikes, impacts)
//! and sensor noise. These primitives are deliberately simple — the domain
//! structure of the data comes from the *subject effects* layered on top
//! ([`crate::subject`]), not from signal complexity.

use rand::Rng;
use smore_tensor::init;

/// One harmonic component: `amplitude * sin(2π * freq_mult * f0 * t + phase)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Harmonic {
    /// Multiplier applied to the pattern's base frequency.
    pub freq_mult: f32,
    /// Peak amplitude of the component.
    pub amplitude: f32,
    /// Phase offset in radians.
    pub phase: f32,
}

/// The generative pattern for one (activity class, sensor channel) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelPattern {
    /// Base frequency of the activity on this channel, in Hz.
    pub base_freq_hz: f32,
    /// Harmonic stack on top of the base frequency.
    pub harmonics: Vec<Harmonic>,
    /// Constant baseline offset (gravity component, sensor mounting).
    pub offset: f32,
    /// Expected number of transient bursts per second.
    pub burst_rate_hz: f32,
    /// Peak amplitude of transient bursts.
    pub burst_amplitude: f32,
    /// Standard deviation of the additive Gaussian sensor noise.
    pub noise_std: f32,
}

impl ChannelPattern {
    /// Samples one window of `len` steps at `sample_rate_hz` into `out`.
    ///
    /// `freq_scale` stretches time (subject tempo), `amp_scale` scales the
    /// oscillatory part (subject style/gain), `phase0` rotates the whole
    /// window (random window start), `noise_scale` multiplies the noise
    /// floor. The caller's `rng` drives bursts and noise.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < len` — callers always pass exact buffers.
    #[allow(clippy::too_many_arguments)]
    pub fn sample_into(
        &self,
        out: &mut [f32],
        len: usize,
        sample_rate_hz: f32,
        freq_scale: f32,
        amp_scale: f32,
        phase0: f32,
        noise_scale: f32,
        rng: &mut impl Rng,
    ) {
        assert!(out.len() >= len, "sample_into: buffer too small");
        let dt = 1.0 / sample_rate_hz.max(1e-6);
        let w0 = 2.0 * std::f32::consts::PI * self.base_freq_hz * freq_scale;
        for (t, o) in out.iter_mut().enumerate().take(len) {
            let time = t as f32 * dt;
            let mut x = 0.0f32;
            for h in &self.harmonics {
                x += h.amplitude * (w0 * h.freq_mult * time + h.phase + phase0).sin();
            }
            *o = self.offset + amp_scale * x;
        }
        // Transient bursts: Gaussian bumps at random positions.
        let window_seconds = len as f32 * dt;
        let expected = self.burst_rate_hz * window_seconds;
        let n_bursts = poisson_like(expected, rng);
        for _ in 0..n_bursts {
            let center = rng.gen_range(0.0..len as f32);
            let width = (sample_rate_hz * 0.02).max(1.0); // ~20 ms
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            let amp = sign * self.burst_amplitude * amp_scale * rng.gen_range(0.5..1.0);
            for (t, o) in out.iter_mut().enumerate().take(len) {
                let d = (t as f32 - center) / width;
                *o += amp * (-0.5 * d * d).exp();
            }
        }
        // Sensor noise.
        if self.noise_std > 0.0 && noise_scale > 0.0 {
            for o in out.iter_mut().take(len) {
                *o += self.noise_std * noise_scale * init::standard_normal(rng);
            }
        }
    }
}

/// Draws a small Poisson-like count with the given mean using inversion on
/// a capped support — adequate for burst counts (mean well below 10).
fn poisson_like(mean: f32, rng: &mut impl Rng) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let mean = mean.min(8.0);
    let l = (-mean).exp();
    let mut k = 0usize;
    let mut p = 1.0f32;
    loop {
        p *= rng.gen::<f32>();
        if p <= l || k >= 16 {
            return k;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_tensor::vecops;

    fn test_pattern() -> ChannelPattern {
        ChannelPattern {
            base_freq_hz: 2.0,
            harmonics: vec![
                Harmonic { freq_mult: 1.0, amplitude: 1.0, phase: 0.0 },
                Harmonic { freq_mult: 2.0, amplitude: 0.4, phase: 0.7 },
            ],
            offset: 0.5,
            burst_rate_hz: 0.0,
            burst_amplitude: 0.0,
            noise_std: 0.0,
        }
    }

    #[test]
    fn noiseless_signal_is_deterministic_and_offset_centred() {
        let p = test_pattern();
        let mut a = vec![0.0f32; 200];
        let mut b = vec![0.0f32; 200];
        let mut rng = smore_tensor::init::rng(1);
        p.sample_into(&mut a, 200, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        p.sample_into(&mut b, 200, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        assert_eq!(a, b, "no noise, no bursts => deterministic");
        // Mean over whole periods approaches the offset.
        assert!((vecops::mean(&a) - 0.5).abs() < 0.05);
    }

    #[test]
    fn amplitude_scale_scales_oscillation() {
        let p = test_pattern();
        let mut small = vec![0.0f32; 100];
        let mut large = vec![0.0f32; 100];
        let mut rng = smore_tensor::init::rng(2);
        p.sample_into(&mut small, 100, 100.0, 1.0, 0.5, 0.0, 1.0, &mut rng);
        p.sample_into(&mut large, 100, 100.0, 1.0, 2.0, 0.0, 1.0, &mut rng);
        let small_span =
            vecops::max(&small).unwrap() - small.iter().cloned().fold(f32::INFINITY, f32::min);
        let large_span =
            vecops::max(&large).unwrap() - large.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(large_span > 3.0 * small_span, "amp scale 4x should widen span ~4x");
    }

    #[test]
    fn freq_scale_changes_zero_crossing_count() {
        let mut p = test_pattern();
        p.offset = 0.0;
        p.harmonics.truncate(1);
        let crossings = |v: &[f32]| v.windows(2).filter(|w| w[0].signum() != w[1].signum()).count();
        let mut slow = vec![0.0f32; 400];
        let mut fast = vec![0.0f32; 400];
        let mut rng = smore_tensor::init::rng(3);
        p.sample_into(&mut slow, 400, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        p.sample_into(&mut fast, 400, 100.0, 2.0, 1.0, 0.0, 1.0, &mut rng);
        assert!(crossings(&fast) > crossings(&slow) + 4);
    }

    #[test]
    fn noise_perturbs_signal() {
        let mut p = test_pattern();
        p.noise_std = 0.3;
        let mut a = vec![0.0f32; 100];
        let mut b = vec![0.0f32; 100];
        let mut rng = smore_tensor::init::rng(4);
        p.sample_into(&mut a, 100, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        p.sample_into(&mut b, 100, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        assert_ne!(a, b, "noise should differ across draws");
        let diff: Vec<f32> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        let spread = vecops::variance(&diff).sqrt();
        assert!(spread > 0.1 && spread < 1.5, "noise spread {spread} out of expectation");
    }

    #[test]
    fn bursts_add_energy() {
        let mut p = test_pattern();
        p.burst_rate_hz = 4.0;
        p.burst_amplitude = 5.0;
        let mut with = vec![0.0f32; 200];
        let mut without = vec![0.0f32; 200];
        let mut rng = smore_tensor::init::rng(5);
        p.sample_into(&mut with, 200, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        let p0 = ChannelPattern { burst_rate_hz: 0.0, ..p };
        p0.sample_into(&mut without, 200, 100.0, 1.0, 1.0, 0.0, 1.0, &mut rng);
        let peak_with = with.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        let peak_without = without.iter().fold(0.0f32, |m, &x| m.max(x.abs()));
        assert!(peak_with > peak_without, "bursts should raise the peak");
    }

    #[test]
    fn poisson_like_mean_roughly_correct() {
        let mut rng = smore_tensor::init::rng(6);
        let n = 4000;
        let total: usize = (0..n).map(|_| poisson_like(2.0, &mut rng)).sum();
        let mean = total as f32 / n as f32;
        assert!((mean - 2.0).abs() < 0.2, "poisson-like mean {mean} too far from 2.0");
        assert_eq!(poisson_like(0.0, &mut rng), 0);
        assert_eq!(poisson_like(-1.0, &mut rng), 0);
    }
}
