//! Procedural activity archetypes.
//!
//! Real HAR datasets have hand-labelled activities (walking, sitting,
//! rowing, …). We generate an *archetype* for every (class, channel) pair
//! from the dataset seed: a base frequency drawn from a class-specific
//! tempo, a small harmonic stack, channel-specific offsets and burst
//! behaviour. Archetypes are fixed per dataset, so every subject performs
//! the *same* activities — only the subject effects differ across domains.

use rand::Rng;
use smore_tensor::init;

use crate::signal::{ChannelPattern, Harmonic};
use crate::{DataError, Result};

/// The full generative model for a dataset's activity classes.
///
/// # Example
///
/// ```
/// use smore_data::activity::ActivityModel;
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let model = ActivityModel::procedural(5, 3, 42)?;
/// assert_eq!(model.num_classes(), 5);
/// assert_eq!(model.channels(), 3);
/// let p = model.pattern(2, 1);
/// assert!(p.base_freq_hz > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityModel {
    num_classes: usize,
    channels: usize,
    /// `patterns[class * channels + channel]`
    patterns: Vec<ChannelPattern>,
}

impl ActivityModel {
    /// Generates archetypes for `num_classes` activities on `channels`
    /// sensor channels, deterministically from `seed`.
    ///
    /// Classes are spread over a tempo range (0.4–3.4 Hz, covering postures
    /// through running) with class-dependent amplitude and burstiness, so
    /// some class pairs are close (hard) and others far (easy) — mirroring
    /// the confusion structure of real HAR data.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] when `num_classes` or `channels`
    /// is zero.
    pub fn procedural(num_classes: usize, channels: usize, seed: u64) -> Result<Self> {
        if num_classes == 0 {
            return Err(DataError::InvalidConfig { what: "num_classes must be positive".into() });
        }
        if channels == 0 {
            return Err(DataError::InvalidConfig { what: "channels must be positive".into() });
        }
        let mut rng = init::rng(seed ^ 0xAC71_71E5);
        let mut patterns = Vec::with_capacity(num_classes * channels);
        for class in 0..num_classes {
            // Class tempo: deterministic spread plus jitter. Low-tempo
            // classes model postures (tiny amplitude), high-tempo classes
            // model locomotion (large amplitude, bursts).
            let spread = class as f32 / num_classes.max(1) as f32;
            let tempo = 0.4 + 3.0 * spread + rng.gen_range(-0.08..0.08);
            let intensity = 0.15 + 1.1 * spread;
            for _channel in 0..channels {
                // Each channel observes the activity through its own gain,
                // harmonic emphasis and mounting offset.
                let n_harmonics = rng.gen_range(2..=4usize);
                let mut harmonics = Vec::with_capacity(n_harmonics);
                for k in 0..n_harmonics {
                    harmonics.push(Harmonic {
                        freq_mult: (k + 1) as f32 * rng.gen_range(0.98..1.02),
                        amplitude: intensity * rng.gen_range(0.3..1.0) / (k + 1) as f32,
                        phase: rng.gen_range(0.0..std::f32::consts::TAU),
                    });
                }
                patterns.push(ChannelPattern {
                    base_freq_hz: tempo * rng.gen_range(0.9..1.1),
                    harmonics,
                    offset: rng.gen_range(-1.0..1.0),
                    burst_rate_hz: if spread > 0.5 { rng.gen_range(0.0..1.5) } else { 0.0 },
                    burst_amplitude: intensity * rng.gen_range(0.5..1.5),
                    noise_std: rng.gen_range(0.05..0.15),
                });
            }
        }
        Ok(Self { num_classes, channels, patterns })
    }

    /// Number of activity classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of sensor channels.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// The generative pattern for `(class, channel)`.
    ///
    /// # Panics
    ///
    /// Panics if `class` or `channel` is out of range.
    pub fn pattern(&self, class: usize, channel: usize) -> &ChannelPattern {
        assert!(class < self.num_classes, "class {class} out of range");
        assert!(channel < self.channels, "channel {channel} out of range");
        &self.patterns[class * self.channels + channel]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procedural_is_deterministic() {
        let a = ActivityModel::procedural(4, 3, 7).unwrap();
        let b = ActivityModel::procedural(4, 3, 7).unwrap();
        assert_eq!(a, b);
        let c = ActivityModel::procedural(4, 3, 8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn validates_config() {
        assert!(ActivityModel::procedural(0, 3, 1).is_err());
        assert!(ActivityModel::procedural(3, 0, 1).is_err());
    }

    #[test]
    fn classes_have_distinct_tempos() {
        let m = ActivityModel::procedural(10, 1, 3).unwrap();
        let f0 = m.pattern(0, 0).base_freq_hz;
        let f9 = m.pattern(9, 0).base_freq_hz;
        assert!(f9 > f0 + 1.0, "tempo should grow with class index: {f0} vs {f9}");
    }

    #[test]
    fn high_tempo_classes_are_bursty() {
        let m = ActivityModel::procedural(10, 2, 4).unwrap();
        let low: f32 = (0..2).map(|ch| m.pattern(0, ch).burst_rate_hz).sum();
        assert_eq!(low, 0.0, "posture classes should not burst");
    }

    #[test]
    fn patterns_differ_across_channels_and_classes() {
        let m = ActivityModel::procedural(3, 3, 5).unwrap();
        assert_ne!(m.pattern(0, 0), m.pattern(0, 1));
        assert_ne!(m.pattern(0, 0), m.pattern(1, 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pattern_bounds_checked() {
        let m = ActivityModel::procedural(2, 2, 6).unwrap();
        let _ = m.pattern(2, 0);
    }
}
