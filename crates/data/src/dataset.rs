use smore_tensor::Matrix;

use crate::{DataError, Result};

/// Static description of a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetMeta {
    /// Human-readable dataset name (e.g. `"usc-had-like"`).
    pub name: String,
    /// Number of activity classes.
    pub num_classes: usize,
    /// Number of domains (subject groups).
    pub num_domains: usize,
    /// Number of sensor channels per window.
    pub channels: usize,
    /// Time steps per window.
    pub window_len: usize,
    /// Sampling rate of the simulated sensors, in Hz.
    pub sample_rate_hz: f32,
}

/// A labelled, domain-tagged collection of multi-sensor windows.
///
/// Each window is a `(window_len, channels)` matrix — rows are time steps,
/// columns are sensors — matching the layout expected by
/// `smore_hdc::encoder::MultiSensorEncoder`.
///
/// # Example
///
/// ```
/// use smore_data::presets::{self, PresetProfile};
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let ds = presets::dsads(&PresetProfile::tiny())?;
/// let idx = ds.domain_indices(0)?;
/// assert!(idx.iter().all(|&i| ds.domain(i) == 0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    meta: DatasetMeta,
    windows: Vec<Matrix>,
    labels: Vec<usize>,
    domains: Vec<usize>,
    subjects: Vec<usize>,
}

impl Dataset {
    /// Assembles a dataset from parallel arrays.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::InvalidConfig`] when the arrays disagree in
    /// length, a window has the wrong shape, or a label/domain exceeds the
    /// metadata ranges.
    pub fn new(
        meta: DatasetMeta,
        windows: Vec<Matrix>,
        labels: Vec<usize>,
        domains: Vec<usize>,
        subjects: Vec<usize>,
    ) -> Result<Self> {
        let n = windows.len();
        if labels.len() != n || domains.len() != n || subjects.len() != n {
            return Err(DataError::InvalidConfig {
                what: format!(
                    "parallel arrays disagree: {} windows, {} labels, {} domains, {} subjects",
                    n,
                    labels.len(),
                    domains.len(),
                    subjects.len()
                ),
            });
        }
        for (i, w) in windows.iter().enumerate() {
            if w.shape() != (meta.window_len, meta.channels) {
                return Err(DataError::InvalidConfig {
                    what: format!(
                        "window {i} has shape {:?}, expected ({}, {})",
                        w.shape(),
                        meta.window_len,
                        meta.channels
                    ),
                });
            }
        }
        if let Some(&l) = labels.iter().find(|&&l| l >= meta.num_classes) {
            return Err(DataError::InvalidConfig {
                what: format!("label {l} exceeds num_classes {}", meta.num_classes),
            });
        }
        if let Some(&d) = domains.iter().find(|&&d| d >= meta.num_domains) {
            return Err(DataError::InvalidConfig {
                what: format!("domain {d} exceeds num_domains {}", meta.num_domains),
            });
        }
        Ok(Self { meta, windows, labels, domains, subjects })
    }

    /// Dataset metadata.
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    /// Number of windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the dataset holds no windows.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// All windows, in order.
    pub fn windows(&self) -> &[Matrix] {
        &self.windows
    }

    /// The window at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn window(&self, index: usize) -> &Matrix {
        &self.windows[index]
    }

    /// All class labels, parallel to [`windows`](Self::windows).
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// The class label of window `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn label(&self, index: usize) -> usize {
        self.labels[index]
    }

    /// All domain tags, parallel to [`windows`](Self::windows).
    pub fn domains(&self) -> &[usize] {
        &self.domains
    }

    /// The domain tag of window `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    pub fn domain(&self, index: usize) -> usize {
        self.domains[index]
    }

    /// All subject IDs, parallel to [`windows`](Self::windows).
    pub fn subjects(&self) -> &[usize] {
        &self.subjects
    }

    /// Indices of all windows belonging to `domain`, in order.
    ///
    /// # Errors
    ///
    /// Returns [`DataError::DomainOutOfRange`] for an unknown domain.
    pub fn domain_indices(&self, domain: usize) -> Result<Vec<usize>> {
        if domain >= self.meta.num_domains {
            return Err(DataError::DomainOutOfRange { domain, num_domains: self.meta.num_domains });
        }
        Ok((0..self.len()).filter(|&i| self.domains[i] == domain).collect())
    }

    /// Number of windows in each domain (length = `num_domains`).
    pub fn domain_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.meta.num_domains];
        for &d in &self.domains {
            sizes[d] += 1;
        }
        sizes
    }

    /// Number of windows in each class (length = `num_classes`).
    pub fn class_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.meta.num_classes];
        for &l in &self.labels {
            sizes[l] += 1;
        }
        sizes
    }

    /// Extracts the windows/labels/domains at `indices` as owned vectors —
    /// the common shape consumed by training pipelines.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather(&self, indices: &[usize]) -> (Vec<Matrix>, Vec<usize>, Vec<usize>) {
        let windows = indices.iter().map(|&i| self.windows[i].clone()).collect();
        let labels = indices.iter().map(|&i| self.labels[i]).collect();
        let domains = indices.iter().map(|&i| self.domains[i]).collect();
        (windows, labels, domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> DatasetMeta {
        DatasetMeta {
            name: "test".into(),
            num_classes: 2,
            num_domains: 2,
            channels: 1,
            window_len: 4,
            sample_rate_hz: 10.0,
        }
    }

    fn tiny() -> Dataset {
        let windows = (0..6).map(|i| Matrix::filled(4, 1, i as f32)).collect();
        Dataset::new(
            meta(),
            windows,
            vec![0, 1, 0, 1, 0, 1],
            vec![0, 0, 0, 1, 1, 1],
            vec![0, 0, 0, 1, 1, 1],
        )
        .unwrap()
    }

    #[test]
    fn accessors_consistent() {
        let d = tiny();
        assert_eq!(d.len(), 6);
        assert!(!d.is_empty());
        assert_eq!(d.label(3), 1);
        assert_eq!(d.domain(4), 1);
        assert_eq!(d.window(2).get(0, 0), 2.0);
        assert_eq!(d.domain_sizes(), vec![3, 3]);
        assert_eq!(d.class_sizes(), vec![3, 3]);
        assert_eq!(d.subjects().len(), 6);
    }

    #[test]
    fn domain_indices_filters() {
        let d = tiny();
        assert_eq!(d.domain_indices(1).unwrap(), vec![3, 4, 5]);
        assert!(matches!(d.domain_indices(2), Err(DataError::DomainOutOfRange { .. })));
    }

    #[test]
    fn gather_clones_selection() {
        let d = tiny();
        let (w, l, dm) = d.gather(&[5, 0]);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].get(0, 0), 5.0);
        assert_eq!(l, vec![1, 0]);
        assert_eq!(dm, vec![1, 0]);
    }

    #[test]
    fn new_validates_lengths_and_shapes() {
        let windows: Vec<Matrix> = (0..2).map(|_| Matrix::zeros(4, 1)).collect();
        assert!(Dataset::new(meta(), windows.clone(), vec![0], vec![0, 0], vec![0, 0]).is_err());
        let bad_shape = vec![Matrix::zeros(3, 1), Matrix::zeros(4, 1)];
        assert!(Dataset::new(meta(), bad_shape, vec![0, 0], vec![0, 0], vec![0, 0]).is_err());
        assert!(Dataset::new(meta(), windows.clone(), vec![0, 9], vec![0, 0], vec![0, 0]).is_err());
        assert!(Dataset::new(meta(), windows, vec![0, 0], vec![0, 9], vec![0, 0]).is_err());
    }

    #[test]
    fn empty_dataset_is_valid() {
        let d = Dataset::new(meta(), vec![], vec![], vec![], vec![]).unwrap();
        assert!(d.is_empty());
        assert_eq!(d.domain_sizes(), vec![0, 0]);
    }
}
