//! Segmentation of continuous recordings into (optionally overlapping)
//! windows — the preprocessing step the original datasets apply
//! (paper §4.1.2: DSADS uses non-overlapping 5 s windows; USC-HAD and
//! PAMAP2 use ~1.26 s windows with 50% overlap).

use smore_tensor::Matrix;

use crate::{DataError, Result};

/// Splits a continuous `(time, channels)` recording into fixed-length
/// windows with the given overlap fraction.
///
/// `overlap` is the fraction of each window shared with its successor
/// (`0.0` = non-overlapping, `0.5` = the USC-HAD/PAMAP2 convention).
/// Trailing samples that do not fill a whole window are dropped, as in the
/// original pipelines.
///
/// # Errors
///
/// Returns [`DataError::InvalidSplit`] when `window_len` is zero or longer
/// than the recording, or `overlap` is outside `[0, 1)`.
///
/// # Example
///
/// ```
/// use smore_data::window::segment;
/// use smore_tensor::Matrix;
///
/// # fn main() -> Result<(), smore_data::DataError> {
/// let recording = Matrix::from_fn(100, 2, |t, c| (t + c) as f32);
/// let windows = segment(&recording, 20, 0.5)?;
/// assert_eq!(windows.len(), 9); // stride 10: starts 0,10,...,80
/// assert_eq!(windows[0].shape(), (20, 2));
/// # Ok(())
/// # }
/// ```
pub fn segment(recording: &Matrix, window_len: usize, overlap: f32) -> Result<Vec<Matrix>> {
    if window_len == 0 {
        return Err(DataError::InvalidSplit { what: "window_len must be positive".into() });
    }
    if recording.rows() < window_len {
        return Err(DataError::InvalidSplit {
            what: format!(
                "recording of {} steps is shorter than the window length {window_len}",
                recording.rows()
            ),
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DataError::InvalidSplit {
            what: format!("overlap must be in [0, 1), got {overlap}"),
        });
    }
    let stride = ((window_len as f32 * (1.0 - overlap)).round() as usize).max(1);
    let mut windows = Vec::new();
    let mut start = 0usize;
    while start + window_len <= recording.rows() {
        let mut w = Matrix::zeros(window_len, recording.cols());
        for t in 0..window_len {
            w.row_mut(t).copy_from_slice(recording.row(start + t));
        }
        windows.push(w);
        start += stride;
    }
    Ok(windows)
}

/// Number of windows [`segment`] will produce for the given parameters,
/// without materialising them.
///
/// # Errors
///
/// Same conditions as [`segment`].
pub fn count(recording_len: usize, window_len: usize, overlap: f32) -> Result<usize> {
    if window_len == 0 {
        return Err(DataError::InvalidSplit { what: "window_len must be positive".into() });
    }
    if recording_len < window_len {
        return Err(DataError::InvalidSplit {
            what: format!("recording of {recording_len} steps is shorter than {window_len}"),
        });
    }
    if !(0.0..1.0).contains(&overlap) {
        return Err(DataError::InvalidSplit {
            what: format!("overlap must be in [0, 1), got {overlap}"),
        });
    }
    let stride = ((window_len as f32 * (1.0 - overlap)).round() as usize).max(1);
    Ok((recording_len - window_len) / stride + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording(len: usize) -> Matrix {
        Matrix::from_fn(len, 3, |t, c| (t * 10 + c) as f32)
    }

    #[test]
    fn non_overlapping_windows() {
        let r = recording(100);
        let ws = segment(&r, 25, 0.0).unwrap();
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[1].get(0, 0), 250.0, "second window starts at t=25");
    }

    #[test]
    fn fifty_percent_overlap() {
        let r = recording(100);
        let ws = segment(&r, 20, 0.5).unwrap();
        assert_eq!(ws.len(), 9);
        assert_eq!(ws[1].get(0, 0), 100.0, "stride 10");
        // Consecutive windows share half their content.
        assert_eq!(ws[0].row(10), ws[1].row(0));
    }

    #[test]
    fn trailing_remainder_dropped() {
        let r = recording(55);
        let ws = segment(&r, 25, 0.0).unwrap();
        assert_eq!(ws.len(), 2, "only two full windows fit in 55 steps");
    }

    #[test]
    fn count_matches_segment() {
        for (len, wl, ov) in [(100, 25, 0.0), (100, 20, 0.5), (55, 25, 0.0), (126, 126, 0.5)] {
            let ws = segment(&recording(len), wl, ov).unwrap();
            assert_eq!(ws.len(), count(len, wl, ov).unwrap(), "len={len} wl={wl} ov={ov}");
        }
    }

    #[test]
    fn validates_arguments() {
        let r = recording(50);
        assert!(segment(&r, 0, 0.0).is_err());
        assert!(segment(&r, 51, 0.0).is_err());
        assert!(segment(&r, 10, 1.0).is_err());
        assert!(segment(&r, 10, -0.1).is_err());
        assert!(count(50, 0, 0.0).is_err());
        assert!(count(10, 50, 0.0).is_err());
        assert!(count(50, 10, 1.5).is_err());
    }

    #[test]
    fn extreme_overlap_still_strides() {
        // overlap 0.99 on window 10 rounds the stride to 0 -> clamps to 1.
        let r = recording(20);
        let ws = segment(&r, 10, 0.99).unwrap();
        assert_eq!(ws.len(), 11);
    }
}
