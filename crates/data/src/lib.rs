//! Synthetic multi-sensor time series datasets with subject-level
//! distribution shift.
//!
//! The SMORE paper evaluates on three wearable-sensor human activity
//! recognition (HAR) datasets — DSADS, USC-HAD and PAMAP2 — none of which
//! can be redistributed here. This crate builds their closest synthetic
//! equivalents (see `DESIGN.md`, substitution #1):
//!
//! - [`activity`] — procedural *activity archetypes*: each (class, channel)
//!   pair gets a harmonic signature (base frequency, harmonic stack,
//!   transient bursts) so classes are separable but overlapping.
//! - [`subject`] — persistent *subject effects*: per-channel gain and bias,
//!   a global tempo (frequency) scale, per-class style factors and a noise
//!   scale. Subjects are grouped into domains exactly as the paper does
//!   (by subject ID, low to high), so leave-one-domain-out evaluation sees
//!   a structurally different data distribution.
//! - [`generator`] — drives the two models into a [`Dataset`] of labelled,
//!   domain-tagged windows.
//! - [`presets`] — DSADS/USC-HAD/PAMAP2-like configurations matching the
//!   paper's Table 1 domain sizes, window lengths and sampling rates.
//! - [`split`] — leave-one-domain-out (LODO) and standard k-fold
//!   cross-validation (the latter intentionally reproduces the data-leakage
//!   semantics the paper's Figure 1(b) criticises).
//! - [`stream`] — concept-drift streams for online/streaming evaluation:
//!   domain switches, gradual sensor-gain drift and channel dropout.
//! - [`window`] — overlapping segmentation of continuous recordings, for
//!   pipelines that mirror the original preprocessing.
//!
//! # Example
//!
//! ```
//! use smore_data::presets::{self, PresetProfile};
//! use smore_data::split;
//!
//! # fn main() -> Result<(), smore_data::DataError> {
//! let dataset = presets::usc_had(&PresetProfile::tiny())?;
//! assert_eq!(dataset.meta().num_domains, 5);
//! let (train, test) = split::lodo(&dataset, 0)?;
//! assert!(train.len() > 0 && test.len() > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activity;
mod dataset;
mod error;
pub mod generator;
pub mod presets;
pub mod signal;
pub mod split;
pub mod stream;
pub mod subject;
pub mod window;

pub use dataset::{Dataset, DatasetMeta};
pub use error::DataError;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, DataError>;
