//! BaselineHD — OnlineHD \[22\], the SOTA HDC classifier the paper uses as
//! its non-domain-aware reference.
//!
//! OnlineHD encodes a feature vector `x` with a nonlinear random
//! projection: `H_i = cos(⟨x, w_i⟩ + b_i) · sin(⟨x, w_i⟩)` with
//! `w_i ~ N(0, I)` and `b_i ~ U[0, 2π)`, then trains a single adaptive
//! classifier (the same Eq. 1–2 update rule SMORE uses per domain). It has
//! no notion of domains: all source data is pooled, which is precisely why
//! its leave-one-domain-out accuracy collapses in Figure 1(b).

use smore::pipeline::{BoxError, TaskMeta, WindowClassifier};
use smore_hdc::model::{HdcClassifier, HdcClassifierConfig};
use smore_hdc::HdcError;
use smore_tensor::{init, parallel, vecops, Matrix};

use crate::scaler::ChannelScaler;

/// Configuration for [`BaselineHd`].
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineHdConfig {
    /// Hypervector dimensionality (paper: 8k, matching SMORE).
    pub dim: usize,
    /// Learning rate of the adaptive update rule.
    pub learning_rate: f32,
    /// Maximum training epochs.
    pub epochs: usize,
    /// Worker threads for encoding/prediction.
    pub threads: usize,
    /// Seed for the projection matrix.
    pub seed: u64,
}

impl Default for BaselineHdConfig {
    /// `d = 8192`, `η = 0.05`, 20 epochs.
    fn default() -> Self {
        Self {
            dim: 8192,
            learning_rate: 0.05,
            epochs: 20,
            threads: smore_tensor::parallel::default_threads(),
            seed: 0x0811E,
        }
    }
}

/// The OnlineHD-style nonlinear random-projection encoder.
#[derive(Debug, Clone)]
pub struct ProjectionEncoder {
    /// `(features, dim)` Gaussian projection.
    projection: Matrix,
    /// Phase offsets, length `dim`.
    phases: Vec<f32>,
}

impl ProjectionEncoder {
    /// Creates an encoder for `features`-wide inputs into `dim` dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::InvalidConfig`] when either size is zero.
    pub fn new(features: usize, dim: usize, seed: u64) -> Result<Self, HdcError> {
        if features == 0 || dim == 0 {
            return Err(HdcError::InvalidConfig {
                what: format!("projection encoder needs non-zero sizes, got {features}x{dim}"),
            });
        }
        let mut rng = init::rng(seed);
        let projection = init::normal_matrix(&mut rng, features, dim);
        let phases = init::uniform_vec(&mut rng, dim, 0.0, std::f32::consts::TAU);
        Ok(Self { projection, phases })
    }

    /// Input feature width.
    pub fn features(&self) -> usize {
        self.projection.rows()
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.projection.cols()
    }

    /// Encodes a `(batch, features)` matrix into `(batch, dim)`
    /// hypervectors, in parallel.
    ///
    /// # Errors
    ///
    /// Returns [`HdcError::DimensionMismatch`] for a wrong input width.
    pub fn encode(&self, flat: &Matrix, threads: usize) -> Result<Matrix, HdcError> {
        if flat.cols() != self.features() {
            return Err(HdcError::DimensionMismatch {
                expected: self.features(),
                actual: flat.cols(),
            });
        }
        let mut out = Matrix::zeros(flat.rows(), self.dim());
        let rows: Vec<usize> = (0..flat.rows()).collect();
        let mut encoded: Vec<Vec<f32>> = vec![Vec::new(); flat.rows()];
        parallel::par_map_into(&rows, &mut encoded, threads, |&i| {
            // OnlineHD normalises the feature vector before projecting so
            // ⟨x, w_j⟩ ~ N(0, 1) stays in the useful range of cos/sin.
            let mut x = flat.row(i).to_vec();
            vecops::normalize(&mut x);
            let mut hv = vec![0.0f32; self.dim()];
            // ⟨x, w_j⟩ for all j: walk the projection row-major.
            for (k, &xv) in x.iter().enumerate() {
                if xv == 0.0 {
                    continue;
                }
                let w_row = self.projection.row(k);
                vecops::axpy(xv, w_row, &mut hv);
            }
            for (j, h) in hv.iter_mut().enumerate() {
                let dot = *h;
                *h = (dot + self.phases[j]).cos() * dot.sin();
            }
            vecops::normalize(&mut hv);
            hv
        });
        for (i, hv) in encoded.into_iter().enumerate() {
            out.row_mut(i).copy_from_slice(&hv);
        }
        Ok(out)
    }
}

/// BaselineHD: projection encoding + one pooled adaptive HDC classifier.
#[derive(Debug, Clone)]
pub struct BaselineHd {
    config: BaselineHdConfig,
    state: Option<Fitted>,
}

#[derive(Debug, Clone)]
struct Fitted {
    scaler: ChannelScaler,
    encoder: ProjectionEncoder,
    model: HdcClassifier,
}

impl BaselineHd {
    /// Creates an untrained BaselineHD.
    pub fn new(config: BaselineHdConfig) -> Self {
        Self { config, state: None }
    }

    /// The configuration.
    pub fn config(&self) -> &BaselineHdConfig {
        &self.config
    }

    /// Whether training completed.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }
}

impl WindowClassifier for BaselineHd {
    fn name(&self) -> &str {
        "BaselineHD"
    }

    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        _domains: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        let scaler = ChannelScaler::fit(windows);
        let flat = scaler.transform(windows);
        let encoder = ProjectionEncoder::new(flat.cols(), self.config.dim, self.config.seed)?;
        let encoded = encoder.encode(&flat, self.config.threads)?;
        let mut model = HdcClassifier::new(HdcClassifierConfig {
            dim: self.config.dim,
            num_classes: meta.num_classes,
            learning_rate: self.config.learning_rate,
            epochs: self.config.epochs,
        })?;
        model.fit(&encoded, labels)?;
        self.state = Some(Fitted { scaler, encoder, model });
        Ok(())
    }

    fn predict(&mut self, windows: &[Matrix]) -> Result<Vec<usize>, BoxError> {
        let state = self
            .state
            .as_ref()
            .ok_or_else(|| Box::new(HdcError::EmptyInput { what: "BaselineHD not fitted" }))?;
        let flat = state.scaler.transform(windows);
        let encoded = state.encoder.encode(&flat, self.config.threads)?;
        Ok(state.model.predict_batch(&encoded, self.config.threads)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn dataset() -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "bhd-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 20,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 45 },
                DomainSpec { subjects: vec![2, 3], windows: 45 },
                DomainSpec { subjects: vec![4, 5], windows: 45 },
            ],
            shift_severity: 1.0,
            seed: 5,
        })
        .unwrap()
    }

    fn small_config() -> BaselineHdConfig {
        BaselineHdConfig { dim: 1024, epochs: 10, threads: 2, ..BaselineHdConfig::default() }
    }

    #[test]
    fn projection_encoder_shapes_and_validation() {
        assert!(ProjectionEncoder::new(0, 8, 0).is_err());
        assert!(ProjectionEncoder::new(8, 0, 0).is_err());
        let enc = ProjectionEncoder::new(6, 128, 1).unwrap();
        assert_eq!(enc.features(), 6);
        assert_eq!(enc.dim(), 128);
        let x = init::normal_matrix(&mut init::rng(2), 4, 6);
        let h = enc.encode(&x, 2).unwrap();
        assert_eq!(h.shape(), (4, 128));
        assert!(enc.encode(&Matrix::zeros(1, 5), 1).is_err());
    }

    #[test]
    fn projection_encoding_is_deterministic_and_unit_norm() {
        let enc = ProjectionEncoder::new(4, 256, 7).unwrap();
        let x = init::normal_matrix(&mut init::rng(3), 3, 4);
        let a = enc.encode(&x, 1).unwrap();
        let b = enc.encode(&x, 4).unwrap();
        assert_eq!(a, b);
        for i in 0..3 {
            assert!((vecops::norm(a.row(i)) - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn nearby_inputs_encode_similarly() {
        let enc = ProjectionEncoder::new(8, 2048, 9).unwrap();
        let mut rng = init::rng(4);
        let x = init::normal_vec(&mut rng, 8);
        let mut x_close = x.clone();
        x_close[0] += 0.01;
        let x_far = init::normal_vec(&mut rng, 8);
        let batch = Matrix::from_rows(&[&x, &x_close, &x_far]).unwrap();
        let h = enc.encode(&batch, 1).unwrap();
        let close = vecops::cosine(h.row(0), h.row(1));
        let far = vecops::cosine(h.row(0), h.row(2));
        assert!(close > far + 0.2, "close {close} vs far {far}");
    }

    #[test]
    fn fit_predict_beats_chance_in_domain() {
        let ds = dataset();
        let (train, test) = split::kfold(&ds, 3, 0, 1).unwrap();
        let (trw, trl, trd) = ds.gather(&train);
        let (tew, tel, _) = ds.gather(&test);
        let meta = TaskMeta { num_classes: 3, num_domains: 3, channels: 2, window_len: 20 };
        let mut model = BaselineHd::new(small_config());
        assert!(!model.is_fitted());
        model.fit(&trw, &trl, &trd, &meta).unwrap();
        assert!(model.is_fitted());
        let preds = model.predict(&tew).unwrap();
        let acc = preds.iter().zip(&tel).filter(|(p, t)| p == t).count() as f32 / tel.len() as f32;
        assert!(acc > 1.0 / 3.0 + 0.15, "in-domain accuracy {acc} too low");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = BaselineHd::new(small_config());
        assert!(model.predict(&[Matrix::zeros(4, 2)]).is_err());
    }

    #[test]
    fn classifier_name() {
        assert_eq!(BaselineHd::new(small_config()).name(), "BaselineHD");
    }
}
