//! The 1-D CNN backbone shared by the DNN baselines (TENT, MDANs).
//!
//! Architecture: two convolution blocks (Conv1d → BatchNorm → ReLU)
//! followed by global average pooling over time and a dense head — a
//! standard compact HAR classifier sized for the paper's multi-sensor
//! windows.

use smore::pipeline::{BoxError, TaskMeta, WindowClassifier};
use smore_nn::layer::{BatchNorm1d, Conv1d, Dense, GlobalAvgPool1d, Relu};
use smore_nn::network::Sequential;
use smore_nn::optim::Optimizer;
use smore_nn::NnError;
use smore_tensor::Matrix;

use crate::scaler::ChannelScaler;

/// Configuration for the CNN backbone and its supervised training.
#[derive(Debug, Clone, PartialEq)]
pub struct CnnConfig {
    /// Channels of the first convolution block.
    pub conv1_channels: usize,
    /// Channels of the second convolution block.
    pub conv2_channels: usize,
    /// Kernel length of both convolutions.
    pub kernel: usize,
    /// Width of the hidden dense layer (the "feature" width for MDANs).
    pub feature_width: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for weight initialisation.
    pub seed: u64,
}

impl Default for CnnConfig {
    /// 16/32-channel blocks, kernel 5, 64-wide features, 15 epochs.
    fn default() -> Self {
        Self {
            conv1_channels: 16,
            conv2_channels: 32,
            kernel: 5,
            feature_width: 64,
            epochs: 15,
            batch_size: 32,
            learning_rate: 0.003,
            seed: 0xC44,
        }
    }
}

/// Builds the convolutional *feature extractor* (everything up to and
/// including the dense feature layer): input `(batch, time * channels)`,
/// output `(batch, feature_width)`.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] when the window is too short for the
/// two stacked kernels or any size is zero.
pub fn build_feature_extractor(
    time: usize,
    channels: usize,
    config: &CnnConfig,
) -> Result<Sequential, NnError> {
    let conv1 = Conv1d::new(time, channels, config.conv1_channels, config.kernel, config.seed)?;
    let t1 = conv1.out_time();
    let conv2 = Conv1d::new(
        t1,
        config.conv1_channels,
        config.conv2_channels,
        config.kernel,
        config.seed + 1,
    )?;
    let t2 = conv2.out_time();
    let mut net = Sequential::new();
    net.push(conv1);
    net.push(BatchNorm1d::new(config.conv1_channels)?);
    net.push(Relu::new());
    net.push(conv2);
    net.push(BatchNorm1d::new(config.conv2_channels)?);
    net.push(Relu::new());
    net.push(GlobalAvgPool1d::new(t2, config.conv2_channels)?);
    net.push(Dense::new(config.conv2_channels, config.feature_width, config.seed + 2)?);
    net.push(Relu::new());
    Ok(net)
}

/// Builds the classification head: `(batch, feature_width)` → logits.
///
/// # Errors
///
/// Returns [`NnError::InvalidConfig`] for zero widths.
pub fn build_classifier_head(
    feature_width: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Sequential, NnError> {
    let mut net = Sequential::new();
    net.push(Dense::new(feature_width, num_classes, seed)?);
    Ok(net)
}

/// A plain supervised CNN classifier (the source model TENT adapts, and a
/// no-adaptation DNN reference).
#[derive(Debug)]
pub struct CnnClassifier {
    config: CnnConfig,
    state: Option<CnnState>,
}

#[derive(Debug)]
pub(crate) struct CnnState {
    pub(crate) scaler: ChannelScaler,
    pub(crate) features: Sequential,
    pub(crate) head: Sequential,
}

impl CnnClassifier {
    /// Creates an untrained CNN classifier.
    pub fn new(config: CnnConfig) -> Self {
        Self { config, state: None }
    }

    /// The configuration.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }

    /// Whether training completed.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    pub(crate) fn state_mut(&mut self) -> Option<&mut CnnState> {
        self.state.as_mut()
    }

    pub(crate) fn train_supervised(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        let scaler = ChannelScaler::fit(windows);
        let x = scaler.transform(windows);
        let mut features = build_feature_extractor(meta.window_len, meta.channels, &self.config)?;
        let mut head = build_classifier_head(
            self.config.feature_width,
            meta.num_classes,
            self.config.seed + 3,
        )?;
        let opt = Optimizer::adam(self.config.learning_rate);
        for _ in 0..self.config.epochs {
            let mut start = 0usize;
            while start < x.rows() {
                let end = (start + self.config.batch_size).min(x.rows());
                let idx: Vec<usize> = (start..end).collect();
                let xb = x.select_rows(&idx);
                let yb = &labels[start..end];
                let feats = features.forward(&xb, true)?;
                let logits = head.forward(&feats, true)?;
                let (_, grad) = smore_nn::loss::softmax_cross_entropy(&logits, yb)?;
                features.zero_grad();
                head.zero_grad();
                let g_feats = head.backward(&grad)?;
                features.backward(&g_feats)?;
                features.update(&opt);
                head.update(&opt);
                start = end;
            }
        }
        self.state = Some(CnnState { scaler, features, head });
        Ok(())
    }

    pub(crate) fn logits(
        &mut self,
        windows: &[Matrix],
        training: bool,
    ) -> Result<Matrix, BoxError> {
        let state = self
            .state
            .as_mut()
            .ok_or_else(|| Box::new(NnError::InvalidConfig { what: "CNN not fitted".into() }))?;
        let x = state.scaler.transform(windows);
        let feats = state.features.forward(&x, training)?;
        Ok(state.head.forward(&feats, training)?)
    }
}

impl WindowClassifier for CnnClassifier {
    fn name(&self) -> &str {
        "CNN"
    }

    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        _domains: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        self.train_supervised(windows, labels, meta)
    }

    fn predict(&mut self, windows: &[Matrix]) -> Result<Vec<usize>, BoxError> {
        let logits = self.logits(windows, false)?;
        Ok((0..logits.rows())
            .map(|i| smore_tensor::vecops::argmax(logits.row(i)).unwrap_or(0))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};

    pub(crate) fn dataset() -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "cnn-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 20,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 45 },
                DomainSpec { subjects: vec![2, 3], windows: 45 },
            ],
            shift_severity: 0.5,
            seed: 21,
        })
        .unwrap()
    }

    fn small_config() -> CnnConfig {
        CnnConfig {
            conv1_channels: 8,
            conv2_channels: 8,
            kernel: 3,
            feature_width: 16,
            epochs: 20,
            batch_size: 16,
            ..CnnConfig::default()
        }
    }

    #[test]
    fn feature_extractor_shapes() {
        let cfg = small_config();
        let mut f = build_feature_extractor(20, 2, &cfg).unwrap();
        let x = Matrix::zeros(3, 40);
        let out = f.forward(&x, false).unwrap();
        assert_eq!(out.shape(), (3, 16));
        // Window too short for two kernels of 3 stacked: time 3 -> conv1 out 1 < kernel.
        assert!(build_feature_extractor(3, 2, &cfg).is_err());
    }

    #[test]
    fn cnn_learns_training_data() {
        let ds = dataset();
        let idx: Vec<usize> = (0..ds.len()).collect();
        let (w, l, d) = ds.gather(&idx);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 20 };
        let mut model = CnnClassifier::new(small_config());
        model.fit(&w, &l, &d, &meta).unwrap();
        let preds = model.predict(&w).unwrap();
        let acc = preds.iter().zip(&l).filter(|(p, t)| p == t).count() as f32 / l.len() as f32;
        assert!(acc > 0.6, "CNN training accuracy {acc} too low");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = CnnClassifier::new(small_config());
        assert!(!model.is_fitted());
        assert!(model.predict(&[Matrix::zeros(20, 2)]).is_err());
        assert_eq!(model.name(), "CNN");
    }
}
