//! Per-channel standardisation of flattened windows — the preprocessing
//! every DNN baseline (and BaselineHD's projection encoder) fits on the
//! training split only.

use smore_tensor::Matrix;

/// Flattens `(time, channels)` windows into `(batch, time * channels)`
/// rows, time-major (the layout `smore_nn` layers expect).
pub fn flatten_windows(windows: &[Matrix]) -> Matrix {
    if windows.is_empty() {
        return Matrix::zeros(0, 0);
    }
    let width = windows[0].len();
    let mut out = Matrix::zeros(windows.len(), width);
    for (i, w) in windows.iter().enumerate() {
        out.row_mut(i).copy_from_slice(w.as_slice());
    }
    out
}

/// Per-channel mean/std statistics fitted on training windows.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelScaler {
    mean: Vec<f32>,
    std: Vec<f32>,
}

impl ChannelScaler {
    /// Fits per-channel statistics across all windows and time steps.
    ///
    /// Returns an identity scaler for an empty training set.
    pub fn fit(windows: &[Matrix]) -> Self {
        let channels = windows.first().map(|w| w.cols()).unwrap_or(0);
        let mut mean = vec![0.0f64; channels];
        let mut count = 0usize;
        for w in windows {
            for t in 0..w.rows() {
                for (c, &v) in w.row(t).iter().enumerate() {
                    mean[c] += v as f64;
                }
                count += 1;
            }
        }
        let n = count.max(1) as f64;
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0f64; channels];
        for w in windows {
            for t in 0..w.rows() {
                for (c, &v) in w.row(t).iter().enumerate() {
                    let d = v as f64 - mean[c];
                    var[c] += d * d;
                }
            }
        }
        let std = var
            .iter()
            .map(|&v| {
                let s = (v / n).sqrt() as f32;
                if s > 1e-8 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Self { mean: mean.into_iter().map(|m| m as f32).collect(), std }
    }

    /// Number of channels the scaler was fitted on.
    pub fn channels(&self) -> usize {
        self.mean.len()
    }

    /// Standardises flattened `(batch, time * channels)` rows in place.
    ///
    /// # Panics
    ///
    /// Panics if the row width is not a multiple of the channel count.
    pub fn apply_flat(&self, flat: &mut Matrix) {
        let c = self.mean.len().max(1);
        assert_eq!(flat.cols() % c, 0, "row width must be a multiple of channels");
        for i in 0..flat.rows() {
            let row = flat.row_mut(i);
            for (j, v) in row.iter_mut().enumerate() {
                let ch = j % c;
                *v = (*v - self.mean[ch]) / self.std[ch];
            }
        }
    }

    /// Flattens and standardises a window batch in one step.
    pub fn transform(&self, windows: &[Matrix]) -> Matrix {
        let mut flat = flatten_windows(windows);
        if flat.cols() > 0 {
            self.apply_flat(&mut flat);
        }
        flat
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn windows() -> Vec<Matrix> {
        vec![
            Matrix::from_vec(2, 2, vec![0.0, 10.0, 2.0, 30.0]).unwrap(),
            Matrix::from_vec(2, 2, vec![4.0, 50.0, 6.0, 70.0]).unwrap(),
        ]
    }

    #[test]
    fn flatten_layout_is_time_major() {
        let flat = flatten_windows(&windows());
        assert_eq!(flat.shape(), (2, 4));
        assert_eq!(flat.row(0), &[0.0, 10.0, 2.0, 30.0]);
    }

    #[test]
    fn flatten_empty() {
        let flat = flatten_windows(&[]);
        assert!(flat.is_empty());
    }

    #[test]
    fn scaler_zero_mean_unit_std_per_channel() {
        let ws = windows();
        let scaler = ChannelScaler::fit(&ws);
        assert_eq!(scaler.channels(), 2);
        let z = scaler.transform(&ws);
        // Channel 0 values occupy even indices, channel 1 odd.
        let mut c0 = Vec::new();
        let mut c1 = Vec::new();
        for i in 0..z.rows() {
            for (j, &v) in z.row(i).iter().enumerate() {
                if j % 2 == 0 {
                    c0.push(v)
                } else {
                    c1.push(v)
                }
            }
        }
        assert!(smore_tensor::vecops::mean(&c0).abs() < 1e-5);
        assert!(smore_tensor::vecops::mean(&c1).abs() < 1e-5);
        assert!((smore_tensor::vecops::variance(&c0) - 1.0).abs() < 1e-4);
        assert!((smore_tensor::vecops::variance(&c1) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn scaler_constant_channel_is_safe() {
        let ws = vec![Matrix::filled(3, 1, 7.0)];
        let scaler = ChannelScaler::fit(&ws);
        let z = scaler.transform(&ws);
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scaler_applies_train_stats_to_test() {
        let train = vec![Matrix::from_vec(2, 1, vec![0.0, 2.0]).unwrap()];
        let test = vec![Matrix::from_vec(2, 1, vec![4.0, 4.0]).unwrap()];
        let scaler = ChannelScaler::fit(&train);
        let z = scaler.transform(&test);
        // mean 1, std 1 -> (4-1)/1 = 3.
        assert!(z.as_slice().iter().all(|&v| (v - 3.0).abs() < 1e-5));
    }
}
