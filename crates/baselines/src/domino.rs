//! DOMINO \[8\] — HDC domain generalisation by dimension regeneration.
//!
//! DOMINO trains a global HDC model plus per-domain models, measures how
//! much every hyperdimensional *dimension* disagrees across the domain
//! models (domain-variant dimensions carry subject identity rather than
//! activity content), then discards the most variant dimensions and
//! regenerates them with fresh random codebook entries. Re-encoding and
//! retraining after every regeneration round is what makes its training
//! slow (paper §4.3.1); its final model keeps the compact initial
//! dimensionality, which is why its *inference* is slightly faster than
//! SMORE's.
//!
//! Following the paper's fairness setup, the model starts at `d* = 1k`
//! and the cumulative dimensionality (initial + regenerated over all
//! rounds) is matched to SMORE's `d = 8k`.

use smore::pipeline::{BoxError, TaskMeta, WindowClassifier};
use smore::Centerer;
use smore_hdc::encoder::{EncoderConfig, MultiSensorEncoder};
use smore_hdc::model::{HdcClassifier, HdcClassifierConfig};
use smore_hdc::HdcError;
use smore_tensor::{vecops, Matrix};

/// Configuration for [`Domino`].
#[derive(Debug, Clone, PartialEq)]
pub struct DominoConfig {
    /// Working dimensionality `d*` (paper: 1k).
    pub dim: usize,
    /// Total dimension budget: initial + all regenerated (paper: 8k).
    pub total_dim_budget: usize,
    /// Dimensions regenerated per round.
    pub regen_per_round: usize,
    /// Learning rate of the adaptive classifiers.
    pub learning_rate: f32,
    /// Training epochs per round.
    pub epochs: usize,
    /// Worker threads.
    pub threads: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for DominoConfig {
    /// `d* = 1024`, budget 8192, 512 dims per round (14 rounds).
    fn default() -> Self {
        Self {
            dim: 1024,
            total_dim_budget: 8192,
            regen_per_round: 512,
            learning_rate: 0.05,
            epochs: 10,
            threads: smore_tensor::parallel::default_threads(),
            seed: 0xD0311,
        }
    }
}

/// The DOMINO domain-generalisation classifier.
#[derive(Debug, Clone)]
pub struct Domino {
    config: DominoConfig,
    state: Option<Fitted>,
    /// Rounds actually executed in the last `fit` (observable for tests
    /// and the efficiency benches).
    pub rounds_run: usize,
}

#[derive(Debug, Clone)]
struct Fitted {
    encoder: MultiSensorEncoder,
    centerer: Centerer,
    model: HdcClassifier,
}

impl Domino {
    /// Creates an untrained DOMINO instance.
    pub fn new(config: DominoConfig) -> Self {
        Self { config, state: None, rounds_run: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> &DominoConfig {
        &self.config
    }

    /// Whether training completed.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    /// Scores every dimension's domain variance: for each class, the
    /// variance across domain models of the normalised class hypervector
    /// value at that dimension, summed over classes.
    fn dimension_variance(domain_models: &[HdcClassifier], dim: usize, classes: usize) -> Vec<f32> {
        let normalized: Vec<Matrix> = domain_models
            .iter()
            .map(|m| {
                let mut hvs = m.class_hypervectors().clone();
                for c in 0..classes {
                    vecops::normalize(hvs.row_mut(c));
                }
                hvs
            })
            .collect();
        let mut scores = vec![0.0f32; dim];
        let k = domain_models.len() as f32;
        for c in 0..classes {
            for (d, score) in scores.iter_mut().enumerate() {
                let mean: f32 = normalized.iter().map(|m| m.get(c, d)).sum::<f32>() / k;
                let var: f32 =
                    normalized.iter().map(|m| (m.get(c, d) - mean).powi(2)).sum::<f32>() / k;
                *score += var;
            }
        }
        scores
    }
}

impl WindowClassifier for Domino {
    fn name(&self) -> &str {
        "DOMINO"
    }

    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        if windows.is_empty() {
            return Err(Box::new(HdcError::EmptyInput { what: "DOMINO training windows" }));
        }
        let mut tags: Vec<usize> = domains.to_vec();
        tags.sort_unstable();
        tags.dedup();

        let mut encoder = MultiSensorEncoder::new(EncoderConfig {
            dim: self.config.dim,
            sensors: meta.channels,
            seed: self.config.seed,
            ..EncoderConfig::default()
        })?;

        let rounds = if self.config.total_dim_budget > self.config.dim {
            (self.config.total_dim_budget - self.config.dim).div_ceil(self.config.regen_per_round)
        } else {
            0
        };

        let classifier_config = HdcClassifierConfig {
            dim: self.config.dim,
            num_classes: meta.num_classes,
            learning_rate: self.config.learning_rate,
            epochs: self.config.epochs,
        };

        let mut final_state: Option<Fitted> = None;
        self.rounds_run = 0;
        for round in 0..=rounds {
            // Re-encode with the current (partially regenerated) codebooks.
            let mut encoded = encoder.encode_batch(windows, self.config.threads)?;
            let centerer = Centerer::fit(&encoded)?;
            centerer.apply(&mut encoded);

            // Global model for inference.
            let mut global = HdcClassifier::new(classifier_config.clone())?;
            global.fit(&encoded, labels)?;

            if round == rounds {
                final_state = Some(Fitted { encoder: encoder.clone(), centerer, model: global });
                break;
            }

            // Per-domain models expose domain-variant dimensions.
            let mut domain_models = Vec::with_capacity(tags.len());
            for &tag in &tags {
                let idx: Vec<usize> = (0..domains.len()).filter(|&i| domains[i] == tag).collect();
                let sub = encoded.select_rows(&idx);
                let sub_labels: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
                let mut m = HdcClassifier::new(classifier_config.clone())?;
                m.fit(&sub, &sub_labels)?;
                domain_models.push(m);
            }
            let scores =
                Self::dimension_variance(&domain_models, self.config.dim, meta.num_classes);
            let mut order: Vec<usize> = (0..self.config.dim).collect();
            order.sort_by(|&a, &b| {
                scores[b].partial_cmp(&scores[a]).unwrap_or(std::cmp::Ordering::Equal)
            });
            let worst: Vec<usize> =
                order.into_iter().take(self.config.regen_per_round.min(self.config.dim)).collect();
            encoder.regenerate_dims(&worst, self.config.seed.wrapping_add(round as u64 + 1));
            self.rounds_run += 1;
        }

        self.state = final_state;
        Ok(())
    }

    fn predict(&mut self, windows: &[Matrix]) -> Result<Vec<usize>, BoxError> {
        let state = self
            .state
            .as_ref()
            .ok_or_else(|| Box::new(HdcError::EmptyInput { what: "DOMINO not fitted" }))?;
        let mut encoded = state.encoder.encode_batch(windows, self.config.threads)?;
        state.centerer.apply(&mut encoded);
        Ok(state.model.predict_batch(&encoded, self.config.threads)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn dataset() -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "domino-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 16,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 36 },
                DomainSpec { subjects: vec![2, 3], windows: 36 },
                DomainSpec { subjects: vec![4, 5], windows: 36 },
            ],
            shift_severity: 1.0,
            seed: 13,
        })
        .unwrap()
    }

    fn small_config() -> DominoConfig {
        DominoConfig {
            dim: 256,
            total_dim_budget: 512,
            regen_per_round: 128,
            epochs: 5,
            threads: 2,
            ..DominoConfig::default()
        }
    }

    #[test]
    fn runs_expected_number_of_rounds() {
        let ds = dataset();
        let (train, _test) = split::lodo(&ds, 2).unwrap();
        let (w, l, d) = ds.gather(&train);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 16 };
        let mut model = Domino::new(small_config());
        model.fit(&w, &l, &d, &meta).unwrap();
        // (512 - 256) / 128 = 2 regeneration rounds.
        assert_eq!(model.rounds_run, 2);
        assert!(model.is_fitted());
    }

    #[test]
    fn lodo_accuracy_above_chance() {
        let ds = dataset();
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let (w, l, d) = ds.gather(&train);
        let (tw, tl, _) = ds.gather(&test);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 16 };
        let mut model = Domino::new(small_config());
        model.fit(&w, &l, &d, &meta).unwrap();
        let preds = model.predict(&tw).unwrap();
        let acc = preds.iter().zip(&tl).filter(|(p, t)| p == t).count() as f32 / tl.len() as f32;
        assert!(acc > 1.0 / 3.0, "DOMINO LODO accuracy {acc} at or below chance");
    }

    #[test]
    fn zero_budget_skips_regeneration() {
        let ds = dataset();
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let (w, l, d) = ds.gather(&train);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 16 };
        let mut cfg = small_config();
        cfg.total_dim_budget = cfg.dim; // no extra dims to regenerate
        let mut model = Domino::new(cfg);
        model.fit(&w, &l, &d, &meta).unwrap();
        assert_eq!(model.rounds_run, 0);
    }

    #[test]
    fn dimension_variance_flags_disagreeing_dims() {
        // Two "domain models" that agree everywhere except dimension 3.
        let mut a = Matrix::ones(2, 8);
        let mut b = Matrix::ones(2, 8);
        a.set(0, 3, 5.0);
        b.set(0, 3, -5.0);
        let ma = HdcClassifier::from_class_hypervectors(a).unwrap();
        let mb = HdcClassifier::from_class_hypervectors(b).unwrap();
        let scores = Domino::dimension_variance(&[ma, mb], 8, 2);
        let max_dim =
            scores.iter().enumerate().max_by(|x, y| x.1.partial_cmp(y.1).unwrap()).unwrap().0;
        assert_eq!(max_dim, 3, "dimension 3 should be the most domain-variant: {scores:?}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = Domino::new(small_config());
        assert!(model.predict(&[Matrix::zeros(16, 2)]).is_err());
        assert_eq!(model.name(), "DOMINO");
    }
}
