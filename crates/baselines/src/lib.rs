//! The baselines of the SMORE evaluation (paper §4.1).
//!
//! Every algorithm implements `smore::pipeline::WindowClassifier`, so the
//! benchmark harness runs all of them under the exact same protocol:
//!
//! - [`baseline_hd::BaselineHd`] — OnlineHD \[22\]: the SOTA single-model
//!   HDC classifier with a nonlinear random-projection encoder and no
//!   notion of domains. The reference point for the paper's Figure 1(b)
//!   LODO-vs-k-fold collapse and the +20.25% claim.
//! - [`domino::Domino`] — DOMINO \[8\]: HDC domain *generalisation* that
//!   repeatedly identifies domain-variant dimensions (where per-domain
//!   models disagree), discards and regenerates them. Starts at `d* = 1k`
//!   and regenerates until the cumulative dimension count matches SMORE's
//!   `d = 8k`, which is why its training is slow and its inference fast.
//! - [`cnn::CnnClassifier`] — the 1-D CNN backbone (conv → BN → ReLU →
//!   pool → dense) shared by the DNN baselines.
//! - [`tent::Tent`] — TENT \[4\]: fully test-time adaptation; freezes the
//!   source CNN except the BatchNorm affine parameters and minimises
//!   prediction entropy on each test batch.
//! - [`mdan::Mdan`] — MDANs \[5\]: multi-source domain-adversarial
//!   networks with one discriminator per source domain trained through a
//!   gradient-reversal layer, using the unlabelled target windows the
//!   evaluation protocol provides to DA algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline_hd;
pub mod cnn;
pub mod domino;
pub mod mdan;
pub mod scaler;
pub mod tent;
