//! MDANs \[5\] — multiple-source domain adaptation with adversarial
//! learning.
//!
//! A shared feature extractor `F` feeds (i) a task classifier `C` trained
//! on labelled source windows and (ii) one binary domain discriminator
//! `D_k` per source domain, trained to tell domain-`k` windows from
//! (unlabelled) target windows. The discriminators see features through a
//! gradient-reversal layer, so their training signal pushes `F` toward
//! features the discriminators *cannot* separate — i.e. domain-invariant
//! features aligned between every source and the target.
//!
//! Training alternates a supervised step with one adversarial step per
//! source domain, the standard optimisation of the soft-max MDAN
//! objective. Inference is a plain forward pass (`C(F(x))`), so MDANs pays
//! its DA cost at training time, unlike TENT.

use smore::pipeline::{BoxError, TaskMeta, WindowClassifier};
use smore_nn::layer::{Dense, GradReversal, Relu};
use smore_nn::loss;
use smore_nn::network::Sequential;
use smore_nn::optim::Optimizer;
use smore_nn::NnError;
use smore_tensor::{vecops, Matrix};

use crate::cnn::{build_classifier_head, build_feature_extractor, CnnConfig};
use crate::scaler::ChannelScaler;

/// Configuration for [`Mdan`].
#[derive(Debug, Clone, PartialEq)]
pub struct MdanConfig {
    /// Backbone configuration (feature extractor + task head sizes).
    pub cnn: CnnConfig,
    /// Gradient-reversal coefficient `λ`.
    pub lambda: f32,
    /// Hidden width of each domain discriminator.
    pub discriminator_width: usize,
}

impl Default for MdanConfig {
    /// `λ = 0.3`, 32-wide discriminators.
    fn default() -> Self {
        Self { cnn: CnnConfig::default(), lambda: 0.3, discriminator_width: 32 }
    }
}

/// The MDANs domain-adversarial classifier.
#[derive(Debug)]
pub struct Mdan {
    config: MdanConfig,
    state: Option<Fitted>,
}

#[derive(Debug)]
struct Fitted {
    scaler: ChannelScaler,
    features: Sequential,
    head: Sequential,
}

impl Mdan {
    /// Creates an untrained MDANs instance.
    pub fn new(config: MdanConfig) -> Self {
        Self { config, state: None }
    }

    /// The configuration.
    pub fn config(&self) -> &MdanConfig {
        &self.config
    }

    /// Whether training completed.
    pub fn is_fitted(&self) -> bool {
        self.state.is_some()
    }

    fn build_discriminator(&self, seed: u64) -> Result<Sequential, NnError> {
        let mut d = Sequential::new();
        d.push(GradReversal::new(self.config.lambda));
        d.push(Dense::new(self.config.cnn.feature_width, self.config.discriminator_width, seed)?);
        d.push(Relu::new());
        d.push(Dense::new(self.config.discriminator_width, 2, seed + 1)?);
        Ok(d)
    }
}

impl WindowClassifier for Mdan {
    fn name(&self) -> &str {
        "MDANs"
    }

    /// Source-only fallback: without target windows MDANs degenerates to a
    /// supervised CNN (the adversarial heads have nothing to align to).
    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        self.fit_with_target(windows, labels, domains, meta, &[])
    }

    fn fit_with_target(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        domains: &[usize],
        meta: &TaskMeta,
        target_windows: &[Matrix],
    ) -> Result<(), BoxError> {
        if windows.is_empty() || windows.len() != labels.len() || windows.len() != domains.len() {
            return Err(Box::new(NnError::InvalidConfig {
                what: format!(
                    "MDANs needs equal non-empty arrays: {} windows, {} labels, {} domains",
                    windows.len(),
                    labels.len(),
                    domains.len()
                ),
            }));
        }
        let cfg = &self.config.cnn;
        let scaler = ChannelScaler::fit(windows);
        let x = scaler.transform(windows);
        let x_target =
            if target_windows.is_empty() { None } else { Some(scaler.transform(target_windows)) };

        let mut features = build_feature_extractor(meta.window_len, meta.channels, cfg)?;
        let mut head = build_classifier_head(cfg.feature_width, meta.num_classes, cfg.seed + 3)?;

        let mut tags: Vec<usize> = domains.to_vec();
        tags.sort_unstable();
        tags.dedup();
        let mut discriminators: Vec<Sequential> = tags
            .iter()
            .enumerate()
            .map(|(k, _)| self.build_discriminator(cfg.seed + 100 + k as u64))
            .collect::<Result<_, _>>()?;
        let per_domain: Vec<Vec<usize>> = tags
            .iter()
            .map(|&tag| (0..domains.len()).filter(|&i| domains[i] == tag).collect())
            .collect();

        let opt = Optimizer::adam(cfg.learning_rate);
        let half = (cfg.batch_size / 2).max(1);

        for epoch in 0..cfg.epochs {
            // Supervised pass over the pooled source data.
            let mut start = 0usize;
            while start < x.rows() {
                let end = (start + cfg.batch_size).min(x.rows());
                let idx: Vec<usize> = (start..end).collect();
                let xb = x.select_rows(&idx);
                let yb = &labels[start..end];
                let feats = features.forward(&xb, true)?;
                let logits = head.forward(&feats, true)?;
                let (_, grad) = loss::softmax_cross_entropy(&logits, yb)?;
                features.zero_grad();
                head.zero_grad();
                let g = head.backward(&grad)?;
                features.backward(&g)?;
                features.update(&opt);
                head.update(&opt);
                start = end;
            }

            // Adversarial pass: one step per source domain against the
            // target batch (only possible when target data exists).
            if let Some(xt) = &x_target {
                for (k, domain_idx) in per_domain.iter().enumerate() {
                    // Rotate through the domain's and target's windows.
                    let offset = (epoch * half) % domain_idx.len().max(1);
                    let src_rows: Vec<usize> = (0..half.min(domain_idx.len()))
                        .map(|j| domain_idx[(offset + j) % domain_idx.len()])
                        .collect();
                    let t_offset = (epoch * half) % xt.rows().max(1);
                    let tgt_rows: Vec<usize> =
                        (0..half.min(xt.rows())).map(|j| (t_offset + j) % xt.rows()).collect();
                    let xs = x.select_rows(&src_rows);
                    let xtb = xt.select_rows(&tgt_rows);
                    let batch = xs.vstack(&xtb)?;
                    // Domain labels: 0 = source-k, 1 = target.
                    let mut dlabels = vec![0usize; src_rows.len()];
                    dlabels.extend(std::iter::repeat_n(1, tgt_rows.len()));

                    let feats = features.forward(&batch, true)?;
                    let d = &mut discriminators[k];
                    let dlogits = d.forward(&feats, true)?;
                    let (_, grad) = loss::softmax_cross_entropy(&dlogits, &dlabels)?;
                    features.zero_grad();
                    d.zero_grad();
                    let g_feats = d.backward(&grad)?; // reversed by the GRL
                    features.backward(&g_feats)?;
                    features.update(&opt);
                    d.update(&opt);
                }
            }
        }

        self.state = Some(Fitted { scaler, features, head });
        Ok(())
    }

    fn predict(&mut self, windows: &[Matrix]) -> Result<Vec<usize>, BoxError> {
        let state = self
            .state
            .as_mut()
            .ok_or_else(|| Box::new(NnError::InvalidConfig { what: "MDANs not fitted".into() }))?;
        let x = state.scaler.transform(windows);
        let feats = state.features.forward(&x, false)?;
        let logits = state.head.forward(&feats, false)?;
        Ok((0..logits.rows()).map(|i| vecops::argmax(logits.row(i)).unwrap_or(0)).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn dataset() -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "mdan-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 20,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 45 },
                DomainSpec { subjects: vec![2, 3], windows: 45 },
                DomainSpec { subjects: vec![4, 5], windows: 45 },
            ],
            shift_severity: 1.0,
            seed: 29,
        })
        .unwrap()
    }

    fn small_config() -> MdanConfig {
        MdanConfig {
            cnn: CnnConfig {
                conv1_channels: 8,
                conv2_channels: 8,
                kernel: 3,
                feature_width: 16,
                epochs: 10,
                batch_size: 16,
                ..CnnConfig::default()
            },
            lambda: 0.3,
            discriminator_width: 16,
        }
    }

    #[test]
    fn fit_with_target_and_predict() {
        let ds = dataset();
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let (w, l, d) = ds.gather(&train);
        let (tw, tl, _) = ds.gather(&test);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 20 };
        let mut model = Mdan::new(small_config());
        model.fit_with_target(&w, &l, &d, &meta, &tw).unwrap();
        assert!(model.is_fitted());
        let preds = model.predict(&tw).unwrap();
        assert_eq!(preds.len(), tl.len());
        let acc = preds.iter().zip(&tl).filter(|(p, t)| p == t).count() as f32 / tl.len() as f32;
        assert!(acc > 1.0 / 3.0 - 0.05, "MDANs LODO accuracy {acc} far below chance");
    }

    #[test]
    fn fit_without_target_is_supervised_fallback() {
        let ds = dataset();
        let (train, _) = split::lodo(&ds, 0).unwrap();
        let (w, l, d) = ds.gather(&train);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 20 };
        let mut model = Mdan::new(small_config());
        model.fit(&w, &l, &d, &meta).unwrap();
        let preds = model.predict(&w[..10]).unwrap();
        assert_eq!(preds.len(), 10);
    }

    #[test]
    fn fit_validates_inputs() {
        let meta = TaskMeta { num_classes: 2, num_domains: 2, channels: 1, window_len: 8 };
        let mut model = Mdan::new(small_config());
        assert!(model.fit(&[], &[], &[], &meta).is_err());
        let w = vec![Matrix::zeros(8, 1)];
        assert!(model.fit(&w, &[0, 1], &[0], &meta).is_err());
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = Mdan::new(small_config());
        assert!(model.predict(&[Matrix::zeros(20, 2)]).is_err());
        assert_eq!(model.name(), "MDANs");
    }
}
