//! TENT \[4\] — fully test-time adaptation by entropy minimisation.
//!
//! TENT takes a source-trained network, freezes everything except the
//! BatchNorm affine parameters `γ, β`, and at test time minimises the
//! Shannon entropy of its own predictions on each incoming batch (while
//! normalising with the *batch* statistics instead of the stale running
//! estimates). Confident predictions correlate with correct ones under
//! covariate shift, so a few gradient steps per batch recover much of the
//! accuracy a frozen source model loses — at the cost of several
//! forward+backward passes per test batch, which is exactly the latency
//! overhead the paper's efficiency figures (6a, 6b) account for.

use smore::pipeline::{BoxError, TaskMeta, WindowClassifier};
use smore_nn::loss;
use smore_nn::optim::Optimizer;
use smore_nn::NnError;
use smore_tensor::{vecops, Matrix};

use crate::cnn::{CnnClassifier, CnnConfig};

/// Configuration for [`Tent`].
#[derive(Debug, Clone, PartialEq)]
pub struct TentConfig {
    /// Source-model configuration.
    pub cnn: CnnConfig,
    /// Entropy-descent steps per test batch.
    pub adaptation_steps: usize,
    /// Learning rate of the BN-parameter updates.
    pub adaptation_lr: f32,
    /// Test batch size used during adaptation.
    pub batch_size: usize,
}

impl Default for TentConfig {
    /// 10 adaptation steps at `lr = 1e-3` on batches of 64.
    fn default() -> Self {
        Self {
            cnn: CnnConfig::default(),
            adaptation_steps: 10,
            adaptation_lr: 1e-3,
            batch_size: 64,
        }
    }
}

/// The TENT test-time adapter around a source CNN.
#[derive(Debug)]
pub struct Tent {
    config: TentConfig,
    source: CnnClassifier,
}

impl Tent {
    /// Creates an untrained TENT instance.
    pub fn new(config: TentConfig) -> Self {
        let source = CnnClassifier::new(config.cnn.clone());
        Self { config, source }
    }

    /// The configuration.
    pub fn config(&self) -> &TentConfig {
        &self.config
    }

    /// Whether the source model has been trained.
    pub fn is_fitted(&self) -> bool {
        self.source.is_fitted()
    }
}

impl WindowClassifier for Tent {
    fn name(&self) -> &str {
        "TENT"
    }

    fn fit(
        &mut self,
        windows: &[Matrix],
        labels: &[usize],
        _domains: &[usize],
        meta: &TaskMeta,
    ) -> Result<(), BoxError> {
        self.source.train_supervised(windows, labels, meta)
    }

    fn predict(&mut self, windows: &[Matrix]) -> Result<Vec<usize>, BoxError> {
        let steps = self.config.adaptation_steps;
        let lr = self.config.adaptation_lr;
        let batch_size = self.config.batch_size.max(1);
        let state = self
            .source
            .state_mut()
            .ok_or_else(|| Box::new(NnError::InvalidConfig { what: "TENT not fitted".into() }))?;

        // Freeze everything except BatchNorm affine parameters.
        state.features.freeze_all_except_batch_norm();
        state.head.set_frozen(true);
        let opt = Optimizer::adam(lr);

        let x = state.scaler.transform(windows);
        let mut predictions = Vec::with_capacity(windows.len());
        let mut start = 0usize;
        while start < x.rows() {
            let end = (start + batch_size).min(x.rows());
            let idx: Vec<usize> = (start..end).collect();
            let xb = x.select_rows(&idx);
            // Entropy minimisation: forward with batch statistics
            // (training = true), update only the unfrozen BN parameters.
            for _ in 0..steps {
                let feats = state.features.forward(&xb, true)?;
                let logits = state.head.forward(&feats, true)?;
                let (_, grad) = loss::entropy_loss(&logits)?;
                state.features.zero_grad();
                state.head.zero_grad();
                let g_feats = state.head.backward(&grad)?;
                state.features.backward(&g_feats)?;
                state.features.update(&opt);
            }
            // Predict the adapted batch (still batch statistics, as TENT
            // prescribes).
            let feats = state.features.forward(&xb, true)?;
            let logits = state.head.forward(&feats, true)?;
            for i in 0..logits.rows() {
                predictions.push(vecops::argmax(logits.row(i)).unwrap_or(0));
            }
            start = end;
        }
        Ok(predictions)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smore_data::generator::{generate, DomainSpec, GeneratorConfig};
    use smore_data::split;

    fn dataset() -> smore_data::Dataset {
        generate(&GeneratorConfig {
            name: "tent-test".into(),
            num_classes: 3,
            channels: 2,
            window_len: 20,
            sample_rate_hz: 20.0,
            domains: vec![
                DomainSpec { subjects: vec![0, 1], windows: 45 },
                DomainSpec { subjects: vec![2, 3], windows: 45 },
                DomainSpec { subjects: vec![4, 5], windows: 45 },
            ],
            shift_severity: 1.0,
            seed: 23,
        })
        .unwrap()
    }

    fn small_config() -> TentConfig {
        TentConfig {
            cnn: CnnConfig {
                conv1_channels: 8,
                conv2_channels: 8,
                kernel: 3,
                feature_width: 16,
                epochs: 15,
                batch_size: 16,
                ..CnnConfig::default()
            },
            adaptation_steps: 3,
            adaptation_lr: 1e-3,
            batch_size: 32,
        }
    }

    #[test]
    fn fit_and_adaptive_predict() {
        let ds = dataset();
        let (train, test) = split::lodo(&ds, 2).unwrap();
        let (w, l, d) = ds.gather(&train);
        let (tw, tl, _) = ds.gather(&test);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 20 };
        let mut model = Tent::new(small_config());
        assert!(!model.is_fitted());
        model.fit(&w, &l, &d, &meta).unwrap();
        assert!(model.is_fitted());
        let preds = model.predict(&tw).unwrap();
        assert_eq!(preds.len(), tl.len());
        let acc = preds.iter().zip(&tl).filter(|(p, t)| p == t).count() as f32 / tl.len() as f32;
        assert!(acc > 1.0 / 3.0 - 0.05, "TENT LODO accuracy {acc} far below chance");
    }

    #[test]
    fn adaptation_reduces_prediction_entropy() {
        let ds = dataset();
        let (train, test) = split::lodo(&ds, 1).unwrap();
        let (w, l, d) = ds.gather(&train);
        let (tw, _, _) = ds.gather(&test);
        let meta = TaskMeta { num_classes: 3, num_domains: 2, channels: 2, window_len: 20 };
        let mut model = Tent::new(small_config());
        model.fit(&w, &l, &d, &meta).unwrap();

        let entropy_of = |m: &mut Tent, batch: &[Matrix]| -> f32 {
            let state = m.source.state_mut().unwrap();
            let x = state.scaler.transform(batch);
            let feats = state.features.forward(&x, true).unwrap();
            let logits = state.head.forward(&feats, true).unwrap();
            loss::entropy_loss(&logits).unwrap().0
        };

        let batch = &tw[..32.min(tw.len())];
        let before = entropy_of(&mut model, batch);
        let _ = model.predict(batch).unwrap(); // adapts in place
        let after = entropy_of(&mut model, batch);
        assert!(after <= before + 1e-4, "entropy should not increase: {before} -> {after}");
    }

    #[test]
    fn predict_before_fit_errors() {
        let mut model = Tent::new(small_config());
        assert!(model.predict(&[Matrix::zeros(20, 2)]).is_err());
        assert_eq!(model.name(), "TENT");
    }
}
