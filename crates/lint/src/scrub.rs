//! A line-oriented, comment/string-aware scanner for Rust source.
//!
//! `smore_lint` deliberately does not parse Rust — no `syn`, no proc
//! macros, no dependencies (the same philosophy as [`smore::wire`]'s
//! hand-rolled codec). Instead this module lexes just enough of the
//! language to split every source line into its *code* and *comment*
//! halves with string/char-literal contents blanked out, so the rule
//! passes can do honest token matching without tripping over a
//! `"panic!"` inside a log message or an `unwrap()` in a doc comment.
//!
//! Handled: `//` line comments, nested `/* */` block comments, string
//! literals (including multi-line and `\"` escapes), raw strings
//! `r"…"` / `r#"…"#` (any hash depth, `b`-prefixed too), char literals
//! (escaped and plain) vs. lifetimes. Not handled (not needed): actual
//! token values — only their boundaries matter here.

/// One source line, split into scrubbed halves.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Code text with comments removed and string/char contents blanked
    /// (the delimiting quotes are kept so call shapes stay visible).
    pub code: String,
    /// Comment text on this line (contents of `//…` and `/* … */`).
    pub comment: String,
}

/// Scanner mode across line boundaries.
enum Mode {
    Code,
    LineComment,
    /// Nested block comment at the given depth.
    Block(u32),
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string closed by `"` followed by this many `#`.
    RawStr(usize),
}

/// Splits `source` into per-line code/comment halves.
pub fn scrub(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut mode = Mode::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if matches!(mode, Mode::LineComment) {
                mode = Mode::Code;
            }
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        match mode {
            Mode::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    mode = Mode::LineComment;
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    mode = Mode::Block(1);
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Str;
                    i += 1;
                } else if let Some(hashes) = raw_string_at(&chars, i, &line.code) {
                    line.code.push('"');
                    mode = Mode::RawStr(hashes.count);
                    i = hashes.body_start;
                } else if c == '\'' {
                    i = scan_quote(&chars, i, &mut line.code);
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            Mode::LineComment => {
                line.comment.push(c);
                i += 1;
            }
            Mode::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    mode = if depth == 1 { Mode::Code } else { Mode::Block(depth - 1) };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            Mode::Str => {
                if c == '\\' {
                    // An escaped newline continues the string on the next
                    // line; leave the newline for the top-level splitter.
                    i += if chars.get(i + 1) == Some(&'\n') { 1 } else { 2 };
                } else if c == '"' {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            Mode::RawStr(count) => {
                if c == '"'
                    && chars[i + 1..].iter().take(count).filter(|h| **h == '#').count() == count
                {
                    line.code.push('"');
                    mode = Mode::Code;
                    i += 1 + count;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    lines
}

struct RawStart {
    count: usize,
    body_start: usize,
}

/// Detects a raw-string opener (`r"`, `r#"`, `br##"` …) at `i`. The
/// previous emitted code char must not be an identifier char, so an
/// identifier merely ending in `r` never triggers this.
fn raw_string_at(chars: &[char], i: usize, emitted: &str) -> Option<RawStart> {
    if let Some(prev) = emitted.chars().last() {
        if prev.is_alphanumeric() || prev == '_' {
            return None;
        }
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut count = 0;
    while chars.get(j) == Some(&'#') {
        count += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some(RawStart { count, body_start: j + 1 })
    } else {
        None
    }
}

/// Consumes a `'` at `i`: either a char literal (emitted as `''`) or a
/// lifetime tick (emitted verbatim). Returns the next scan position.
fn scan_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    match chars.get(i + 1) {
        // Escaped char literal: '\n', '\'', '\u{1F600}', '\x41'.
        Some('\\') => {
            let mut j = i + 2;
            if chars.get(j) == Some(&'u') {
                while j < chars.len() && chars[j] != '}' {
                    j += 1;
                }
            } else if chars.get(j) == Some(&'x') {
                j += 2;
            }
            j += 1;
            // Expect the closing quote at j; tolerate malformed input.
            code.push_str("''");
            if chars.get(j) == Some(&'\'') {
                j + 1
            } else {
                j
            }
        }
        // Plain char literal 'x' (but not '' which cannot occur).
        Some(&c) if c != '\'' && chars.get(i + 2) == Some(&'\'') => {
            code.push_str("''");
            i + 3
        }
        // Lifetime ('a, '_, 'static) or stray quote.
        _ => {
            code.push('\'');
            i + 1
        }
    }
}

/// Marks every line that belongs to `#[cfg(test)]` / `#[test]` items so
/// the panic-path rule can skip test code. Detection is structural:
/// from the attribute line, brace depth is tracked until the item's
/// closing brace (or a top-level `;` for brace-less items).
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = &lines[i].code;
        if !(code.contains("#[cfg(test)]") || code.contains("#[test]")) {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        'item: while j < lines.len() {
            mask[j] = true;
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            break 'item;
                        }
                    }
                    ';' if !opened => break 'item,
                    _ => {}
                }
            }
            j += 1;
        }
        i = j + 1;
    }
    mask
}

/// All line ranges `(first, last)` (0-based, inclusive, signature
/// through closing brace) of functions named `name` in the file —
/// a name can repeat across impl blocks.
pub fn fn_ranges(lines: &[Line], name: &str) -> Vec<(usize, usize)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        if fn_decl_at(&lines[i].code, name).is_none() {
            i += 1;
            continue;
        }
        let mut depth: i64 = 0;
        let mut opened = false;
        let mut j = i;
        let mut end = None;
        'body: while j < lines.len() {
            for ch in lines[j].code.chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => {
                        depth -= 1;
                        if opened && depth == 0 {
                            end = Some(j);
                            break 'body;
                        }
                    }
                    // A trait method declaration with no body.
                    ';' if !opened => break 'body,
                    _ => {}
                }
            }
            j += 1;
        }
        if let Some(end) = end {
            ranges.push((i, end));
            i = end + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Returns `Some(())` when `code` declares `fn <name>` (exact identifier
/// match, so `record` never matches `record_n`).
fn fn_decl_at(code: &str, name: &str) -> Option<()> {
    let mut search = 0;
    while let Some(pos) = code[search..].find("fn ") {
        let at = search + pos;
        search = at + 3;
        // `fn ` must start a token: reject e.g. `self.fn ` (not Rust) or
        // an identifier ending in `fn`.
        if at > 0 {
            let prev = code[..at].chars().next_back();
            if prev.is_some_and(|p| p.is_alphanumeric() || p == '_') {
                continue;
            }
        }
        let rest = code[at + 3..].trim_start();
        if let Some(after) = rest.strip_prefix(name) {
            let boundary = after.chars().next();
            if matches!(boundary, Some('(' | '<') | None) {
                return Some(());
            }
        }
    }
    None
}

/// True when `hay` contains `token` followed by a non-identifier char
/// (or end of line) — so `TAG_PREDICT` never matches `TAG_PREDICTION`.
pub fn contains_token(hay: &str, token: &str) -> bool {
    let mut search = 0;
    while let Some(pos) = hay[search..].find(token) {
        let at = search + pos;
        search = at + 1;
        let after = hay[at + token.len()..].chars().next();
        if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_scrubbed() {
        let src = r#"let x = "unwrap() // not code"; // real.unwrap() comment
let y = 1; /* block .expect( */ let z = 2;
"#;
        let lines = scrub(src);
        assert_eq!(lines.len(), 2);
        assert!(!lines[0].code.contains("unwrap"));
        assert!(lines[0].comment.contains("real.unwrap() comment"));
        assert!(lines[1].code.contains("let z = 2;"));
        assert!(lines[1].comment.contains(".expect("));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let src = "let p = r#\"panic!(\"x\")\"#;\nlet c = '\\n'; let l: &'static str = \"y\";\n";
        let lines = scrub(src);
        assert!(!lines[0].code.contains("panic!"));
        assert!(lines[1].code.contains("'static"));
        assert!(!lines[1].code.contains("\\n"));
    }

    #[test]
    fn multiline_strings_span_lines() {
        let src = "let s = \"first\nsecond unwrap()\nthird\";\nlet t = 1.unwrap();\n";
        let lines = scrub(src);
        assert!(!lines[1].code.contains("unwrap"));
        assert!(lines[3].code.contains("unwrap()"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let a = 1;\n";
        let lines = scrub(src);
        assert!(lines[0].code.contains("let a = 1;"));
        assert!(lines[0].comment.contains("inner"));
    }

    #[test]
    fn test_mask_covers_cfg_test_items() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let lines = scrub(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, true, false]);
    }

    #[test]
    fn fn_ranges_finds_every_impl() {
        let src = "impl A {\n    fn record(&self) {\n        body();\n    }\n}\nimpl B {\n    fn record(&self) { body() }\n    fn record_n(&self) {}\n}\n";
        let lines = scrub(src);
        let ranges = fn_ranges(&lines, "record");
        assert_eq!(ranges, vec![(1, 3), (6, 6)]);
        assert_eq!(fn_ranges(&lines, "record_n"), vec![(7, 7)]);
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(contains_token("seal(TAG_PREDICT,", "TAG_PREDICT"));
        assert!(!contains_token("seal(TAG_PREDICTION,", "TAG_PREDICT"));
        assert!(contains_token("TAG_PREDICT =>", "TAG_PREDICT"));
    }
}
