//! The `smore_lint` CLI.
//!
//! ```text
//! smore_lint [--root DIR] [--write-manifest] [PATH-FILTER...]
//! ```
//!
//! Exit codes: 0 clean, 1 findings, 2 usage/I-O error. Path filters
//! are substring matches on workspace-relative paths and restrict the
//! run to the per-file rules; `--write-manifest` renormalizes
//! `crates/lint/hot_paths.toml` and is refused on filtered runs so a
//! partial view can never rewrite the committed registration set.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use smore_lint::{lint_workspace, manifest};

struct Args {
    root: PathBuf,
    write_manifest: bool,
    filters: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), write_manifest: false, filters: Vec::new() };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let dir = it.next().ok_or("--root needs a directory argument")?;
                args.root = PathBuf::from(dir);
            }
            "--write-manifest" => args.write_manifest = true,
            "--help" | "-h" => {
                return Err("usage: smore_lint [--root DIR] [--write-manifest] [PATH-FILTER...]"
                    .to_string())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}` (try --help)"));
            }
            other => args.filters.push(other.to_string()),
        }
    }
    Ok(args)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    if args.write_manifest {
        if !args.filters.is_empty() {
            return Err(
                "refusing --write-manifest on a path-filtered run: a partial view must never \
                 rewrite the committed hot_paths.toml (run without path filters to renormalize)"
                    .to_string(),
            );
        }
        let path = args.root.join("crates/lint/hot_paths.toml");
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let canonical = manifest::render(&manifest::parse(&text)?);
        if canonical != text {
            std::fs::write(&path, &canonical)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("renormalized {}", path.display());
        }
    }
    let findings = lint_workspace(&args.root, &args.filters)?;
    for finding in &findings {
        println!("{finding}");
    }
    let scope = if args.filters.is_empty() {
        "full workspace".to_string()
    } else {
        format!("filtered ({}) — cross-file rules skipped", args.filters.join(", "))
    };
    eprintln!("smore_lint: {} finding(s), {scope}", findings.len());
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("smore_lint: {message}");
            ExitCode::from(2)
        }
    }
}
